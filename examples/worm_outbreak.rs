//! Early warning for a propagating email worm — the *unaligned* case.
//!
//! An email worm (Nimda/Sircam-style) carries a fixed attachment behind a
//! variable-length SMTP header, so every instance packetises at a
//! different offset and no two routers see identical packets. Offset
//! sampling + flow splitting still expose the correlation.
//!
//! The example simulates four epochs of an outbreak doubling each epoch,
//! calibrates the ER-test threshold on a known-clean epoch (the paper
//! tunes its thresholds by Monte-Carlo the same way), and shows the alarm
//! firing as the infection crosses the detectable threshold.
//!
//! Run with: `cargo run --release --example worm_outbreak`

use dcs::prelude::*;
use dcs_traffic::gen::{self, SizeMix};
use rand::rngs::StdRng;
use rand::SeedableRng;

const ROUTERS: usize = 36;
const GROUPS: usize = 8;

fn epoch_digests(
    rng: &mut StdRng,
    monitor_cfg: &MonitorConfig,
    worm: &Planting,
    infected: &[usize],
    instances_per_router: usize,
) -> Vec<RouterDigest> {
    let background = BackgroundConfig {
        packets: 1_200,
        flows: 300,
        zipf_exponent: 1.0,
        size_mix: SizeMix::constant(536),
    };
    (0..ROUTERS)
        .map(|router| {
            let mut traffic = gen::generate_epoch(rng, &background);
            if infected.contains(&router) {
                for _ in 0..instances_per_router {
                    worm.plant_into(rng, &mut traffic);
                }
            }
            let mut point = MonitoringPoint::new(router, monitor_cfg);
            point.observe_all(&traffic);
            point.finish_epoch()
        })
        .collect()
}

fn main() {
    let mut rng = StdRng::seed_from_u64(1337);
    let monitor_cfg = MonitorConfig::small(9, 1 << 14, GROUPS);

    // The worm: a 150-packet attachment; every instance gets a fresh
    // random SMTP prefix (Planting::unaligned draws one per instance).
    let attachment = ContentObject::random(&mut rng, 150 * 536);
    let worm = Planting::unaligned(attachment, 536);

    let mut analysis_cfg = AnalysisConfig::for_groups(ROUTERS * GROUPS);
    analysis_cfg.search.n_prime = 400;
    analysis_cfg.search.hopefuls = 300;
    // β sized for this deployment: the infected flow groups number in the
    // tens, not the default 50 (which would pad the core with noise).
    analysis_cfg.corefind = CoreFindConfig { beta: 12, d: 2 };

    // Calibration epoch: measure the clean largest component, set the
    // alarm threshold with 1.5x headroom (clamped to a sane floor).
    let clean = epoch_digests(&mut rng, &monitor_cfg, &worm, &[], 0);
    let center = AnalysisCenter::new(analysis_cfg.clone());
    let clean_report = center
        .analyze_epoch(&clean)
        .expect("freshly collected digests form a quorum");
    let threshold =
        ((clean_report.unaligned.largest_component as f64 * 1.5).ceil() as usize).max(8);
    println!(
        "calibration: clean largest component = {}, alarm threshold set to {}",
        clean_report.unaligned.largest_component, threshold
    );
    analysis_cfg.component_threshold = Some(threshold);
    let center = AnalysisCenter::new(analysis_cfg);

    // The outbreak: infections double every epoch.
    let mut infected: Vec<usize> = Vec::new();
    for epoch in 0..4 {
        let new_count = ((3usize) << epoch).min(ROUTERS - infected.len());
        let start = infected.len();
        infected.extend(start..start + new_count);

        let digests = epoch_digests(&mut rng, &monitor_cfg, &worm, &infected, 2);
        let report = center
            .analyze_epoch(&digests)
            .expect("freshly collected digests form a quorum");
        println!(
            "\nepoch {epoch}: {} routers infected ({} total)",
            new_count,
            infected.len()
        );
        println!(
            "  ER test: largest component {} vs threshold {} -> alarm = {}",
            report.unaligned.largest_component,
            report.unaligned.component_threshold,
            report.unaligned.alarm
        );
        if report.unaligned.alarm {
            let mut hits = 0;
            for r in &report.unaligned.suspected_routers {
                if infected.contains(r) {
                    hits += 1;
                }
            }
            println!(
                "  suspected routers: {:?}",
                report.unaligned.suspected_routers
            );
            println!(
                "  {} of {} suspects are truly infected; {} of {} infections localised",
                hits,
                report.unaligned.suspected_routers.len(),
                hits,
                infected.len()
            );
            println!(
                "  -> hand the suspects' flow groups to packet logging for signature extraction"
            );
        } else {
            println!("  infection still below the detectable threshold");
        }
    }
}
