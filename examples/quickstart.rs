//! Quickstart: detect common content spreading across a small deployment.
//!
//! Sets up 24 monitoring points, pushes one epoch of background traffic
//! through each, plants an identical "hot object" at 18 of them (the
//! aligned case — think a popular file download), ships the digests to
//! the analysis centre and prints the verdict.
//!
//! Run with: `cargo run --release --example quickstart`

use dcs::prelude::*;
use dcs_traffic::gen::{self, SizeMix};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    const ROUTERS: usize = 24;
    const INFECTED: usize = 18;

    // Deployment-wide collector settings: every router shares the epoch
    // hash seed (so identical payloads hash identically everywhere) and a
    // 16-Kbit aligned bitmap scaled to this toy epoch.
    let monitor_cfg = MonitorConfig::small(/*epoch_seed=*/ 7, 1 << 14, /*groups=*/ 4);

    // The common content: a 30-packet object carried on 536-byte payloads.
    let object = ContentObject::random_with_packets(&mut rng, 30, 536);
    let hot_object = Planting::aligned(object, 536);

    let background = BackgroundConfig {
        packets: 800,
        flows: 200,
        zipf_exponent: 1.0,
        size_mix: SizeMix::constant(536),
    };

    println!("collecting one epoch at {ROUTERS} monitoring points …");
    let mut digests = Vec::new();
    for router in 0..ROUTERS {
        let mut traffic = gen::generate_epoch(&mut rng, &background);
        if router < INFECTED {
            hot_object.plant_into(&mut rng, &mut traffic);
        }
        let mut point = MonitoringPoint::new(router, &monitor_cfg);
        point.observe_all(&traffic);
        digests.push(point.finish_epoch());
    }

    let mut analysis_cfg = AnalysisConfig::for_groups(ROUTERS * 4);
    analysis_cfg.search.n_prime = 400;
    analysis_cfg.search.hopefuls = 300;
    let center = AnalysisCenter::new(analysis_cfg);
    let report = center
        .analyze_epoch(&digests)
        .expect("freshly collected digests form a quorum");

    println!(
        "digests: {} bytes summarising {} bytes of traffic ({:.0}x compression)",
        report.digest_bytes,
        report.raw_bytes,
        report.compression_ratio()
    );
    if report.aligned.found {
        println!(
            "ALIGNED ALERT: common content of ~{} packets seen by routers {:?}",
            report.aligned.content_packets, report.aligned.routers
        );
        println!(
            "hashed signature (first few indices): {:?}",
            &report.aligned.signature_indices[..report.aligned.signature_indices.len().min(5)]
        );
    } else {
        println!("no aligned common content found");
    }
    println!(
        "unaligned ER test: largest component {} (threshold {}) -> alarm = {}",
        report.unaligned.largest_component,
        report.unaligned.component_threshold,
        report.unaligned.alarm
    );

    // Machine-readable output for downstream tooling.
    println!(
        "\nJSON report:\n{}",
        serde_json::to_string_pretty(&report).expect("report serialises")
    );
}
