//! Spam-campaign detection with trace capture and replay.
//!
//! A spam blast delivers the same message body behind varying SMTP
//! headers (the unaligned case). This example additionally exercises the
//! trace substrate: each router's epoch is written to the binary trace
//! format, read back, and only then fed to the collectors — proving the
//! whole detection path runs off recorded traces byte-for-byte.
//!
//! Run with: `cargo run --release --example spam_campaign`

use dcs::prelude::*;
use dcs_traffic::gen::{self, SizeMix};
use dcs_traffic::trace::{TraceReader, TraceWriter};
use rand::rngs::StdRng;
use rand::SeedableRng;

const ROUTERS: usize = 30;
const GROUPS: usize = 8;

fn main() {
    let mut rng = StdRng::seed_from_u64(0x5BA7);
    let monitor_cfg = MonitorConfig::small(13, 1 << 14, GROUPS);

    // The spam body: ~120 payloads worth of identical content; each copy
    // gets its own random header prefix.
    let body = ContentObject::random(&mut rng, 120 * 536);
    let spam = Planting::unaligned(body, 536);

    // Capture phase: record every router's epoch to an in-memory trace
    // file (swap the Vec for a std::fs::File to persist).
    let mail_relays: Vec<usize> = (0..ROUTERS).step_by(2).collect(); // half relay mail
    let mut trace_files: Vec<Vec<u8>> = Vec::new();
    let mut raw_packets = 0u64;
    for router in 0..ROUTERS {
        let mut traffic = gen::generate_epoch(
            &mut rng,
            &BackgroundConfig {
                packets: 1_000,
                flows: 250,
                zipf_exponent: 1.0,
                size_mix: SizeMix::constant(536),
            },
        );
        if mail_relays.contains(&router) {
            // Each relay forwards a couple of copies of the blast.
            spam.plant_into(&mut rng, &mut traffic);
            spam.plant_into(&mut rng, &mut traffic);
        }
        let mut w = TraceWriter::new(Vec::new()).expect("trace header");
        w.write_all_packets(&traffic).expect("trace body");
        raw_packets += w.count();
        trace_files.push(w.finish().expect("trace flush"));
    }
    println!(
        "captured {raw_packets} packets across {ROUTERS} traces ({} bytes total)",
        trace_files.iter().map(Vec::len).sum::<usize>()
    );

    // Replay phase: feed the recorded traces to the monitoring points.
    let mut digests = Vec::new();
    for (router, file) in trace_files.iter().enumerate() {
        let mut point = MonitoringPoint::new(router, &monitor_cfg);
        for pkt in TraceReader::new(file.as_slice()).expect("trace magic") {
            point.observe(&pkt.expect("well-formed record"));
        }
        digests.push(point.finish_epoch());
    }

    // Analysis: calibrate the ER threshold on a clean replay, then test.
    let mut analysis_cfg = AnalysisConfig::for_groups(ROUTERS * GROUPS);
    analysis_cfg.search.n_prime = 400;
    analysis_cfg.search.hopefuls = 300;
    analysis_cfg.component_threshold = Some(12);
    // ~30 relay flow-groups carry the blast; size the core accordingly.
    analysis_cfg.corefind = CoreFindConfig { beta: 12, d: 2 };
    let center = AnalysisCenter::new(analysis_cfg);
    let report = center
        .analyze_epoch(&digests)
        .expect("freshly collected digests form a quorum");

    println!(
        "ER test: largest component {} vs threshold {} -> alarm = {}",
        report.unaligned.largest_component,
        report.unaligned.component_threshold,
        report.unaligned.alarm
    );
    if report.unaligned.alarm {
        let hits = report
            .unaligned
            .suspected_routers
            .iter()
            .filter(|r| mail_relays.contains(r))
            .count();
        println!(
            "suspected relays: {:?} ({hits}/{} correct)",
            report.unaligned.suspected_routers,
            report.unaligned.suspected_routers.len()
        );
        println!("-> block list / rate limits go to those relays' operators");
    } else {
        println!("campaign below detectable threshold this epoch");
    }
}
