//! Flash-crowd detection: a hot Web/P2P object fanned out to many
//! destinations (the *aligned* case), detected across epochs.
//!
//! Demonstrates the detection-across-epochs behaviour the paper leans on
//! ("even if the pattern is missed in one second, it may be caught in the
//! following seconds"): the object's popularity ramps up, and per-epoch
//! verdicts aggregate into a stable alarm with the recovered hash
//! signature tracked across epochs.
//!
//! Run with: `cargo run --release --example hot_object`

use dcs::prelude::*;
use dcs_traffic::gen::{self, SizeMix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

const ROUTERS: usize = 24;

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);
    let monitor_cfg = MonitorConfig::small(11, 1 << 14, 4);

    // A 40-packet "newly released movie chunk" served to growing crowds.
    let object = ContentObject::random_with_packets(&mut rng, 40, 536);
    let hot = Planting::aligned(object, 536);

    let mut analysis_cfg = AnalysisConfig::for_groups(ROUTERS * 4);
    analysis_cfg.search.n_prime = 400;
    analysis_cfg.search.hopefuls = 300;
    let center = AnalysisCenter::new(analysis_cfg);

    // Popularity ramp: fraction of routers serving the object per epoch.
    // With 24 monitoring points the detectable threshold sits around 16
    // routers (the greedy plateau must clear the max-selection noise
    // floor), so the crowd crosses it between epochs 1 and 2.
    let ramp = [0.25f64, 0.5, 0.75, 1.0];
    let mut epoch_alarms = 0usize;
    let mut signature_votes: HashMap<usize, usize> = HashMap::new();

    for (epoch, &popularity) in ramp.iter().enumerate() {
        let serving = (ROUTERS as f64 * popularity).round() as usize;
        let mut digests = Vec::new();
        for router in 0..ROUTERS {
            let mut traffic = gen::generate_epoch(
                &mut rng,
                &BackgroundConfig {
                    packets: 900,
                    flows: 250,
                    zipf_exponent: 1.1,
                    size_mix: SizeMix::constant(536),
                },
            );
            if router < serving {
                // Busy mirrors push several copies per epoch.
                let copies = 1 + rng.gen_range(0..2);
                for _ in 0..copies {
                    hot.plant_into(&mut rng, &mut traffic);
                }
            }
            let mut point = MonitoringPoint::new(router, &monitor_cfg);
            point.observe_all(&traffic);
            digests.push(point.finish_epoch());
        }
        let report = center
            .analyze_epoch(&digests)
            .expect("freshly collected digests form a quorum");
        println!(
            "epoch {epoch}: {serving}/{ROUTERS} routers serving; found = {}; {} routers flagged; \
             {} signature indices; compression {:.0}x",
            report.aligned.found,
            report.aligned.routers.len(),
            report.aligned.content_packets,
            report.compression_ratio()
        );
        if report.aligned.found {
            epoch_alarms += 1;
            for &idx in &report.aligned.signature_indices {
                *signature_votes.entry(idx).or_default() += 1;
            }
        }
    }

    // Signature indices recovered in 2+ epochs are (with this epoch seed)
    // stable content packets — ready to prime a packet logger.
    let stable: Vec<usize> = signature_votes
        .iter()
        .filter(|&(_, &votes)| votes >= 2)
        .map(|(&idx, _)| idx)
        .collect();
    println!(
        "\n{epoch_alarms}/{} epochs alarmed; {} signature indices stable across epochs",
        ramp.len(),
        stable.len()
    );
    assert!(
        epoch_alarms >= 2,
        "the flash crowd should be caught in the later epochs"
    );
}
