//! Two simultaneous contents + epoch sampling + alarm smoothing.
//!
//! Exercises the extension layers on top of the core detectors:
//!
//! * `refined_detect_multi` separates two *different* hot objects spreading
//!   through overlapping router sets in the same epoch (paper §II-D:
//!   "multiple common items occurring within the same measurement epoch");
//! * `EpochSampler` analyses only one epoch in three (paper §IV-D,
//!   complexity possibility 5);
//! * `AlarmTracker` turns the sampled verdicts into a stable 2-of-3 alarm
//!   (paper §V-B.1: missed epochs are caught by the following ones).
//!
//! Run with: `cargo run --release --example multi_content`

use dcs::prelude::*;
use dcs_aligned::refined_detect_multi;
use dcs_bitmap::ColMatrix;
use dcs_traffic::gen::{self, SizeMix};
use rand::rngs::StdRng;
use rand::SeedableRng;

const ROUTERS: usize = 28;

fn main() {
    let mut rng = StdRng::seed_from_u64(0x2C0DE);
    let monitor_cfg = MonitorConfig::small(17, 1 << 14, 4);

    // Two distinct objects with different footprints: a worm binary on
    // routers 0..20 and a hot video chunk on routers 10..28.
    let worm = Planting::aligned(ContentObject::random_with_packets(&mut rng, 25, 536), 536);
    let video = Planting::aligned(ContentObject::random_with_packets(&mut rng, 35, 536), 536);

    let search = dcs_aligned::SearchConfig {
        n_prime: 400,
        hopefuls: 300,
        ..dcs_aligned::SearchConfig::default()
    };

    let mut sampler = EpochSampler::new(3);
    let mut tracker = AlarmTracker::new(3, 2);

    for epoch in 0..9 {
        let analyse = sampler.tick();
        if !analyse {
            println!("epoch {epoch}: skipped by the 1-in-3 sampler");
            continue;
        }
        // Collect the epoch.
        let mut bitmaps = Vec::new();
        for router in 0..ROUTERS {
            let mut traffic = gen::generate_epoch(
                &mut rng,
                &BackgroundConfig {
                    packets: 800,
                    flows: 200,
                    zipf_exponent: 1.0,
                    size_mix: SizeMix::constant(536),
                },
            );
            if router < 20 {
                worm.plant_into(&mut rng, &mut traffic);
            }
            if router >= 10 {
                video.plant_into(&mut rng, &mut traffic);
            }
            let mut point = MonitoringPoint::new(router, &monitor_cfg);
            point.observe_all(&traffic);
            bitmaps.push(point.finish_epoch().aligned.bitmap);
        }
        let matrix = ColMatrix::from_router_bitmaps(&bitmaps);
        let patterns = refined_detect_multi(&matrix, &search, 4);
        let alarm = tracker.record(!patterns.is_empty());
        println!(
            "epoch {epoch}: {} distinct contents found; smoothed alarm = {alarm}",
            patterns.len()
        );
        for (i, det) in patterns.iter().enumerate() {
            let lo = det.rows.iter().min().copied().unwrap_or(0);
            let hi = det.rows.iter().max().copied().unwrap_or(0);
            println!(
                "    content #{i}: {} packets across {} routers (ids {lo}..={hi})",
                det.cols.len(),
                det.rows.len()
            );
        }
        assert!(
            patterns.len() >= 2,
            "both contents should separate in an analysed epoch"
        );
    }
    // Quantify the sampling trade-off the paper hopes for.
    let p = dcs::core::catch_probability(0.95, 9, 3);
    println!(
        "\nwith 1-in-3 sampling and per-epoch detection 0.95, a 9-epoch event \
         is caught with probability {p:.4}"
    );
    assert!(tracker.is_firing(), "the smoothed alarm should be active");
}
