#!/usr/bin/env python3
"""CI metrics gate over a BENCH_pipeline.json (or any report embedding
`center_stage_ns` + `metrics`):

* smoke — the report parses and carries a non-zero span for every stage
  of both detection pipelines, plus the epoch total and counter;
* perf budgets (``--budgets budgets.json``) — every stage's share of the
  nine-stage span sum stays within its checked-in ceiling, so a change
  that silently shifts work into one stage trips CI on any runner
  (shares are machine-independent where absolute times are not).

Usage: check_metrics_json.py [path-to-json] [--budgets budgets.json]
"""

import json
import sys

STAGES = {
    "aligned": ["fuse", "screen", "core_find", "sweep", "terminate"],
    "unaligned": ["stack_rows", "graph_build", "er_test", "peel"],
}


def check_smoke(path: str, report: dict) -> int:
    breakdown = report["center_stage_ns"]
    flat_keys = [f"{s}_ns" for stages in STAGES.values() for s in stages]
    bad = [k for k in flat_keys if breakdown.get(k, 0) <= 0]
    if bad:
        print(f"{path}: zero or missing stage spans in center_stage_ns: {bad}")
        return 1

    gauges = {g["key"]: g["value"] for g in report["metrics"]["gauges"]}
    missing = []
    for pipeline, stages in STAGES.items():
        for stage in stages:
            key = f"epoch_stage_ns{{pipeline={pipeline},stage={stage}}}"
            if gauges.get(key, 0) <= 0:
                missing.append(key)
    if missing:
        print(f"{path}: zero or missing stage gauges in metrics snapshot: {missing}")
        return 1
    if gauges.get("epoch_total_ns", 0) <= 0:
        print(f"{path}: epoch_total_ns gauge missing or zero")
        return 1

    counters = {c["key"]: c["value"] for c in report["metrics"]["counters"]}
    if counters.get("epochs_analyzed_total", 0) <= 0:
        print(f"{path}: epochs_analyzed_total counter missing or zero")
        return 1

    print(
        f"{path}: all {len(flat_keys)} stage spans non-zero, "
        f"{counters['epochs_analyzed_total']} epoch(s) analysed"
    )
    return 0


def check_budgets(path: str, report: dict, budgets_path: str) -> int:
    with open(budgets_path, encoding="utf-8") as f:
        budgets = json.load(f)["max_share_of_stage_sum"]

    breakdown = report["center_stage_ns"]
    spans = {
        f"{pipeline}/{stage}": breakdown.get(f"{stage}_ns", 0)
        for pipeline, stages in STAGES.items()
        for stage in stages
    }
    total = sum(spans.values())
    if total <= 0:
        print(f"{path}: stage span sum is zero, cannot evaluate budgets")
        return 1

    unbudgeted = sorted(set(spans) - set(budgets))
    if unbudgeted:
        print(f"{budgets_path}: stages missing a budget: {unbudgeted}")
        return 1

    failures = []
    for key, span in sorted(spans.items()):
        share = span / total
        ceiling = budgets[key]
        status = "over budget" if share > ceiling else "ok"
        print(f"  {key:<22} {span / 1e6:>10.2f} ms  share {share:.3f}  budget {ceiling:.3f}  {status}")
        if share > ceiling:
            failures.append(key)
    if failures:
        print(
            f"{path}: stage share over budget for {failures} — a change shifted "
            f"work into these stages; rebalance or update {budgets_path} with "
            f"a justification in the same change"
        )
        return 1
    print(f"{path}: all {len(spans)} stage shares within {budgets_path} ceilings")
    return 0


def main() -> int:
    argv = sys.argv[1:]
    budgets_path = None
    if "--budgets" in argv:
        i = argv.index("--budgets")
        if i + 1 >= len(argv):
            print("--budgets requires a path argument")
            return 2
        budgets_path = argv[i + 1]
        del argv[i : i + 2]
    path = argv[0] if argv else "BENCH_pipeline.json"

    with open(path, encoding="utf-8") as f:
        report = json.load(f)

    rc = check_smoke(path, report)
    if rc == 0 and budgets_path is not None:
        rc = check_budgets(path, report, budgets_path)
    return rc


if __name__ == "__main__":
    sys.exit(main())
