#!/usr/bin/env python3
"""CI metrics smoke check: assert a BENCH_pipeline.json (or any report
embedding `center_stage_ns` + `metrics`) parses and carries a non-zero
span for every stage of both detection pipelines.

Usage: check_metrics_json.py [path-to-json]
"""

import json
import sys

STAGES = {
    "aligned": ["fuse", "screen", "core_find", "sweep", "terminate"],
    "unaligned": ["stack_rows", "graph_build", "er_test", "peel"],
}


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_pipeline.json"
    with open(path, encoding="utf-8") as f:
        report = json.load(f)

    breakdown = report["center_stage_ns"]
    flat_keys = [f"{s}_ns" for stages in STAGES.values() for s in stages]
    bad = [k for k in flat_keys if breakdown.get(k, 0) <= 0]
    if bad:
        print(f"{path}: zero or missing stage spans in center_stage_ns: {bad}")
        return 1

    gauges = {g["key"]: g["value"] for g in report["metrics"]["gauges"]}
    missing = []
    for pipeline, stages in STAGES.items():
        for stage in stages:
            key = f"epoch_stage_ns{{pipeline={pipeline},stage={stage}}}"
            if gauges.get(key, 0) <= 0:
                missing.append(key)
    if missing:
        print(f"{path}: zero or missing stage gauges in metrics snapshot: {missing}")
        return 1
    if gauges.get("epoch_total_ns", 0) <= 0:
        print(f"{path}: epoch_total_ns gauge missing or zero")
        return 1

    counters = {c["key"]: c["value"] for c in report["metrics"]["counters"]}
    if counters.get("epochs_analyzed_total", 0) <= 0:
        print(f"{path}: epochs_analyzed_total counter missing or zero")
        return 1

    print(
        f"{path}: all {len(flat_keys)} stage spans non-zero, "
        f"{counters['epochs_analyzed_total']} epoch(s) analysed"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
