#!/usr/bin/env python3
"""CI metrics gate over a BENCH_pipeline.json (or any report embedding
`center_stage_ns` + `metrics`):

* smoke — the report parses and carries a non-zero span for every stage
  of both detection pipelines, plus the epoch total and counter;
* perf budgets (``--budgets budgets.json``) — every stage's share of the
  eleven-stage span sum stays within its checked-in ceiling, so a change
  that silently shifts work into one stage trips CI on any runner
  (shares are machine-independent where absolute times are not);
* sketch bench (reports carrying a ``sketch_bytes_ratio`` field, i.e.
  BENCH_sketch.json) — sidecar artifacts actually flowed (merge counters
  non-zero, seed columns derived), the seeded and unseeded verdicts
  matched, and recall / wire-overhead stay within the ``sketch``
  ceilings of the budgets file. Like socket reports, sketch reports are
  gated on these ceilings IN PLACE OF the stage-share budgets: the
  replay-heavy sketch workload has a legitimately different stage
  profile from the pipeline bench the shares were calibrated against;
* socket soak (reports carrying a ``socket`` metrics object, i.e.
  BENCH_socket.json) — frames actually moved in both roles, the
  impairment shim provably bit, the reassembly backlog drained to zero,
  and the resend amplification / centre stall ratios stay within the
  ``socket`` ceilings of the budgets file (ratios, so machine-speed
  independent like the stage shares). Socket reports are gated on these
  ceilings IN PLACE OF the stage-share budgets: the share ceilings are
  calibrated against the pipeline bench's workload, and the soak's
  paper-scale bitmaps have a legitimately different stage profile.

Every malformed input (missing file, unparseable JSON, absent
`center_stage_ns`/`metrics` sections, zero stage totals, budget files
without ceilings) is a one-line diagnostic and exit code 1 — never a
Python traceback, which CI logs render as an infrastructure failure
rather than the regression it actually is.

Usage: check_metrics_json.py [path-to-json] [--budgets budgets.json]
       check_metrics_json.py --selftest
"""

import json
import os
import sys

STAGES = {
    "aligned": ["fuse", "sketch_fuse", "screen", "core_find", "sweep", "terminate"],
    "unaligned": ["stack_rows", "prescreen", "graph_build", "er_test", "peel"],
}

# A sketch bench (reports carrying a ``sketch_bytes_ratio`` field, i.e.
# BENCH_sketch.json) where these stayed at zero never actually shipped a
# sidecar artifact through the centre — the run was vacuous.
SKETCH_REQUIRED_COUNTERS = [
    "sketch_artifacts_total",
    "sketch_merged_total",
]

# A socket soak where any of these stayed at zero did not actually push
# digests through an impaired socket — the run was vacuous.
SOCKET_REQUIRED_COUNTERS = [
    "socket_frames_sent_total{role=monitor}",
    "socket_frames_sent_total{role=center}",
    "socket_frames_received_total{role=center}",
    "socket_frames_received_total{role=monitor}",
    "socket_impaired_total{kind=drop}",
]

FIXTURES_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")


class GateError(Exception):
    """A malformed report or budgets file: report and exit 1, no traceback."""


def load_json(path: str, what: str) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except FileNotFoundError:
        raise GateError(f"{path}: {what} not found")
    except json.JSONDecodeError as e:
        raise GateError(f"{path}: {what} is not valid JSON ({e})")


def report_section(path: str, report: dict, key: str) -> dict:
    section = report.get(key)
    if not isinstance(section, dict):
        raise GateError(
            f"{path}: report has no `{key}` object — is this a bench report "
            f"with an embedded metrics snapshot?"
        )
    return section


def check_smoke(path: str, report: dict) -> int:
    breakdown = report_section(path, report, "center_stage_ns")
    flat_keys = [f"{s}_ns" for stages in STAGES.values() for s in stages]
    bad = [k for k in flat_keys if breakdown.get(k, 0) <= 0]
    if bad:
        print(f"{path}: zero or missing stage spans in center_stage_ns: {bad}")
        return 1

    metrics = report_section(path, report, "metrics")
    gauges = {g["key"]: g["value"] for g in metrics.get("gauges", [])}
    missing = []
    for pipeline, stages in STAGES.items():
        for stage in stages:
            key = f"epoch_stage_ns{{pipeline={pipeline},stage={stage}}}"
            if gauges.get(key, 0) <= 0:
                missing.append(key)
    if missing:
        print(f"{path}: zero or missing stage gauges in metrics snapshot: {missing}")
        return 1
    if gauges.get("epoch_total_ns", 0) <= 0:
        print(f"{path}: epoch_total_ns gauge missing or zero")
        return 1

    counters = {c["key"]: c["value"] for c in metrics.get("counters", [])}
    if counters.get("epochs_analyzed_total", 0) <= 0:
        print(f"{path}: epochs_analyzed_total counter missing or zero")
        return 1

    print(
        f"{path}: all {len(flat_keys)} stage spans non-zero, "
        f"{counters['epochs_analyzed_total']} epoch(s) analysed"
    )
    return 0


def check_socket(path: str, report: dict) -> int:
    socket = report_section(path, report, "socket")
    counters = {c["key"]: c["value"] for c in socket.get("counters", [])}
    dead = [k for k in SOCKET_REQUIRED_COUNTERS if counters.get(k, 0) <= 0]
    if dead:
        print(f"{path}: socket soak counters missing or zero: {dead}")
        return 1

    gauges = {g["key"]: g["value"] for g in socket.get("gauges", [])}
    backlog = gauges.get("socket_reassembly_backlog")
    if backlog is None:
        print(f"{path}: socket_reassembly_backlog gauge missing")
        return 1
    if backlog != 0:
        print(
            f"{path}: socket_reassembly_backlog settled at {backlog}, not 0 — "
            f"the collector finished an epoch with partial bundles in flight"
        )
        return 1

    for field in ("send_amplification", "stall_ratio"):
        if not isinstance(report.get(field), (int, float)):
            print(f"{path}: report has no numeric `{field}` field")
            return 1
    print(
        f"{path}: socket soak moved "
        f"{counters['socket_frames_sent_total{role=monitor}']} monitor frames "
        f"under impairment, backlog drained"
    )
    return 0


def check_socket_budgets(path: str, report: dict, budgets_path: str) -> int:
    ceilings = load_json(budgets_path, "budgets file").get("socket")
    if not isinstance(ceilings, dict):
        raise GateError(f"{budgets_path}: budgets file has no `socket` object")
    checks = [
        ("send_amplification", "max_send_amplification"),
        ("stall_ratio", "max_stall_ratio"),
    ]
    failures = []
    for field, budget_key in checks:
        ceiling = ceilings.get(budget_key)
        if not isinstance(ceiling, (int, float)):
            raise GateError(f"{budgets_path}: socket object has no `{budget_key}`")
        value = report[field]
        status = "over budget" if value > ceiling else "ok"
        print(f"  socket/{field:<20} {value:>8.3f}  budget {ceiling:.3f}  {status}")
        if value > ceiling:
            failures.append(field)
    if failures:
        print(
            f"{path}: socket ratios over budget for {failures} — resend or "
            f"backpressure behaviour regressed; fix the transport or update "
            f"{budgets_path} with a justification in the same change"
        )
        return 1
    print(f"{path}: socket ratios within {budgets_path} ceilings")
    return 0


def check_sketch(path: str, report: dict) -> int:
    metrics = report_section(path, report, "metrics")
    counters = {c["key"]: c["value"] for c in metrics.get("counters", [])}
    dead = [k for k in SKETCH_REQUIRED_COUNTERS if counters.get(k, 0) <= 0]
    if dead:
        print(f"{path}: sketch bench counters missing or zero: {dead}")
        return 1

    gauges = {g["key"]: g["value"] for g in metrics.get("gauges", [])}
    if gauges.get("sketch_seed_columns", 0) <= 0:
        print(
            f"{path}: sketch_seed_columns gauge missing or zero — the seeded "
            f"centre never derived a prefilter from the fused sketch"
        )
        return 1

    for field in ("recall_mean", "sketch_bytes_ratio"):
        if not isinstance(report.get(field), (int, float)):
            print(f"{path}: report has no numeric `{field}` field")
            return 1
    if report.get("seeding_advisory") is not True:
        print(
            f"{path}: seeding_advisory is not true — the sketch seeds changed "
            f"the detection verdict, which must never happen"
        )
        return 1
    print(
        f"{path}: sketch bench merged {counters['sketch_merged_total']} "
        f"sidecar artifacts, seeds derived, verdicts seed-independent"
    )
    return 0


def check_sketch_budgets(path: str, report: dict, budgets_path: str) -> int:
    ceilings = load_json(budgets_path, "budgets file").get("sketch")
    if not isinstance(ceilings, dict):
        raise GateError(f"{budgets_path}: budgets file has no `sketch` object")
    checks = [
        # (report field, budget key, True when the value must stay >= the
        # floor rather than <= the ceiling)
        ("recall_mean", "min_recall_mean", True),
        ("sketch_bytes_ratio", "max_bytes_ratio", False),
    ]
    failures = []
    for field, budget_key, is_floor in checks:
        bound = ceilings.get(budget_key)
        if not isinstance(bound, (int, float)):
            raise GateError(f"{budgets_path}: sketch object has no `{budget_key}`")
        value = report[field]
        bad = value < bound if is_floor else value > bound
        status = "out of budget" if bad else "ok"
        kind = "floor" if is_floor else "ceiling"
        print(f"  sketch/{field:<20} {value:>8.4f}  {kind} {bound:.4f}  {status}")
        if bad:
            failures.append(field)
    if failures:
        print(
            f"{path}: sketch quality out of budget for {failures} — the "
            f"sidecar lost recall or outgrew its wire allowance; fix the "
            f"sketch or update {budgets_path} with a justification in the "
            f"same change"
        )
        return 1
    print(f"{path}: sketch recall/overhead within {budgets_path} bounds")
    return 0


def check_budgets(path: str, report: dict, budgets_path: str) -> int:
    budgets = load_json(budgets_path, "budgets file").get("max_share_of_stage_sum")
    if not isinstance(budgets, dict):
        raise GateError(
            f"{budgets_path}: budgets file has no `max_share_of_stage_sum` object"
        )

    breakdown = report_section(path, report, "center_stage_ns")
    spans = {
        f"{pipeline}/{stage}": breakdown.get(f"{stage}_ns", 0)
        for pipeline, stages in STAGES.items()
        for stage in stages
    }
    total = sum(spans.values())
    if total <= 0:
        print(
            f"{path}: stage span sum is zero, cannot evaluate budgets — the "
            f"report covers no analysed epoch (or every stage span is missing)"
        )
        return 1

    unbudgeted = sorted(set(spans) - set(budgets))
    if unbudgeted:
        print(f"{budgets_path}: stages missing a budget: {unbudgeted}")
        return 1

    failures = []
    for key, span in sorted(spans.items()):
        share = span / total
        ceiling = budgets[key]
        status = "over budget" if share > ceiling else "ok"
        print(f"  {key:<22} {span / 1e6:>10.2f} ms  share {share:.3f}  budget {ceiling:.3f}  {status}")
        if share > ceiling:
            failures.append(key)
    if failures:
        print(
            f"{path}: stage share over budget for {failures} — a change shifted "
            f"work into these stages; rebalance or update {budgets_path} with "
            f"a justification in the same change"
        )
        return 1
    print(f"{path}: all {len(spans)} stage shares within {budgets_path} ceilings")
    return 0


def run_gate(path: str, budgets_path) -> int:
    report = load_json(path, "metrics report")
    rc = check_smoke(path, report)
    if rc != 0:
        return rc
    if "socket" in report:
        # A socket soak is gated on its transport ratios, not the
        # stage-share budgets (those are calibrated for the pipeline
        # bench's workload; the soak's stage profile differs by design).
        rc = check_socket(path, report)
        if rc == 0 and budgets_path is not None:
            rc = check_socket_budgets(path, report, budgets_path)
        return rc
    if "sketch_bytes_ratio" in report:
        # A sketch bench is gated on its recall/overhead bounds, not the
        # stage-share budgets (the replay-heavy workload's stage profile
        # differs from the pipeline bench's by design).
        rc = check_sketch(path, report)
        if rc == 0 and budgets_path is not None:
            rc = check_sketch_budgets(path, report, budgets_path)
        return rc
    if budgets_path is not None:
        rc = check_budgets(path, report, budgets_path)
    return rc


def selftest() -> int:
    """Regression fixtures: every malformed input must produce a clean
    one-line diagnostic (exit 1), never an uncaught exception."""
    budgets = os.path.join(os.path.dirname(FIXTURES_DIR), "stage_budgets.json")
    cases = [
        ("zero_stage_total.json", None),
        ("zero_stage_total.json", budgets),
        ("over_budget_graph_build.json", budgets),
        ("missing_metrics.json", None),
        ("missing_center_stage_ns.json", None),
        ("no_such_file.json", None),
        ("zero_stage_total.json", os.path.join(FIXTURES_DIR, "no_such_budgets.json")),
        ("zero_stage_total.json", os.path.join(FIXTURES_DIR, "missing_metrics.json")),
        ("socket_missing_counters.json", None),
        ("socket_missing_counters.json", budgets),
        ("socket_over_amplification.json", budgets),
        ("sketch_missing_counters.json", None),
        ("sketch_missing_counters.json", budgets),
        ("over_budget_sketch_fuse.json", budgets),
    ]
    failures = []
    for fixture, budgets_path in cases:
        path = os.path.join(FIXTURES_DIR, fixture)
        label = f"{fixture} budgets={os.path.basename(budgets_path) if budgets_path else None}"
        try:
            rc = run_gate(path, budgets_path)
        except GateError as e:
            print(e)
            rc = 1
        except Exception as e:  # noqa: BLE001 — the regression being pinned
            failures.append(f"{label}: raised {type(e).__name__}: {e}")
            continue
        if rc != 1:
            failures.append(f"{label}: expected exit 1, got {rc}")

    # The budgets divider itself (smoke normally runs first and masks it):
    # an all-zero stage breakdown must be the clean "sum is zero" line, not
    # a ZeroDivisionError.
    zero = load_json(os.path.join(FIXTURES_DIR, "zero_stage_total.json"), "fixture")
    try:
        rc = check_budgets("zero_stage_total.json", zero, budgets)
        if rc != 1:
            failures.append(f"check_budgets zero-total: expected exit 1, got {rc}")
    except Exception as e:  # noqa: BLE001
        failures.append(f"check_budgets zero-total: raised {type(e).__name__}: {e}")
    if failures:
        print("selftest FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"selftest: {len(cases)} malformed-input fixtures all fail cleanly")
    return 0


def main() -> int:
    argv = sys.argv[1:]
    if "--selftest" in argv:
        return selftest()
    budgets_path = None
    if "--budgets" in argv:
        i = argv.index("--budgets")
        if i + 1 >= len(argv):
            print("--budgets requires a path argument")
            return 2
        budgets_path = argv[i + 1]
        del argv[i : i + 2]
    path = argv[0] if argv else "BENCH_pipeline.json"

    try:
        return run_gate(path, budgets_path)
    except GateError as e:
        print(e)
        return 1


if __name__ == "__main__":
    sys.exit(main())
