#!/usr/bin/env python3
"""CI metrics gate over a BENCH_pipeline.json (or any report embedding
`center_stage_ns` + `metrics`):

* smoke — the report parses and carries a non-zero span for every stage
  of both detection pipelines, plus the epoch total and counter;
* perf budgets (``--budgets budgets.json``) — every stage's share of the
  ten-stage span sum stays within its checked-in ceiling, so a change
  that silently shifts work into one stage trips CI on any runner
  (shares are machine-independent where absolute times are not).

Every malformed input (missing file, unparseable JSON, absent
`center_stage_ns`/`metrics` sections, zero stage totals, budget files
without ceilings) is a one-line diagnostic and exit code 1 — never a
Python traceback, which CI logs render as an infrastructure failure
rather than the regression it actually is.

Usage: check_metrics_json.py [path-to-json] [--budgets budgets.json]
       check_metrics_json.py --selftest
"""

import json
import os
import sys

STAGES = {
    "aligned": ["fuse", "screen", "core_find", "sweep", "terminate"],
    "unaligned": ["stack_rows", "prescreen", "graph_build", "er_test", "peel"],
}

FIXTURES_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")


class GateError(Exception):
    """A malformed report or budgets file: report and exit 1, no traceback."""


def load_json(path: str, what: str) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except FileNotFoundError:
        raise GateError(f"{path}: {what} not found")
    except json.JSONDecodeError as e:
        raise GateError(f"{path}: {what} is not valid JSON ({e})")


def report_section(path: str, report: dict, key: str) -> dict:
    section = report.get(key)
    if not isinstance(section, dict):
        raise GateError(
            f"{path}: report has no `{key}` object — is this a bench report "
            f"with an embedded metrics snapshot?"
        )
    return section


def check_smoke(path: str, report: dict) -> int:
    breakdown = report_section(path, report, "center_stage_ns")
    flat_keys = [f"{s}_ns" for stages in STAGES.values() for s in stages]
    bad = [k for k in flat_keys if breakdown.get(k, 0) <= 0]
    if bad:
        print(f"{path}: zero or missing stage spans in center_stage_ns: {bad}")
        return 1

    metrics = report_section(path, report, "metrics")
    gauges = {g["key"]: g["value"] for g in metrics.get("gauges", [])}
    missing = []
    for pipeline, stages in STAGES.items():
        for stage in stages:
            key = f"epoch_stage_ns{{pipeline={pipeline},stage={stage}}}"
            if gauges.get(key, 0) <= 0:
                missing.append(key)
    if missing:
        print(f"{path}: zero or missing stage gauges in metrics snapshot: {missing}")
        return 1
    if gauges.get("epoch_total_ns", 0) <= 0:
        print(f"{path}: epoch_total_ns gauge missing or zero")
        return 1

    counters = {c["key"]: c["value"] for c in metrics.get("counters", [])}
    if counters.get("epochs_analyzed_total", 0) <= 0:
        print(f"{path}: epochs_analyzed_total counter missing or zero")
        return 1

    print(
        f"{path}: all {len(flat_keys)} stage spans non-zero, "
        f"{counters['epochs_analyzed_total']} epoch(s) analysed"
    )
    return 0


def check_budgets(path: str, report: dict, budgets_path: str) -> int:
    budgets = load_json(budgets_path, "budgets file").get("max_share_of_stage_sum")
    if not isinstance(budgets, dict):
        raise GateError(
            f"{budgets_path}: budgets file has no `max_share_of_stage_sum` object"
        )

    breakdown = report_section(path, report, "center_stage_ns")
    spans = {
        f"{pipeline}/{stage}": breakdown.get(f"{stage}_ns", 0)
        for pipeline, stages in STAGES.items()
        for stage in stages
    }
    total = sum(spans.values())
    if total <= 0:
        print(
            f"{path}: stage span sum is zero, cannot evaluate budgets — the "
            f"report covers no analysed epoch (or every stage span is missing)"
        )
        return 1

    unbudgeted = sorted(set(spans) - set(budgets))
    if unbudgeted:
        print(f"{budgets_path}: stages missing a budget: {unbudgeted}")
        return 1

    failures = []
    for key, span in sorted(spans.items()):
        share = span / total
        ceiling = budgets[key]
        status = "over budget" if share > ceiling else "ok"
        print(f"  {key:<22} {span / 1e6:>10.2f} ms  share {share:.3f}  budget {ceiling:.3f}  {status}")
        if share > ceiling:
            failures.append(key)
    if failures:
        print(
            f"{path}: stage share over budget for {failures} — a change shifted "
            f"work into these stages; rebalance or update {budgets_path} with "
            f"a justification in the same change"
        )
        return 1
    print(f"{path}: all {len(spans)} stage shares within {budgets_path} ceilings")
    return 0


def run_gate(path: str, budgets_path) -> int:
    report = load_json(path, "metrics report")
    rc = check_smoke(path, report)
    if rc == 0 and budgets_path is not None:
        rc = check_budgets(path, report, budgets_path)
    return rc


def selftest() -> int:
    """Regression fixtures: every malformed input must produce a clean
    one-line diagnostic (exit 1), never an uncaught exception."""
    budgets = os.path.join(os.path.dirname(FIXTURES_DIR), "stage_budgets.json")
    cases = [
        ("zero_stage_total.json", None),
        ("zero_stage_total.json", budgets),
        ("over_budget_graph_build.json", budgets),
        ("missing_metrics.json", None),
        ("missing_center_stage_ns.json", None),
        ("no_such_file.json", None),
        ("zero_stage_total.json", os.path.join(FIXTURES_DIR, "no_such_budgets.json")),
        ("zero_stage_total.json", os.path.join(FIXTURES_DIR, "missing_metrics.json")),
    ]
    failures = []
    for fixture, budgets_path in cases:
        path = os.path.join(FIXTURES_DIR, fixture)
        label = f"{fixture} budgets={os.path.basename(budgets_path) if budgets_path else None}"
        try:
            rc = run_gate(path, budgets_path)
        except GateError as e:
            print(e)
            rc = 1
        except Exception as e:  # noqa: BLE001 — the regression being pinned
            failures.append(f"{label}: raised {type(e).__name__}: {e}")
            continue
        if rc != 1:
            failures.append(f"{label}: expected exit 1, got {rc}")

    # The budgets divider itself (smoke normally runs first and masks it):
    # an all-zero stage breakdown must be the clean "sum is zero" line, not
    # a ZeroDivisionError.
    zero = load_json(os.path.join(FIXTURES_DIR, "zero_stage_total.json"), "fixture")
    try:
        rc = check_budgets("zero_stage_total.json", zero, budgets)
        if rc != 1:
            failures.append(f"check_budgets zero-total: expected exit 1, got {rc}")
    except Exception as e:  # noqa: BLE001
        failures.append(f"check_budgets zero-total: raised {type(e).__name__}: {e}")
    if failures:
        print("selftest FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"selftest: {len(cases)} malformed-input fixtures all fail cleanly")
    return 0


def main() -> int:
    argv = sys.argv[1:]
    if "--selftest" in argv:
        return selftest()
    budgets_path = None
    if "--budgets" in argv:
        i = argv.index("--budgets")
        if i + 1 >= len(argv):
            print("--budgets requires a path argument")
            return 2
        budgets_path = argv[i + 1]
        del argv[i : i + 2]
    path = argv[0] if argv else "BENCH_pipeline.json"

    try:
        return run_gate(path, budgets_path)
    except GateError as e:
        print(e)
        return 1


if __name__ == "__main__":
    sys.exit(main())
