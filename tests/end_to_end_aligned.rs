//! End-to-end integration: traffic generation → aligned collectors →
//! digest shipping (through the wire encoding) → fused matrix → refined
//! detection → report.

use dcs::prelude::*;
use dcs_bitmap::Bitmap;
use dcs_traffic::gen::{self, SizeMix};
use rand::rngs::StdRng;
use rand::SeedableRng;

const ROUTERS: usize = 24;

fn run_epoch(seed: u64, infected: usize, content_packets: usize) -> dcs::core::EpochReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let monitor_cfg = MonitorConfig::small(5, 1 << 14, 4);
    let object = ContentObject::random_with_packets(&mut rng, content_packets, 536);
    let plant = Planting::aligned(object, 536);
    let bg = BackgroundConfig {
        packets: 800,
        flows: 200,
        zipf_exponent: 1.0,
        size_mix: SizeMix::constant(536),
    };
    let mut digests = Vec::new();
    for router in 0..ROUTERS {
        let mut traffic = gen::generate_epoch(&mut rng, &bg);
        if router < infected {
            plant.plant_into(&mut rng, &mut traffic);
        }
        let mut point = MonitoringPoint::new(router, &monitor_cfg);
        point.observe_all(&traffic);
        let mut digest = point.finish_epoch();

        // Ship the aligned bitmap through the binary wire format, as a
        // real deployment would, and analyse the decoded copy.
        let wire = digest.aligned.bitmap.encode();
        digest.aligned.bitmap = Bitmap::decode(&wire).expect("wire roundtrip");
        digests.push(digest);
    }
    let mut cfg = AnalysisConfig::for_groups(ROUTERS * 4);
    cfg.search.n_prime = 400;
    cfg.search.hopefuls = 300;
    AnalysisCenter::new(cfg)
        .analyze_epoch(&digests)
        .expect("freshly collected digests form a quorum")
}

#[test]
fn detects_infection_above_threshold() {
    let report = run_epoch(1, 18, 30);
    assert!(report.aligned.found);
    let hits = report.aligned.routers.iter().filter(|&&r| r < 18).count();
    assert!(hits >= 14, "recovered only {hits}/18 infected routers");
    let false_routers = report.aligned.routers.len() - hits;
    assert!(
        false_routers <= 2,
        "{false_routers} clean routers implicated"
    );
    // The signature should be close to the planted content size.
    assert!(
        (20..=40).contains(&report.aligned.content_packets),
        "signature of {} packets for 30 planted",
        report.aligned.content_packets
    );
}

#[test]
fn clean_epoch_stays_quiet() {
    let report = run_epoch(2, 0, 30);
    assert!(!report.aligned.found, "aligned false positive");
}

#[test]
fn small_infection_below_threshold_stays_quiet() {
    // 5 of 24 routers: far below the detectable threshold for this
    // deployment; the verdict must hold back even though the planted
    // columns exist.
    let report = run_epoch(3, 5, 30);
    assert!(
        !report.aligned.found,
        "sub-threshold pattern falsely reported"
    );
}

#[test]
fn compression_accounting_consistent() {
    let report = run_epoch(4, 0, 30);
    assert_eq!(report.routers, ROUTERS);
    assert!(report.raw_bytes > report.digest_bytes);
    assert!(report.compression_ratio() > 10.0);
}
