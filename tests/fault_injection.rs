//! Fault-injection matrix: every [`FaultKind`] against the analysis
//! centre's wire ingest path, proving graceful degradation — the epoch
//! still analyses on the surviving quorum, the planted content is still
//! detected with ≤ 25% of routers faulted, and every exclusion is
//! accounted for. No fault may panic the centre.

use dcs::prelude::*;
use dcs::sim::faults::{ship_with_faults, FaultKind, FaultPlan, ALL_FAULTS};
use dcs_core::{Exclusion, IngestError, RouterFault};
use dcs_traffic::gen::{self, SizeMix};
use rand::rngs::StdRng;
use rand::SeedableRng;

const ROUTERS: usize = 24;
const INFECTED: usize = 20;
/// 6 of 24 = 25% of the deployment faulted.
const VICTIMS: [usize; 6] = [0, 5, 10, 15, 20, 23];

/// One clean epoch: the first `INFECTED` routers carry a common aligned
/// content object on top of distinct background traffic.
fn collect_epoch(seed: u64) -> Vec<RouterDigest> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mcfg = MonitorConfig::small(7, 1 << 14, 4);
    let object = ContentObject::random_with_packets(&mut rng, 30, 536);
    let plant = Planting::aligned(object, 536);
    let bg = BackgroundConfig {
        packets: 800,
        flows: 200,
        zipf_exponent: 1.0,
        size_mix: SizeMix::constant(536),
    };
    (0..ROUTERS)
        .map(|id| {
            let mut traffic = gen::generate_epoch(&mut rng, &bg);
            if id < INFECTED {
                plant.plant_into(&mut rng, &mut traffic);
            }
            let mut point = MonitoringPoint::new(id, &mcfg);
            point.observe_all(&traffic);
            point.finish_epoch()
        })
        .collect()
}

fn center() -> AnalysisCenter {
    let mut cfg = AnalysisConfig::for_groups(ROUTERS * 4);
    cfg.search.n_prime = 400;
    cfg.search.hopefuls = 300;
    AnalysisCenter::new(cfg)
}

/// Runs one matrix entry and applies the invariants every fault kind must
/// satisfy: the epoch analyses, accounting balances, and the content is
/// still found on the quorum.
fn run_entry(seed: u64, kind: FaultKind) -> EpochReport {
    let digests = collect_epoch(seed);
    let plan = FaultPlan::uniform(&VICTIMS, kind);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFA01);
    let frames = ship_with_faults(&mut rng, &digests, &plan);
    let report = center()
        .analyze_epoch_wire(&frames)
        .unwrap_or_else(|e| panic!("{kind:?}: quorum of 18+ must analyse, got {e}"));
    assert_eq!(report.ingest.submitted, frames.len(), "{kind:?}");
    assert_eq!(
        report.ingest.accepted.len() + report.ingest.excluded.len(),
        report.ingest.submitted,
        "{kind:?}: accounting must balance"
    );
    assert_eq!(report.routers, report.ingest.accepted.len(), "{kind:?}");
    assert!(
        report.aligned.found,
        "{kind:?}: content lost with only 25% of routers faulted"
    );
    // At least 12 of the 16 surviving infected routers must be named
    // (victims 0, 5, 10, 15 are infected; 20 and 23 are clean).
    let hits = report
        .aligned
        .routers
        .iter()
        .filter(|&&r| r < INFECTED && !VICTIMS.contains(&r))
        .count();
    assert!(
        hits >= 12,
        "{kind:?}: only {hits}/16 surviving infected hit"
    );
    report
}

#[test]
fn fault_matrix_drop() {
    let report = run_entry(21, FaultKind::Drop);
    // Dropped frames never arrive: a smaller, clean batch.
    assert_eq!(report.ingest.submitted, ROUTERS - VICTIMS.len());
    assert!(!report.ingest.is_degraded());
}

#[test]
fn fault_matrix_truncate() {
    let report = run_entry(22, FaultKind::Truncate);
    assert_eq!(report.ingest.excluded.len(), VICTIMS.len());
    for e in &report.ingest.excluded {
        assert!(VICTIMS.contains(&e.index));
        assert_eq!(e.router_id, None, "undecodable frames have no id");
        assert!(matches!(e.fault, RouterFault::Wire(_)));
    }
}

#[test]
fn fault_matrix_bit_flip() {
    // A flipped bit may land in a bitmap payload (frame still decodes,
    // noise only) or in framing metadata (frame excluded); both are
    // acceptable — the invariants of `run_entry` are what matter. Sweep
    // several seeds so both regimes are exercised.
    for seed in [23, 123, 223, 323] {
        let report = run_entry(seed, FaultKind::BitFlip);
        for e in &report.ingest.excluded {
            assert!(VICTIMS.contains(&e.index), "only victims may be excluded");
        }
    }
}

#[test]
fn fault_matrix_duplicate() {
    let report = run_entry(24, FaultKind::Duplicate);
    assert_eq!(report.ingest.submitted, ROUTERS + VICTIMS.len());
    assert_eq!(report.ingest.accepted.len(), ROUTERS);
    assert_eq!(report.ingest.excluded.len(), VICTIMS.len());
    for e in &report.ingest.excluded {
        assert!(matches!(e.fault, RouterFault::DuplicateRouter { .. }));
    }
}

#[test]
fn fault_matrix_desync() {
    let report = run_entry(25, FaultKind::Desync);
    assert_eq!(report.ingest.excluded.len(), VICTIMS.len());
    for e in &report.ingest.excluded {
        assert!(matches!(
            e.fault,
            RouterFault::EpochDesync { expected: 0, .. }
        ));
    }
}

#[test]
fn fault_matrix_mixed_random_plan() {
    let digests = collect_epoch(26);
    let mut rng = StdRng::seed_from_u64(26 ^ 0xFA01);
    let plan = FaultPlan::random(&mut rng, ROUTERS, 6);
    let frames = ship_with_faults(&mut rng, &digests, &plan);
    let report = center()
        .analyze_epoch_wire(&frames)
        .expect("mixed faults on 25% of routers must still analyse");
    assert!(report.aligned.found);
    assert!(report.ingest.accepted.len() >= ROUTERS - 6);
}

#[test]
fn all_routers_truncated_is_a_typed_quorum_failure() {
    let digests = collect_epoch(27);
    let victims: Vec<usize> = (0..ROUTERS).collect();
    let plan = FaultPlan::uniform(&victims, FaultKind::Truncate);
    let mut rng = StdRng::seed_from_u64(27);
    let frames = ship_with_faults(&mut rng, &digests, &plan);
    let err = center().analyze_epoch_wire(&frames).unwrap_err();
    match err {
        IngestError::QuorumTooSmall { required, report } => {
            assert_eq!(required, 1);
            assert!(report.accepted.is_empty());
            assert_eq!(report.excluded.len(), ROUTERS);
        }
        other => panic!("expected QuorumTooSmall, got {other:?}"),
    }
}

/// The zero-copy view ingest must produce exclusion accounting identical
/// to decoding every frame into an owned digest and validating those —
/// for every fault kind, including frames the view validator rejects
/// mid-parse.
#[test]
fn view_exclusion_accounting_matches_owned_decode() {
    for (i, &kind) in ALL_FAULTS.iter().enumerate() {
        let seed = 31 + i as u64;
        let digests = collect_epoch(seed);
        let plan = FaultPlan::uniform(&VICTIMS, kind);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFA01);
        let frames = ship_with_faults(&mut rng, &digests, &plan);

        // The production path: borrowed views all the way down.
        let view_report = match center().analyze_epoch_wire(&frames) {
            Ok(r) => r.ingest,
            Err(IngestError::QuorumTooSmall { report, .. }) => report,
            Err(e) => panic!("{kind:?}: {e}"),
        };

        // Reference replica: decode owned digests, validate those.
        let mut decoded: Vec<(usize, RouterDigest)> = Vec::new();
        let mut excluded: Vec<Exclusion> = Vec::new();
        for (index, frame) in frames.iter().enumerate() {
            match RouterDigest::decode_wire(frame) {
                Ok((d, _)) => decoded.push((index, d)),
                Err(e) => excluded.push(Exclusion {
                    index,
                    router_id: None,
                    fault: RouterFault::Wire(e.to_string()),
                }),
            }
        }
        let candidates: Vec<(usize, &RouterDigest)> =
            decoded.iter().map(|(i, d)| (*i, d)).collect();
        let owned_report =
            match dcs_core::ingest::validate_batch(frames.len(), candidates, excluded, 1) {
                Ok((_, r)) => r,
                Err(IngestError::QuorumTooSmall { report, .. }) => report,
                Err(e) => panic!("{kind:?}: {e}"),
            };
        assert_eq!(view_report, owned_report, "{kind:?}: accounting diverged");
    }
}

/// Excluded frames leave zero trace in the fused matrices: a faulted
/// batch yields bit-for-bit the verdicts of shipping only its surviving
/// frames. Corrupt frames mid-stream cannot poison neighbouring rows.
#[test]
fn corrupt_frames_leave_no_trace_in_fusion() {
    for kind in [FaultKind::Truncate, FaultKind::BitFlip, FaultKind::Desync] {
        let digests = collect_epoch(41);
        let plan = FaultPlan::uniform(&VICTIMS, kind);
        let mut rng = StdRng::seed_from_u64(41 ^ 0xFA01);
        let frames = ship_with_faults(&mut rng, &digests, &plan);
        let full = center()
            .analyze_epoch_wire(&frames)
            .expect("quorum survives 25% faults");
        let excluded: std::collections::HashSet<usize> =
            full.ingest.excluded.iter().map(|e| e.index).collect();
        let survivors: Vec<Vec<u8>> = frames
            .iter()
            .enumerate()
            .filter(|(i, _)| !excluded.contains(i))
            .map(|(_, f)| f.clone())
            .collect();
        let clean = center()
            .analyze_epoch_wire(&survivors)
            .expect("survivors are a quorum");
        assert_eq!(full.routers, clean.routers, "{kind:?}");
        assert_eq!(full.aligned.found, clean.aligned.found, "{kind:?}");
        assert_eq!(full.aligned.routers, clean.aligned.routers, "{kind:?}");
        assert_eq!(
            full.aligned.signature_indices, clean.aligned.signature_indices,
            "{kind:?}"
        );
        assert_eq!(full.unaligned.alarm, clean.unaligned.alarm, "{kind:?}");
        assert_eq!(
            full.unaligned.suspected_routers, clean.unaligned.suspected_routers,
            "{kind:?}"
        );
    }
}

/// Encodes each digest to its wire frame, keyed by router id.
fn wire_frames(digests: &[RouterDigest]) -> Vec<(u64, Vec<u8>)> {
    digests
        .iter()
        .map(|d| {
            (
                d.router_id as u64,
                d.encode_wire()
                    .expect("collector digests fit the wire format")
                    .to_vec(),
            )
        })
        .collect()
}

/// A partially faulted aggregator — half its region's leaves never
/// reported before its deadline — must surface at the centre as typed
/// exclusions for *exactly its subtree*, and detection must match flat
/// ingest of the frames that did make it through.
#[test]
fn faulted_aggregator_children_surface_as_its_subtree_exclusions() {
    let digests = collect_epoch(77);
    let frames = wire_frames(&digests);

    // Three regions of 8 leaves behind aggregators 1000..1003.
    // Aggregator 1001 (leaves 8..16) loses leaves 12..16 to timeouts.
    let lost: Vec<u64> = (12..16).collect();
    let mut bundles = Vec::new();
    for (a, region) in [(1000u64, 0..8usize), (1001, 8..16), (1002, 16..24)] {
        let children: Vec<(u64, Vec<u8>)> = frames[region]
            .iter()
            .filter(|(id, _)| a != 1001 || !lost.contains(id))
            .cloned()
            .collect();
        let exclusions = if a == 1001 {
            lost.iter()
                .map(|&id| ChildExclusion {
                    router_id: id,
                    fault: RouterFault::TimedOut {
                        received: 0,
                        total: 0,
                    },
                })
                .collect()
        } else {
            Vec::new()
        };
        let bundle = AggregateBundle::assemble(a, 9, 1, children, exclusions);
        bundles.push(bundle.encode_wire());
    }

    let report = center()
        .analyze_epoch_aggregated(&bundles)
        .expect("20 of 24 leaves is a quorum");
    assert_eq!(report.ingest.submitted, ROUTERS);
    assert_eq!(report.ingest.accepted.len(), ROUTERS - lost.len());
    let excluded: Vec<u64> = report
        .ingest
        .excluded
        .iter()
        .map(|e| e.router_id.expect("aggregator knew the leaf's id") as u64)
        .collect();
    assert_eq!(excluded, lost, "exclusions must be exactly the subtree");
    for e in &report.ingest.excluded {
        assert_eq!(e.fault.level(), 1, "fault must carry its tier");
        match &e.fault {
            RouterFault::AtLevel {
                aggregator_id,
                fault,
                ..
            } => {
                assert_eq!(*aggregator_id, Some(1001));
                assert_eq!(fault.kind(), "timed_out");
            }
            other => panic!("expected AtLevel, got {other:?}"),
        }
    }

    // Detection equivalence with flat ingest of the delivered frames.
    let delivered: Vec<Vec<u8>> = frames
        .iter()
        .filter(|(id, _)| !lost.contains(id))
        .map(|(_, f)| f.clone())
        .collect();
    let flat = center()
        .analyze_epoch_wire(&delivered)
        .expect("same quorum flat");
    assert_eq!(report.aligned.found, flat.aligned.found);
    assert_eq!(report.aligned.routers, flat.aligned.routers);
    assert_eq!(
        report.aligned.signature_indices,
        flat.aligned.signature_indices
    );
    assert_eq!(report.unaligned.alarm, flat.unaligned.alarm);
    assert_eq!(
        report.unaligned.suspected_routers,
        flat.unaligned.suspected_routers
    );
}

/// Every aggregator faulted — all bundles undecodable, or none at all —
/// must be a typed quorum error, never a panic, with every rejected
/// bundle accounted as a level-1 exclusion.
#[test]
fn all_aggregators_faulted_is_quorum_too_small_never_panic() {
    let garbage: Vec<Vec<u8>> = (0..3)
        .map(|i| vec![0xA5u8 ^ i as u8; 80 + i * 13])
        .collect();
    match center().analyze_epoch_aggregated(&garbage) {
        Err(IngestError::QuorumTooSmall { report, .. }) => {
            assert_eq!(report.accepted.len(), 0);
            assert_eq!(report.submitted, garbage.len());
            assert_eq!(report.excluded.len(), garbage.len());
            for e in &report.excluded {
                assert_eq!(e.router_id, None, "undecodable bundles have no id");
                assert_eq!(e.fault.level(), 1);
                match &e.fault {
                    RouterFault::AtLevel {
                        aggregator_id,
                        fault,
                        ..
                    } => {
                        assert_eq!(*aggregator_id, None);
                        assert_eq!(fault.kind(), "wire");
                    }
                    other => panic!("expected AtLevel, got {other:?}"),
                }
            }
        }
        other => panic!("expected typed quorum error, got {other:?}"),
    }

    // Zero bundles is the same typed failure, not a panic.
    let none: Vec<Vec<u8>> = Vec::new();
    match center().analyze_epoch_aggregated(&none) {
        Err(IngestError::NoDigests) => {}
        Err(IngestError::QuorumTooSmall { report, .. }) => {
            assert_eq!(report.accepted.len(), 0)
        }
        Ok(_) => panic!("empty bundle set must not analyse"),
    }
}

#[test]
fn every_fault_kind_is_covered_by_the_matrix() {
    // Keep this test in sync with the matrix above: if a kind is added to
    // ALL_FAULTS without a matrix entry, fail loudly.
    assert_eq!(ALL_FAULTS.len(), 5);
}
