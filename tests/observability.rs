//! Integration tests of the unified observability layer: every stage of
//! both pipelines reports into the centre's metrics registry, the
//! deprecated `EpochTimings` view equals the registry-derived values,
//! stage timer sums stay within the epoch total, and the deterministic
//! parts of a snapshot are identical across thread counts.

use dcs::core::stages::Stage;
use dcs::prelude::*;
use dcs_parallel::ComputeBudget;
use dcs_traffic::gen::{self, SizeMix};
use rand::rngs::StdRng;
use rand::SeedableRng;

const ROUTERS: usize = 8;

/// One epoch of seeded digests, the first `infected` routers carrying an
/// aligned common content.
fn make_digests(seed: u64, infected: usize) -> Vec<RouterDigest> {
    let mut rng = StdRng::seed_from_u64(seed);
    let monitor_cfg = MonitorConfig::small(5, 1 << 13, 4);
    let object = ContentObject::random_with_packets(&mut rng, 24, 536);
    let plant = Planting::aligned(object, 536);
    let bg = BackgroundConfig {
        packets: 500,
        flows: 120,
        zipf_exponent: 1.0,
        size_mix: SizeMix::constant(536),
    };
    (0..ROUTERS)
        .map(|router| {
            let mut traffic = gen::generate_epoch(&mut rng, &bg);
            if router < infected {
                plant.plant_into(&mut rng, &mut traffic);
            }
            let mut point = MonitoringPoint::new(router, &monitor_cfg);
            point.observe_all(&traffic);
            point.finish_epoch()
        })
        .collect()
}

fn center_with_budget(budget: ComputeBudget) -> AnalysisCenter {
    let mut cfg = AnalysisConfig::for_groups(ROUTERS * 4).with_compute(budget);
    cfg.search.n_prime = 300;
    cfg.search.hopefuls = 200;
    AnalysisCenter::new(cfg)
}

fn center_with_threads(threads: usize) -> AnalysisCenter {
    center_with_budget(ComputeBudget::with_threads(threads))
}

#[test]
fn every_stage_of_both_pipelines_records_nonzero() {
    let center = center_with_threads(2);
    let report = center
        .analyze_epoch(&make_digests(31, 0))
        .expect("clean quorum");
    assert!(!report.aligned.found);
    let snap = center.metrics();
    for stage in Stage::ALIGNED.iter().chain(Stage::UNALIGNED.iter()) {
        let gauge = snap
            .gauge(&stage.gauge_key())
            .unwrap_or_else(|| panic!("stage {} missing from snapshot", stage.name()));
        assert!(gauge > 0, "stage {} recorded zero ns", stage.name());
        let runs = snap
            .counter(&dcs::obs::metric_key(
                "stage_runs_total",
                &[("pipeline", stage.pipeline()), ("stage", stage.name())],
            ))
            .unwrap_or(0);
        assert_eq!(runs, 1, "stage {} should have run once", stage.name());
    }
    assert_eq!(snap.counter("epochs_analyzed_total"), Some(1));
    assert_eq!(snap.counter("ingest_submitted_total"), Some(ROUTERS as u64));
    assert_eq!(snap.counter("ingest_accepted_total"), Some(ROUTERS as u64));
    assert!(snap.gauge("epoch_total_ns").unwrap_or(0) > 0);
}

#[test]
fn deprecated_timings_view_equals_registry_derived_values() {
    let center = center_with_threads(1);
    let report = center.analyze_epoch(&make_digests(32, 6)).expect("quorum");
    let derived = EpochTimings::from_snapshot(&center.metrics());
    assert_eq!(
        report.timings, derived,
        "EpochTimings view must equal the registry-derived values"
    );
}

#[test]
fn stage_timer_sums_stay_within_epoch_total() {
    let center = center_with_threads(2);
    center.analyze_epoch(&make_digests(33, 6)).expect("quorum");
    let snap = center.metrics();
    let total = snap.gauge("epoch_total_ns").expect("total gauge");
    let staged: u64 = Stage::ALIGNED
        .iter()
        .chain(Stage::UNALIGNED.iter())
        .map(|s| snap.gauge(&s.gauge_key()).unwrap_or(0))
        .sum();
    assert!(
        staged <= total,
        "per-stage sum {staged} ns exceeds epoch total {total} ns"
    );
    // The stages cover the bulk of the epoch: fuse through peel is the
    // whole analysis body, only validation and report assembly sit
    // outside them.
    assert!(staged > 0);
}

#[test]
fn real_epoch_snapshot_roundtrips_through_json() {
    let center = center_with_threads(1);
    center.analyze_epoch(&make_digests(34, 4)).expect("quorum");
    let snap = center.metrics();
    let back = MetricsSnapshot::from_json(&snap.to_json_pretty()).expect("parse back");
    assert_eq!(back, snap);
}

/// Strips the wall-clock and process-global metrics from a snapshot,
/// leaving only its deterministic content: counters (minus the kernel
/// dispatch family) plus the sorted key sets of every family.
fn deterministic_view(snap: &MetricsSnapshot) -> (Vec<(String, u64)>, Vec<String>, Vec<String>) {
    let counters = snap
        .counters
        .iter()
        .filter(|c| !c.key.starts_with("kernel_"))
        .map(|c| (c.key.clone(), c.value))
        .collect();
    let gauge_keys = snap.gauges.iter().map(|g| g.key.clone()).collect();
    let hist_keys = snap.histograms.iter().map(|h| h.key.clone()).collect();
    (counters, gauge_keys, hist_keys)
}

#[test]
fn deterministic_metrics_are_identical_across_thread_counts() {
    let digests = make_digests(35, 6);
    let run = |threads: usize| {
        let center = center_with_threads(threads);
        let report = center.analyze_epoch(&digests).expect("quorum");
        (report, center.metrics())
    };
    let (seq_report, seq_snap) = run(1);
    let seq_view = deterministic_view(&seq_snap);
    for threads in [2, 8] {
        let (report, snap) = run(threads);
        // Detection results are thread-count-invariant…
        assert_eq!(report.aligned.found, seq_report.aligned.found);
        assert_eq!(report.aligned.routers, seq_report.aligned.routers);
        assert_eq!(
            report.aligned.signature_indices,
            seq_report.aligned.signature_indices
        );
        assert_eq!(report.unaligned.alarm, seq_report.unaligned.alarm);
        assert_eq!(
            report.unaligned.suspected_routers,
            seq_report.unaligned.suspected_routers
        );
        // …and so is every deterministic metric: same counters with the
        // same values, same instrument key sets. (Wall-clock gauges and
        // the process-global kernel dispatch tallies legitimately vary.)
        assert_eq!(
            deterministic_view(&snap),
            seq_view,
            "threads={threads}: deterministic metrics diverged"
        );
    }
}

#[test]
fn deterministic_metrics_are_identical_across_shard_counts() {
    let digests = make_digests(37, 6);
    let run = |shards: usize| {
        let center = center_with_budget(
            ComputeBudget::with_threads(2.min(shards.max(1))).with_shards(shards),
        );
        let report = center.analyze_epoch(&digests).expect("quorum");
        (report, center.metrics())
    };
    let (base_report, base_snap) = run(1);
    let base_view = deterministic_view(&base_snap);
    for shards in [2, 8] {
        let (report, snap) = run(shards);
        // Detection results — aligned and unaligned — are
        // shard-count-invariant: fusion writes disjoint column ranges and
        // every reduction merges through total-ordered bounded heaps.
        assert_eq!(report.aligned.found, base_report.aligned.found);
        assert_eq!(report.aligned.routers, base_report.aligned.routers);
        assert_eq!(
            report.aligned.signature_indices,
            base_report.aligned.signature_indices
        );
        assert_eq!(report.unaligned.alarm, base_report.unaligned.alarm);
        assert_eq!(
            report.unaligned.suspected_routers,
            base_report.unaligned.suspected_routers
        );
        assert_eq!(
            deterministic_view(&snap),
            base_view,
            "shards={shards}: deterministic metrics diverged"
        );
    }
}

#[test]
fn pipelined_epochs_report_per_epoch_stage_times() {
    let center = center_with_threads(2);
    let pipe = EpochPipeline::new(center, PipelineConfig { max_in_flight: 3 });
    // Queue all three epochs behind a paused worker so their analyses run
    // back-to-back — if stage timers leaked across overlapped epochs the
    // accumulated values would betray it below.
    pipe.pause();
    for seed in [40, 41, 42] {
        pipe.submit(EpochInput::Digests(make_digests(seed, 4)));
    }
    pipe.resume();
    let mut reports = Vec::new();
    for (seq, result) in pipe.drain() {
        reports.push((seq, result.expect("clean epoch")));
    }
    assert_eq!(reports.len(), 3);
    // Every report carries its own epoch's timings: each stage ran and the
    // per-stage sum fits inside that epoch's own total, which would be
    // violated if a report aggregated wall-clock across in-flight epochs.
    for (_, report) in &reports {
        assert!(report.timings.total_ns > 0);
        let staged = report.timings.fuse_ns + report.timings.screen_ns + report.timings.sweep_ns;
        assert!(staged > 0);
        assert!(staged <= report.timings.total_ns);
    }
    // The stage gauges hold the most recent epoch, so the registry-derived
    // view must equal the final report's timings, not a sum over the batch.
    let derived = EpochTimings::from_snapshot(&pipe.center().metrics());
    assert_eq!(
        derived,
        reports.last().unwrap().1.timings,
        "registry gauges must reflect the last epoch, not an overlap-aggregated view"
    );
}

#[test]
fn excluded_bundles_feed_fault_labeled_counters() {
    let mut digests = make_digests(36, 0);
    digests[1].epoch_id = 99;
    digests[3].unaligned.arrays.clear();
    let center = center_with_threads(1);
    let report = center.analyze_epoch(&digests).expect("quorum of 6");
    assert_eq!(report.ingest.excluded.len(), 2);
    let snap = center.metrics();
    assert_eq!(
        snap.counter("ingest_excluded_total{fault=epoch_desync}"),
        Some(1)
    );
    assert_eq!(
        snap.counter("ingest_excluded_total{fault=empty_unaligned}"),
        Some(1)
    );
    assert_eq!(snap.counter("ingest_accepted_total"), Some(6));
}
