//! Two-level topology soak (PR 7 acceptance): 1,000+ leaf routers
//! behind regional aggregators, both hops lossy.
//!
//! * every epoch reaches quorum or returns a typed `QuorumTooSmall` —
//!   zero panics by construction;
//! * the tiered path's detection set is byte-identical to a flat
//!   `analyze_epoch_wire` run over the same delivered child frames
//!   (the verbatim-forwarding equivalence argument of DESIGN.md §10);
//! * the pipelined runtime (`EpochInput::AggregatedCollected`) computes
//!   the same outcomes as inline analysis;
//! * cross-level accounting: every leaf the aggregation tier lost
//!   surfaces at the centre as an `AtLevel`-wrapped fault.

use dcs_sim::channel::ChannelConfig;
use dcs_sim::soak::EpochOutcome;
use dcs_sim::tiered::{run_tiered_soak, run_tiered_soak_deep, TieredSoakConfig};

fn wide_epochs() -> usize {
    match std::env::var("DCS_WIDE_EPOCHS") {
        Ok(v) => v.parse().expect("DCS_WIDE_EPOCHS must be an integer"),
        Err(_) => 2,
    }
}

/// The headline wide soak: 1,040 leaves behind 16 aggregators, the
/// usual loss/reorder/corruption regime on both hops. Every epoch must
/// finish quorum-or-typed-error, and tiered detection must match flat
/// ingest of the delivered frames byte for byte.
#[test]
fn wide_tiered_soak_survives_at_thousand_plus_leaves() {
    let cfg = TieredSoakConfig::wide(1040, 16, wide_epochs(), 0x7EAF_50AC);
    let result = run_tiered_soak(&cfg);
    assert_eq!(result.outcomes.len(), cfg.epochs);
    assert!(
        result.detection_equivalent(),
        "tiered and flat detection diverged: {:?}",
        result.detection_pairs.iter().find(|(t, f)| t != f)
    );
    for (e, o) in result.outcomes.iter().enumerate() {
        match o {
            EpochOutcome::Report(r) => {
                assert!(
                    r.ingest.accepted.len() >= cfg.min_quorum,
                    "epoch {e}: report below quorum"
                );
                // Leaf-based submission accounting: every reachable leaf
                // counts once; a whole lost (or undecodable) bundle
                // removes its region's leaves and counts once itself.
                let lost_bundles = r
                    .ingest
                    .excluded
                    .iter()
                    .filter(|x| match x.router_id {
                        None => x.fault.level() > 0,
                        Some(id) => id >= (1 << 20),
                    })
                    .count();
                let per_region = cfg.leaves / cfg.aggregators;
                assert_eq!(
                    r.ingest.submitted,
                    cfg.leaves - lost_bundles * per_region + lost_bundles,
                    "epoch {e}: leaf accounting off ({lost_bundles} lost bundles)"
                );
                assert_eq!(
                    r.ingest.submitted,
                    r.ingest.accepted.len() + r.ingest.excluded.len(),
                    "epoch {e}: every submission must be accepted or excluded"
                );
                // Transport loss on this path always happens below the
                // centre, so transport faults must carry their level.
                for x in &r.ingest.excluded {
                    if matches!(
                        x.fault.kind(),
                        "timed_out" | "checksum_mismatch" | "incomplete"
                    ) {
                        assert_eq!(
                            x.fault.level(),
                            1,
                            "epoch {e}: tier loss without level: {:?}",
                            x.fault
                        );
                    }
                }
            }
            EpochOutcome::QuorumTooSmall { required, accepted } => {
                assert!(
                    accepted < required,
                    "epoch {e}: typed quorum error with enough leaves"
                );
            }
        }
    }
    // The lossy child hop across 1,000+ leaves must actually have
    // exercised the retransmit machinery.
    assert!(
        result.leaf_totals.retransmits > 0,
        "1,000-leaf lossy hop produced no retransmits"
    );
    // The aggregation tier's own instrumentation ran.
    assert!(result
        .agg_metrics
        .gauge("aggregate_fuse_ns{level=1}")
        .is_some());
    assert!(result
        .metrics
        .counter("aggregate_bundles_total")
        .is_some_and(|v| v >= cfg.aggregators as u64));
    // The prescreened unaligned engine ran at this width: both pair
    // counters are in the snapshot, and on 1,000+ null leaves the
    // weight-class/band screen must discharge most group pairs — that
    // prune is what pays for paper-width arrays in the wide regime.
    let screened = result
        .metrics
        .counter("pairs_screened_total")
        .expect("pairs_screened_total missing from wide-soak snapshot");
    let exact = result
        .metrics
        .counter("pairs_exact_total")
        .expect("pairs_exact_total missing from wide-soak snapshot");
    assert!(
        screened + exact > 0,
        "wide soak visited no unaligned group pairs"
    );
}

/// Three aggregation levels at wide scale: leaves → regional
/// aggregators → one super-aggregator → centre, an independent lossy
/// hop between every tier. Leaf-based quorum accounting must compose
/// through the extra hop (the centre only ever counts leaves, faults
/// carry their tier), and tiered detection must still match flat
/// ingest of the delivered frames.
#[test]
fn deep_wide_soak_composes_leaf_quorum_through_three_levels() {
    let cfg = TieredSoakConfig::wide(520, 8, wide_epochs().min(2), 0xDEE9_50AC);
    let result = run_tiered_soak_deep(&cfg);
    assert_eq!(result.outcomes.len(), cfg.epochs);
    assert!(
        result.detection_equivalent(),
        "deep and flat detection diverged: {:?}",
        result.detection_pairs.iter().find(|(t, f)| t != f)
    );
    for (e, o) in result.outcomes.iter().enumerate() {
        match o {
            EpochOutcome::Report(r) => {
                assert!(
                    r.ingest.submitted <= cfg.leaves,
                    "epoch {e}: centre counted more than the leaf population"
                );
                assert!(
                    r.ingest.accepted.len() >= cfg.min_quorum,
                    "epoch {e}: report below quorum"
                );
                assert_eq!(
                    r.ingest.submitted,
                    r.ingest.accepted.len() + r.ingest.excluded.len(),
                    "epoch {e}: every submission must be accepted or excluded"
                );
                // Transport loss happens below the centre on this
                // topology; a fault can sit at tier 1 (regional) or
                // tier 2 (super-aggregator), never deeper.
                for x in &r.ingest.excluded {
                    if matches!(
                        x.fault.kind(),
                        "timed_out" | "checksum_mismatch" | "incomplete"
                    ) {
                        let level = x.fault.level();
                        assert!(
                            (1..=2).contains(&level),
                            "epoch {e}: tier loss at impossible level {level}: {:?}",
                            x.fault
                        );
                    }
                }
            }
            EpochOutcome::QuorumTooSmall { required, accepted } => {
                assert!(
                    accepted < required,
                    "epoch {e}: typed quorum error with enough leaves"
                );
            }
        }
    }
    // Both aggregation tiers ran their fuse stage.
    assert!(result
        .agg_metrics
        .gauge("aggregate_fuse_ns{level=1}")
        .is_some());
    assert!(result
        .agg_metrics
        .gauge("aggregate_fuse_ns{level=2}")
        .is_some());
}

/// The pipelined runtime drives `EpochInput::AggregatedCollected`
/// through the worker thread; outcomes must match the inline path
/// epoch for epoch.
#[test]
fn pipelined_tiered_soak_matches_sequential() {
    let mut sequential = TieredSoakConfig::standard(2, 0x717E_11ED);
    sequential.leaf_channel = ChannelConfig::soak();
    let mut pipelined = sequential;
    pipelined.pipelined = true;

    let a = run_tiered_soak(&sequential);
    let b = run_tiered_soak(&pipelined);
    assert_eq!(a.outcomes.len(), b.outcomes.len());
    let fp = |r: &dcs_sim::tiered::TieredSoakResult| -> Vec<String> {
        r.detection_pairs.iter().map(|(t, _)| t.clone()).collect()
    };
    assert_eq!(
        fp(&a),
        fp(&b),
        "pipelined and sequential tiered outcomes diverged"
    );
    assert!(a.detection_equivalent() && b.detection_equivalent());
}

/// Losing every aggregate bundle upstream must degrade to a typed
/// quorum error, never a panic: a channel that drops everything on the
/// second hop starves the centre of all leaves.
#[test]
fn all_bundles_lost_is_a_typed_quorum_error() {
    let mut cfg = TieredSoakConfig::standard(1, 0x00DE_AD11);
    cfg.leaf_channel = ChannelConfig::perfect();
    cfg.up_channel = ChannelConfig {
        drop_prob: 1.0,
        ..ChannelConfig::perfect()
    };
    let result = run_tiered_soak(&cfg);
    assert_eq!(result.outcomes.len(), 1);
    match &result.outcomes[0] {
        EpochOutcome::QuorumTooSmall { accepted, .. } => assert_eq!(*accepted, 0),
        other => panic!("expected a typed quorum error, got {other:?}"),
    }
}
