//! End-to-end integration for the unaligned case: variable-prefix content
//! through offset-sampling collectors, ER test calibration, alarm and
//! localisation.

use dcs::prelude::*;
use dcs_traffic::gen::{self, SizeMix};
use rand::rngs::StdRng;
use rand::SeedableRng;

const ROUTERS: usize = 30;
const GROUPS: usize = 8;

fn epoch(seed: u64, infected: &[usize], instances: usize, g: usize) -> Vec<RouterDigest> {
    let mut rng = StdRng::seed_from_u64(seed);
    let monitor_cfg = MonitorConfig::small(5, 1 << 14, GROUPS);
    let object = ContentObject::random(&mut rng, g * 536);
    let plant = Planting::unaligned(object, 536);
    let bg = BackgroundConfig {
        packets: 1_000,
        flows: 250,
        zipf_exponent: 1.0,
        size_mix: SizeMix::constant(536),
    };
    (0..ROUTERS)
        .map(|router| {
            let mut traffic = gen::generate_epoch(&mut rng, &bg);
            if infected.contains(&router) {
                for _ in 0..instances {
                    plant.plant_into(&mut rng, &mut traffic);
                }
            }
            let mut point = MonitoringPoint::new(router, &monitor_cfg);
            point.observe_all(&traffic);
            point.finish_epoch()
        })
        .collect()
}

fn center(threshold: Option<usize>) -> AnalysisCenter {
    let mut cfg = AnalysisConfig::for_groups(ROUTERS * GROUPS);
    cfg.search.n_prime = 300;
    cfg.search.hopefuls = 200;
    cfg.corefind = CoreFindConfig { beta: 12, d: 2 };
    if let Some(t) = threshold {
        cfg.component_threshold = Some(t);
    }
    AnalysisCenter::new(cfg)
}

/// Calibrate the alarm threshold on a clean epoch, as an operator would.
fn calibrated_threshold() -> usize {
    let clean = epoch(900, &[], 0, 150);
    let report = center(Some(usize::MAX))
        .analyze_epoch(&clean)
        .expect("freshly collected digests form a quorum");
    ((report.unaligned.largest_component * 3) / 2).max(8)
}

#[test]
fn worm_is_caught_and_localised() {
    let threshold = calibrated_threshold();
    let infected: Vec<usize> = (0..18).collect();
    let digests = epoch(10, &infected, 2, 150);
    let report = center(Some(threshold))
        .analyze_epoch(&digests)
        .expect("freshly collected digests form a quorum");
    assert!(
        report.unaligned.alarm,
        "largest {} under threshold {threshold}",
        report.unaligned.largest_component
    );
    let hits = report
        .unaligned
        .suspected_routers
        .iter()
        .filter(|r| infected.contains(r))
        .count();
    assert!(hits >= 8, "only {hits} infected routers localised");
    let fps = report.unaligned.suspected_routers.len() - hits;
    assert!(fps <= 4, "{fps} clean routers implicated");
}

#[test]
fn clean_epoch_does_not_alarm() {
    let threshold = calibrated_threshold();
    let digests = epoch(11, &[], 0, 150);
    let report = center(Some(threshold))
        .analyze_epoch(&digests)
        .expect("freshly collected digests form a quorum");
    assert!(!report.unaligned.alarm);
    assert!(report.unaligned.suspected_routers.is_empty());
    assert!(report.unaligned.suspected_groups.is_empty());
}

#[test]
fn tiny_infection_stays_below_threshold() {
    let threshold = calibrated_threshold();
    let digests = epoch(12, &[0, 1], 1, 150);
    let report = center(Some(threshold))
        .analyze_epoch(&digests)
        .expect("freshly collected digests form a quorum");
    assert!(
        !report.unaligned.alarm,
        "2 infected routers should sit below the detectable threshold \
         (largest {})",
        report.unaligned.largest_component
    );
}

#[test]
fn aligned_pipeline_ignores_unaligned_content() {
    // Variable prefixes break packet identity, so the *aligned* search
    // must not fire on unaligned-planted content.
    let infected: Vec<usize> = (0..18).collect();
    let digests = epoch(13, &infected, 1, 150);
    let report = center(Some(8))
        .analyze_epoch(&digests)
        .expect("freshly collected digests form a quorum");
    assert!(
        !report.aligned.found,
        "aligned search fired on shifted content"
    );
}
