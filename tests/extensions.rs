//! Integration tests for the extension layers: multi-pattern separation,
//! vertex-sampled analysis and size-classed collection — all driven
//! through the real traffic → collector → analysis path.

use dcs::prelude::*;
use dcs_aligned::refined_detect_multi;
use dcs_bitmap::ColMatrix;
use dcs_collect::{SizeClass, SizedAlignedCollector, UnalignedCollector, UnalignedConfig};
use dcs_traffic::gen::{self, SizeMix};
use dcs_unaligned::lambda::{p_star_for_edge_prob, LambdaTable};
use dcs_unaligned::{sampled_find_pattern, CoreFindConfig, GroupLayout};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn search_cfg() -> dcs_aligned::SearchConfig {
    dcs_aligned::SearchConfig {
        n_prime: 400,
        hopefuls: 300,
        ..dcs_aligned::SearchConfig::default()
    }
}

#[test]
fn two_contents_separate_end_to_end() {
    let mut rng = StdRng::seed_from_u64(1);
    const ROUTERS: usize = 28;
    let mcfg = MonitorConfig::small(31, 1 << 14, 4);
    let worm = Planting::aligned(ContentObject::random_with_packets(&mut rng, 25, 536), 536);
    let video = Planting::aligned(ContentObject::random_with_packets(&mut rng, 35, 536), 536);
    let mut bitmaps = Vec::new();
    for router in 0..ROUTERS {
        let mut traffic = gen::generate_epoch(
            &mut rng,
            &BackgroundConfig {
                packets: 800,
                flows: 200,
                zipf_exponent: 1.0,
                size_mix: SizeMix::constant(536),
            },
        );
        if router < 20 {
            worm.plant_into(&mut rng, &mut traffic);
        }
        if router >= 10 {
            video.plant_into(&mut rng, &mut traffic);
        }
        let mut point = MonitoringPoint::new(router, &mcfg);
        point.observe_all(&traffic);
        bitmaps.push(point.finish_epoch().aligned.bitmap);
    }
    let matrix = ColMatrix::from_router_bitmaps(&bitmaps);
    let patterns = refined_detect_multi(&matrix, &search_cfg(), 4);
    assert!(patterns.len() >= 2, "found {} contents", patterns.len());
    // One pattern covers routers 0..20 (25 pkts), the other 10..28 (35).
    let sizes: Vec<usize> = patterns.iter().map(|d| d.cols.len()).collect();
    assert!(
        sizes.contains(&25) && sizes.contains(&35),
        "content sizes {sizes:?} should be 25 and 35"
    );
}

#[test]
fn sampled_analysis_end_to_end() {
    // Real collectors, vertex-sampled correlation, core expansion: the
    // §IV-D complexity workaround driven through actual digests.
    let mut rng = StdRng::seed_from_u64(2);
    const ROUTERS: usize = 30;
    const GROUPS: usize = 8;
    let object = ContentObject::random(&mut rng, 150 * 536);
    let plant = Planting::unaligned(object, 536);
    let infected: Vec<usize> = (0..20).collect();

    let mut rows = dcs_bitmap::RowMatrix::new(1024);
    let mut truth_groups: Vec<u32> = Vec::new();
    for router in 0..ROUTERS {
        let traffic = gen::generate_epoch(
            &mut rng,
            &BackgroundConfig {
                packets: 1_000,
                flows: 250,
                zipf_exponent: 1.0,
                size_mix: SizeMix::constant(536),
            },
        );
        let ucfg = UnalignedConfig::small(GROUPS, 31, router as u64);
        let mut collector = UnalignedCollector::new(ucfg);
        if infected.contains(&router) {
            for _ in 0..2 {
                let inst = plant.instantiate(&mut rng);
                truth_groups.push((router * GROUPS + collector.group_of(&inst[0])) as u32);
                for p in inst {
                    collector.observe(&p);
                }
            }
        }
        for p in &traffic {
            collector.observe(p);
        }
        rows.vstack(&collector.finish_epoch().to_rows());
    }
    truth_groups.sort_unstable();
    truth_groups.dedup();

    let n_groups = ROUTERS * GROUPS;
    let p_star = p_star_for_edge_prob(2.0 / n_groups as f64, 100);
    let table = LambdaTable::new(1024, p_star);
    let found = sampled_find_pattern(
        &rows,
        GroupLayout { rows_per_group: 10 },
        &table,
        2, // analyse half the vertices
        CoreFindConfig { beta: 10, d: 1 },
        3, // expansion cut: background groups see ~0.3 core edges
    );
    let hits = found
        .iter()
        .filter(|g| truth_groups.binary_search(g).is_ok())
        .count();
    assert!(
        hits * 2 >= truth_groups.len(),
        "sampled path recovered {hits}/{} pattern groups ({} reported)",
        truth_groups.len(),
        found.len()
    );
    let fps = found.len() - hits;
    assert!(fps <= 6, "{fps} false groups reported");
}

#[test]
fn size_classed_collection_detects_per_class() {
    // The same content object pushed at 536B payloads by some routers and
    // 1460B payloads by others: the per-class matrices each detect their
    // own instance population; the naive single-bitmap collector would mix
    // the (differently packetised) streams and see nothing for the class
    // minority.
    let mut rng = StdRng::seed_from_u64(3);
    const ROUTERS: usize = 44; // 22 per class: above the greedy search's
                               // small-pattern noise floor (~16 rows)
    let object = ContentObject::random(&mut rng, 536 * 35 * 2); // divisible chunks either way
    let mid = Planting::aligned(object.clone(), 536);
    let large = Planting::aligned(object, 1460);

    let mut mid_bitmaps = Vec::new();
    let mut large_bitmaps = Vec::new();
    for router in 0..ROUTERS {
        let mut traffic = gen::generate_epoch(
            &mut rng,
            &BackgroundConfig {
                packets: 800,
                flows: 200,
                zipf_exponent: 1.0,
                size_mix: SizeMix::internet_default(),
            },
        );
        // Everyone carries the content; even routers at 536, odd at 1460.
        if router % 2 == 0 {
            mid.plant_into(&mut rng, &mut traffic);
        } else {
            large.plant_into(&mut rng, &mut traffic);
        }
        let mut c = SizedAlignedCollector::new(dcs_collect::AlignedConfig::small(1 << 14, 31));
        for p in &traffic {
            c.observe(p);
        }
        let d = c.finish_epoch();
        mid_bitmaps.push(d.class(SizeClass::Mid).bitmap.clone());
        large_bitmaps.push(d.class(SizeClass::Large).bitmap.clone());
    }
    let mid_det =
        dcs_aligned::refined_detect(&ColMatrix::from_router_bitmaps(&mid_bitmaps), &search_cfg());
    assert!(mid_det.found, "mid class missed its 22 instances");
    let mid_rows_even = mid_det.rows.iter().filter(|r| *r % 2 == 0).count();
    assert!(
        mid_rows_even * 10 >= mid_det.rows.len() * 8,
        "mid-class detection should name the even routers"
    );
    let large_det = dcs_aligned::refined_detect(
        &ColMatrix::from_router_bitmaps(&large_bitmaps),
        &search_cfg(),
    );
    // 14 routers is right at the small-pattern noise floor; the class
    // separation is the property under test, so accept detection with the
    // odd-router majority OR a clean no-detection, but never a mixed-up
    // result naming even routers.
    if large_det.found {
        let odd = large_det.rows.iter().filter(|r| *r % 2 == 1).count();
        assert!(
            odd * 10 >= large_det.rows.len() * 8,
            "large-class detection should name the odd routers"
        );
    }
}
