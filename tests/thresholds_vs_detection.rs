//! Cross-crate consistency: the analytic thresholds (dcs-aligned /
//! dcs-unaligned) must predict what the Monte-Carlo detectors (dcs-sim)
//! actually do.

use dcs_aligned::thresholds::{detectable_min_b, non_natural_min_b, DetectableParams};
use dcs_sim::aligned::detection_ratio;
use dcs_sim::unaligned::{er_false_negative, largest_component_samples, p2_for};
use dcs_unaligned::thresholds::cluster_threshold;

/// Shared small-paper-scale parameters for the aligned checks.
const M: usize = 500;
const N: usize = 1_000_000;
const N_PRIME: usize = 1_000;

fn params() -> DetectableParams {
    DetectableParams {
        m: M as u64,
        n: N as u64,
        n_prime: N_PRIME as u64,
        epsilon: 1e-3,
    }
}

fn search_cfg() -> dcs_aligned::SearchConfig {
    dcs_aligned::SearchConfig {
        hopefuls: 300,
        max_iterations: 30,
        n_prime: 0,
        gamma: 2,
        epsilon: 1e-3,
        termination: Default::default(),
        compute: Default::default(),
    }
}

#[test]
fn aligned_detection_matches_detectable_threshold() {
    let p = params();
    let a = 60u64;
    let b_star = detectable_min_b(p, a, 0.9, 5_000).expect("threshold exists");
    // Comfortably above the threshold: detection should be near-certain.
    let above = detection_ratio(
        1,
        M,
        N,
        a as usize,
        (b_star as usize) * 2,
        N_PRIME,
        &search_cfg(),
        8,
        1,
    );
    assert!(
        above >= 0.75,
        "ratio {above} at 2x the detectable threshold (b* = {b_star})"
    );
}

#[test]
fn aligned_detection_fails_below_non_natural() {
    // A pattern below even the *non-natural* bound must not be reported
    // (the verdict gate rejects it regardless of what the search finds).
    let p = params();
    let a = 25u64;
    let nn = non_natural_min_b(p.m, p.n, a, p.epsilon, 5_000).expect("bound exists");
    let b = (nn / 2).max(1) as usize;
    let ratio = detection_ratio(2, M, N, a as usize, b, N_PRIME, &search_cfg(), 8, 1);
    assert!(
        ratio <= 0.25,
        "sub-non-natural pattern ({a}x{b}) reported with ratio {ratio}"
    );
}

#[test]
fn unaligned_er_matches_cluster_bound() {
    // The eq.(2)/(3) bound says how many pattern vertices make a cluster
    // statistically meaningful; the ER test should separate cleanly a
    // factor above it and fail a factor below it.
    let n = 20_000usize;
    let p1 = 0.65 / n as f64;
    let p2 = p2_for(100, p1);
    let bound = cluster_threshold(n as u64, p1, p2, 1e-10, 0.95, 2_000)
        .expect("cluster bound exists")
        .m as usize;

    let threshold = 80; // component-size alarm for this n
    let strong = largest_component_samples(3, n, p1, bound * 3, p2, 10);
    let fn_strong = er_false_negative(&strong, threshold);
    assert!(
        fn_strong <= 0.3,
        "FN {fn_strong} at 3x the cluster bound (m = {bound})"
    );

    let weak = largest_component_samples(4, n, p1, (bound / 4).max(2), p2, 10);
    let fn_weak = er_false_negative(&weak, threshold);
    assert!(
        fn_weak >= 0.7,
        "FN {fn_weak} at a quarter of the cluster bound"
    );
}

#[test]
fn detectable_above_non_natural_everywhere() {
    let p = params();
    for a in [30u64, 60, 90, 150] {
        let (Some(nn), Some(det)) = (
            non_natural_min_b(p.m, p.n, a, p.epsilon, 5_000),
            detectable_min_b(p, a, 0.95, 5_000),
        ) else {
            continue;
        };
        assert!(det >= nn, "a={a}: detectable {det} < non-natural {nn}");
    }
}
