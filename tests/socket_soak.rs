//! Wire-speed socket soak (PR 9 acceptance): the paper's 24-router ×
//! 4-Mbit scale pushed through REAL localhost sockets with ≥10% injected
//! impairment at the socket boundary.
//!
//! * every epoch reaches quorum (or yields a typed `QuorumTooSmall` —
//!   never a panic), and the detection set is byte-identical to the
//!   in-memory `LossyChannel` path fed the same digests;
//! * a mid-soak centre kill/restart rebinds the same port, resumes from a
//!   DCSK checkpoint, and the monitors' resend buffers replay the missing
//!   chunks over the socket with no detection divergence;
//! * the TCP fallback carries the same epoch through its length-prefixed
//!   stream framing;
//! * an undersubscribed epoch (22 of 24 monitors dead) degrades to the
//!   typed quorum error through the same socket machinery;
//! * the `dcs-cli serve`/`monitor` processes produce byte-identical
//!   report lines across a SIGTERM + `--resume` restart (satellite:
//!   graceful-shutdown flush).
//!
//! Scale knobs: `DCS_SOCKET_BITS` (default 4 Mbit) and
//! `DCS_SOCKET_EPOCHS` (default 2) trade runtime for coverage.

use dcs_core::clock::{Clock, TickClock};
use dcs_core::monitor::{MonitorConfig, MonitoringPoint};
use dcs_core::net::{
    run_center_epoch, run_monitor_epoch, CenterEpochEnd, CenterSocket, ImpairmentConfig,
    ImpairmentShim, MonitorEpochConfig, MonitorEpochEnd, MonitorSocket, Transport,
};
use dcs_core::session::{CollectorConfig, EpochCollector, Missing, StragglerPolicy};
use dcs_core::transport::{chunk_bundle, DATAGRAM_SAFE_PAYLOAD};
use dcs_core::{AnalysisCenter, AnalysisConfig, IngestError, MetricsRegistry, MetricsSnapshot};
use dcs_sim::channel::{ChannelConfig, LossyChannel};
use dcs_sim::tiered::detection_fingerprint;
use dcs_traffic::{gen, BackgroundConfig, ContentObject, Planting, SizeMix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::SocketAddr;
use std::time::Duration;

const ROUTERS: usize = 24;
const INFECTED: usize = 20;
/// One wall-clock tick of the real-socket tests.
const TICK: Duration = Duration::from_micros(200);
/// Harness cap: a socket epoch that has not converged after this many
/// ticks (2 minutes) is a bug, not a slow network.
const TICK_CAP: u64 = 600_000;

fn socket_bits() -> usize {
    match std::env::var("DCS_SOCKET_BITS") {
        Ok(v) => v.parse().expect("DCS_SOCKET_BITS must be an integer"),
        // The paper's aligned-bitmap width for one OC-48 link.
        Err(_) => 4 * 1024 * 1024,
    }
}

fn socket_epochs() -> usize {
    match std::env::var("DCS_SOCKET_EPOCHS") {
        Ok(v) => v.parse().expect("DCS_SOCKET_EPOCHS must be an integer"),
        Err(_) => 2,
    }
}

/// One epoch of wire bundles: 24 monitoring points, the planted content
/// on the first `INFECTED`, aligned bitmaps `bits` wide.
fn epoch_frames(seed: u64, bits: usize) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mcfg = MonitorConfig::small(7, bits, 4);
    let obj = ContentObject::random_with_packets(&mut rng, 30, 536);
    let plant = Planting::aligned(obj, 536);
    let bg = BackgroundConfig {
        packets: 800,
        flows: 200,
        zipf_exponent: 1.0,
        size_mix: SizeMix::constant(536),
    };
    (0..ROUTERS)
        .map(|id| {
            let mut traffic = gen::generate_epoch(&mut rng, &bg);
            if id < INFECTED {
                plant.plant_into(&mut rng, &mut traffic);
            }
            let mut mp = MonitoringPoint::new(id, &mcfg);
            mp.observe_all(&traffic);
            mp.finish_epoch()
                .encode_wire()
                .expect("bundle fits the wire format")
                .to_vec()
        })
        .collect()
}

fn center(bits: usize) -> AnalysisCenter {
    let mut acfg = AnalysisConfig::for_groups(ROUTERS * 4);
    acfg.search.n_prime = 400.min(bits);
    acfg.search.hopefuls = 300.min(bits);
    AnalysisCenter::new(acfg)
}

/// WaitAll with an effectively-infinite deadline and retransmit budget:
/// a 4-Mbit bundle is ~385 datagrams and the initial 24-router blast
/// overflows the kernel receive buffer by design, so recovery takes many
/// NACK rounds (the default 10-retry session would give up and finalize
/// an empty epoch). Completeness comes from the monitors' delivery
/// guarantee, liveness from [`TICK_CAP`].
fn collector_cfg() -> CollectorConfig {
    CollectorConfig {
        deadline: 1 << 40,
        straggler: StragglerPolicy::WaitAll,
        session: dcs_core::session::SessionConfig {
            base_backoff: 50,
            max_backoff: 2_000,
            max_retries: 100_000,
            jitter: 4,
        },
    }
}

fn all_ids() -> Vec<u64> {
    (0..ROUTERS as u64).collect()
}

/// The in-memory reference: the same frames through the virtual-tick
/// `LossyChannel` under the soak impairment regime, with session-layer
/// NACK recovery, analysed by the same centre shape.
fn reference_fingerprint(frames: &[Vec<u8>], seed: u64, bits: usize) -> String {
    let chunks: Vec<Vec<Vec<u8>>> = frames
        .iter()
        .enumerate()
        .map(|(id, f)| chunk_bundle(id as u64, 0, f, DATAGRAM_SAFE_PAYLOAD))
        .collect();
    let mut channel = LossyChannel::new(ChannelConfig::soak(), seed ^ 0x10CA);
    let mut coll = EpochCollector::new(0, all_ids(), collector_cfg(), seed, 0);
    let mut now = 0u64;
    for per_router in &chunks {
        for c in per_router {
            channel.send(c, now);
        }
    }
    loop {
        for frame in channel.deliver_due(now) {
            coll.offer(&frame, now);
        }
        for req in coll.poll(now) {
            let per_router = &chunks[req.router_id as usize];
            match &req.missing {
                Missing::All => {
                    for c in per_router {
                        channel.send(c, now);
                    }
                }
                Missing::Seqs(seqs) => {
                    for &s in seqs {
                        channel.send(&per_router[s as usize], now);
                    }
                }
            }
        }
        if coll.ready(now) {
            break;
        }
        now += 1;
        assert!(now < 1_000_000, "in-memory reference failed to converge");
    }
    let epoch = coll.finalize(now);
    assert!(epoch.exclusions.is_empty());
    let report = center(bits)
        .analyze_epoch_collected(&epoch)
        .expect("reference epoch reaches quorum");
    detection_fingerprint(&report)
}

/// Spawns one monitoring-point thread: connect, impair ≥10% of outgoing
/// frames, deliver the bundle with session-layer resends, return the
/// thread's socket metrics.
fn spawn_monitor(
    id: usize,
    frame: Vec<u8>,
    addr: SocketAddr,
    transport: Transport,
    impair: ImpairmentConfig,
    seed: u64,
) -> std::thread::JoinHandle<MetricsSnapshot> {
    std::thread::spawn(move || {
        // Stagger the initial blasts a little so 24 threads do not land
        // their first ~400 datagrams in the same kernel buffer instant.
        std::thread::sleep(Duration::from_millis(id as u64));
        let metrics = MetricsRegistry::new();
        let clock = TickClock::new(TICK);
        let mut sock = MonitorSocket::connect(addr, transport).expect("connect to centre");
        if impair != ImpairmentConfig::perfect() {
            sock.set_shim(ImpairmentShim::new(
                impair,
                seed ^ (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ));
        }
        let chunks = chunk_bundle(id as u64, 0, &frame, DATAGRAM_SAFE_PAYLOAD);
        let end = run_monitor_epoch(
            &mut sock,
            &chunks,
            &MonitorEpochConfig {
                router_id: id as u64,
                epoch_id: 0,
                resend_after: 50,
                max_backoff: 2_000,
                give_up: TICK_CAP,
            },
            &clock,
            &metrics,
        );
        assert!(
            matches!(end, MonitorEpochEnd::Delivered),
            "router {id} failed to deliver: {end:?}"
        );
        metrics.snapshot()
    })
}

/// Collects one epoch over a real socket. `kill_at` simulates a centre
/// crash once that many sessions are complete: checkpoint, drop the
/// socket (the port actually closes — monitors see refused datagrams),
/// rebind the SAME address, resume from the checkpoint bytes.
fn socket_epoch(
    frames: &[Vec<u8>],
    seed: u64,
    bits: usize,
    transport: Transport,
    impair: ImpairmentConfig,
    kill_at: Option<usize>,
) -> (String, MetricsSnapshot, Vec<MetricsSnapshot>) {
    let metrics = MetricsRegistry::new();
    let clock = TickClock::new(TICK);
    let mut sock = CenterSocket::bind("127.0.0.1:0", transport).expect("bind centre");
    let addr = sock.local_addr().expect("local addr");

    let handles: Vec<_> = frames
        .iter()
        .enumerate()
        .map(|(id, f)| spawn_monitor(id, f.clone(), addr, transport, impair, seed))
        .collect();

    let mut coll = EpochCollector::new(0, all_ids(), collector_cfg(), seed, clock.now());
    let mut resumes = 0usize;
    if let Some(threshold) = kill_at {
        let end = run_center_epoch(&mut sock, &mut coll, &clock, &metrics, |c| {
            assert!(clock.now() < TICK_CAP, "socket epoch failed to converge");
            c.complete_sessions() >= threshold
        });
        assert!(
            matches!(end, CenterEpochEnd::Aborted),
            "collection outran the planned crash — lower the threshold"
        );
        // The crash: only the DCSK bytes survive. The port closes with
        // the socket; in-flight datagrams bounce until the rebind.
        let ckpt = coll.checkpoint();
        drop(sock);
        drop(coll);
        std::thread::sleep(Duration::from_millis(5));
        sock = CenterSocket::bind(addr, transport).expect("rebind after crash");
        coll = EpochCollector::resume(&ckpt, collector_cfg(), seed, clock.now())
            .expect("own checkpoint must resume");
        resumes += 1;
    }
    let end = run_center_epoch(&mut sock, &mut coll, &clock, &metrics, |_| {
        assert!(clock.now() < TICK_CAP, "socket epoch failed to converge");
        false
    });
    let CenterEpochEnd::Collected(epoch) = end else {
        unreachable!("abort hook never fires here");
    };
    assert_eq!(epoch.exclusions.len(), 0);
    assert_eq!(resumes, usize::from(kill_at.is_some()));

    let report = center(bits)
        .analyze_epoch_collected(&epoch)
        .expect("socket epoch reaches quorum");
    let fp = detection_fingerprint(&report);
    let monitor_snaps: Vec<MetricsSnapshot> = handles
        .into_iter()
        .map(|h| h.join().expect("monitor thread panicked"))
        .collect();
    (fp, metrics.snapshot(), monitor_snaps)
}

fn sum_counter(snaps: &[MetricsSnapshot], key: &str) -> u64 {
    snaps.iter().filter_map(|s| s.counter(key)).sum()
}

/// The headline soak: paper scale through real UDP sockets, every epoch's
/// detection set byte-identical to the in-memory LossyChannel path, with
/// the impairment shim provably biting ≥10% of outgoing frames.
#[test]
fn wire_soak_at_paper_scale_matches_the_in_memory_path() {
    let bits = socket_bits();
    let epochs = socket_epochs();
    let mut sent = 0u64;
    let mut impaired = 0u64;
    for e in 0..epochs {
        let seed = 0x0050_C4E7_u64.wrapping_add(e as u64 * 0x9E37_79B9_7F4A_7C15);
        let frames = epoch_frames(seed, bits);
        let reference = reference_fingerprint(&frames, seed, bits);
        let (fp, center_snap, monitor_snaps) = socket_epoch(
            &frames,
            seed,
            bits,
            Transport::Udp,
            ImpairmentConfig::soak(),
            None,
        );
        assert_eq!(
            fp, reference,
            "epoch {e}: socket detection set diverged from the in-memory path"
        );
        assert!(
            fp.contains("\"found\":true"),
            "epoch {e}: the comparison must not be vacuous — planted content undetected"
        );
        // The socket-path metrics fed dcs-obs: frames moved, the
        // reassembly-backlog gauge settled back to zero.
        assert!(
            center_snap
                .counter("socket_frames_received_total{role=center}")
                .unwrap_or(0)
                > 0
        );
        assert_eq!(center_snap.gauge("socket_reassembly_backlog"), Some(0));
        sent += sum_counter(&monitor_snaps, "socket_frames_sent_total{role=monitor}");
        for kind in ["drop", "duplicate", "reorder", "corrupt"] {
            impaired += sum_counter(
                &monitor_snaps,
                &format!("socket_impaired_total{{kind={kind}}}"),
            );
        }
    }
    // ≥10% of the monitors' outgoing frames were impaired at the socket
    // boundary (the configured regime is 10% drop + 3/5/2% dup/reo/corr;
    // `sent` already excludes the dropped frames, so the ratio holds).
    assert!(
        impaired * 10 >= (sent + impaired),
        "only {impaired} impairments across {sent} sent frames"
    );
}

/// Mid-soak centre crash at paper scale: the rebound socket resumes from
/// the DCSK checkpoint, the monitors replay their unacked chunks over the
/// wire, and detection is byte-identical to the in-memory reference.
#[test]
fn mid_soak_centre_kill_restart_recovers_over_the_socket() {
    let bits = socket_bits();
    let seed = 0x0C4A_54ED_u64;
    let frames = epoch_frames(seed, bits);
    let reference = reference_fingerprint(&frames, seed, bits);
    let (fp, _, _) = socket_epoch(
        &frames,
        seed,
        bits,
        Transport::Udp,
        ImpairmentConfig::soak(),
        Some(ROUTERS / 4),
    );
    assert_eq!(
        fp, reference,
        "detection diverged across the kill/restart recovery"
    );
    assert!(fp.contains("\"found\":true"));
}

/// The TCP fallback: the same epoch through length-prefixed stream
/// framing, with drop/duplicate/reorder impairment at the frame boundary
/// (stream corruption is the CRC's job and is covered at the UDP layer).
#[test]
fn tcp_stream_soak_matches_the_in_memory_path() {
    let bits = 1 << 16;
    let seed = 0x7C9;
    let frames = epoch_frames(seed, bits);
    let reference = reference_fingerprint(&frames, seed, bits);
    let impair = ImpairmentConfig {
        drop_per_mille: 100,
        duplicate_per_mille: 30,
        reorder_per_mille: 50,
        corrupt_per_mille: 0,
    };
    let (fp, _, monitor_snaps) = socket_epoch(&frames, seed, bits, Transport::Tcp, impair, None);
    assert_eq!(
        fp, reference,
        "TCP detection diverged from the in-memory path"
    );
    assert!(
        sum_counter(&monitor_snaps, "socket_impaired_total{kind=drop}") > 0,
        "the TCP path must have been impaired for the test to mean anything"
    );
}

/// Graceful degradation end to end: 22 of 24 monitors never start, the
/// deadline trips on the real clock, and the analysis comes back as a
/// typed `QuorumTooSmall` — no panic anywhere on the socket path.
#[test]
fn undersubscribed_epoch_yields_typed_quorum_too_small_over_the_socket() {
    let bits = 1 << 14;
    let seed = 0x0DD;
    let frames = epoch_frames(seed, bits);
    let metrics = MetricsRegistry::new();
    let clock = TickClock::new(TICK);
    let mut sock = CenterSocket::bind("127.0.0.1:0", Transport::Udp).expect("bind centre");
    let addr = sock.local_addr().expect("local addr");

    let handles: Vec<_> = frames
        .iter()
        .take(2)
        .enumerate()
        .map(|(id, f)| {
            spawn_monitor(
                id,
                f.clone(),
                addr,
                Transport::Udp,
                ImpairmentConfig::perfect(),
                seed,
            )
        })
        .collect();

    let ccfg = CollectorConfig {
        deadline: 2_500, // half a second of 200µs ticks
        straggler: StragglerPolicy::Deadline,
        ..Default::default()
    };
    let mut coll = EpochCollector::new(0, all_ids(), ccfg, seed, clock.now());
    let end = run_center_epoch(&mut sock, &mut coll, &clock, &metrics, |_| {
        assert!(clock.now() < TICK_CAP);
        false
    });
    let CenterEpochEnd::Collected(epoch) = end else {
        unreachable!()
    };
    assert_eq!(epoch.exclusions.len(), ROUTERS - 2, "22 typed exclusions");

    let acfg = AnalysisConfig::for_groups(ROUTERS * 4).with_min_quorum(16);
    match AnalysisCenter::new(acfg).analyze_epoch_collected(&epoch) {
        Err(IngestError::QuorumTooSmall { required, report }) => {
            assert_eq!(required, 16);
            assert_eq!(report.accepted.len(), 2);
        }
        other => panic!("expected the typed quorum error, got {other:?}"),
    }
    for h in handles {
        h.join().expect("monitor thread panicked");
    }
}

// ---------------------------------------------------------------------
// Process-level: dcs-cli serve / monitor across a SIGTERM restart
// ---------------------------------------------------------------------

mod cli {
    use std::collections::BTreeMap;
    use std::path::Path;
    use std::process::{Child, Command, Stdio};
    use std::time::{Duration, Instant};

    const BIN: &str = env!("CARGO_BIN_EXE_dcs-cli");
    // Detection power needs the paper's infected majority; smaller
    // deployments still transport fine but report `found:false`.
    const CLI_ROUTERS: usize = 24;
    const CLI_INFECTED: usize = 20;

    fn spawn_serve(dir: &Path, port: u16, epochs: usize, resume: bool) -> Child {
        let mut cmd = Command::new(BIN);
        cmd.current_dir(dir)
            .args(["serve", "--bind"])
            .arg(format!("127.0.0.1:{port}"))
            .args(["--routers", &CLI_ROUTERS.to_string()])
            .args(["--epochs", &epochs.to_string()])
            .args(["--wait-all", "true"])
            .args(["--checkpoint", "ckpt.dcsk"])
            .args(["--metrics-json", "metrics.json"])
            .args(["--report", "report.jsonl"])
            .stdout(Stdio::null())
            .stderr(Stdio::null());
        if resume {
            cmd.args(["--resume", "ckpt.dcsk"]);
        }
        cmd.spawn().expect("spawn dcs-cli serve")
    }

    fn spawn_monitors(dir: &Path, port: u16, epochs: usize) -> Vec<Child> {
        (0..CLI_ROUTERS)
            .map(|r| {
                let mut cmd = Command::new(BIN);
                cmd.current_dir(dir)
                    .args(["monitor", "--center"])
                    .arg(format!("127.0.0.1:{port}"))
                    .args(["--router", &r.to_string()])
                    .args(["--epochs", &epochs.to_string()]);
                if r < CLI_INFECTED {
                    cmd.arg("--infected");
                }
                cmd.stdout(Stdio::null())
                    .stderr(Stdio::null())
                    .spawn()
                    .expect("spawn dcs-cli monitor")
            })
            .collect()
    }

    fn wait_for_report_lines(dir: &Path, n: usize) -> Vec<String> {
        let path = dir.join("report.jsonl");
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let lines: Vec<String> = std::fs::read_to_string(&path)
                .unwrap_or_default()
                .lines()
                .map(str::to_owned)
                .collect();
            if lines.len() >= n {
                return lines;
            }
            assert!(
                Instant::now() < deadline,
                "report.jsonl never reached {n} lines"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// epoch -> full report line, keyed so runs can be compared even if
    /// one run analysed extra epochs.
    fn by_epoch(lines: &[String]) -> BTreeMap<u64, String> {
        lines
            .iter()
            .map(|l| {
                let epoch = l
                    .split("\"epoch\":")
                    .nth(1)
                    .and_then(|t| t.split(|c: char| !c.is_ascii_digit()).next())
                    .and_then(|d| d.parse().ok())
                    .expect("report line carries an epoch id");
                (epoch, l.clone())
            })
            .collect()
    }

    fn reap(mut children: Vec<Child>) {
        for c in &mut children {
            let status = c.wait().expect("wait for child");
            assert!(status.success(), "child exited with {status}");
        }
    }

    /// Satellite: SIGTERM mid-run flushes a final DCSK checkpoint, and a
    /// `--resume` restart produces byte-identical report lines to an
    /// uninterrupted run fed the same monitor processes.
    #[test]
    fn serve_sigterm_resume_is_report_identical() {
        let base = std::env::temp_dir().join(format!("dcs-socket-cli-{}", std::process::id()));

        // Uninterrupted run: 2 epochs straight through.
        let dir_a = base.join("a");
        std::fs::create_dir_all(&dir_a).expect("mkdir");
        let serve_a = spawn_serve(&dir_a, 47431, 2, false);
        let mons_a = spawn_monitors(&dir_a, 47431, 2);
        let lines_a = wait_for_report_lines(&dir_a, 2);
        reap(vec![serve_a]);
        reap(mons_a);

        // Interrupted run: SIGTERM after epoch 0's line appears, then a
        // --resume restart picks epoch 1 back up mid-collection while
        // the monitor processes keep retrying on backoff.
        let dir_b = base.join("b");
        std::fs::create_dir_all(&dir_b).expect("mkdir");
        let mut serve_b = spawn_serve(&dir_b, 47432, 2, false);
        let mons_b = spawn_monitors(&dir_b, 47432, 2);
        wait_for_report_lines(&dir_b, 1);
        let kill = Command::new("kill")
            .args(["-TERM", &serve_b.id().to_string()])
            .status()
            .expect("send SIGTERM");
        assert!(kill.success());
        let status = serve_b.wait().expect("serve exits on SIGTERM");
        assert!(status.success(), "SIGTERM exit must be graceful");
        assert!(
            dir_b.join("ckpt.dcsk").exists() && dir_b.join("metrics.json").exists(),
            "shutdown must flush the checkpoint and metrics snapshot"
        );

        let serve_b2 = spawn_serve(&dir_b, 47432, 1, true);
        let lines_b = wait_for_report_lines(&dir_b, 2);
        reap(vec![serve_b2]);
        reap(mons_b);

        let a = by_epoch(&lines_a);
        let b = by_epoch(&lines_b);
        for epoch in a.keys() {
            assert_eq!(
                a.get(epoch),
                b.get(epoch),
                "epoch {epoch} report diverged across the SIGTERM restart"
            );
        }
        assert!(
            a.values().any(|l| l.contains("\\\"found\\\":true")),
            "the comparison must not be vacuous"
        );
        std::fs::remove_dir_all(&base).ok();
    }
}
