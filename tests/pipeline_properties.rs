//! Property-based integration tests across crates: invariants of the
//! collector → digest → matrix path under arbitrary traffic.

use dcs_bitmap::Bitmap;
use dcs_collect::{AlignedCollector, AlignedConfig, UnalignedCollector, UnalignedConfig};
use dcs_traffic::{FlowLabel, Packet};
use proptest::prelude::*;

/// Arbitrary packet with payload in the interesting size band.
fn arb_packet() -> impl Strategy<Value = Packet> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        proptest::collection::vec(any::<u8>(), 0..1600),
    )
        .prop_map(|(s, d, sp, dp, payload)| {
            Packet::new(
                FlowLabel {
                    src_ip: s,
                    dst_ip: d,
                    src_port: sp,
                    dst_port: dp,
                    proto: 6,
                },
                payload,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn aligned_digest_weight_bounded_by_hashed_packets(
        pkts in proptest::collection::vec(arb_packet(), 0..200)
    ) {
        let mut c = AlignedCollector::new(AlignedConfig::small(1 << 12, 1));
        for p in &pkts {
            c.observe(p);
        }
        let d = c.finish_epoch();
        prop_assert!(u64::from(d.bitmap.weight()) <= d.packets_hashed);
        prop_assert_eq!(d.packets_seen, pkts.len() as u64);
        prop_assert_eq!(
            d.packets_hashed,
            pkts.iter().filter(|p| p.has_payload()).count() as u64
        );
        prop_assert_eq!(
            d.raw_bytes,
            pkts.iter().map(|p| p.wire_len() as u64).sum::<u64>()
        );
    }

    #[test]
    fn aligned_collector_is_order_insensitive(
        pkts in proptest::collection::vec(arb_packet(), 0..100),
        seed in any::<u64>(),
    ) {
        // The digest is a set of bits: permuting the packet stream must
        // not change it.
        let digest_of = |pkts: &[Packet]| {
            let mut c = AlignedCollector::new(AlignedConfig::small(1 << 12, seed));
            for p in pkts {
                c.observe(p);
            }
            c.finish_epoch().bitmap
        };
        let forward = digest_of(&pkts);
        let mut reversed = pkts.clone();
        reversed.reverse();
        prop_assert_eq!(forward, digest_of(&reversed));
    }

    #[test]
    fn aligned_digest_monotone_under_union(
        a in proptest::collection::vec(arb_packet(), 0..60),
        b in proptest::collection::vec(arb_packet(), 0..60),
    ) {
        // Observing a superset of traffic sets a superset of bits.
        let digest_of = |pkts: &[Packet]| {
            let mut c = AlignedCollector::new(AlignedConfig::small(1 << 12, 3));
            for p in pkts {
                c.observe(p);
            }
            c.finish_epoch().bitmap
        };
        let da = digest_of(&a);
        let mut all = a.clone();
        all.extend(b.iter().cloned());
        let dall = digest_of(&all);
        // Every bit of da appears in dall.
        prop_assert_eq!(da.common_ones(&dall), da.weight());
    }

    #[test]
    fn unaligned_rows_respect_group_structure(
        pkts in proptest::collection::vec(arb_packet(), 0..150)
    ) {
        let groups = 8;
        let mut c = UnalignedCollector::new(UnalignedConfig::small(groups, 1, 7));
        let k = c.config().arrays_per_group;
        // Track which groups received sampled packets.
        let mut touched = vec![false; groups];
        for p in &pkts {
            if p.payload.len() >= c.config().min_payload {
                touched[c.group_of(p)] = true;
            }
            c.observe(p);
        }
        let d = c.finish_epoch();
        prop_assert_eq!(d.arrays.len(), groups * k);
        for (gi, &was_touched) in touched.iter().enumerate() {
            let weight: u32 = d.arrays[gi * k..(gi + 1) * k]
                .iter()
                .map(Bitmap::weight)
                .sum();
            if !was_touched {
                prop_assert_eq!(weight, 0, "untouched group {} has bits", gi);
            } else {
                prop_assert!(weight > 0, "touched group {} is empty", gi);
            }
        }
    }

    #[test]
    fn wire_roundtrip_any_bitmap(
        len in 1usize..5000,
        idxs in proptest::collection::vec(any::<usize>(), 0..64),
    ) {
        let bm = Bitmap::from_indices(len, idxs.into_iter().map(|i| i % len));
        let back = Bitmap::decode(&bm.encode()).expect("roundtrip");
        prop_assert_eq!(bm, back);
    }
}
