//! Transport-layer soak and recovery tests (PR 4 acceptance):
//!
//! * a long soak under the issue's fault regime — 10% chunk loss, 5%
//!   reordering, 2% corruption across 24 routers — where every epoch
//!   either reaches quorum and reports the planted content or returns a
//!   typed `QuorumTooSmall`, with zero panics;
//! * a mid-soak centre kill/restart that resumes from the collector
//!   checkpoint and produces byte-identical detection sets vs the
//!   uninterrupted run;
//! * straggler-policy coverage: a digest delayed past the deadline is
//!   excluded as `TimedOut` under `Quorum`, and detection matches the
//!   survivor-only baseline;
//! * arbitrary-bytes fuzz over the bundle decoder, the chunk decoder and
//!   the checkpoint decoder — up to 64 KiB of soup, always a typed
//!   error, never a panic.

use dcs_core::ingest::RouterFault;
use dcs_core::monitor::{MonitorConfig, MonitoringPoint, RouterDigest};
use dcs_core::session::{ChunkDisposition, CollectorConfig, EpochCollector, StragglerPolicy};
use dcs_core::transport::{chunk_bundle, ChunkFrame};
use dcs_core::{AnalysisCenter, AnalysisConfig};
use dcs_sim::soak::{run_soak, EpochOutcome, KillPlan, SoakConfig};
use dcs_traffic::{gen, BackgroundConfig, ContentObject, Planting, SizeMix};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn soak_epochs() -> usize {
    match std::env::var("DCS_SOAK_EPOCHS") {
        Ok(v) => v.parse().expect("DCS_SOAK_EPOCHS must be an integer"),
        Err(_) => 50,
    }
}

/// The headline soak: ≥50 epochs (override with DCS_SOAK_EPOCHS), 24
/// routers, the issue's loss/reorder/corruption regime. Every epoch must
/// either reach quorum and report the planted content or come back as a
/// typed QuorumTooSmall. Any panic fails the test by construction.
#[test]
fn soak_survives_the_fault_regime() {
    let cfg = SoakConfig::standard(soak_epochs(), 0xD15C_0DE5);
    let result = run_soak(&cfg);
    assert_eq!(result.outcomes.len(), cfg.epochs);

    let mut detected = 0usize;
    for (e, outcome) in result.outcomes.iter().enumerate() {
        match outcome {
            EpochOutcome::Report(r) => {
                assert!(
                    r.routers >= cfg.min_quorum,
                    "epoch {e} analysed below quorum"
                );
                if r.aligned.found {
                    detected += 1;
                    let hits = r
                        .aligned
                        .routers
                        .iter()
                        .filter(|&&id| id < cfg.infected)
                        .count();
                    assert!(
                        hits * 2 > cfg.infected,
                        "epoch {e}: only {hits}/{} infected routers reported",
                        cfg.infected
                    );
                }
            }
            EpochOutcome::QuorumTooSmall { required, accepted } => {
                assert!(
                    accepted < required,
                    "epoch {e}: typed quorum failure with {accepted} >= {required}"
                );
            }
        }
    }
    // The regime is survivable: the overwhelming majority of epochs must
    // reach quorum AND find the planted content.
    assert!(
        detected * 10 >= cfg.epochs * 9,
        "only {detected}/{} epochs detected the planted content",
        cfg.epochs
    );
    // The fault regime actually bit: losses forced retransmits and the
    // CRC trailer caught in-flight corruption.
    assert!(
        result.totals.retransmits > 0,
        "no retransmits under 10% loss"
    );
    assert!(
        result.totals.corrupt_chunks > 0,
        "no corruption detected at 2%"
    );
    assert_eq!(result.totals.checkpoint_resumes, 0);
}

/// Kill the centre mid-epoch; the resumed run's detection sets must be
/// byte-identical to the uninterrupted run's, epoch for epoch.
#[test]
fn mid_soak_kill_restart_is_detection_identical() {
    let epochs = 5;
    let seed = 0xFEED_F00D;
    let baseline = run_soak(&SoakConfig::standard(epochs, seed));

    let mut killed_cfg = SoakConfig::standard(epochs, seed);
    killed_cfg.kill = Some(KillPlan { epoch: 2, tick: 4 });
    let killed = run_soak(&killed_cfg);

    assert_eq!(
        killed.totals.checkpoint_resumes, 1,
        "the crash must recover through exactly one checkpoint resume"
    );
    let a = baseline.detection_sets();
    let b = killed.detection_sets();
    assert_eq!(a.len(), b.len());
    for (e, (x, y)) in a.iter().zip(&b).enumerate() {
        assert_eq!(x, y, "epoch {e} detection set diverged after kill/restart");
    }
    // Both runs actually detected things (the comparison is not
    // vacuously over empty reports).
    assert!(baseline.quorum_epochs() == epochs && killed.quorum_epochs() == epochs);
    assert!(a.iter().any(|s| s.contains("\"found\":true")));
}

/// Tentpole acceptance: the pipelined runtime drives the same soak as the
/// sequential centre with byte-identical detection sets, while the
/// double-buffered scheduler provably admits ≥2 epochs in flight
/// (collection of epoch N+1 overlapping analysis of epoch N).
#[test]
fn pipelined_soak_is_detection_identical_and_overlaps_epochs() {
    let epochs = 8;
    let seed = 0x0DD_B17E5;
    let sequential = run_soak(&SoakConfig::standard(epochs, seed));

    let mut pipelined_cfg = SoakConfig::standard(epochs, seed);
    pipelined_cfg.pipelined = true;
    let pipelined = run_soak(&pipelined_cfg);

    let a = sequential.detection_sets();
    let b = pipelined.detection_sets();
    assert_eq!(a.len(), b.len());
    for (e, (x, y)) in a.iter().zip(&b).enumerate() {
        assert_eq!(x, y, "epoch {e} detection set diverged under pipelining");
    }
    assert!(
        sequential.quorum_epochs() == epochs && pipelined.quorum_epochs() == epochs,
        "the comparison must not be vacuous over quorum failures"
    );
    assert!(a.iter().any(|s| s.contains("\"found\":true")));

    // The pipeline instruments prove the overlap happened: every epoch
    // went through the worker, at least two were simultaneously in
    // flight, and the run drained back to empty.
    let snap = &pipelined.metrics;
    assert_eq!(snap.counter("pipeline_epochs_total"), Some(epochs as u64));
    assert!(
        snap.gauge("epochs_in_flight_peak").unwrap_or(0) >= 2,
        "steady state never admitted 2 epochs in flight"
    );
    assert_eq!(snap.gauge("epochs_in_flight"), Some(0));
    // The sequential run, by contrast, never touches the pipeline family.
    assert_eq!(sequential.metrics.counter("pipeline_epochs_total"), None);
}

/// One epoch of real wire frames for `routers` monitoring points, with
/// the planted content on the first `infected`.
fn epoch_frames(seed: u64, routers: usize, infected: usize) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mcfg = MonitorConfig::small(7, 1 << 14, 4);
    let obj = ContentObject::random_with_packets(&mut rng, 30, 536);
    let plant = Planting::aligned(obj, 536);
    let bg = BackgroundConfig {
        packets: 800,
        flows: 200,
        zipf_exponent: 1.0,
        size_mix: SizeMix::constant(536),
    };
    (0..routers)
        .map(|id| {
            let mut traffic = gen::generate_epoch(&mut rng, &bg);
            if id < infected {
                plant.plant_into(&mut rng, &mut traffic);
            }
            let mut mp = MonitoringPoint::new(id, &mcfg);
            mp.observe_all(&traffic);
            mp.finish_epoch()
                .encode_wire()
                .expect("bundle fits the wire format")
                .to_vec()
        })
        .collect()
}

fn center(routers: usize) -> AnalysisCenter {
    let mut acfg = AnalysisConfig::for_groups(routers * 4);
    acfg.search.n_prime = 400;
    acfg.search.hopefuls = 300;
    AnalysisCenter::new(acfg)
}

/// Satellite (c), part 1: duplicate and overlapping chunk deliveries —
/// every chunk sent three times, interleaved across routers, out of
/// order — reassemble byte-exactly and detect identically to a clean
/// single-copy delivery.
#[test]
fn duplicate_and_overlapping_delivery_detects_identically() {
    let routers = 24;
    let frames = epoch_frames(31, routers, 20);
    let center = center(routers);
    let clean = center.analyze_epoch_wire(&frames).expect("quorum");

    let mut coll = EpochCollector::new(
        0,
        (0..routers as u64).collect::<Vec<_>>(),
        CollectorConfig::default(),
        9,
        0,
    );
    // Interleave all routers' chunks: reversed order first, then two
    // full forward replays (pure duplicates), round-robin by router.
    let per_router: Vec<Vec<Vec<u8>>> = frames
        .iter()
        .enumerate()
        .map(|(id, f)| chunk_bundle(id as u64, 0, f, 700))
        .collect();
    let max_chunks = per_router.iter().map(Vec::len).max().unwrap();
    for i in 0..max_chunks {
        for chunks in &per_router {
            if let Some(c) = chunks.get(chunks.len() - 1 - i.min(chunks.len() - 1)) {
                coll.offer(c, 0);
            }
        }
    }
    for _ in 0..2 {
        for chunks in &per_router {
            for c in chunks {
                let d = coll.offer(c, 1);
                assert!(
                    matches!(
                        d,
                        ChunkDisposition::Duplicate { .. } | ChunkDisposition::Accepted { .. }
                    ),
                    "{d:?}"
                );
            }
        }
    }
    // Reversed round-robin may have skipped some seqs for short bundles;
    // by now every chunk has been offered at least twice.
    assert_eq!(coll.complete_sessions(), routers);
    assert!(coll.stats().duplicate_chunks > 0);
    let epoch = coll.finalize(2);
    assert!(epoch.exclusions.is_empty());
    let via_chunks = center.analyze_epoch_collected(&epoch).expect("quorum");

    assert_eq!(via_chunks.aligned.found, clean.aligned.found);
    assert_eq!(via_chunks.aligned.routers, clean.aligned.routers);
    assert_eq!(
        via_chunks.aligned.signature_indices,
        clean.aligned.signature_indices
    );
    assert_eq!(via_chunks.unaligned.alarm, clean.unaligned.alarm);
    assert_eq!(via_chunks.ingest.accepted, clean.ingest.accepted);
}

/// Satellite (c), part 2: under `Quorum`, a digest whose chunks arrive
/// past the deadline is excluded as `TimedOut`, and detection matches
/// the survivor-only baseline (the same epoch analysed without the
/// straggler at all).
#[test]
fn late_digest_is_timed_out_and_detection_matches_survivor_baseline() {
    let routers = 24;
    let straggler = 21usize; // an uninfected router, so detection sets align
    let frames = epoch_frames(32, routers, 20);

    // Survivor-only baseline: the same frames minus the straggler.
    let survivors: Vec<Vec<u8>> = frames
        .iter()
        .enumerate()
        .filter(|(id, _)| *id != straggler)
        .map(|(_, f)| f.clone())
        .collect();
    let center_a = center(routers);
    let baseline = center_a.analyze_epoch_wire(&survivors).expect("quorum");

    let ccfg = CollectorConfig {
        deadline: 50,
        straggler: StragglerPolicy::Quorum(16),
        ..Default::default()
    };
    let mut coll = EpochCollector::new(0, (0..routers as u64).collect::<Vec<_>>(), ccfg, 9, 0);
    for (id, f) in frames.iter().enumerate() {
        if id == straggler {
            continue;
        }
        for c in chunk_bundle(id as u64, 0, f, 1024) {
            coll.offer(&c, 1);
        }
    }
    assert!(
        !coll.ready(10),
        "quorum policy must hold until the deadline"
    );
    assert!(coll.ready(50), "23 complete sessions beat the quorum of 16");

    let epoch = coll.finalize(50);
    // The straggler's chunks show up only now — past finalize they are
    // late, not accepted.
    for c in chunk_bundle(straggler as u64, 0, &frames[straggler], 1024) {
        assert_eq!(coll.offer(&c, 51), ChunkDisposition::Late);
    }
    assert_eq!(epoch.exclusions.len(), 1);
    assert_eq!(epoch.exclusions[0].router_id, Some(straggler));
    assert!(
        matches!(
            epoch.exclusions[0].fault,
            RouterFault::TimedOut {
                received: 0,
                total: 0
            }
        ),
        "{:?}",
        epoch.exclusions[0].fault
    );
    // The post-finalize offers counted as late on the collector (the
    // CollectedEpoch's stats snapshot predates them by construction).
    assert!(coll.stats().late_chunks > 0);

    let report = center(routers)
        .analyze_epoch_collected(&epoch)
        .expect("quorum");
    assert_eq!(report.routers, routers - 1);
    assert_eq!(report.aligned.found, baseline.aligned.found);
    assert_eq!(report.aligned.routers, baseline.aligned.routers);
    assert_eq!(
        report.aligned.signature_indices,
        baseline.aligned.signature_indices
    );
    assert_eq!(report.unaligned.alarm, baseline.unaligned.alarm);
    assert_eq!(
        report.unaligned.suspected_routers,
        baseline.unaligned.suspected_routers
    );
}

/// Satellite (b): byte-soup fuzz over every transport-facing decoder —
/// the whole-bundle wire decoder, the chunk-envelope decoder and the
/// checkpoint decoder. Up to 64 KiB of arbitrary bytes: typed errors
/// only, no panic, and the declared-count caps keep allocation bounded.
mod fuzz {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn bundle_chunk_and_checkpoint_decoders_never_panic_on_64k_soup(
            bytes in proptest::collection::vec(any::<u8>(), 0..(64 * 1024)),
            magic_kind in 0u8..5,
        ) {
            let mut soup = bytes;
            if soup.len() >= 5 {
                // Steer some cases past the magic/version checks so the
                // count/length fields get fuzzed too.
                match magic_kind {
                    0 => {}
                    1 => soup[..4].copy_from_slice(b"DCSR"),
                    2 => {
                        soup[..4].copy_from_slice(b"DCSC");
                        soup[4] = 1;
                    }
                    3 => {
                        soup[..4].copy_from_slice(b"DCSG");
                        soup[4] = 1;
                    }
                    _ => {
                        soup[..4].copy_from_slice(b"DCSK");
                        soup[4] = 1;
                    }
                }
            }
            let _ = RouterDigest::decode_wire(&soup);
            let _ = ChunkFrame::decode(&soup);
            let _ = ChunkFrame::salvage_header(&soup);
            let _ = dcs_core::aggregate::AggregateBundle::decode_wire(&soup);
            let _ = EpochCollector::resume(&soup, CollectorConfig::default(), 1, 0);
        }

        /// Any mutation of a valid chunk frame is rejected by the CRC (or
        /// decodes to the identical frame if the mutation was a no-op —
        /// impossible for single-byte XOR, asserted below).
        #[test]
        fn mutated_chunk_frames_are_rejected(pos_ppm in 0u32..1_000_000, mask in 1u8..=255) {
            let frame = chunk_bundle(7, 3, &[0xABu8; 900], 256)[1].clone();
            let pos = (frame.len() as u64 * u64::from(pos_ppm) / 1_000_000) as usize;
            let mut bad = frame.clone();
            bad[pos.min(frame.len() - 1)] ^= mask;
            prop_assert!(ChunkFrame::decode(&bad).is_err());
        }

        /// Any mutation of a valid checkpoint is rejected typed.
        #[test]
        fn mutated_checkpoints_are_rejected(pos_ppm in 0u32..1_000_000, mask in 1u8..=255) {
            let mut coll = EpochCollector::new(
                4,
                [1u64, 2, 3],
                CollectorConfig::default(),
                5,
                0,
            );
            for c in chunk_bundle(2, 4, &[0x5Au8; 500], 128) {
                coll.offer(&c, 0);
            }
            let ckpt = coll.checkpoint();
            let pos = (ckpt.len() as u64 * u64::from(pos_ppm) / 1_000_000) as usize;
            let mut bad = ckpt.clone();
            bad[pos.min(ckpt.len() - 1)] ^= mask;
            prop_assert!(EpochCollector::resume(&bad, CollectorConfig::default(), 5, 0).is_err());
            // And the clean checkpoint still resumes.
            prop_assert!(EpochCollector::resume(&ckpt, CollectorConfig::default(), 5, 0).is_ok());
        }
    }
}
