//! Minimal offline stand-in for `parking_lot`: std-backed locks with the
//! non-poisoning `read()` / `write()` / `lock()` API the workspace uses.
//! A poisoned std lock is recovered transparently, matching `parking_lot`'s
//! behaviour of not propagating panics through lock state.

#![forbid(unsafe_code)]

use std::sync;

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A mutex with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
    }
}
