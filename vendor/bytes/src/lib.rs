//! Minimal offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements exactly the API subset the workspace uses: a cheaply
//! clonable immutable byte buffer ([`Bytes`]), a growable builder
//! ([`BytesMut`]) and the little-endian cursor traits ([`Buf`],
//! [`BufMut`]). Semantics match the upstream crate for that subset.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable, contiguous slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies `data` into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data[..] == other[..]
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.data[..].cmp(&other.data[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.data[..].hash(state);
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(v: [u8; N]) -> Self {
        Bytes::copy_from_slice(&v)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(v: BytesMut) -> Self {
        v.freeze()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// A growable byte buffer; [`BytesMut::freeze`] converts it into [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut { data: v }
    }
}

/// Read-cursor over a byte source (implemented for `&[u8]`, which advances
/// the slice itself as data is consumed).
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;

    /// Skips `cnt` bytes.
    ///
    /// # Panics
    /// Panics if fewer than `cnt` bytes remain.
    fn advance(&mut self, cnt: usize);

    /// Copies `dst.len()` bytes into `dst` and advances past them.
    ///
    /// # Panics
    /// Panics if not enough bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    ///
    /// # Panics
    /// Panics if the source is empty.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Panics
    /// Panics if fewer than 4 bytes remain.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Panics
    /// Panics if fewer than 8 bytes remain.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "copy_to_slice past end of buffer");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

/// Write-cursor over a growable byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(7);
        m.put_u32_le(0xDEAD_BEEF);
        m.put_u64_le(u64::MAX - 1);
        m.put_slice(b"xy");
        let b = m.freeze();
        let mut cur: &[u8] = &b;
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cur.get_u64_le(), u64::MAX - 1);
        let mut tail = [0u8; 2];
        cur.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xy");
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn advance_moves_window() {
        let data = [1u8, 2, 3, 4];
        let mut cur: &[u8] = &data;
        cur.advance(2);
        assert_eq!(cur, &[3, 4]);
    }

    #[test]
    fn bytes_is_cheap_to_clone_and_compares() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.to_vec(), vec![1, 2, 3]);
    }
}
