//! Minimal offline stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map`, `any::<T>()`,
//! range and tuple strategies, `proptest::collection::vec`, [`Just`], the
//! `proptest!` macro with optional `#![proptest_config(...)]`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream: cases are drawn uniformly (no edge-case
//! biasing) and failing inputs are *not* shrunk — the panic message
//! carries the offending values and the deterministic per-test seed
//! instead, which is enough to reproduce and debug.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::Rng;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Runner configuration: how many random cases each property runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the Monte-Carlo-heavy suite
        // fast on small containers while still exercising tails.
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn gen_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// from it (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn gen_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn gen_value(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.gen_value(rng)).gen_value(rng)
    }
}

/// Strategy yielding a constant value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn gen_value(&self, rng: &mut StdRng) -> Self::Value {
        (**self).gen_value(rng)
    }
}

/// Whole-domain uniform strategy, `any::<T>()`.
pub struct Any<T>(PhantomData<T>);

/// Uniform values over the whole domain of `T`.
pub fn any<T>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_any {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut StdRng) -> $t {
                rng.gen::<$t>()
            }
        }
    )*};
}

impl_any!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn gen_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$n.gen_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Collection strategies.
pub mod collection {
    use super::*;

    /// Strategy for `Vec`s with a random length in `len` and elements
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.len.is_empty() {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

/// Everything a property-test module usually imports.
pub mod prelude {
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;

    /// Deterministic per-test seed: the test path hashed with FNV-1a, so
    /// failures reproduce across runs without any global state.
    pub fn seed_for(test_name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ...)`
/// runs `cases` times with fresh random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let seed = $crate::__rt::seed_for(concat!(module_path!(), "::", stringify!($name)));
                let mut rng = <$crate::__rt::StdRng as $crate::__rt::SeedableRng>::seed_from_u64(seed);
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::gen_value(&($strat), &mut rng);)+
                    // Capture input reprs up front: the body may consume
                    // the values, and we still want them on failure.
                    let mut inputs = ::std::string::String::new();
                    $(inputs.push_str(&::std::format!(
                        "\n  {} = {:?}", stringify!($arg), $arg
                    ));)+
                    let outcome: ::std::result::Result<(), ::std::string::String> = (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(msg) = outcome {
                        panic!(
                            "property `{}` failed at case {case}/{} (seed {seed:#x}): {msg}\ninputs:{inputs}",
                            stringify!($name),
                            config.cases,
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), left, right
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "{}\n  left: {:?}\n right: {:?}",
                ::std::format!($($fmt)+), left, right
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                left
            ));
        }
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            // No shrinking machinery: an assumption failure just skips
            // the case (counted as passed, like upstream's resampling).
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(200))]

        #[test]
        fn ranges_stay_in_bounds(x in 5usize..10, y in -3i64..=3) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-3..=3).contains(&y), "y = {} escaped", y);
        }

        #[test]
        fn map_applies(v in (0u32..100).prop_map(|x| x * 2)) {
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn flat_map_is_dependent(v in (1usize..8).prop_flat_map(|n| collection::vec(0usize..n, n..n + 1))) {
            prop_assert!(!v.is_empty());
            let n = v.len();
            prop_assert!(v.iter().all(|&x| x < n));
        }

        #[test]
        fn vec_lengths_respect_range(v in collection::vec(any::<u8>(), 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
        }

        #[test]
        fn tuples_and_just(pair in (0u32..4, Just(7u8))) {
            prop_assert!(pair.0 < 4);
            prop_assert_eq!(pair.1, 7);
        }

        #[test]
        fn assume_skips(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn failing_property_panics_with_inputs() {
        let result = std::panic::catch_unwind(|| {
            // No #[test] attribute: the harness must not collect this
            // deliberately-failing property; we drive it by hand.
            proptest! {
                fn always_fails(x in 0usize..4) {
                    prop_assert!(x > 100, "x was {}", x);
                }
            }
            always_fails();
        });
        let msg = *result
            .unwrap_err()
            .downcast::<String>()
            .expect("string panic");
        assert!(msg.contains("always_fails"), "{msg}");
        assert!(msg.contains("x ="), "{msg}");
    }
}
