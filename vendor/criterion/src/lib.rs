//! Minimal offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use — `Criterion`
//! with `sample_size` / `measurement_time` / `warm_up_time`, benchmark
//! groups with throughput annotation and `bench_with_input`, `Bencher::
//! iter`, `black_box`, and the `criterion_group!` / `criterion_main!`
//! macros (both the config form and the plain list form).
//!
//! Measurement model: after a warm-up period, each sample runs a batch of
//! iterations sized so one batch lasts roughly `measurement_time /
//! sample_size`, and the reported figure is the best (minimum) mean
//! ns/iter across samples — the low-noise estimator, suited to the
//! single-CPU containers this repo is benchmarked in. No statistics
//! beyond min/mean/max, no plots, no disk state.

#![forbid(unsafe_code)]

pub use std::hint::black_box;

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark harness.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the total time budget for timed samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up duration before timing starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let mut b = self.new_bencher();
        f(&mut b);
        b.report(id.as_ref(), None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    fn new_bencher(&self) -> Bencher {
        Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            result: None,
        }
    }

    #[doc(hidden)]
    pub fn final_summary(&mut self) {}
}

/// Units for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Identifier for a parameterised benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new<P: Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Identifier that is just the parameter.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A group of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Throughput_,
}

type Throughput_ = Option<Throughput>;

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Overrides the measurement budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let mut b = self.criterion.new_bencher();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.as_ref()), self.throughput);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = self.criterion.new_bencher();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.id), self.throughput);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Per-benchmark measurement state; `iter` runs and times the closure.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    result: Option<Measurement>,
}

#[derive(Debug, Clone, Copy)]
struct Measurement {
    min_ns: f64,
    mean_ns: f64,
    max_ns: f64,
}

impl Bencher {
    /// Times `routine`, keeping its output alive via `black_box`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up while estimating the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64).max(1.0);

        let per_sample = self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        let batch = ((per_sample / est_ns) as u64).max(1);

        let mut means = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            means.push(t0.elapsed().as_nanos() as f64 / batch as f64);
        }
        let min = means.iter().copied().fold(f64::INFINITY, f64::min);
        let max = means.iter().copied().fold(0.0f64, f64::max);
        let mean = means.iter().sum::<f64>() / means.len() as f64;
        self.result = Some(Measurement {
            min_ns: min,
            mean_ns: mean,
            max_ns: max,
        });
    }

    fn report(&self, id: &str, throughput: Throughput_) {
        let Some(m) = self.result else {
            println!("{id:<48} (no measurement)");
            return;
        };
        let rate = match throughput {
            Some(Throughput::Bytes(n)) => {
                let gib = n as f64 / m.min_ns * 1e9 / (1u64 << 30) as f64;
                format!("  {gib:>8.3} GiB/s")
            }
            Some(Throughput::Elements(n)) => {
                let meps = n as f64 / m.min_ns * 1e9 / 1e6;
                format!("  {meps:>8.3} Melem/s")
            }
            None => String::new(),
        };
        println!(
            "{id:<48} [{} {} {}]{rate}",
            fmt_ns(m.min_ns),
            fmt_ns(m.mean_ns),
            fmt_ns(m.max_ns)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declares a group of benchmark functions, optionally with a config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_runs() {
        quick().bench_function("smoke/sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
    }

    #[test]
    fn group_with_throughput_and_input() {
        let mut c = quick();
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Bytes(4096));
        g.bench_with_input(
            BenchmarkId::new("memset", 4096usize),
            &4096usize,
            |b, &n| {
                b.iter(|| vec![0u8; n]);
            },
        );
        g.bench_function("elements", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }

    criterion_group!(list_form, smoke_target);
    criterion_group! {
        name = config_form;
        config = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        targets = smoke_target
    }

    fn smoke_target(c: &mut Criterion) {
        c.sample_size = 2;
        c.measurement_time = Duration::from_millis(20);
        c.warm_up_time = Duration::from_millis(5);
        c.bench_function("macro/smoke", |b| b.iter(|| black_box(2 * 2)));
    }

    #[test]
    fn macros_expand() {
        list_form();
        config_form();
    }
}
