//! Minimal offline stand-in for `rand` 0.8.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the API subset the workspace uses: `StdRng` (a
//! deterministic xoshiro256++ generator), the `Rng`/`RngCore`/`SeedableRng`
//! traits with `gen`, `gen_range`, `gen_bool` and `fill`, and the
//! `SliceRandom` shuffle/choose helpers. Streams are deterministic for a
//! given seed but intentionally *not* identical to upstream `rand`'s —
//! seeded tests assert statistical properties, not exact draws.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of raw random words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from their whole domain (the
/// `Standard` distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

// Uniform integer in [0, span) via 128-bit widening multiply; the bias is
// at most 2^-64, far below anything the Monte-Carlo tests can observe.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    // Only reachable for the full u64/i64 domain.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        let v = self.start + (self.end - self.start) * u;
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + (hi - lo) * f64::sample_standard(rng)
    }
}

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly from the type's whole domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample_standard(self) < p
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` via SplitMix64 key expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng, SplitMix64};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state would be a fixed point; SplitMix64 the
            // first lane to escape it (mirrors the xoshiro reference).
            if s.iter().all(|&w| w == 0) {
                let mut sm = SplitMix64(0xDEAD_BEEF);
                for w in &mut s {
                    *w = sm.next();
                }
            }
            StdRng { s }
        }
    }

    /// Alias: the small generator is the same xoshiro256++ core.
    pub type SmallRng = StdRng;
}

/// Sequence helpers (`shuffle`, `choose`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Random helpers on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles a uniformly chosen subset of `amount` elements into
        /// the front of the slice; returns `(chosen, rest)`.
        fn partial_shuffle<R: RngCore + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [Self::Item], &mut [Self::Item]);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn partial_shuffle<R: RngCore + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [T], &mut [T]) {
            let amount = amount.min(self.len());
            for i in 0..amount {
                let j = rng.gen_range(i..self.len());
                self.swap(i, j);
            }
            self.split_at_mut(amount)
        }
    }
}

/// The prelude of upstream `rand`, for `use rand::prelude::*` imports.
pub mod prelude {
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: usize = r.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_domain() {
        let mut r = StdRng::seed_from_u64(4);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[r.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_interval_is_uniformish() {
        let mut r = StdRng::seed_from_u64(5);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(6);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }

    #[test]
    fn choose_none_on_empty() {
        let mut r = StdRng::seed_from_u64(7);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut r).is_none());
        assert!([42u8].choose(&mut r).is_some());
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = StdRng::seed_from_u64(8);
        let mut buf = [0u8; 13];
        r.fill(&mut buf[..]);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
