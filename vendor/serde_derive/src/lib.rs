//! `#[derive(Serialize, Deserialize)]` for the vendored `serde` stand-in.
//!
//! Implemented without `syn`/`quote` (unavailable offline) by walking the
//! raw token stream. Supports the two shapes the workspace derives on:
//!
//! * structs with named fields — serialized as a JSON object in field
//!   declaration order;
//! * enums whose variants are all unit variants — serialized as the
//!   variant name string.
//!
//! Anything else (tuple structs, generics, data-carrying variants) is a
//! compile error pointing here, so unsupported shapes fail loudly instead
//! of misbehaving.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

enum Item {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<String> },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg)
        .parse()
        .expect("literal")
}

/// Skips leading attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` is always followed by a bracketed attribute body.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let kw = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "derive(Serialize/Deserialize) stand-in does not support generic type `{name}`"
        ));
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => {
            return Err(format!(
                "only brace-bodied types are supported for `{name}`, got {other:?}"
            ))
        }
    };

    match kw.as_str() {
        "struct" => Ok(Item::Struct {
            name,
            fields: parse_named_fields(body)?,
        }),
        "enum" => Ok(Item::Enum {
            name,
            variants: parse_unit_variants(body)?,
        }),
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let field = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "tuple structs are not supported (field `{field}`, got {other:?})"
                ))
            }
        }
        // Skip the type: scan to the next comma outside angle brackets.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(field);
    }
    Ok(fields)
}

fn parse_unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let variant = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(other) => {
                return Err(format!(
                    "only unit enum variants are supported (variant `{variant}`, got {other:?})"
                ))
            }
        }
        variants.push(variant);
    }
    Ok(variants)
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let pairs: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(::std::vec![{pairs}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from({v:?})),"
                    )
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(__value.field({f:?})?)?,"))
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__value: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__value: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::Error> {{\n\
                         match __value {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {arms}\n\
                                 __other => ::std::result::Result::Err(::serde::Error::new(\
                                     ::std::format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                             }},\n\
                             __other => ::std::result::Result::Err(::serde::Error::new(\
                                 ::std::format!(\"expected string variant for {name}, got {{}}\", __other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
