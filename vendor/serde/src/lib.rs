//! Minimal offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides just enough of a serialization framework for the
//! workspace: a JSON-shaped [`Value`] tree, [`Serialize`] / [`Deserialize`]
//! traits that convert to and from it, and `#[derive(Serialize,
//! Deserialize)]` macros (re-exported from the sibling `serde_derive`
//! proc-macro crate) supporting named-field structs and unit-variant
//! enums — the only shapes the workspace derives on. The sibling
//! `serde_json` crate renders [`Value`] to JSON text and parses it back.
//!
//! This is intentionally **not** upstream serde's zero-copy visitor
//! architecture; digests on the hot path use their own binary wire format
//! (`dcs-bitmap::digest`), so JSON here only serves configs and reports.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A dynamically-typed serialization tree (the JSON data model, with exact
/// 64-bit integers so `u64` bitmap words round-trip losslessly).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer (canonical form for all unsigned values).
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(pairs) => pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::new(format!("missing field `{name}`"))),
            other => Err(Error::new(format!(
                "expected object with field `{name}`, got {}",
                other.kind()
            ))),
        }
    }

    /// Short name of the value's variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Conversion from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, got {}", other.kind()))),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = match v {
                    Value::UInt(u) => *u,
                    Value::Int(i) => u64::try_from(*i)
                        .map_err(|_| Error::new("negative value for unsigned field"))?,
                    other => {
                        return Err(Error::new(format!(
                            "expected unsigned integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw).map_err(|_| {
                    Error::new(format!("integer {raw} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 {
                    Value::UInt(i as u64)
                } else {
                    Value::Int(i)
                }
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw: i64 = match v {
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| Error::new("integer too large for signed field"))?,
                    Value::Int(i) => *i,
                    other => {
                        return Err(Error::new(format!(
                            "expected integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw).map_err(|_| {
                    Error::new(format!("integer {raw} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Int(i) => Ok(*i as $t),
                    other => Err(Error::new(format!(
                        "expected number, got {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::new(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::new(format!("expected array, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| Error::new(format!("expected array of length {N}, got {got}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }

        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) if items.len() == [$($n),+].len() => {
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => Err(Error::new(format!(
                        "expected tuple array, got {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_serde_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<K: ToString + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: ToString, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn u64_is_exact() {
        let big = u64::MAX - 3;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
    }

    #[test]
    fn vec_and_option() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let none: Option<usize> = None;
        assert_eq!(Option::<usize>::from_value(&none.to_value()).unwrap(), None);
        let some = Some(9usize);
        assert_eq!(
            Option::<usize>::from_value(&some.to_value()).unwrap(),
            Some(9)
        );
    }

    #[test]
    fn field_lookup_errors_are_descriptive() {
        let obj = Value::Object(vec![("a".into(), Value::UInt(1))]);
        assert!(obj.field("a").is_ok());
        let err = obj.field("b").unwrap_err().to_string();
        assert!(err.contains("missing field `b`"), "{err}");
    }

    #[test]
    fn range_errors_are_reported() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
    }
}
