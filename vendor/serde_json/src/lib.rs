//! Minimal offline stand-in for `serde_json`: renders the vendored
//! `serde` [`Value`] tree to JSON text and parses JSON text back into it.
//! Integers are kept exact (64-bit), so bitmap words survive round trips.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Serialization / parse error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Result alias matching upstream `serde_json`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes `value` to human-readable indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0)?;
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) -> Result<()> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::new("non-finite float is not representable in JSON"));
            }
            let s = f.to_string();
            out.push_str(&s);
            // Keep the number recognisable as a float on re-parse.
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    pairs.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(pairs));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&(-3i64)).unwrap(), "-3");
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&true).unwrap(), "true");
    }

    #[test]
    fn u64_words_are_exact() {
        let words = vec![u64::MAX, u64::MAX - 1, 1u64 << 63];
        let json = to_string(&words).unwrap();
        assert_eq!(from_str::<Vec<u64>>(&json).unwrap(), words);
    }

    #[test]
    fn floats_reparse_as_floats() {
        let json = to_string(&2.0f64).unwrap();
        assert_eq!(json, "2.0");
        assert_eq!(from_str::<f64>(&json).unwrap(), 2.0);
        // Sub-normal-ish scientific notation survives too.
        let tiny = 6.5e-6f64;
        assert_eq!(from_str::<f64>(&to_string(&tiny).unwrap()).unwrap(), tiny);
    }

    #[test]
    fn strings_escape() {
        let s = "a\"b\\c\nd\te\u{1}".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = vec![1u32, 2];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<u32>>(&pretty).unwrap(), v);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<Vec<u64>>("[1, 2").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
