//! Synthetic traffic substrate.
//!
//! The paper evaluates on a tier-1 ISP packet trace we cannot ship, so this
//! crate builds the closest synthetic equivalent that exercises the same
//! code paths:
//!
//! * [`packet`] — 5-tuple flow labels and payload-carrying packets;
//! * [`gen`] — background traffic with Zipfian flow sizes (paper \[10\]) and
//!   the empirical Internet packet-size mix (paper \[3\]: 40/576/1500-byte
//!   modes);
//! * [`burst`] — ON/OFF load modulation so flow splitting sees the
//!   burstiness the stress test of Section V-B.4 is about;
//! * [`plant`] — "planting" instances of a common-content object into the
//!   traffic of chosen routers, aligned (no prefix) or unaligned (random
//!   per-instance prefix, the email-worm scenario);
//! * [`trace`] — a binary trace format so generated workloads can be saved
//!   and replayed byte-for-byte.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod burst;
pub mod gen;
pub mod packet;
pub mod plant;
pub mod trace;

#[cfg(test)]
mod proptests;

pub use gen::{BackgroundConfig, SizeMix};
pub use packet::{FlowLabel, Packet};
pub use plant::{ContentObject, Planting};
