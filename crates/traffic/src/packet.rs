//! Packets and flow labels.

use bytes::Bytes;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The classic 5-tuple flow label (paper Figure 9 hashes this to pick a
/// flow-split group, so all packets of one flow land in the same group).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlowLabel {
    /// Source IPv4 address.
    pub src_ip: u32,
    /// Destination IPv4 address.
    pub dst_ip: u32,
    /// Source transport port.
    pub src_port: u16,
    /// Destination transport port.
    pub dst_port: u16,
    /// IP protocol number (6 = TCP, 17 = UDP).
    pub proto: u8,
}

impl FlowLabel {
    /// Canonical 13-byte wire encoding, used as hash input.
    pub fn to_bytes(self) -> [u8; 13] {
        let mut b = [0u8; 13];
        b[0..4].copy_from_slice(&self.src_ip.to_be_bytes());
        b[4..8].copy_from_slice(&self.dst_ip.to_be_bytes());
        b[8..10].copy_from_slice(&self.src_port.to_be_bytes());
        b[10..12].copy_from_slice(&self.dst_port.to_be_bytes());
        b[12] = self.proto;
        b
    }

    /// Decodes the 13-byte wire encoding.
    pub fn from_bytes(b: &[u8; 13]) -> Self {
        FlowLabel {
            src_ip: u32::from_be_bytes(b[0..4].try_into().expect("4 bytes")),
            dst_ip: u32::from_be_bytes(b[4..8].try_into().expect("4 bytes")),
            src_port: u16::from_be_bytes(b[8..10].try_into().expect("2 bytes")),
            dst_port: u16::from_be_bytes(b[10..12].try_into().expect("2 bytes")),
            proto: b[12],
        }
    }

    /// A uniformly random TCP flow label.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        FlowLabel {
            src_ip: rng.gen(),
            dst_ip: rng.gen(),
            src_port: rng.gen_range(1024..=u16::MAX),
            dst_port: *[80u16, 443, 25, 8080, 6881]
                .get(rng.gen_range(0..5usize))
                .expect("index in range"),
            proto: 6,
        }
    }
}

/// One observed packet: flow label plus application-layer payload.
///
/// Network/transport headers are modelled only by their combined length
/// (40 bytes, IPv4+TCP without options) — the collectors strip them anyway
/// ("we strip the network and transport layer headers to obtain the
/// application layer data", Section III-A).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Flow the packet belongs to.
    pub flow: FlowLabel,
    /// Application-layer payload (shared, cheap to clone).
    pub payload: Bytes,
}

/// Combined IPv4 + TCP header length assumed for wire-size accounting.
pub const HEADER_LEN: usize = 40;

impl Packet {
    /// Creates a packet.
    pub fn new(flow: FlowLabel, payload: impl Into<Bytes>) -> Self {
        Packet {
            flow,
            payload: payload.into(),
        }
    }

    /// Total on-the-wire size (headers + payload) in bytes.
    pub fn wire_len(&self) -> usize {
        HEADER_LEN + self.payload.len()
    }

    /// Whether the packet carries application data (the collectors skip
    /// header-only packets: "We hash only packets which actually contain
    /// payloads").
    pub fn has_payload(&self) -> bool {
        !self.payload.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn flow_label_roundtrip() {
        let f = FlowLabel {
            src_ip: 0x0A000001,
            dst_ip: 0xC0A80102,
            src_port: 54321,
            dst_port: 80,
            proto: 6,
        };
        assert_eq!(FlowLabel::from_bytes(&f.to_bytes()), f);
    }

    #[test]
    fn flow_label_bytes_are_canonical() {
        let f = FlowLabel {
            src_ip: 1,
            dst_ip: 2,
            src_port: 3,
            dst_port: 4,
            proto: 17,
        };
        assert_eq!(f.to_bytes(), [0, 0, 0, 1, 0, 0, 0, 2, 0, 3, 0, 4, 17]);
    }

    #[test]
    fn random_flows_differ() {
        let mut r = StdRng::seed_from_u64(1);
        let a = FlowLabel::random(&mut r);
        let b = FlowLabel::random(&mut r);
        assert_ne!(a, b);
        assert_eq!(a.proto, 6);
    }

    #[test]
    fn packet_accounting() {
        let mut r = StdRng::seed_from_u64(2);
        let p = Packet::new(FlowLabel::random(&mut r), vec![0u8; 536]);
        assert_eq!(p.wire_len(), 576);
        assert!(p.has_payload());
        let ack = Packet::new(FlowLabel::random(&mut r), Vec::new());
        assert_eq!(ack.wire_len(), 40);
        assert!(!ack.has_payload());
    }
}
