//! Property-based tests for the traffic substrate.

use crate::packet::{FlowLabel, Packet};
use crate::plant::{ContentObject, Planting};
use crate::trace::{segment_epochs, TraceReader, TraceWriter};
use bytes::Bytes;
use proptest::prelude::*;

fn arb_flow() -> impl Strategy<Value = FlowLabel> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        any::<u8>(),
    )
        .prop_map(|(src_ip, dst_ip, src_port, dst_port, proto)| FlowLabel {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            proto,
        })
}

fn arb_packet() -> impl Strategy<Value = Packet> {
    (arb_flow(), proptest::collection::vec(any::<u8>(), 0..256))
        .prop_map(|(flow, payload)| Packet::new(flow, payload))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn flow_label_bytes_roundtrip(f in arb_flow()) {
        prop_assert_eq!(FlowLabel::from_bytes(&f.to_bytes()), f);
    }

    #[test]
    fn trace_roundtrip_arbitrary_packets(pkts in proptest::collection::vec(arb_packet(), 0..50)) {
        let mut w = TraceWriter::new(Vec::new()).unwrap();
        w.write_all_packets(&pkts).unwrap();
        let buf = w.finish().unwrap();
        let back: Vec<Packet> = TraceReader::new(&buf[..])
            .unwrap()
            .collect::<std::io::Result<_>>()
            .unwrap();
        prop_assert_eq!(back, pkts);
    }

    #[test]
    fn packetize_reassembles_to_prefix_plus_object(
        object in proptest::collection::vec(any::<u8>(), 1..400),
        prefix in proptest::collection::vec(any::<u8>(), 0..100),
        payload_size in 1usize..64,
    ) {
        let obj = ContentObject::new(object.clone());
        let chunks = obj.packetize(&prefix, payload_size);
        // All but the last chunk are full; concatenation reproduces the
        // stream exactly.
        for c in chunks.iter().rev().skip(1) {
            prop_assert_eq!(c.len(), payload_size);
        }
        let reassembled: Vec<u8> = chunks.iter().flat_map(|c| c.iter().copied()).collect();
        let mut stream = prefix.clone();
        stream.extend_from_slice(&object);
        prop_assert_eq!(reassembled, stream);
    }

    #[test]
    fn planted_instance_packet_count(
        obj_len in 1usize..2_000,
        payload_size in 8usize..256,
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let obj = ContentObject::new(vec![7u8; obj_len]);
        // Aligned: exactly ceil(len / size) packets.
        let plant = Planting::aligned(obj.clone(), payload_size);
        let inst = plant.instantiate(&mut rng);
        prop_assert_eq!(inst.len(), obj_len.div_ceil(payload_size));
        // Unaligned: prefix < payload_size adds at most one packet.
        let plant = Planting::unaligned(obj, payload_size);
        let inst = plant.instantiate(&mut rng);
        let base = obj_len.div_ceil(payload_size);
        prop_assert!(inst.len() >= base && inst.len() <= base + 1);
        // All packets of one instance share a flow.
        prop_assert!(inst.iter().all(|p| p.flow == inst[0].flow));
    }

    #[test]
    fn segmentation_covers_whole_prefix(
        pkts in proptest::collection::vec(arb_packet(), 0..60),
        epoch in 1usize..20,
    ) {
        let segs = segment_epochs(&pkts, epoch);
        prop_assert_eq!(segs.len(), pkts.len() / epoch);
        for (i, s) in segs.iter().enumerate() {
            prop_assert_eq!(s.len(), epoch);
            prop_assert_eq!(&s[0], &pkts[i * epoch]);
        }
    }

    #[test]
    fn wire_len_is_header_plus_payload(payload in proptest::collection::vec(any::<u8>(), 0..2000)) {
        let p = Packet::new(
            FlowLabel { src_ip: 1, dst_ip: 2, src_port: 3, dst_port: 4, proto: 6 },
            Bytes::from(payload.clone()),
        );
        prop_assert_eq!(p.wire_len(), 40 + payload.len());
        prop_assert_eq!(p.has_payload(), !payload.is_empty());
    }
}
