//! Common-content objects and planting.
//!
//! A [`ContentObject`] is the "common content" of the paper: a byte string
//! (worm binary, hot file, spam body) that is packetised and injected into
//! the traffic of a chosen set of routers. The **aligned** case transmits
//! the object as-is, so every instance packetises identically; the
//! **unaligned** case prepends a per-instance variable prefix (the SMTP
//! header of an email worm), shifting the packetisation by `prefix mod
//! payload_size` bytes.

use crate::packet::{FlowLabel, Packet};
use bytes::Bytes;
use rand::Rng;

/// A common-content object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContentObject {
    bytes: Bytes,
}

impl ContentObject {
    /// Wraps explicit bytes.
    pub fn new(bytes: impl Into<Bytes>) -> Self {
        ContentObject {
            bytes: bytes.into(),
        }
    }

    /// A pseudorandom object of `len` bytes (reproducible from the RNG).
    pub fn random<R: Rng + ?Sized>(rng: &mut R, len: usize) -> Self {
        let mut b = vec![0u8; len];
        rng.fill(b.as_mut_slice());
        ContentObject {
            bytes: Bytes::from(b),
        }
    }

    /// An object that packetises into exactly `packets` payloads of
    /// `payload_size` bytes (aligned case, no prefix).
    pub fn random_with_packets<R: Rng + ?Sized>(
        rng: &mut R,
        packets: usize,
        payload_size: usize,
    ) -> Self {
        Self::random(rng, packets * payload_size)
    }

    /// Object length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the object is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Raw bytes.
    pub fn bytes(&self) -> &Bytes {
        &self.bytes
    }

    /// Packetises `prefix ++ object` into payloads of `payload_size`
    /// bytes. The final partial payload (if any) is kept — real stacks
    /// send it, and the collectors treat it like any other packet.
    ///
    /// # Panics
    /// Panics if `payload_size == 0`.
    pub fn packetize(&self, prefix: &[u8], payload_size: usize) -> Vec<Bytes> {
        assert!(payload_size > 0, "payload size must be positive");
        let mut stream = Vec::with_capacity(prefix.len() + self.bytes.len());
        stream.extend_from_slice(prefix);
        stream.extend_from_slice(&self.bytes);
        stream
            .chunks(payload_size)
            .map(Bytes::copy_from_slice)
            .collect()
    }
}

/// Where and how a content object is planted.
#[derive(Debug, Clone)]
pub struct Planting {
    /// The object being spread.
    pub object: ContentObject,
    /// Payload size used by the carrying application (the paper assumes
    /// one popular size per content, e.g. 536).
    pub payload_size: usize,
    /// Per-instance prefix length: `None` for the aligned case; for the
    /// unaligned case, draw a fresh prefix of the contained length range
    /// per instance.
    pub prefix_range: Option<std::ops::Range<usize>>,
}

impl Planting {
    /// Aligned planting (identical packetisation everywhere).
    pub fn aligned(object: ContentObject, payload_size: usize) -> Self {
        Planting {
            object,
            payload_size,
            prefix_range: None,
        }
    }

    /// Unaligned planting with per-instance prefix drawn from
    /// `0..payload_size` (all residues equally likely, the paper's
    /// uniform-prefix model).
    pub fn unaligned(object: ContentObject, payload_size: usize) -> Self {
        let range = 0..payload_size;
        Planting {
            object,
            payload_size,
            prefix_range: Some(range),
        }
    }

    /// Generates one *instance* of the planted content as a packet
    /// sequence on a fresh random flow.
    pub fn instantiate<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<Packet> {
        let prefix: Vec<u8> = match &self.prefix_range {
            None => Vec::new(),
            Some(range) => {
                let len = if range.is_empty() {
                    0
                } else {
                    rng.gen_range(range.clone())
                };
                let mut p = vec![0u8; len];
                rng.fill(p.as_mut_slice());
                p
            }
        };
        let flow = FlowLabel::random(rng);
        self.object
            .packetize(&prefix, self.payload_size)
            .into_iter()
            .map(|payload| Packet::new(flow, payload))
            .collect()
    }

    /// Splices one instance into `traffic` at a random position (packets
    /// of the instance stay in order, as TCP would deliver them).
    pub fn plant_into<R: Rng + ?Sized>(&self, rng: &mut R, traffic: &mut Vec<Packet>) {
        let instance = self.instantiate(rng);
        let at = if traffic.is_empty() {
            0
        } else {
            rng.gen_range(0..=traffic.len())
        };
        traffic.splice(at..at, instance);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn packetize_exact_multiple() {
        let obj = ContentObject::new(vec![7u8; 300]);
        let chunks = obj.packetize(&[], 100);
        assert_eq!(chunks.len(), 3);
        assert!(chunks.iter().all(|c| c.len() == 100));
    }

    #[test]
    fn packetize_with_remainder_and_prefix() {
        let obj = ContentObject::new(vec![1u8; 250]);
        let chunks = obj.packetize(&[9u8; 30], 100);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0][..30], [9u8; 30][..]);
        assert_eq!(chunks[2].len(), 80);
    }

    #[test]
    fn aligned_instances_have_identical_payloads() {
        let mut r = rng();
        let obj = ContentObject::random_with_packets(&mut r, 5, 64);
        let plant = Planting::aligned(obj, 64);
        let a = plant.instantiate(&mut r);
        let b = plant.instantiate(&mut r);
        assert_eq!(a.len(), 5);
        for (pa, pb) in a.iter().zip(&b) {
            assert_eq!(pa.payload, pb.payload, "aligned payloads must match");
        }
        assert_ne!(a[0].flow, b[0].flow, "instances travel on distinct flows");
    }

    #[test]
    fn unaligned_instances_share_shifted_content() {
        let mut r = rng();
        let obj = ContentObject::random(&mut r, 64 * 10);
        let plant = Planting::unaligned(obj.clone(), 64);
        // With prefix l, payload k (k >= 1) = object[(k*64 - l) .. (k+1)*64 - l).
        let inst = plant.instantiate(&mut r);
        assert!(inst.len() >= 10);
        // Find the shift by matching the second payload into the object.
        let window = &inst[1].payload[..];
        let obj_bytes = obj.bytes();
        let found = (0..=obj_bytes.len() - window.len())
            .any(|off| &obj_bytes[off..off + window.len()] == window);
        assert!(found, "payload should be a contiguous slice of the object");
    }

    #[test]
    fn plant_into_preserves_order_and_count() {
        let mut r = rng();
        let obj = ContentObject::random_with_packets(&mut r, 4, 32);
        let plant = Planting::aligned(obj, 32);
        let filler = Packet::new(FlowLabel::random(&mut r), vec![0u8; 8]);
        let mut traffic = vec![filler.clone(); 20];
        plant.plant_into(&mut r, &mut traffic);
        assert_eq!(traffic.len(), 24);
        // The 4 planted packets share a flow and appear contiguously in order.
        let planted_flow = traffic
            .iter()
            .find(|p| p.flow != filler.flow)
            .expect("planted packets present")
            .flow;
        let planted: Vec<&Packet> = traffic.iter().filter(|p| p.flow == planted_flow).collect();
        assert_eq!(planted.len(), 4);
    }

    #[test]
    fn plant_into_empty_traffic() {
        let mut r = rng();
        let obj = ContentObject::random_with_packets(&mut r, 2, 16);
        let plant = Planting::aligned(obj, 16);
        let mut traffic = Vec::new();
        plant.plant_into(&mut r, &mut traffic);
        assert_eq!(traffic.len(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_payload_size_panics() {
        ContentObject::new(vec![1u8]).packetize(&[], 0);
    }
}
