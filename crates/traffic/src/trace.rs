//! Binary packet-trace format (save / replay synthetic workloads).
//!
//! A minimal pcap-like container: a fixed header, then one record per
//! packet (13-byte flow label, little-endian u32 payload length, payload
//! bytes). Streaming reader and writer over any `io::Read`/`io::Write`.

use crate::packet::{FlowLabel, Packet};
use bytes::Bytes;
use std::io::{self, Read, Write};

/// File magic (`b"DCSTRACE"`).
pub const TRACE_MAGIC: [u8; 8] = *b"DCSTRACE";
const VERSION: u16 = 1;

/// Streaming trace writer.
pub struct TraceWriter<W: Write> {
    inner: W,
    count: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Writes the file header and returns the writer.
    pub fn new(mut inner: W) -> io::Result<Self> {
        inner.write_all(&TRACE_MAGIC)?;
        inner.write_all(&VERSION.to_le_bytes())?;
        Ok(TraceWriter { inner, count: 0 })
    }

    /// Appends one packet record.
    pub fn write_packet(&mut self, pkt: &Packet) -> io::Result<()> {
        self.inner.write_all(&pkt.flow.to_bytes())?;
        let len = u32::try_from(pkt.payload.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "payload too large"))?;
        self.inner.write_all(&len.to_le_bytes())?;
        self.inner.write_all(&pkt.payload)?;
        self.count += 1;
        Ok(())
    }

    /// Appends many packets.
    pub fn write_all_packets<'a>(
        &mut self,
        pkts: impl IntoIterator<Item = &'a Packet>,
    ) -> io::Result<()> {
        for p in pkts {
            self.write_packet(p)?;
        }
        Ok(())
    }

    /// Number of packets written so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Flushes and returns the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// Streaming trace reader; iterate to obtain packets.
pub struct TraceReader<R: Read> {
    inner: R,
}

impl<R: Read> TraceReader<R> {
    /// Validates the header and returns the reader.
    pub fn new(mut inner: R) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        inner.read_exact(&mut magic)?;
        if magic != TRACE_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad trace magic",
            ));
        }
        let mut ver = [0u8; 2];
        inner.read_exact(&mut ver)?;
        if u16::from_le_bytes(ver) != VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "unsupported trace version",
            ));
        }
        Ok(TraceReader { inner })
    }

    /// Reads the next packet; `Ok(None)` at a clean end of file.
    pub fn read_packet(&mut self) -> io::Result<Option<Packet>> {
        let mut flow = [0u8; 13];
        match self.inner.read_exact(&mut flow) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e),
        }
        let mut len = [0u8; 4];
        self.inner.read_exact(&mut len)?;
        let len = u32::from_le_bytes(len) as usize;
        let mut payload = vec![0u8; len];
        self.inner.read_exact(&mut payload)?;
        Ok(Some(Packet::new(
            FlowLabel::from_bytes(&flow),
            Bytes::from(payload),
        )))
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = io::Result<Packet>;

    fn next(&mut self) -> Option<Self::Item> {
        self.read_packet().transpose()
    }
}

/// Splits a packet sequence into epochs of `epoch_packets` packets — the
/// paper's "trace is cut into segments of certain number of packets each;
/// each segment corresponds approximately to one second worth of traffic".
/// The final short segment (if any) is dropped, as the paper's methodology
/// implies whole segments.
pub fn segment_epochs(packets: &[Packet], epoch_packets: usize) -> Vec<&[Packet]> {
    assert!(epoch_packets > 0, "epoch size must be positive");
    packets.chunks_exact(epoch_packets).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sample_packets(n: usize) -> Vec<Packet> {
        let mut r = StdRng::seed_from_u64(5);
        (0..n)
            .map(|_| {
                let len = r.gen_range(0..200);
                let mut payload = vec![0u8; len];
                r.fill(payload.as_mut_slice());
                Packet::new(FlowLabel::random(&mut r), Bytes::from(payload))
            })
            .collect()
    }

    #[test]
    fn roundtrip() {
        let pkts = sample_packets(50);
        let mut w = TraceWriter::new(Vec::new()).unwrap();
        w.write_all_packets(&pkts).unwrap();
        assert_eq!(w.count(), 50);
        let buf = w.finish().unwrap();
        let back: Vec<Packet> = TraceReader::new(&buf[..])
            .unwrap()
            .collect::<io::Result<_>>()
            .unwrap();
        assert_eq!(back, pkts);
    }

    #[test]
    fn empty_trace() {
        let w = TraceWriter::new(Vec::new()).unwrap();
        let buf = w.finish().unwrap();
        let back: Vec<Packet> = TraceReader::new(&buf[..])
            .unwrap()
            .collect::<io::Result<_>>()
            .unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"NOTATRCE\x01\x00".to_vec();
        assert!(TraceReader::new(&buf[..]).is_err());
    }

    #[test]
    fn truncated_record_errors() {
        let pkts = sample_packets(3);
        let mut w = TraceWriter::new(Vec::new()).unwrap();
        w.write_all_packets(&pkts).unwrap();
        let mut buf = w.finish().unwrap();
        buf.truncate(buf.len() - 1);
        let result: io::Result<Vec<Packet>> = TraceReader::new(&buf[..]).unwrap().collect();
        assert!(result.is_err(), "truncated payload must surface an error");
    }

    #[test]
    fn segmentation() {
        let pkts = sample_packets(105);
        let segs = segment_epochs(&pkts, 25);
        assert_eq!(segs.len(), 4, "final short segment dropped");
        assert!(segs.iter().all(|s| s.len() == 25));
        assert_eq!(segs[1][0], pkts[25]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_epoch_size_panics() {
        segment_epochs(&[], 0);
    }
}
