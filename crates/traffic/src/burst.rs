//! Bursty load modulation.
//!
//! The stress test of Section V-B.4 exists because real traffic is bursty:
//! "due to the burstiness of the traffic, some groups will have more
//! packets hashed to it and some will have less". Two mechanisms produce
//! that effect here:
//!
//! * **epoch-level** ON/OFF modulation — per-epoch load multipliers drawn
//!   from a heavy-tailed (Pareto) law, so consecutive measurement epochs
//!   carry very different packet counts;
//! * **flow-level** elephants — already provided by the Zipf flow draw in
//!   [`crate::gen`]; combining both reproduces the "a small number of rows
//!   absorb a large percentage of traffic" behaviour the paper observed.

use dcs_stats::sample::sample_pareto;
use rand::Rng;

/// Heavy-tailed per-epoch load multiplier generator.
#[derive(Debug, Clone)]
pub struct BurstModel {
    /// Pareto shape; smaller = burstier. Must be > 1 so the mean exists.
    pub alpha: f64,
    /// Probability an epoch is OFF (near-idle).
    pub off_prob: f64,
    /// Load multiplier applied during OFF epochs.
    pub off_scale: f64,
}

impl Default for BurstModel {
    fn default() -> Self {
        BurstModel {
            alpha: 1.5,
            off_prob: 0.2,
            off_scale: 0.05,
        }
    }
}

impl BurstModel {
    /// Draws the load multiplier for one epoch; normalised so the ON-state
    /// mean multiplier is 1.
    pub fn epoch_multiplier<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        assert!(self.alpha > 1.0, "alpha must exceed 1 for a finite mean");
        if rng.gen::<f64>() < self.off_prob {
            return self.off_scale;
        }
        // Pareto(xm, alpha) has mean alpha·xm/(alpha−1); choose xm so the
        // mean is 1.
        let xm = (self.alpha - 1.0) / self.alpha;
        sample_pareto(rng, xm, self.alpha)
    }

    /// Packet counts for `epochs` epochs around a base count.
    pub fn epoch_packet_counts<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        base: usize,
        epochs: usize,
    ) -> Vec<usize> {
        (0..epochs)
            .map(|_| {
                let m = self.epoch_multiplier(rng);
                ((base as f64 * m).round() as usize).max(1)
            })
            .collect()
    }
}

/// Coefficient of variation (σ/μ) of a count sequence — the burstiness
/// measure used in tests and experiment reports.
pub fn coefficient_of_variation(counts: &[usize]) -> f64 {
    assert!(!counts.is_empty(), "need at least one count");
    let n = counts.len() as f64;
    let mean = counts.iter().sum::<usize>() as f64 / n;
    if mean == 0.0 {
        return 0.0;
    }
    let var = counts
        .iter()
        .map(|&c| (c as f64 - mean).powi(2))
        .sum::<f64>()
        / n;
    var.sqrt() / mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xB0057)
    }

    #[test]
    fn multipliers_positive() {
        let m = BurstModel::default();
        let mut r = rng();
        for _ in 0..1000 {
            assert!(m.epoch_multiplier(&mut r) > 0.0);
        }
    }

    #[test]
    fn bursty_counts_have_high_cv() {
        let m = BurstModel {
            alpha: 1.2,
            off_prob: 0.3,
            off_scale: 0.02,
        };
        let mut r = rng();
        let bursty = m.epoch_packet_counts(&mut r, 10_000, 400);
        let smooth: Vec<usize> = vec![10_000; 400];
        assert!(
            coefficient_of_variation(&bursty) > 0.8,
            "cv {} not bursty",
            coefficient_of_variation(&bursty)
        );
        assert_eq!(coefficient_of_variation(&smooth), 0.0);
    }

    #[test]
    fn off_epochs_occur() {
        let m = BurstModel {
            alpha: 2.0,
            off_prob: 0.5,
            off_scale: 0.01,
        };
        let mut r = rng();
        let counts = m.epoch_packet_counts(&mut r, 1000, 200);
        let off = counts.iter().filter(|&&c| c <= 20).count();
        assert!(off > 50, "expected many OFF epochs, saw {off}");
    }

    #[test]
    fn counts_never_zero() {
        let m = BurstModel {
            alpha: 1.5,
            off_prob: 0.9,
            off_scale: 0.0,
        };
        let mut r = rng();
        assert!(m
            .epoch_packet_counts(&mut r, 100, 50)
            .iter()
            .all(|&c| c >= 1));
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_panics() {
        let m = BurstModel {
            alpha: 0.9,
            off_prob: 0.0,
            off_scale: 1.0,
        };
        m.epoch_multiplier(&mut rng());
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn cv_empty_panics() {
        coefficient_of_variation(&[]);
    }
}
