//! Background-traffic generation.
//!
//! Background packets carry pseudorandom payloads — matching the paper's
//! observation that real payloads hash like random data ("our randomness
//! test for the input traffic shows that the traffic has almost random
//! value of the contents"). Flow structure is what matters: packets are
//! attributed to flows by Zipf rank draws, so a few elephant flows carry a
//! large share of packets (paper \[10\]) and flow splitting experiences
//! realistic imbalance.

use crate::packet::{FlowLabel, Packet};
use bytes::Bytes;
use dcs_stats::sample::Zipf;
use rand::Rng;

/// A discrete payload-size distribution.
#[derive(Debug, Clone)]
pub struct SizeMix {
    entries: Vec<(usize, f64)>, // (payload bytes, cumulative probability)
}

impl SizeMix {
    /// Builds a mix from `(payload_size, weight)` pairs.
    ///
    /// # Panics
    /// Panics if empty or all weights are zero/negative.
    pub fn new(pairs: &[(usize, f64)]) -> Self {
        assert!(!pairs.is_empty(), "size mix needs at least one entry");
        let total: f64 = pairs.iter().map(|&(_, w)| w).sum();
        assert!(total > 0.0, "size mix needs positive total weight");
        let mut acc = 0.0;
        let entries = pairs
            .iter()
            .map(|&(s, w)| {
                assert!(w >= 0.0, "negative weight");
                acc += w / total;
                (s, acc)
            })
            .collect();
        SizeMix { entries }
    }

    /// The empirical Internet mix of paper \[3\]: header-only packets
    /// (40-byte wire size, empty payload), 576-byte packets (536-byte
    /// payload) and 1500-byte packets (1460-byte payload).
    pub fn internet_default() -> Self {
        SizeMix::new(&[(0, 0.35), (536, 0.45), (1460, 0.20)])
    }

    /// A mix where every payload is `size` bytes (for controlled
    /// experiments).
    pub fn constant(size: usize) -> Self {
        SizeMix::new(&[(size, 1.0)])
    }

    /// Draws a payload size.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.entries
            .iter()
            .find(|&&(_, c)| u <= c)
            .map(|&(s, _)| s)
            .unwrap_or_else(|| self.entries.last().expect("non-empty").0)
    }
}

/// Configuration of one router's background traffic for one epoch.
#[derive(Debug, Clone)]
pub struct BackgroundConfig {
    /// Number of packets to generate.
    pub packets: usize,
    /// Number of distinct candidate flows.
    pub flows: usize,
    /// Zipf exponent of the per-packet flow-rank draw (1.0 ≈ Internet-like;
    /// 0.0 = uniform flows, no elephants).
    pub zipf_exponent: f64,
    /// Payload-size distribution.
    pub size_mix: SizeMix,
}

impl Default for BackgroundConfig {
    fn default() -> Self {
        BackgroundConfig {
            packets: 10_000,
            flows: 2_000,
            zipf_exponent: 1.0,
            size_mix: SizeMix::internet_default(),
        }
    }
}

/// Generates one epoch of background traffic for one router.
///
/// Each packet's flow is chosen by a Zipf draw over a fixed per-epoch flow
/// table; payloads are filled with RNG bytes, so every background packet is
/// (with overwhelming probability) unique content.
pub fn generate_epoch<R: Rng + ?Sized>(rng: &mut R, cfg: &BackgroundConfig) -> Vec<Packet> {
    let flow_table: Vec<FlowLabel> = (0..cfg.flows).map(|_| FlowLabel::random(rng)).collect();
    let zipf = Zipf::new(cfg.flows.max(1), cfg.zipf_exponent);
    let mut out = Vec::with_capacity(cfg.packets);
    for _ in 0..cfg.packets {
        let rank = zipf.sample(rng);
        let flow = flow_table[rank - 1];
        let size = cfg.size_mix.sample(rng);
        let mut payload = vec![0u8; size];
        rng.fill(payload.as_mut_slice());
        out.push(Packet::new(flow, Bytes::from(payload)));
    }
    out
}

/// Total wire bytes of a packet sequence (for digest-compression
/// accounting).
pub fn wire_bytes(packets: &[Packet]) -> usize {
    packets.iter().map(Packet::wire_len).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xBEEF)
    }

    #[test]
    fn size_mix_respects_weights() {
        let mix = SizeMix::new(&[(100, 1.0), (200, 3.0)]);
        let mut r = rng();
        let mut small = 0;
        let n = 10_000;
        for _ in 0..n {
            if mix.sample(&mut r) == 100 {
                small += 1;
            }
        }
        let frac = small as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "fraction {frac} far from 0.25");
    }

    #[test]
    fn size_mix_constant() {
        let mix = SizeMix::constant(536);
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(mix.sample(&mut r), 536);
        }
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn empty_mix_rejected() {
        SizeMix::new(&[]);
    }

    #[test]
    fn epoch_has_requested_packets() {
        let mut r = rng();
        let cfg = BackgroundConfig {
            packets: 500,
            flows: 50,
            ..BackgroundConfig::default()
        };
        let pkts = generate_epoch(&mut r, &cfg);
        assert_eq!(pkts.len(), 500);
    }

    #[test]
    fn flow_sizes_are_skewed() {
        let mut r = rng();
        let cfg = BackgroundConfig {
            packets: 20_000,
            flows: 1_000,
            zipf_exponent: 1.1,
            size_mix: SizeMix::constant(536),
        };
        let pkts = generate_epoch(&mut r, &cfg);
        let mut counts: HashMap<FlowLabel, usize> = HashMap::new();
        for p in &pkts {
            *counts.entry(p.flow).or_default() += 1;
        }
        let mut sizes: Vec<usize> = counts.values().copied().collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        // Elephant check: the largest flow should dwarf the median flow.
        let median = sizes[sizes.len() / 2];
        assert!(
            sizes[0] > 10 * median.max(1),
            "largest {} vs median {median}: not Zipfian",
            sizes[0]
        );
    }

    #[test]
    fn payloads_are_unique_content() {
        let mut r = rng();
        let cfg = BackgroundConfig {
            packets: 2_000,
            flows: 100,
            zipf_exponent: 1.0,
            size_mix: SizeMix::constant(64),
        };
        let pkts = generate_epoch(&mut r, &cfg);
        let distinct: std::collections::HashSet<&[u8]> =
            pkts.iter().map(|p| p.payload.as_ref()).collect();
        assert_eq!(distinct.len(), 2_000, "background payloads must be unique");
    }

    #[test]
    fn wire_bytes_accounting() {
        let mut r = rng();
        let cfg = BackgroundConfig {
            packets: 10,
            flows: 5,
            zipf_exponent: 0.0,
            size_mix: SizeMix::constant(100),
        };
        let pkts = generate_epoch(&mut r, &cfg);
        assert_eq!(wire_bytes(&pkts), 10 * 140);
    }
}
