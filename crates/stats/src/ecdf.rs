//! Empirical CDFs and summary statistics for Monte-Carlo output.
//!
//! Figure 13 of the paper plots the empirical CDF of the largest connected
//! component over repeated trials; [`Ecdf`] is that object, plus the
//! quantile and threshold-exceedance queries the false-positive /
//! false-negative analysis needs.

/// An empirical distribution over `f64` samples.
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from samples (NaNs are rejected).
    ///
    /// # Panics
    /// Panics if `samples` is empty or contains NaN.
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty(), "ECDF needs at least one sample");
        assert!(
            samples.iter().all(|x| !x.is_nan()),
            "ECDF samples must not contain NaN"
        );
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after check"));
        Ecdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false (construction rejects empty sample sets).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `F(x) = P[X ≤ x]` under the empirical measure.
    pub fn cdf(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// `P[X > x]` under the empirical measure — e.g. the fraction of trials
    /// whose largest component exceeded the alarm threshold.
    pub fn exceed(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }

    /// The `q`-quantile (nearest-rank).
    ///
    /// # Panics
    /// Panics unless `0 ≤ q ≤ 1`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile level out of range");
        if q == 0.0 {
            return self.sorted[0];
        }
        let rank = (q * self.sorted.len() as f64).ceil() as usize;
        self.sorted[rank.clamp(1, self.sorted.len()) - 1]
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Unbiased sample variance (0 for a single sample).
    pub fn variance(&self) -> f64 {
        let n = self.sorted.len();
        if n < 2 {
            return 0.0;
        }
        let m = self.mean();
        self.sorted.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (n - 1) as f64
    }

    /// Minimum sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty")
    }

    /// The sorted samples (for plotting the CDF as a step function).
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Kolmogorov–Smirnov statistic against a *continuous* reference CDF:
    /// `sup_x |F_n(x) − F(x)|`. Ties are grouped so repeated samples form
    /// one ECDF jump; both sides of each jump are compared (where the
    /// supremum of a step function against a continuous monotone F is
    /// attained).
    pub fn ks_statistic(&self, cdf: impl Fn(f64) -> f64) -> f64 {
        let n = self.sorted.len() as f64;
        let mut d = 0.0f64;
        let mut i = 0usize;
        while i < self.sorted.len() {
            let x = self.sorted[i];
            let mut j = i;
            while j < self.sorted.len() && self.sorted[j] == x {
                j += 1;
            }
            let f = cdf(x);
            let lo = i as f64 / n; // ECDF just below x
            let hi = j as f64 / n; // ECDF at x
            d = d.max((f - lo).abs()).max((hi - f).abs());
            i = j;
        }
        d
    }

    /// Kolmogorov–Smirnov statistic against a *discrete* (right-continuous
    /// step) reference CDF: compares the two right-continuous functions at
    /// the distinct sample points only. Under H₀ this statistic is
    /// stochastically no larger than the continuous-case statistic, so
    /// [`ks_critical`] stays valid (conservatively).
    pub fn ks_statistic_discrete(&self, cdf: impl Fn(f64) -> f64) -> f64 {
        let n = self.sorted.len() as f64;
        let mut d = 0.0f64;
        let mut i = 0usize;
        while i < self.sorted.len() {
            let x = self.sorted[i];
            let mut j = i;
            while j < self.sorted.len() && self.sorted[j] == x {
                j += 1;
            }
            d = d.max((cdf(x) - j as f64 / n).abs());
            i = j;
        }
        d
    }
}

/// Approximate Kolmogorov–Smirnov critical value at level `alpha` for `n`
/// samples: `sqrt(−ln(α/2) / 2n)` (the asymptotic one-sample bound; for a
/// *discrete* reference distribution the test is conservative, i.e. the
/// true rejection rate is below α).
///
/// # Panics
/// Panics unless `n > 0` and `0 < alpha < 1`.
pub fn ks_critical(n: usize, alpha: f64) -> f64 {
    assert!(n > 0, "need samples");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha in (0,1)");
    (-(alpha / 2.0).ln() / (2.0 * n as f64)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_step_function() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0, 2.0]);
        assert_eq!(e.cdf(0.5), 0.0);
        assert_eq!(e.cdf(1.0), 0.25);
        assert_eq!(e.cdf(2.0), 0.75);
        assert_eq!(e.cdf(3.0), 1.0);
        assert_eq!(e.cdf(99.0), 1.0);
    }

    #[test]
    fn exceed_complements() {
        let e = Ecdf::new(vec![10.0, 20.0, 30.0, 40.0]);
        assert!((e.exceed(20.0) - 0.5).abs() < 1e-12);
        assert_eq!(e.exceed(40.0), 0.0);
        assert_eq!(e.exceed(0.0), 1.0);
    }

    #[test]
    fn quantiles() {
        let e = Ecdf::new((1..=100).map(f64::from).collect());
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.quantile(0.5), 50.0);
        assert_eq!(e.quantile(1.0), 100.0);
        assert_eq!(e.quantile(0.01), 1.0);
    }

    #[test]
    fn moments() {
        let e = Ecdf::new(vec![2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((e.mean() - 5.0).abs() < 1e-12);
        assert!((e.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(e.min(), 2.0);
        assert_eq!(e.max(), 9.0);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_rejected() {
        Ecdf::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        Ecdf::new(vec![1.0, f64::NAN]);
    }

    #[test]
    fn single_sample() {
        let e = Ecdf::new(vec![42.0]);
        assert_eq!(e.variance(), 0.0);
        assert_eq!(e.quantile(0.5), 42.0);
    }

    #[test]
    fn ks_accepts_matching_distribution() {
        // Deterministic low-discrepancy "uniform" sample.
        let n = 500;
        let samples: Vec<f64> = (0..n).map(|i| (i as f64 + 0.5) / n as f64).collect();
        let e = Ecdf::new(samples);
        let d = e.ks_statistic(|x| x.clamp(0.0, 1.0));
        assert!(d < ks_critical(n, 0.01), "d = {d} rejects a perfect fit");
    }

    #[test]
    fn ks_rejects_shifted_distribution() {
        let n = 500;
        let samples: Vec<f64> = (0..n).map(|i| (i as f64 + 0.5) / n as f64).collect();
        let e = Ecdf::new(samples);
        // Reference shifted by 0.2: the statistic must blow past critical.
        let d = e.ks_statistic(|x| (x - 0.2).clamp(0.0, 1.0));
        assert!(d > ks_critical(n, 0.01) * 2.0, "d = {d} too small");
    }

    #[test]
    fn ks_validates_binomial_sampler() {
        // Goodness-of-fit of the from-scratch sampler against binocdf —
        // conservative for a discrete law, so a pass is meaningful.
        use crate::binomial::binocdf;
        use crate::sample::sample_binomial;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(0x5EED);
        let (n_trials, p) = (60u64, 0.3);
        let samples: Vec<f64> = (0..800)
            .map(|_| sample_binomial(&mut rng, n_trials, p) as f64)
            .collect();
        let e = Ecdf::new(samples);
        let d = e.ks_statistic_discrete(|x| binocdf(x.floor() as i64, n_trials, p));
        assert!(
            d < ks_critical(800, 0.001),
            "binomial sampler fails KS: d = {d}"
        );
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ks_critical_bad_alpha() {
        ks_critical(10, 1.5);
    }
}
