//! Special functions: log-gamma, log-factorial, log-binomial-coefficient.
//!
//! All the paper's combinatorial bounds (`C(4M, b)`, `C(102400, m)`, …)
//! overflow `f64` long before the probabilities become uninteresting, so
//! everything here works in natural-log space.

/// Natural log of the gamma function, Lanczos approximation (g = 7, 9
/// coefficients). Absolute error below ~1e-13 for `x > 0`.
///
/// # Panics
/// Panics if `x <= 0` (the reflection branch is not needed by this crate).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.5203681218851,
        -1259.1392167224028,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507343278686905,
        -0.13857109526572012,
        9.984_369_578_019_572e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection: ln Γ(x) = ln(π / sin(πx)) − ln Γ(1−x)
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Natural log of `n!`, exact-table for small `n`, `ln_gamma` beyond.
pub fn ln_factorial(n: u64) -> f64 {
    const TABLE_LEN: usize = 128;
    // Build the small table once.
    static TABLE: std::sync::OnceLock<[f64; TABLE_LEN]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0.0f64; TABLE_LEN];
        let mut acc = 0.0f64;
        for (i, slot) in t.iter_mut().enumerate() {
            if i > 0 {
                acc += (i as f64).ln();
            }
            *slot = acc;
        }
        t
    });
    if (n as usize) < TABLE_LEN {
        table[n as usize]
    } else {
        ln_gamma(n as f64 + 1.0)
    }
}

/// Natural log of the binomial coefficient `C(n, k)`.
///
/// Returns `f64::NEG_INFINITY` when `k > n` (the coefficient is zero).
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    let k = k.min(n - k);
    if k == 0 {
        return 0.0;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * b.abs().max(1.0),
            "{a} != {b} (tol {tol})"
        );
    }

    #[test]
    fn ln_gamma_known_values() {
        assert_close(ln_gamma(1.0), 0.0, 1e-12);
        assert_close(ln_gamma(2.0), 0.0, 1e-12);
        assert_close(ln_gamma(5.0), 24.0f64.ln(), 1e-12); // Γ(5) = 4!
        assert_close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-12);
        // Γ(10.5) known value 1133278.3889487855
        assert_close(ln_gamma(10.5), 1133278.3889487855f64.ln(), 1e-10);
    }

    #[test]
    #[should_panic(expected = "requires x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }

    #[test]
    fn ln_factorial_matches_direct_product() {
        let mut acc = 1.0f64;
        for n in 1..=20u64 {
            acc *= n as f64;
            assert_close(ln_factorial(n), acc.ln(), 1e-12);
        }
    }

    #[test]
    fn ln_factorial_table_gamma_seam() {
        // Values on both sides of the table boundary agree with ln_gamma.
        for n in [126u64, 127, 128, 129, 1000] {
            assert_close(ln_factorial(n), ln_gamma(n as f64 + 1.0), 1e-12);
        }
    }

    #[test]
    fn ln_choose_small_exact() {
        assert_close(ln_choose(5, 2), 10.0f64.ln(), 1e-12);
        assert_close(ln_choose(10, 5), 252.0f64.ln(), 1e-12);
        assert_eq!(ln_choose(5, 0), 0.0);
        assert_eq!(ln_choose(5, 5), 0.0);
        assert_eq!(ln_choose(3, 4), f64::NEG_INFINITY);
    }

    #[test]
    fn ln_choose_symmetry_and_pascal() {
        for n in 1..40u64 {
            for k in 0..=n {
                assert_close(ln_choose(n, k), ln_choose(n, n - k), 1e-11);
            }
        }
        // Pascal: C(n,k) = C(n-1,k-1) + C(n-1,k), checked in linear space.
        for n in 2..30u64 {
            for k in 1..n {
                let lhs = ln_choose(n, k).exp();
                let rhs = ln_choose(n - 1, k - 1).exp() + ln_choose(n - 1, k).exp();
                assert_close(lhs, rhs, 1e-9);
            }
        }
    }

    #[test]
    fn ln_choose_paper_scale() {
        // C(4_000_000, 30) should be astronomically large but finite.
        let v = ln_choose(4_000_000, 30);
        assert!(v.is_finite() && v > 300.0);
        // Sanity: ln C(n,k) <= k ln(en/k).
        let bound = 30.0 * (std::f64::consts::E * 4_000_000.0 / 30.0).ln();
        assert!(v <= bound);
    }
}
