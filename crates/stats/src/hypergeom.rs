//! Hypergeometric distribution: the null law of "common 1's between two
//! rows".
//!
//! Section IV-B of the paper: given two rows of an N-bit matrix containing
//! `i` and `j` ones, the number of positions where both are 1 follows (under
//! the no-common-content null, conditioning on the weights)
//!
//! ```text
//! P[X = k] = C(i,k) · C(N−i, j−k) / C(N,j)
//! ```
//!
//! The Λ threshold tables are the upper-tail quantiles of this law:
//! `λ_{i,j}` is the smallest `t` with `P[X > t] ≤ p*`.

use crate::special::ln_choose;

/// Support bounds of the hypergeometric distribution: `k` ranges over
/// `[max(0, i+j−N), min(i, j)]`.
pub fn hypergeom_support(n_total: u64, i: u64, j: u64) -> (u64, u64) {
    assert!(i <= n_total && j <= n_total, "weights exceed row width");
    let lo = (i + j).saturating_sub(n_total);
    let hi = i.min(j);
    (lo, hi)
}

/// Natural log of the hypergeometric pmf.
pub fn ln_hypergeom_pmf(k: u64, n_total: u64, i: u64, j: u64) -> f64 {
    let (lo, hi) = hypergeom_support(n_total, i, j);
    if k < lo || k > hi {
        return f64::NEG_INFINITY;
    }
    ln_choose(i, k) + ln_choose(n_total - i, j - k) - ln_choose(n_total, j)
}

/// Hypergeometric pmf `P[X = k]`.
pub fn hypergeom_pmf(k: u64, n_total: u64, i: u64, j: u64) -> f64 {
    ln_hypergeom_pmf(k, n_total, i, j).exp()
}

/// Upper tail `P[X > t]`.
///
/// The sum always starts at its largest term and recurses toward smaller
/// ones, so it never begins with an underflowed pmf: for `t` at or above
/// the mode the terms `t+1 … hi` are summed upward (decreasing); for `t`
/// below the mode the lower mass `lo … t` is summed downward from `t`
/// (also decreasing) and complemented.
pub fn hypergeom_sf(t: i64, n_total: u64, i: u64, j: u64) -> f64 {
    let (lo, hi) = hypergeom_support(n_total, i, j);
    if t < lo as i64 {
        return 1.0;
    }
    if t >= hi as i64 {
        return 0.0;
    }
    let t = t as u64;
    let nf = n_total as f64;
    let (fi, fj) = (i as f64, j as f64);
    // Mode of the hypergeometric: floor((i+1)(j+1)/(N+2)).
    let mode = ((i + 1) as f64 * (j + 1) as f64 / (nf + 2.0)).floor() as u64;
    if t + 1 >= mode {
        // Upper-tail sum from t+1 upward; terms decrease.
        let first = t + 1;
        let mut p = ln_hypergeom_pmf(first, n_total, i, j).exp();
        let mut acc = p;
        let mut k = first as f64;
        while (k as u64) < hi {
            // P[k+1] = P[k] · (i−k)(j−k) / ((k+1)(N−i−j+k+1)).
            let ratio = (fi - k) * (fj - k) / ((k + 1.0) * (nf - fi - fj + k + 1.0));
            p *= ratio;
            acc += p;
            k += 1.0;
            if p < acc * 1e-18 {
                break; // remaining terms cannot move the sum
            }
        }
        acc.min(1.0)
    } else {
        // Lower-mass sum from t downward; terms decrease. sf = 1 − cdf.
        let mut p = ln_hypergeom_pmf(t, n_total, i, j).exp();
        let mut acc = p;
        let mut k = t as f64;
        while (k as u64) > lo {
            // P[k−1] = P[k] · k (N−i−j+k) / ((i−k+1)(j−k+1)).
            let ratio = k * (nf - fi - fj + k) / ((fi - k + 1.0) * (fj - k + 1.0));
            p *= ratio;
            acc += p;
            k -= 1.0;
            if p < acc * 1e-18 {
                break;
            }
        }
        (1.0 - acc).clamp(0.0, 1.0)
    }
}

/// CDF `P[X ≤ t]`.
pub fn hypergeom_cdf(t: i64, n_total: u64, i: u64, j: u64) -> f64 {
    1.0 - hypergeom_sf(t, n_total, i, j)
}

/// Smallest `t` with `P[X > t] ≤ p_star` — the paper's `λ_{i,j}`.
///
/// Binary search over the support using the monotone survival function.
pub fn hypergeom_tail_quantile(p_star: f64, n_total: u64, i: u64, j: u64) -> u64 {
    assert!(p_star > 0.0 && p_star < 1.0, "p* must be in (0,1)");
    let (lo, hi) = hypergeom_support(n_total, i, j);
    if hypergeom_sf(lo as i64, n_total, i, j) <= p_star {
        return lo;
    }
    let (mut a, mut b) = (lo, hi); // sf(a) > p*, sf(b) = 0 <= p*
    while b - a > 1 {
        let mid = a + (b - a) / 2;
        if hypergeom_sf(mid as i64, n_total, i, j) <= p_star {
            b = mid;
        } else {
            a = mid;
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * b.abs().max(1e-300),
            "{a} != {b} (tol {tol})"
        );
    }

    #[test]
    fn pmf_sums_to_one() {
        for &(n, i, j) in &[(20u64, 5u64, 8u64), (50, 25, 25), (10, 10, 3), (30, 0, 7)] {
            let (lo, hi) = hypergeom_support(n, i, j);
            let total: f64 = (lo..=hi).map(|k| hypergeom_pmf(k, n, i, j)).sum();
            assert_close(total, 1.0, 1e-10);
        }
    }

    #[test]
    fn support_bounds() {
        assert_eq!(hypergeom_support(10, 7, 8), (5, 7));
        assert_eq!(hypergeom_support(10, 2, 3), (0, 2));
        assert_eq!(hypergeom_support(10, 0, 5), (0, 0));
    }

    #[test]
    fn pmf_small_case_by_hand() {
        // N=5, i=2, j=2: P[X=0] = C(2,0)C(3,2)/C(5,2) = 3/10.
        assert_close(hypergeom_pmf(0, 5, 2, 2), 0.3, 1e-12);
        assert_close(hypergeom_pmf(1, 5, 2, 2), 0.6, 1e-12);
        assert_close(hypergeom_pmf(2, 5, 2, 2), 0.1, 1e-12);
    }

    #[test]
    fn sf_matches_direct_sum() {
        let (n, i, j) = (40u64, 18u64, 22u64);
        let (lo, hi) = hypergeom_support(n, i, j);
        for t in (lo as i64 - 1)..=(hi as i64 + 1) {
            let direct: f64 = (lo..=hi)
                .filter(|&k| k as i64 > t)
                .map(|k| hypergeom_pmf(k, n, i, j))
                .sum();
            assert_close(hypergeom_sf(t, n, i, j), direct, 1e-9);
        }
    }

    #[test]
    fn symmetry_in_i_j() {
        for t in 0..10i64 {
            assert_close(
                hypergeom_sf(t, 30, 12, 17),
                hypergeom_sf(t, 30, 17, 12),
                1e-10,
            );
        }
    }

    #[test]
    fn tail_quantile_is_tight() {
        let (n, i, j) = (1024u64, 512u64, 512u64);
        for &p_star in &[1e-3, 1e-5, 1e-7] {
            let lam = hypergeom_tail_quantile(p_star, n, i, j);
            assert!(hypergeom_sf(lam as i64, n, i, j) <= p_star);
            assert!(hypergeom_sf(lam as i64 - 1, n, i, j) > p_star);
        }
    }

    #[test]
    fn paper_scale_lambda_location() {
        // For two half-full 1024-bit rows the null mean of common ones is
        // i*j/N = 256 with σ ≈ 8; λ at p* = 1e-7 should sit ~5σ above.
        let lam = hypergeom_tail_quantile(1e-7, 1024, 512, 512);
        assert!(
            (285..=305).contains(&lam),
            "λ = {lam} outside the expected band around 256 + 5σ"
        );
    }

    #[test]
    fn huge_support_no_underflow() {
        // Regression: at 131,072-bit rows with weight 57,105 the old
        // implementation started its sum below the mode with an
        // underflowed pmf and returned sf = 0 for every t. The lower tail
        // must be ≈1 and the quantile must sit ~5σ above the mean
        // (≈24,880, σ≈88).
        let (n, w) = (131_072u64, 57_105u64);
        assert!(hypergeom_sf(0, n, w, w) > 0.999999);
        assert!(hypergeom_sf(20_000, n, w, w) > 0.999999);
        let lam = hypergeom_tail_quantile(2e-7, n, w, w);
        assert!(
            (25_200..25_500).contains(&lam),
            "λ = {lam} not ~5σ above the mean"
        );
        let sf = hypergeom_sf(lam as i64, n, w, w);
        assert!(sf <= 2e-7 && sf > 1e-9, "sf at λ = {sf}");
    }

    #[test]
    fn sf_monotone_across_the_mode() {
        // The two summation branches must join monotonically.
        let (n, i, j) = (1_000u64, 400u64, 500u64);
        let mut prev = 1.0f64;
        for t in 0..=400i64 {
            let s = hypergeom_sf(t, n, i, j);
            assert!(s <= prev + 1e-12, "sf not monotone at t={t}: {s} > {prev}");
            prev = s;
        }
    }

    #[test]
    fn degenerate_rows() {
        // A zero-weight row shares no ones with anything.
        assert_eq!(hypergeom_sf(0, 100, 0, 50), 0.0);
        assert_eq!(hypergeom_tail_quantile(0.5, 100, 0, 50), 0);
        // Full rows share exactly j ones.
        assert_close(hypergeom_pmf(50, 100, 100, 50), 1.0, 1e-10);
    }
}
