//! Random-variate samplers built on `rand`'s uniform source.
//!
//! The Monte-Carlo harness needs binomial weights (screening simulations at
//! the 4-Mbit scale), the ER generator needs geometric skips, and the
//! synthetic-traffic substrate needs Zipf flow sizes and Pareto burst
//! lengths. Implemented here from first principles so the workspace does
//! not depend on `rand_distr`.

use rand::Rng;

/// Samples `Binomial(n, p)`.
///
/// * exact bit-popcount path for `p = 0.5` (the background of every bitmap
///   in the paper is Bernoulli(½));
/// * inversion (sequential search from 0) when `n·min(p,1−p) ≤ 30`;
/// * otherwise a normal approximation with continuity correction, clamped
///   to the support — adequate for the bulk regime it is used in.
pub fn sample_binomial<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
    if n == 0 || p == 0.0 {
        return 0;
    }
    if p == 1.0 {
        return n;
    }
    if (p - 0.5).abs() < 1e-12 {
        // Sum popcounts of ⌈n/64⌉ random words, masking the tail.
        let mut remaining = n;
        let mut acc = 0u64;
        while remaining >= 64 {
            acc += u64::from(rng.gen::<u64>().count_ones());
            remaining -= 64;
        }
        if remaining > 0 {
            let mask = (1u64 << remaining) - 1;
            acc += u64::from((rng.gen::<u64>() & mask).count_ones());
        }
        return acc;
    }
    // Work with the smaller tail for stability, mirror at the end.
    let (q, mirrored) = if p <= 0.5 {
        (p, false)
    } else {
        (1.0 - p, true)
    };
    let mean = n as f64 * q;
    let k = if mean <= 30.0 {
        inversion_binomial(rng, n, q)
    } else {
        let sd = (n as f64 * q * (1.0 - q)).sqrt();
        let z = sample_standard_normal(rng);
        let x = (mean + sd * z + 0.5).floor();
        x.clamp(0.0, n as f64) as u64
    };
    if mirrored {
        n - k
    } else {
        k
    }
}

/// Inversion sampling: walk the CDF from 0 with the pmf ratio recursion.
fn inversion_binomial<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    let q = 1.0 - p;
    let s = p / q;
    let mut pmf = q.powf(n as f64);
    if pmf == 0.0 {
        // Underflow guard: extremely unlikely given the mean <= 30 gate,
        // but fall back to the mean if it happens.
        return (n as f64 * p).round() as u64;
    }
    let mut cdf = pmf;
    let u: f64 = rng.gen();
    let mut k = 0u64;
    while u > cdf && k < n {
        k += 1;
        pmf *= s * (n - k + 1) as f64 / k as f64;
        cdf += pmf;
    }
    k
}

/// Standard normal via Box–Muller.
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples `Geometric(p)`: the number of failures before the first success
/// (support `0, 1, 2, …`). Used for edge skipping in the G(n,p) generator.
///
/// # Panics
/// Panics unless `0 < p <= 1`.
pub fn sample_geometric<R: Rng + ?Sized>(rng: &mut R, p: f64) -> u64 {
    assert!(p > 0.0 && p <= 1.0, "geometric needs p in (0,1], got {p}");
    if p >= 1.0 {
        return 0;
    }
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    (u.ln() / (-p).ln_1p()).floor() as u64
}

/// Samples a Pareto (power-law) value with scale `xm > 0` and shape
/// `alpha > 0` — heavy-tailed burst and flow durations.
pub fn sample_pareto<R: Rng + ?Sized>(rng: &mut R, xm: f64, alpha: f64) -> f64 {
    assert!(xm > 0.0 && alpha > 0.0, "pareto needs xm, alpha > 0");
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    xm / u.powf(1.0 / alpha)
}

/// Zipf distribution over ranks `1..=n` with exponent `s`:
/// `P[rank = r] ∝ r^(−s)`. Table-based inverse-CDF sampling (O(log n) per
/// draw after O(n) setup) — the traffic generator draws flow sizes from
/// this family to model the Internet's Zipfian nature (paper \[10\]).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for ranks `1..=n` with exponent `s ≥ 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for r in 1..=n {
            acc += (r as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Probability of rank `r` (1-based).
    pub fn pmf(&self, r: usize) -> f64 {
        assert!((1..=self.cdf.len()).contains(&r), "rank out of range");
        if r == 1 {
            self.cdf[0]
        } else {
            self.cdf[r - 1] - self.cdf[r - 2]
        }
    }

    /// Draws a rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // First index whose cumulative mass covers u; that index is rank-1.
        let i = match self.cdf.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
            Ok(i) | Err(i) => i,
        };
        (i + 1).min(self.cdf.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xDC5)
    }

    #[test]
    fn binomial_half_matches_moments() {
        let mut r = rng();
        let n = 1000u64;
        let reps = 4000;
        let mean: f64 = (0..reps)
            .map(|_| sample_binomial(&mut r, n, 0.5) as f64)
            .sum::<f64>()
            / reps as f64;
        // True mean 500, σ of the estimate ≈ 15.8/63 ≈ 0.25.
        assert!((mean - 500.0).abs() < 2.0, "mean {mean} far from 500");
    }

    #[test]
    fn binomial_small_p_inversion_regime() {
        let mut r = rng();
        let (n, p) = (10_000u64, 1e-3);
        let reps = 3000;
        let mean: f64 = (0..reps)
            .map(|_| sample_binomial(&mut r, n, p) as f64)
            .sum::<f64>()
            / reps as f64;
        assert!((mean - 10.0).abs() < 0.5, "mean {mean} far from 10");
    }

    #[test]
    fn binomial_mirrored_large_p() {
        let mut r = rng();
        let (n, p) = (500u64, 0.995);
        for _ in 0..200 {
            let k = sample_binomial(&mut r, n, p);
            assert!(k <= n);
            assert!(k >= 470, "implausibly small draw {k}");
        }
    }

    #[test]
    fn binomial_edges() {
        let mut r = rng();
        assert_eq!(sample_binomial(&mut r, 0, 0.5), 0);
        assert_eq!(sample_binomial(&mut r, 10, 0.0), 0);
        assert_eq!(sample_binomial(&mut r, 10, 1.0), 10);
    }

    #[test]
    fn geometric_mean() {
        let mut r = rng();
        let p = 0.2;
        let reps = 20_000;
        let mean: f64 = (0..reps)
            .map(|_| sample_geometric(&mut r, p) as f64)
            .sum::<f64>()
            / reps as f64;
        // E = (1-p)/p = 4.
        assert!((mean - 4.0).abs() < 0.15, "mean {mean} far from 4");
    }

    #[test]
    fn geometric_p_one() {
        let mut r = rng();
        assert_eq!(sample_geometric(&mut r, 1.0), 0);
    }

    #[test]
    fn pareto_respects_scale() {
        let mut r = rng();
        for _ in 0..1000 {
            assert!(sample_pareto(&mut r, 2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn zipf_pmf_normalised_and_monotone() {
        let z = Zipf::new(100, 1.0);
        let total: f64 = (1..=100).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for r in 1..100 {
            assert!(z.pmf(r) >= z.pmf(r + 1));
        }
    }

    #[test]
    fn zipf_sampling_matches_pmf() {
        let z = Zipf::new(50, 1.2);
        let mut r = rng();
        let reps = 50_000;
        let mut counts = vec![0usize; 51];
        for _ in 0..reps {
            let s = z.sample(&mut r);
            assert!((1..=50).contains(&s));
            counts[s] += 1;
        }
        // Rank 1 should hold roughly pmf(1) of the mass.
        let frac = counts[1] as f64 / reps as f64;
        assert!((frac - z.pmf(1)).abs() < 0.02, "rank-1 mass {frac}");
        // And rank 1 strictly dominates rank 10.
        assert!(counts[1] > counts[10]);
    }

    #[test]
    fn zipf_s_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        for r in 1..=4 {
            assert!((z.pmf(r) - 0.25).abs() < 1e-12);
        }
    }
}
