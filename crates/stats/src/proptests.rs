//! Property-based tests for the statistics substrate.

use crate::binomial::{binocdf, binomial_quantile, binomial_sf, ln_binomial_pmf};
use crate::hypergeom::{hypergeom_pmf, hypergeom_sf, hypergeom_support, hypergeom_tail_quantile};
use crate::special::ln_choose;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn binocdf_matches_direct_sum(n in 1u64..40, p in 0.0f64..1.0, x in -2i64..42) {
        let direct: f64 = (0..=n)
            .filter(|&k| (k as i64) <= x)
            .map(|k| ln_binomial_pmf(k, n, p).exp())
            .sum();
        let cdf = binocdf(x, n, p);
        prop_assert!((cdf - direct).abs() < 1e-9, "cdf {cdf} vs direct {direct}");
    }

    #[test]
    fn binomial_sf_complements(n in 1u64..200, p in 0.001f64..0.999, x in 0i64..200) {
        let total = binocdf(x, n, p) + binomial_sf(x, n, p);
        prop_assert!((total - 1.0).abs() < 1e-9, "cdf+sf = {total}");
    }

    #[test]
    fn binomial_quantile_inverts(n in 1u64..500, p in 0.01f64..0.99, q in 0.001f64..0.999) {
        let w = binomial_quantile(q, n, p);
        prop_assert!(binocdf(w as i64, n, p) >= q - 1e-12);
        if w > 0 {
            prop_assert!(binocdf(w as i64 - 1, n, p) < q + 1e-12);
        }
    }

    #[test]
    fn ln_choose_recurrence(n in 1u64..300, k in 0u64..300) {
        prop_assume!(k < n);
        // C(n, k+1) / C(n, k) = (n - k) / (k + 1)
        let lhs = ln_choose(n, k + 1) - ln_choose(n, k);
        let rhs = ((n - k) as f64 / (k + 1) as f64).ln();
        prop_assert!((lhs - rhs).abs() < 1e-9, "{lhs} vs {rhs}");
    }

    #[test]
    fn hypergeom_pmf_normalised(n in 2u64..120, i in 0u64..120, j in 0u64..120) {
        prop_assume!(i <= n && j <= n);
        let (lo, hi) = hypergeom_support(n, i, j);
        let total: f64 = (lo..=hi).map(|k| hypergeom_pmf(k, n, i, j)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "mass = {total}");
    }

    #[test]
    fn hypergeom_sf_monotone_and_bounded(n in 2u64..200, i in 1u64..200, j in 1u64..200) {
        prop_assume!(i <= n && j <= n);
        let (lo, hi) = hypergeom_support(n, i, j);
        let mut prev = 1.0f64;
        for t in (lo as i64 - 1)..=(hi as i64) {
            let s = hypergeom_sf(t, n, i, j);
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert!(s <= prev + 1e-12, "sf increased at t={t}");
            prev = s;
        }
    }

    #[test]
    fn hypergeom_quantile_is_tight(
        n in 16u64..512,
        w_frac in 0.1f64..0.9,
        p_exp in 1.0f64..8.0,
    ) {
        let w = ((n as f64) * w_frac) as u64;
        prop_assume!(w >= 1 && w <= n);
        let p_star = 10f64.powf(-p_exp);
        let lam = hypergeom_tail_quantile(p_star, n, w, w);
        prop_assert!(hypergeom_sf(lam as i64, n, w, w) <= p_star);
        let (lo, _) = hypergeom_support(n, w, w);
        if lam > lo {
            prop_assert!(hypergeom_sf(lam as i64 - 1, n, w, w) > p_star);
        }
    }

    #[test]
    fn zipf_pmf_sums_to_one(n in 1usize..200, s in 0.0f64..3.0) {
        let z = crate::sample::Zipf::new(n, s);
        let total: f64 = (1..=n).map(|r| z.pmf(r)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn binomial_sampler_in_support(n in 0u64..10_000, p in 0.0f64..1.0, seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let k = crate::sample::sample_binomial(&mut rng, n, p);
        prop_assert!(k <= n);
    }
}
