//! Statistical numerics substrate for the DCS system.
//!
//! Every threshold in the paper is a tail probability:
//!
//! * the aligned-case *non-naturally-occurring* bound is
//!   `C(m,a)·C(n,b)·2^(−ab)` (paper eq. 1) — computed in log space by
//!   [`special::ln_choose`];
//! * the aligned-case *detectable* threshold chains four `binocdf` calls
//!   (Theorem 2) — [`binomial::binocdf`];
//! * the unaligned-case Λ threshold tables are hypergeometric quantiles
//!   (Section IV-B) — [`hypergeom`];
//! * the unaligned-case cluster bounds co-tune `binocdf` expressions
//!   (eqs. 2–3).
//!
//! [`sample`] provides the random-variate generators the Monte-Carlo
//! harness and the synthetic-traffic substrate need (binomial, geometric,
//! Zipf, Pareto), built on `rand`'s uniform source only.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binomial;
pub mod ecdf;
pub mod hypergeom;
pub mod sample;
pub mod special;

#[cfg(test)]
mod proptests;

pub use binomial::{binocdf, binomial_sf, ln_binomial_pmf};
pub use ecdf::{ks_critical, Ecdf};
pub use hypergeom::{hypergeom_pmf, hypergeom_sf, hypergeom_tail_quantile};
pub use special::{ln_choose, ln_factorial, ln_gamma};
