//! Binomial distribution: pmf, CDF (`binocdf`), survival function and
//! quantiles.
//!
//! `binocdf(x, n, p)` is the primitive the paper's Theorem 2 and
//! equations (2)–(3) are written in. It is implemented through the
//! regularised incomplete beta function (continued fraction, Lentz's
//! method), which stays accurate across the full range of the paper's
//! parameters (n up to millions, p down to 10⁻⁷).

use crate::special::{ln_choose, ln_gamma};

/// Natural log of the binomial pmf `P[X = k]` for `X ~ Binomial(n, p)`.
///
/// Returns `NEG_INFINITY` outside the support.
pub fn ln_binomial_pmf(k: u64, n: u64, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
    if k > n {
        return f64::NEG_INFINITY;
    }
    if p == 0.0 {
        return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
    }
    if p == 1.0 {
        return if k == n { 0.0 } else { f64::NEG_INFINITY };
    }
    // ln(1-p) via ln_1p(-p) keeps accuracy for the tiny p this crate sees.
    ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (-p).ln_1p()
}

/// Regularised incomplete beta function `I_x(a, b)` via the continued
/// fraction of Numerical Recipes (`betacf`), with the symmetry transform
/// for convergence.
pub fn betai(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "betai requires a,b > 0 (a={a}, b={b})");
    assert!(
        (0.0..=1.0).contains(&x),
        "betai requires x in [0,1], got {x}"
    );
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (-x).ln_1p();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * betacf(a, b, x) / a
    } else {
        1.0 - (ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (-x).ln_1p()).exp()
            * betacf(b, a, 1.0 - x)
            / b
    }
}

/// Continued-fraction kernel for the incomplete beta function (modified
/// Lentz's method).
fn betacf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3e-16;
    const FPMIN: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// The paper's `binocdf(x, n, p)`: `P[X ≤ x]` for `X ~ Binomial(n, p)`.
///
/// Accepts `x` as `i64` so callers can pass `w − a` style expressions that
/// may go negative (the CDF is then 0).
pub fn binocdf(x: i64, n: u64, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
    if x < 0 {
        return 0.0;
    }
    let k = x as u64;
    if k >= n {
        return 1.0;
    }
    if p == 0.0 {
        return 1.0;
    }
    if p == 1.0 {
        return 0.0; // k < n
    }
    // P[X <= k] = I_{1-p}(n-k, k+1)
    betai((n - k) as f64, k as f64 + 1.0, 1.0 - p)
}

/// Survival function `P[X > x]` — the complement of [`binocdf`], computed
/// directly through the mirrored incomplete beta for accuracy in the upper
/// tail.
pub fn binomial_sf(x: i64, n: u64, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
    if x < 0 {
        return 1.0;
    }
    let k = x as u64;
    if k >= n {
        return 0.0;
    }
    if p == 0.0 {
        return 0.0;
    }
    if p == 1.0 {
        return 1.0;
    }
    // P[X > k] = I_p(k+1, n-k)
    betai(k as f64 + 1.0, (n - k) as f64, p)
}

/// Smallest `w` such that `binocdf(w, n, p) >= q` (the binomial quantile,
/// used to pick the Theorem-2 screening thresholds).
///
/// # Panics
/// Panics unless `0 < q < 1`.
pub fn binomial_quantile(q: f64, n: u64, p: f64) -> u64 {
    assert!(q > 0.0 && q < 1.0, "quantile level must be in (0,1)");
    // Bracket with a binary search over [0, n]: binocdf is monotone in w.
    let (mut lo, mut hi) = (0u64, n);
    if binocdf(0, n, p) >= q {
        return 0;
    }
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if binocdf(mid as i64, n, p) >= q {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * b.abs().max(1e-300),
            "{a} != {b} (tol {tol})"
        );
    }

    /// Exhaustive reference CDF for small n by direct summation.
    fn ref_cdf(x: i64, n: u64, p: f64) -> f64 {
        (0..=n)
            .filter(|&k| (k as i64) <= x)
            .map(|k| ln_binomial_pmf(k, n, p).exp())
            .sum()
    }

    #[test]
    fn pmf_sums_to_one() {
        for &(n, p) in &[(10u64, 0.3), (25, 0.5), (40, 0.01), (7, 0.99)] {
            let total: f64 = (0..=n).map(|k| ln_binomial_pmf(k, n, p).exp()).sum();
            assert_close(total, 1.0, 1e-10);
        }
    }

    #[test]
    fn cdf_matches_direct_sum_small_n() {
        for &(n, p) in &[(10u64, 0.5), (20, 0.25), (30, 0.9), (15, 0.01)] {
            for x in -1..=(n as i64 + 1) {
                assert_close(binocdf(x, n, p), ref_cdf(x, n, p), 1e-9);
            }
        }
    }

    #[test]
    fn sf_complements_cdf() {
        // In deep tails `1 - cdf` loses digits to cancellation while `sf`
        // stays accurate, so compare with a forgiving relative tolerance.
        for &(n, p) in &[(50u64, 0.5), (200, 0.1)] {
            for x in [0i64, 10, 25, 49] {
                assert_close(binomial_sf(x, n, p), 1.0 - binocdf(x, n, p), 1e-6);
            }
        }
    }

    #[test]
    fn edge_cases() {
        assert_eq!(binocdf(-1, 10, 0.5), 0.0);
        assert_eq!(binocdf(10, 10, 0.5), 1.0);
        assert_eq!(binocdf(5, 10, 0.0), 1.0);
        assert_eq!(binocdf(5, 10, 1.0), 0.0);
        assert_eq!(binomial_sf(-1, 10, 0.5), 1.0);
        assert_eq!(binomial_sf(10, 10, 0.5), 0.0);
    }

    #[test]
    fn paper_anchor_weight_screening() {
        // Section V-A.2: "the probability that there are more than 550 1's
        // in this column is 1 − binocdf(550, 1000, 0.5) ≈ 0.00073".
        let p = binomial_sf(550, 1000, 0.5);
        assert!(
            (0.0005..0.0009).contains(&p),
            "survival {p} disagrees with the paper's 0.00073"
        );
    }

    #[test]
    fn paper_anchor_core_survival() {
        // Section V-A.2 states "1 − binocdf(7, 30, 0.55) = 0.988", but the
        // true value of that expression is 0.9996 — the paper's printed
        // 0.988 actually corresponds to a per-column survival of 0.45
        // (1 − binocdf(7, 30, 0.45) ≈ 0.986). We pin both facts so the
        // discrepancy stays documented.
        assert_close(binomial_sf(7, 30, 0.55), 0.99958, 1e-3);
        assert_close(binomial_sf(7, 30, 0.45), 0.9862, 2e-3);
    }

    #[test]
    fn deep_tail_small_p() {
        // Binomial(45_000, 1e-5): P[X > 10] should be ~Poisson(0.45) tail,
        // around 1e-11; verify against the Poisson approximation loosely.
        let sf = binomial_sf(10, 45_000, 1e-5);
        assert!(sf > 0.0 && sf < 1e-8, "tail {sf} not deeply small");
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &(n, p) in &[(100u64, 0.5), (1000, 0.1)] {
            for &q in &[0.01, 0.5, 0.9, 0.999] {
                let w = binomial_quantile(q, n, p);
                assert!(binocdf(w as i64, n, p) >= q);
                if w > 0 {
                    assert!(binocdf(w as i64 - 1, n, p) < q);
                }
            }
        }
    }

    #[test]
    fn cdf_monotone_in_x() {
        let mut prev = 0.0;
        for x in 0..=1000i64 {
            let c = binocdf(x, 1000, 0.37);
            assert!(c >= prev - 1e-12);
            prev = c;
        }
        assert_close(prev, 1.0, 1e-9);
    }

    #[test]
    fn betai_reference_values() {
        // I_x(1, 1) = x (uniform CDF).
        for &x in &[0.1, 0.5, 0.9] {
            assert_close(betai(1.0, 1.0, x), x, 1e-12);
        }
        // I_x(2, 1) = x^2; I_x(1, 2) = 1 - (1-x)^2.
        assert_close(betai(2.0, 1.0, 0.3), 0.09, 1e-10);
        assert_close(betai(1.0, 2.0, 0.3), 1.0 - 0.49, 1e-10);
    }
}
