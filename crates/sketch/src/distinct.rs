//! Distinct-count heavy hitters — the DNS-DDoS variant.
//!
//! A reflection or random-subdomain attack is heavy in *distinct* items
//! per key (amplifiers per victim, subdomains per zone), not in raw
//! packet weight, so Space-Saving over packet counts misses it. Per the
//! distinct-heavy-hitters construction, each tracked key holds a
//! bounded **KMV** (k-minimum-values) set: the `s` smallest 64-bit item
//! hashes it has seen. With `h_s` the `s`-th smallest hash, the
//! distinct count is estimated as `(s − 1) · 2⁶⁴ / h_s` (exact while
//! fewer than `s` distinct hashes were seen). KMV union is plain set
//! union truncated back to the `s` smallest — exactly associative and
//! commutative — so per-key merging across an aggregation tier loses
//! nothing beyond the `s`-bound itself.
//!
//! The key table is bounded at `cap` keys; overflow evicts the
//! canonical minimum by `(estimate, key)` and remembers the largest
//! evicted estimate as `floor` — an untracked key may have had up to
//! that many distinct items, the caveat the centre must apply to
//! absence. Everything is ordered (`BTreeMap`/`BTreeSet`), so equal
//! input sets produce byte-equal sketches in any arrival order.

use std::collections::{BTreeMap, BTreeSet};

/// Bounded distinct-count heavy-hitter sketch (see module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistinctSketch {
    cap: usize,
    s: usize,
    keys: BTreeMap<u64, BTreeSet<u64>>,
    floor: u64,
}

impl DistinctSketch {
    /// An empty sketch: at most `cap` keys, `s` minimum hashes each.
    ///
    /// # Panics
    /// Panics unless `cap > 0` and `s >= 2` (the estimator needs
    /// `s − 1 ≥ 1`).
    pub fn new(cap: usize, s: usize) -> Self {
        assert!(cap > 0, "DistinctSketch needs at least one key slot");
        assert!(s >= 2, "KMV needs s >= 2");
        DistinctSketch {
            cap,
            s,
            keys: BTreeMap::new(),
            floor: 0,
        }
    }

    /// Rebuilds from decoded wire parts.
    ///
    /// # Panics
    /// Panics if shape bounds are violated.
    pub fn from_parts(
        cap: usize,
        s: usize,
        keys: BTreeMap<u64, BTreeSet<u64>>,
        floor: u64,
    ) -> Self {
        assert!(cap > 0 && s >= 2, "bad sketch shape");
        assert!(keys.len() <= cap, "more keys than slots");
        assert!(keys.values().all(|v| v.len() <= s), "oversized KMV set");
        DistinctSketch {
            cap,
            s,
            keys,
            floor,
        }
    }

    /// Key-slot budget.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// KMV size per key.
    pub fn kmv_size(&self) -> usize {
        self.s
    }

    /// Number of tracked keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether no key is tracked.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Largest estimate ever evicted: an absent key may have had up to
    /// this many distinct items.
    pub fn floor(&self) -> u64 {
        self.floor
    }

    /// Tracked keys and their KMV sets, in key order.
    pub fn keys(&self) -> &BTreeMap<u64, BTreeSet<u64>> {
        &self.keys
    }

    fn estimate_set(s: usize, set: &BTreeSet<u64>) -> u64 {
        if set.len() < s {
            set.len() as u64
        } else {
            let h_s = *set.iter().next_back().expect("non-empty KMV") as u128;
            if h_s == 0 {
                return u64::MAX;
            }
            (((s as u128 - 1) << 64) / h_s).min(u64::MAX as u128) as u64
        }
    }

    /// Observes item `item_hash` (a uniform 64-bit hash of the item)
    /// under `key`.
    pub fn offer(&mut self, key: u64, item_hash: u64) {
        match self.keys.get_mut(&key) {
            Some(set) => {
                set.insert(item_hash);
                while set.len() > self.s {
                    let max = *set.iter().next_back().expect("non-empty KMV");
                    set.remove(&max);
                }
            }
            None => {
                let mut set = BTreeSet::new();
                set.insert(item_hash);
                self.keys.insert(key, set);
                if self.keys.len() > self.cap {
                    self.evict_min();
                }
            }
        }
    }

    fn evict_min(&mut self) {
        let (victim, est) = self
            .keys
            .iter()
            .map(|(&k, set)| (k, Self::estimate_set(self.s, set)))
            .min_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)))
            .expect("non-empty table");
        self.floor = self.floor.max(est);
        self.keys.remove(&victim);
    }

    /// Estimated distinct items under `key` (0 for untracked keys — but
    /// see [`DistinctSketch::floor`]).
    pub fn estimate(&self, key: u64) -> u64 {
        self.keys
            .get(&key)
            .map_or(0, |set| Self::estimate_set(self.s, set))
    }

    /// Folds `other` into `self`: per-key KMV union (exact), table trim
    /// by canonical minimum estimate.
    ///
    /// # Panics
    /// Panics if shapes (`cap`, `s`) differ.
    pub fn merge(&mut self, other: &DistinctSketch) {
        assert_eq!(self.cap, other.cap, "merging sketches of different caps");
        assert_eq!(self.s, other.s, "merging sketches of different KMV sizes");
        self.floor = self.floor.max(other.floor);
        for (&k, oset) in &other.keys {
            let set = self.keys.entry(k).or_default();
            set.extend(oset.iter().copied());
            while set.len() > self.s {
                let max = *set.iter().next_back().expect("non-empty KMV");
                set.remove(&max);
            }
        }
        while self.keys.len() > self.cap {
            self.evict_min();
        }
    }

    /// The `k` keys with the largest distinct-count estimates, ordered
    /// by `(estimate desc, key asc)`.
    pub fn top_k(&self, k: usize) -> Vec<(u64, u64)> {
        let mut all: Vec<(u64, u64)> = self
            .keys
            .iter()
            .map(|(&key, set)| (key, Self::estimate_set(self.s, set)))
            .collect();
        all.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }

    /// Resets to empty, keeping the shape.
    pub fn clear(&mut self) {
        self.keys.clear();
        self.floor = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash(i: u64) -> u64 {
        // splitmix64 — uniform enough for the estimator tests.
        let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn exact_below_s() {
        let mut d = DistinctSketch::new(4, 8);
        for i in 0..5 {
            d.offer(1, hash(i));
            d.offer(1, hash(i)); // duplicates are free
        }
        assert_eq!(d.estimate(1), 5);
        assert_eq!(d.estimate(2), 0);
    }

    #[test]
    fn estimator_tracks_large_counts() {
        let mut d = DistinctSketch::new(2, 64);
        for i in 0..20_000u64 {
            d.offer(9, hash(i));
        }
        let est = d.estimate(9) as f64;
        assert!(
            (est - 20_000.0).abs() < 20_000.0 * 0.4,
            "KMV estimate {est} far from 20000"
        );
    }

    #[test]
    fn heavy_key_beats_light_keys() {
        let mut d = DistinctSketch::new(4, 32);
        for i in 0..3_000u64 {
            d.offer(7, hash(i));
            d.offer(i % 100 + 1_000, hash(1)); // 100 keys, 1 distinct item each
        }
        let top = d.top_k(1);
        assert_eq!(top[0].0, 7, "distinct-heavy key must rank first");
        assert!(d.len() <= 4);
    }

    #[test]
    fn merge_is_commutative_and_per_key_exact() {
        let mut a = DistinctSketch::new(8, 16);
        let mut b = DistinctSketch::new(8, 16);
        let mut whole = DistinctSketch::new(8, 16);
        for i in 0..500u64 {
            let (k, h) = (i % 3, hash(i));
            if i % 2 == 0 {
                a.offer(k, h);
            } else {
                b.offer(k, h);
            }
            whole.offer(k, h);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(
            ab, whole,
            "below-cap merge must equal the one-stream sketch"
        );
    }

    #[test]
    fn eviction_records_floor() {
        let mut d = DistinctSketch::new(1, 4);
        d.offer(1, hash(1));
        d.offer(1, hash(2));
        d.offer(2, hash(3));
        assert_eq!(d.len(), 1);
        assert!(d.floor() >= 1, "evicted estimate must raise the floor");
    }
}
