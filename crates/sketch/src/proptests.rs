//! Property tests pinning the merge laws the aggregation tier relies
//! on: commutativity is exact, associativity is exact until a trim
//! fires (and stays canonical afterwards), and the merged error bound
//! never exceeds the sum of the children's analytic bounds.

use crate::{DistinctSketch, SpaceSaving};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn truth(streams: &[Vec<(u64, u64)>]) -> BTreeMap<u64, u64> {
    let mut m = BTreeMap::new();
    for s in streams {
        for &(k, w) in s {
            *m.entry(k).or_insert(0u64) += w;
        }
    }
    m
}

fn build(cap: usize, stream: &[(u64, u64)]) -> SpaceSaving {
    let mut s = SpaceSaving::new(cap);
    for &(k, w) in stream {
        s.offer(k, w);
    }
    s
}

fn assert_sound(s: &SpaceSaving, truth: &BTreeMap<u64, u64>) {
    let total: u64 = truth.values().sum();
    assert_eq!(s.total(), total);
    assert!(
        (s.cap() as u64 + 1) * s.error_bound() <= total,
        "deficit {} above total/(cap+1)",
        s.error_bound()
    );
    for (&k, &t) in truth {
        let (lo, hi) = s.estimate(k);
        assert!(lo <= t && t <= hi, "key {k}: true {t} outside [{lo},{hi}]");
    }
}

fn stream_strategy() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((0u64..32, 1u64..20), 0..80)
}

proptest! {
    /// Merge order of two children never matters, bit for bit.
    #[test]
    fn space_saving_merge_is_commutative(
        a in stream_strategy(),
        b in stream_strategy(),
        cap in 1usize..12,
    ) {
        let (sa, sb) = (build(cap, &a), build(cap, &b));
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb;
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba);
        assert_sound(&ab, &truth(&[a, b]));
    }

    /// Associativity: exact whenever the key union fits the cap; in
    /// general, both groupings stay sound against the true counts and
    /// report the same canonical top-k *key* ranking for keys whose
    /// weight clears both deficits.
    #[test]
    fn space_saving_merge_is_associative_up_to_topk(
        a in stream_strategy(),
        b in stream_strategy(),
        c in stream_strategy(),
        cap in 1usize..12,
    ) {
        let (sa, sb, sc) = (build(cap, &a), build(cap, &b), build(cap, &c));
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        let mut right_bc = sb.clone();
        right_bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&right_bc);

        let t = truth(&[a, b, c]);
        assert_sound(&left, &t);
        assert_sound(&right, &t);
        prop_assert_eq!(left.total(), right.total());

        if t.len() <= cap {
            // No trim can ever have fired: the groupings are equal.
            prop_assert_eq!(&left, &right);
        }
        // Keys decisively heavy under both groupings rank identically.
        let margin = left.error_bound().max(right.error_bound()) * 2;
        let heavy: Vec<u64> = {
            let mut hv: Vec<(u64, u64)> = t.iter().filter(|&(_, &w)| w > margin)
                .map(|(&k, &w)| (k, w)).collect();
            hv.sort_unstable_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
            hv.into_iter().map(|(k, _)| k).collect()
        };
        for &k in &heavy {
            let (llo, _) = left.estimate(k);
            let (rlo, _) = right.estimate(k);
            prop_assert!(llo > 0 && rlo > 0, "decisively heavy key {} dropped", k);
        }
    }

    /// The tier guarantee: after folding any number of children, the
    /// merged deficit stays within the *sum of the children's analytic
    /// bounds* — `(cap+1)·D ≤ Σᵢ totalᵢ`, compared in exact integers.
    #[test]
    fn merged_error_bound_within_sum_of_child_bounds(
        streams in proptest::collection::vec(stream_strategy(), 1..6),
        cap in 1usize..10,
    ) {
        let children: Vec<SpaceSaving> = streams.iter().map(|s| build(cap, s)).collect();
        let mut merged = children[0].clone();
        for c in &children[1..] {
            merged.merge(c);
        }
        let sum_totals: u64 = children.iter().map(SpaceSaving::total).sum();
        prop_assert!(
            (cap as u64 + 1) * merged.error_bound() <= sum_totals,
            "merged deficit {} exceeds sum of child analytic bounds ({} total, cap {})",
            merged.error_bound(), sum_totals, cap
        );
        assert_sound(&merged, &truth(&streams));
    }

    /// Distinct sketches: per-key KMV union is lossless relative to the
    /// single-stream sketch whenever the key table never overflows, in
    /// any merge grouping or order.
    #[test]
    fn distinct_merge_groupings_agree_below_cap(
        items in proptest::collection::vec((0u64..6, any::<u64>()), 0..120),
        split in 1usize..4,
        s in 2usize..10,
    ) {
        let cap = 8; // key domain 0..6 always fits
        let mut parts: Vec<DistinctSketch> = (0..split.max(1))
            .map(|_| DistinctSketch::new(cap, s))
            .collect();
        let mut whole = DistinctSketch::new(cap, s);
        let nparts = parts.len();
        for (i, &(k, h)) in items.iter().enumerate() {
            parts[i % nparts].offer(k, h);
            whole.offer(k, h);
        }
        let mut fwd = DistinctSketch::new(cap, s);
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = DistinctSketch::new(cap, s);
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        prop_assert_eq!(&fwd, &rev);
        prop_assert_eq!(&fwd, &whole);
    }

    /// Wire round trip is lossless for arbitrary sketch contents.
    #[test]
    fn wire_round_trip_is_identity(
        stream in stream_strategy(),
        cap in 1usize..12,
        domain in any::<u8>(),
    ) {
        let s = build(cap, &stream);
        let bytes = crate::wire::encode_space_saving(&s, domain);
        match crate::wire::decode_sketch(&bytes) {
            Ok(crate::wire::SketchWire::SpaceSaving { domain: d, sketch }) => {
                prop_assert_eq!(d, domain);
                prop_assert_eq!(sketch, s);
            }
            other => prop_assert!(false, "round trip failed: {:?}", other),
        }
    }

    /// The decoder never panics on arbitrary byte soup, stamped with
    /// the DCSS magic half the time so deep parse paths are exercised.
    #[test]
    fn decoder_never_panics_on_soup(
        raw in proptest::collection::vec(any::<u8>(), 0..512),
        stamp in any::<bool>(),
    ) {
        let mut bytes = raw;
        if stamp && bytes.len() >= 8 {
            bytes[..4].copy_from_slice(&crate::wire::DCSS_MAGIC);
            bytes[4] = crate::wire::DCSS_VERSION;
            bytes[5] %= 2;
        }
        let _ = crate::wire::decode_sketch(&bytes);
    }
}
