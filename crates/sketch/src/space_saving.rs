//! Weighted Space-Saving heavy hitters with an explicit mergeable
//! deficit.
//!
//! State is a weighted Misra–Gries summary: at most `cap` keys, each
//! holding a **lower bound** on its true weight, plus one global
//! `deficit` — the total mass every surviving counter may undercount
//! by. Two invariants hold after every operation (stream update *or*
//! merge) and are pinned by proptests:
//!
//! 1. `lower(x) ≤ true(x) ≤ lower(x) + deficit` for tracked keys, and
//!    `true(x) ≤ deficit` for untracked keys;
//! 2. `(cap + 1) · deficit ≤ total − Σ lower ≤ total`, i.e.
//!    `deficit ≤ total / (cap + 1)` — the Space-Saving error bound.
//!
//! *Stream update.* A tracked key just adds its weight. A new key is
//! inserted; if the table overflows, the minimum value `δ` among the
//! `cap + 1` counters is subtracted from **all** of them and zeroed
//! counters drop (at least the argmin, so one round restores the cap).
//! Each unit of deficit removes `cap + 1` units of counter mass, which
//! is exactly invariant 2.
//!
//! *Merge* (Agarwal–Cormode–Huang–Phillips–Wei–Yi subtract-merge):
//! values sum over the key union; if the union exceeds `cap`, the
//! `(cap+1)`-th largest value `t` is subtracted from every counter
//! (non-positives drop — at most `cap` values exceed `t`, so the cap is
//! restored) and `deficit' = deficit_a + deficit_b + t`. At least
//! `cap + 1` counters were `≥ t`, so at least `(cap+1)·t` mass leaves
//! the table and invariant 2 survives; invariant 1 follows because each
//! key lost at most `t` of its summed lower bound.
//!
//! Determinism: values live in a `BTreeMap`, subtraction is uniform,
//! and [`SpaceSaving::top_k`] orders by `(value desc, key asc)` — equal
//! input multisets yield byte-equal state however they were partitioned
//! into merges, and merge is exactly commutative.

use std::collections::BTreeMap;

/// One reported heavy-hitter candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct HeavyKey {
    /// The key.
    pub key: u64,
    /// Hard lower bound on the key's true weight.
    pub lower: u64,
    /// Hard upper bound (`lower + deficit` of the reporting sketch).
    pub upper: u64,
}

/// Deterministic weighted Space-Saving summary (see module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpaceSaving {
    cap: usize,
    entries: BTreeMap<u64, u64>,
    deficit: u64,
    total: u64,
}

impl SpaceSaving {
    /// An empty sketch tracking at most `cap` keys.
    ///
    /// # Panics
    /// Panics if `cap == 0`.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "SpaceSaving needs at least one counter");
        SpaceSaving {
            cap,
            entries: BTreeMap::new(),
            deficit: 0,
            total: 0,
        }
    }

    /// Rebuilds a sketch from decoded wire parts.
    ///
    /// # Panics
    /// Panics if `cap == 0` or more than `cap` entries are given.
    pub fn from_parts(cap: usize, entries: BTreeMap<u64, u64>, deficit: u64, total: u64) -> Self {
        assert!(cap > 0, "SpaceSaving needs at least one counter");
        assert!(entries.len() <= cap, "more entries than counters");
        SpaceSaving {
            cap,
            entries,
            deficit,
            total,
        }
    }

    /// Counter budget.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Number of tracked keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no key is tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total weight observed (stream mass, summed across merges).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The current deficit: every key's true weight exceeds its stored
    /// lower bound by at most this much, and no untracked key's true
    /// weight exceeds it.
    pub fn error_bound(&self) -> u64 {
        self.deficit
    }

    /// The analytic worst-case deficit `total / (cap + 1)`; the actual
    /// [`SpaceSaving::error_bound`] never exceeds it.
    pub fn analytic_bound(&self) -> u64 {
        self.total / (self.cap as u64 + 1)
    }

    /// Tracked entries in key order (`key → lower bound`).
    pub fn entries(&self) -> &BTreeMap<u64, u64> {
        &self.entries
    }

    /// Observes `weight` units of `key`. Zero weights are no-ops.
    pub fn offer(&mut self, key: u64, weight: u64) {
        if weight == 0 {
            return;
        }
        self.total += weight;
        *self.entries.entry(key).or_insert(0) += weight;
        if self.entries.len() > self.cap {
            let delta = *self.entries.values().min().expect("non-empty table");
            self.deficit += delta;
            self.entries.retain(|_, v| {
                *v -= delta.min(*v);
                *v > 0
            });
        }
    }

    /// Two-sided bound for `key`: `Some((lower, upper))` when tracked;
    /// untracked keys are bounded by `(0, deficit)`.
    pub fn estimate(&self, key: u64) -> (u64, u64) {
        match self.entries.get(&key) {
            Some(&v) => (v, v + self.deficit),
            None => (0, self.deficit),
        }
    }

    /// Folds `other` into `self` (subtract-merge; see module docs).
    ///
    /// # Panics
    /// Panics if the caps differ — a deployment fixes one counter
    /// budget, and mixed-cap merges would void the error bound.
    pub fn merge(&mut self, other: &SpaceSaving) {
        assert_eq!(self.cap, other.cap, "merging sketches of different caps");
        self.total += other.total;
        self.deficit += other.deficit;
        for (&k, &v) in &other.entries {
            *self.entries.entry(k).or_insert(0) += v;
        }
        if self.entries.len() > self.cap {
            let mut values: Vec<u64> = self.entries.values().copied().collect();
            values.sort_unstable_by(|a, b| b.cmp(a));
            let t = values[self.cap];
            self.deficit += t;
            self.entries.retain(|_, v| {
                *v -= t.min(*v);
                *v > 0
            });
        }
    }

    /// The `k` heaviest candidates, ordered by `(lower desc, key asc)`
    /// — the canonical top-k order every equal-content sketch reports
    /// identically.
    pub fn top_k(&self, k: usize) -> Vec<HeavyKey> {
        let mut all: Vec<HeavyKey> = self
            .entries
            .iter()
            .map(|(&key, &lower)| HeavyKey {
                key,
                lower,
                upper: lower + self.deficit,
            })
            .collect();
        all.sort_unstable_by(|a, b| b.lower.cmp(&a.lower).then(a.key.cmp(&b.key)));
        all.truncate(k);
        all
    }

    /// Resets to empty, keeping the cap (per-epoch reuse).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.deficit = 0;
        self.total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact(pairs: &[(u64, u64)]) -> BTreeMap<u64, u64> {
        let mut m = BTreeMap::new();
        for &(k, w) in pairs {
            *m.entry(k).or_insert(0) += w;
        }
        m
    }

    fn check_invariants(s: &SpaceSaving, truth: &BTreeMap<u64, u64>) {
        let sum: u64 = s.entries().values().sum();
        let total: u64 = truth.values().sum();
        assert_eq!(s.total(), total);
        assert!(
            (s.cap() as u64 + 1) * s.error_bound() <= total - sum,
            "deficit invariant violated: cap={} D={} total={total} sum={sum}",
            s.cap(),
            s.error_bound()
        );
        for (&k, &t) in truth {
            let (lo, hi) = s.estimate(k);
            assert!(lo <= t && t <= hi, "key {k}: true {t} outside [{lo},{hi}]");
        }
        for (&k, &v) in s.entries() {
            assert!(v > 0, "zero counter retained");
            assert!(truth.contains_key(&k), "phantom key {k}");
        }
    }

    #[test]
    fn exact_below_cap() {
        let mut s = SpaceSaving::new(8);
        let stream = [(1u64, 5u64), (2, 3), (1, 2), (3, 1)];
        for &(k, w) in &stream {
            s.offer(k, w);
        }
        assert_eq!(s.error_bound(), 0);
        assert_eq!(s.estimate(1), (7, 7));
        assert_eq!(s.estimate(9), (0, 0));
        check_invariants(&s, &exact(&stream));
    }

    #[test]
    fn eviction_keeps_bounds() {
        let stream: Vec<(u64, u64)> = (0..40).map(|i| (i % 7, 1 + i % 3)).collect();
        // Invariants hold after every prefix, not just at the end.
        for n in 1..=stream.len() {
            let mut s = SpaceSaving::new(2);
            for &(k, w) in &stream[..n] {
                s.offer(k, w);
            }
            check_invariants(&s, &exact(&stream[..n]));
            assert!(s.len() <= 2);
        }
        let mut s = SpaceSaving::new(2);
        for &(k, w) in &stream {
            s.offer(k, w);
        }
        assert!(s.error_bound() > 0);
    }

    #[test]
    fn heavy_key_always_tracked() {
        // A key with true weight > 2·analytic bound must survive: its
        // lower bound stays positive.
        let mut s = SpaceSaving::new(4);
        for i in 0..200u64 {
            s.offer(i % 40, 1);
            s.offer(7, 3);
        }
        let (lo, _) = s.estimate(7);
        assert!(lo > 0, "heavy key evicted");
        let top = s.top_k(1);
        assert_eq!(top[0].key, 7);
    }

    #[test]
    fn merge_is_commutative_exactly() {
        let mut a = SpaceSaving::new(3);
        let mut b = SpaceSaving::new(3);
        for i in 0..50u64 {
            a.offer(i % 9, i % 4 + 1);
            b.offer(i % 5, i % 3 + 1);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn merge_trims_to_cap_and_sums_bounds() {
        let mut a = SpaceSaving::new(2);
        let mut b = SpaceSaving::new(2);
        a.offer(1, 10);
        a.offer(2, 4);
        b.offer(3, 8);
        b.offer(4, 2);
        let mut m = a.clone();
        m.merge(&b);
        assert!(m.len() <= 2);
        assert_eq!(m.total(), 24);
        // t = 3rd largest of {10, 8, 4, 2} = 4.
        assert_eq!(m.error_bound(), 4);
        assert_eq!(m.estimate(1), (6, 10));
        let truth = exact(&[(1, 10), (2, 4), (3, 8), (4, 2)]);
        check_invariants(&m, &truth);
    }

    #[test]
    fn top_k_order_is_canonical() {
        let mut s = SpaceSaving::new(8);
        s.offer(5, 3);
        s.offer(2, 3);
        s.offer(9, 7);
        let keys: Vec<u64> = s.top_k(3).iter().map(|h| h.key).collect();
        assert_eq!(keys, vec![9, 2, 5], "ties break by ascending key");
    }

    #[test]
    #[should_panic(expected = "different caps")]
    fn mixed_cap_merge_rejected() {
        let mut a = SpaceSaving::new(2);
        a.merge(&SpaceSaving::new(3));
    }
}
