//! Deterministic, mergeable heavy-hitter sketches — the first epoch
//! **sidecar artifact** of the DCS system.
//!
//! The paper's digests answer "is some content repeated?"; the related
//! heavy-hitter literature (Hashing Pursuit, Space-Saving hierarchical
//! HH, distinct heavy hitters for DNS DDoS — PAPERS.md) answers the
//! complementary question "*which* keys are hot?" first, and uses those
//! keys to focus the expensive analysis. This crate provides the two
//! summaries that ride beside the bitmap digest in every epoch bundle:
//!
//! * [`SpaceSaving`] — weighted heavy hitters over a `u64` key domain.
//!   Internally a weighted Misra–Gries summary with an explicit global
//!   *deficit* `D` (the total mass deducted from surviving counters), so
//!   every tracked key carries a hard two-sided bound
//!   `lower ≤ true ≤ lower + D`, and `D ≤ total / (cap + 1)` at all
//!   times — the classic Space-Saving guarantee in its mergeable form.
//!   Merging uses the subtract-merge of Agarwal et al.'s *Mergeable
//!   Summaries*: sum lower bounds over the key union, subtract the
//!   `(cap+1)`-th largest value `t`, drop non-positive counters, and set
//!   `D' = D_a + D_b + t`; the deficit invariant survives, so an
//!   aggregation tier can fold thousands of leaf sketches and still
//!   bound every counter. Merge is exactly commutative, and exactly
//!   associative whenever no trim fires.
//! * [`DistinctSketch`] — distinct-count heavy hitters per the DNS-DDoS
//!   paper: per key, a bounded KMV (k-minimum-values) set of item
//!   hashes estimates how many *distinct* items the key saw (reflectors
//!   per victim, subdomains per zone). Per-key merge is KMV union —
//!   exactly associative and commutative — and the key table trims by
//!   smallest estimate.
//!
//! Everything here is deterministic: state is canonical (ordered maps,
//! total-ordered eviction by `(value, key)`), so equal input multisets
//! produce byte-equal sketches regardless of arrival order interleaving
//! across merges of the same partition. The wire codec ([`wire`])
//! serialises either sketch into the `DCSS` artifact payload carried by
//! DCSR/DCSG bundles, with every count capped and pre-checked before
//! allocation, mirroring `dcs-collect`'s decoder discipline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distinct;
pub mod space_saving;
pub mod wire;

pub use distinct::DistinctSketch;
pub use space_saving::{HeavyKey, SpaceSaving};
pub use wire::{decode_sketch, SketchError, SketchWire, DCSS_MAGIC, MAX_SKETCH_CAP};

/// Key-domain tag carried on the wire so the centre knows what a
/// sketch's `u64` keys mean before fusing them. Unknown tags pass
/// through opaquely — fusion only combines sketches of equal domains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum SketchDomain {
    /// Aligned-bitmap column index of the packet's hashed payload
    /// prefix — the domain the centre can map straight onto fused
    /// matrix columns to seed the aligned core search.
    ContentIndex,
    /// `src_port << 32 | dst_as` of the packet — the DRDoS reflection
    /// aggregation key (per-epoch source-port/destination-AS pairs).
    SrcPortDstAs,
    /// Flow-label hash weighted by payload bytes — elephant-flow
    /// tracking.
    FlowBytes,
}

impl SketchDomain {
    /// Wire tag.
    pub fn to_u8(self) -> u8 {
        match self {
            SketchDomain::ContentIndex => 0,
            SketchDomain::SrcPortDstAs => 1,
            SketchDomain::FlowBytes => 2,
        }
    }

    /// Parses a wire tag.
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(SketchDomain::ContentIndex),
            1 => Some(SketchDomain::SrcPortDstAs),
            2 => Some(SketchDomain::FlowBytes),
            _ => None,
        }
    }
}

#[cfg(test)]
mod proptests;
