//! `DCSS` — the sketch artifact payload format.
//!
//! A sketch rides inside the generic artifact section of a DCSR/DCSG
//! bundle (`dcs-collect::artifact` frames it with a length cap and a
//! CRC-32 trailer); this codec only defines the payload itself:
//!
//! ```text
//! magic "DCSS" | version u8 | kind u8 | domain u8 | reserved u8 = 0
//! kind 0 (Space-Saving):
//!   cap u32 | deficit u64 | total u64 | n u32 | n × (key u64, lower u64)
//! kind 1 (distinct KMV):
//!   cap u32 | s u32 | floor u64 | n u32 |
//!     n × (key u64, m u32, m × hash u64)
//! ```
//!
//! All integers little-endian. The decoder follows the workspace's
//! cap-before-allocation discipline: every count is bounded by
//! [`MAX_SKETCH_CAP`] **and** cross-checked against the remaining
//! buffer length before any `Vec`/map reserves memory, so a hostile
//! length field can waste at most the bytes it actually shipped.

use crate::{DistinctSketch, SketchDomain, SpaceSaving};
use std::collections::{BTreeMap, BTreeSet};

/// Payload magic.
pub const DCSS_MAGIC: [u8; 4] = *b"DCSS";
/// Codec version.
pub const DCSS_VERSION: u8 = 1;
/// Upper bound on `cap`, `s`, and every entry count a decoder will
/// honour (a monitoring point ships tens to hundreds of counters; four
/// orders of magnitude of headroom).
pub const MAX_SKETCH_CAP: usize = 1 << 16;

const KIND_SPACE_SAVING: u8 = 0;
const KIND_DISTINCT: u8 = 1;

/// Typed decode failures (mirrors `dcs-collect`'s `WireError` shape).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SketchError {
    /// Buffer shorter than a declared field.
    Truncated,
    /// Magic bytes are not `DCSS`.
    BadMagic,
    /// Unknown codec version.
    BadVersion(u8),
    /// Unknown sketch kind tag.
    BadKind(u8),
    /// A count or cap exceeds [`MAX_SKETCH_CAP`] or its container.
    CapExceeded,
    /// Structural violation (duplicate key, oversized KMV set, zero
    /// cap).
    Malformed,
}

impl std::fmt::Display for SketchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SketchError::Truncated => write!(f, "sketch payload truncated"),
            SketchError::BadMagic => write!(f, "bad sketch magic"),
            SketchError::BadVersion(v) => write!(f, "unsupported sketch version {v}"),
            SketchError::BadKind(k) => write!(f, "unknown sketch kind {k}"),
            SketchError::CapExceeded => write!(f, "sketch count exceeds cap"),
            SketchError::Malformed => write!(f, "malformed sketch payload"),
        }
    }
}

impl std::error::Error for SketchError {}

/// A decoded sketch payload with its domain tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SketchWire {
    /// Weighted Space-Saving counters.
    SpaceSaving {
        /// Key-domain tag (raw; see [`SketchDomain::from_u8`]).
        domain: u8,
        /// The sketch.
        sketch: SpaceSaving,
    },
    /// Distinct-count KMV heavy hitters.
    Distinct {
        /// Key-domain tag (raw; see [`SketchDomain::from_u8`]).
        domain: u8,
        /// The sketch.
        sketch: DistinctSketch,
    },
}

impl SketchWire {
    /// The raw domain tag.
    pub fn domain(&self) -> u8 {
        match self {
            SketchWire::SpaceSaving { domain, .. } | SketchWire::Distinct { domain, .. } => *domain,
        }
    }

    /// The typed domain, if the tag is known.
    pub fn typed_domain(&self) -> Option<SketchDomain> {
        SketchDomain::from_u8(self.domain())
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_u32(buf: &[u8], off: &mut usize) -> Result<u32, SketchError> {
    let end = off.checked_add(4).ok_or(SketchError::Truncated)?;
    let bytes = buf.get(*off..end).ok_or(SketchError::Truncated)?;
    *off = end;
    Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
}

fn get_u64(buf: &[u8], off: &mut usize) -> Result<u64, SketchError> {
    let end = off.checked_add(8).ok_or(SketchError::Truncated)?;
    let bytes = buf.get(*off..end).ok_or(SketchError::Truncated)?;
    *off = end;
    Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
}

/// Encodes a Space-Saving sketch into a fresh `DCSS` payload.
pub fn encode_space_saving(sketch: &SpaceSaving, domain: u8) -> Vec<u8> {
    let mut out = Vec::with_capacity(36 + sketch.len() * 16);
    out.extend_from_slice(&DCSS_MAGIC);
    out.push(DCSS_VERSION);
    out.push(KIND_SPACE_SAVING);
    out.push(domain);
    out.push(0);
    put_u32(&mut out, sketch.cap() as u32);
    put_u64(&mut out, sketch.error_bound());
    put_u64(&mut out, sketch.total());
    put_u32(&mut out, sketch.len() as u32);
    for (&k, &v) in sketch.entries() {
        put_u64(&mut out, k);
        put_u64(&mut out, v);
    }
    out
}

/// Encodes a distinct sketch into a fresh `DCSS` payload.
pub fn encode_distinct(sketch: &DistinctSketch, domain: u8) -> Vec<u8> {
    let mut out = Vec::with_capacity(28 + sketch.len() * (12 + sketch.kmv_size() * 8));
    out.extend_from_slice(&DCSS_MAGIC);
    out.push(DCSS_VERSION);
    out.push(KIND_DISTINCT);
    out.push(domain);
    out.push(0);
    put_u32(&mut out, sketch.cap() as u32);
    put_u32(&mut out, sketch.kmv_size() as u32);
    put_u64(&mut out, sketch.floor());
    put_u32(&mut out, sketch.len() as u32);
    for (&k, set) in sketch.keys() {
        put_u64(&mut out, k);
        put_u32(&mut out, set.len() as u32);
        for &h in set {
            put_u64(&mut out, h);
        }
    }
    out
}

/// Decodes a `DCSS` payload.
pub fn decode_sketch(buf: &[u8]) -> Result<SketchWire, SketchError> {
    if buf.len() < 8 {
        return Err(SketchError::Truncated);
    }
    if buf[..4] != DCSS_MAGIC {
        return Err(SketchError::BadMagic);
    }
    if buf[4] != DCSS_VERSION {
        return Err(SketchError::BadVersion(buf[4]));
    }
    let kind = buf[5];
    let domain = buf[6];
    let mut off = 8usize;
    match kind {
        KIND_SPACE_SAVING => {
            let cap = get_u32(buf, &mut off)? as usize;
            let deficit = get_u64(buf, &mut off)?;
            let total = get_u64(buf, &mut off)?;
            let n = get_u32(buf, &mut off)? as usize;
            if cap == 0 || cap > MAX_SKETCH_CAP || n > cap {
                return Err(SketchError::CapExceeded);
            }
            // Each entry is 16 bytes: the count must fit the remainder
            // before any allocation happens.
            if n.saturating_mul(16) > buf.len() - off {
                return Err(SketchError::Truncated);
            }
            let mut entries = BTreeMap::new();
            for _ in 0..n {
                let k = get_u64(buf, &mut off)?;
                let v = get_u64(buf, &mut off)?;
                if v == 0 || entries.insert(k, v).is_some() {
                    return Err(SketchError::Malformed);
                }
            }
            Ok(SketchWire::SpaceSaving {
                domain,
                sketch: SpaceSaving::from_parts(cap, entries, deficit, total),
            })
        }
        KIND_DISTINCT => {
            let cap = get_u32(buf, &mut off)? as usize;
            let s = get_u32(buf, &mut off)? as usize;
            let floor = get_u64(buf, &mut off)?;
            let n = get_u32(buf, &mut off)? as usize;
            if cap == 0 || cap > MAX_SKETCH_CAP || !(2..=MAX_SKETCH_CAP).contains(&s) || n > cap {
                return Err(SketchError::CapExceeded);
            }
            // Every key costs at least 12 bytes even with an empty set.
            if n.saturating_mul(12) > buf.len() - off {
                return Err(SketchError::Truncated);
            }
            let mut keys = BTreeMap::new();
            for _ in 0..n {
                let k = get_u64(buf, &mut off)?;
                let m = get_u32(buf, &mut off)? as usize;
                if m > s {
                    return Err(SketchError::CapExceeded);
                }
                if m.saturating_mul(8) > buf.len() - off {
                    return Err(SketchError::Truncated);
                }
                let mut set = BTreeSet::new();
                for _ in 0..m {
                    if !set.insert(get_u64(buf, &mut off)?) {
                        return Err(SketchError::Malformed);
                    }
                }
                if set.is_empty() || keys.insert(k, set).is_some() {
                    return Err(SketchError::Malformed);
                }
            }
            Ok(SketchWire::Distinct {
                domain,
                sketch: DistinctSketch::from_parts(cap, s, keys, floor),
            })
        }
        other => Err(SketchError::BadKind(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_saving_round_trip() {
        let mut s = SpaceSaving::new(4);
        for i in 0..50u64 {
            s.offer(i % 9, 1 + i % 3);
        }
        let bytes = encode_space_saving(&s, SketchDomain::ContentIndex.to_u8());
        match decode_sketch(&bytes).expect("round trip") {
            SketchWire::SpaceSaving { domain, sketch } => {
                assert_eq!(domain, 0);
                assert_eq!(sketch, s);
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn distinct_round_trip() {
        let mut d = DistinctSketch::new(4, 8);
        for i in 0..40u64 {
            d.offer(i % 6, i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }
        let bytes = encode_distinct(&d, SketchDomain::SrcPortDstAs.to_u8());
        match decode_sketch(&bytes).expect("round trip") {
            SketchWire::Distinct { domain, sketch } => {
                assert_eq!(domain, 1);
                assert_eq!(sketch, d);
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn hostile_count_is_rejected_before_allocation() {
        let mut s = SpaceSaving::new(4);
        s.offer(1, 5);
        let mut bytes = encode_space_saving(&s, 0);
        // Claim 2^32-1 entries in a tiny buffer: must be CapExceeded /
        // Truncated, never an allocation attempt.
        let n_off = bytes.len() - 16 - 4;
        bytes[n_off..n_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_sketch(&bytes).is_err());
    }

    #[test]
    fn truncation_and_garbage_are_typed_errors() {
        let mut s = SpaceSaving::new(4);
        s.offer(1, 5);
        let bytes = encode_space_saving(&s, 0);
        for cut in 0..bytes.len() {
            assert!(decode_sketch(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        assert_eq!(
            decode_sketch(b"DCSX....").unwrap_err(),
            SketchError::BadMagic
        );
        assert_eq!(
            decode_sketch(&[b'D', b'C', b'S', b'S', 9, 0, 0, 0]).unwrap_err(),
            SketchError::BadVersion(9)
        );
    }
}
