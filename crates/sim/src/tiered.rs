//! Two-level topology soak: leaves → regional aggregators → centre.
//!
//! The flat [`soak`](crate::soak) harness stops being a realistic model
//! past a few dozen routers — every leaf would hold a retransmit session
//! straight to the centre. This harness drives the aggregation tier
//! instead: each epoch, every leaf chunks its digest bundle onto its
//! region's [`LossyChannel`]; a per-region [`Aggregator`] reassembles
//! the child hop, pre-fuses the epoch into one
//! [`AggregateBundle`] and ships
//! it — as ordinary DCSC chunks — over a second lossy hop to the
//! centre's [`EpochCollector`], which feeds
//! `analyze_epoch_aggregated_collected`.
//!
//! Every epoch also replays *flat*: the child frames that actually
//! survived to the centre are fed straight to a second analysis centre
//! through `analyze_epoch_wire`, and both detection fingerprints are
//! recorded side by side. The tiered path forwards child frames
//! verbatim and validates globally, so the pair must be byte-identical
//! — the harness's central acceptance check.

use crate::channel::{ChannelConfig, LossyChannel};
use crate::soak::EpochOutcome;
use dcs_core::aggregate::{AggregateBundle, Aggregator};
use dcs_core::center::{AnalysisCenter, AnalysisConfig};
use dcs_core::ingest::IngestError;
use dcs_core::monitor::{MonitorConfig, MonitoringPoint};
use dcs_core::report::{EpochReport, TransportStats};
use dcs_core::runtime::{EpochInput, EpochPipeline, PipelineConfig, PipelineError};
use dcs_core::session::{
    ChunkDisposition, CollectorConfig, EpochCollector, Missing, RetransmitRequest,
};
use dcs_core::transport::chunk_bundle;
use dcs_core::MetricsRegistry;
use dcs_traffic::{gen, BackgroundConfig, ContentObject, Planting, SizeMix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;

/// Aggregator router ids live far above any leaf id.
const AGG_ID_BASE: u64 = 1 << 20;

/// Parameters of one two-level soak run.
#[derive(Debug, Clone, Copy)]
pub struct TieredSoakConfig {
    /// Leaf monitoring points.
    pub leaves: usize,
    /// Regional aggregators; leaves are partitioned contiguously.
    pub aggregators: usize,
    /// Leaves `0..infected` carry the planted content each epoch.
    pub infected: usize,
    /// Epochs to run.
    pub epochs: usize,
    /// Master seed (per-epoch seeds derive from it as in the flat soak).
    pub seed: u64,
    /// Impairments of the leaf → aggregator hop (each region gets its
    /// own channel, reseeded per epoch).
    pub leaf_channel: ChannelConfig,
    /// Impairments of the aggregator → centre hop.
    pub up_channel: ChannelConfig,
    /// Collector settings of each aggregator (child hop).
    pub leaf_collector: CollectorConfig,
    /// Collector settings of the centre (upstream hop).
    pub up_collector: CollectorConfig,
    /// Chunk payload bound on both hops.
    pub max_payload: usize,
    /// The centre's minimum surviving-*leaf* quorum.
    pub min_quorum: usize,
    /// Packets of the planted content object (0 = no plant).
    pub content_packets: usize,
    /// Background packets per leaf per epoch.
    pub bg_packets: usize,
    /// Background flows per leaf per epoch.
    pub bg_flows: usize,
    /// Aligned bitmap width per leaf.
    pub aligned_bits: usize,
    /// Flow-split groups per leaf.
    pub groups_per_leaf: usize,
    /// Unaligned arrays per group (paper: 10; shrink for wide runs).
    pub arrays_per_group: usize,
    /// Bits per unaligned array (paper: 1,024; shrink for wide runs).
    pub array_bits: usize,
    /// Drive the centre through [`EpochPipeline`] with
    /// `EpochInput::AggregatedCollected` instead of analysing inline.
    pub pipelined: bool,
}

impl TieredSoakConfig {
    /// The issue's baseline regime at paper shapes: 24 leaves behind 3
    /// aggregators, lossy on both hops, quorum-16 floor.
    pub fn standard(epochs: usize, seed: u64) -> Self {
        TieredSoakConfig {
            leaves: 24,
            aggregators: 3,
            infected: 20,
            epochs,
            seed,
            leaf_channel: ChannelConfig::soak(),
            up_channel: ChannelConfig::soak(),
            leaf_collector: CollectorConfig::default(),
            up_collector: CollectorConfig::default(),
            max_payload: 1024,
            min_quorum: 16,
            content_packets: 30,
            bg_packets: 800,
            bg_flows: 200,
            aligned_bits: 1 << 14,
            groups_per_leaf: 4,
            arrays_per_group: 10,
            array_bits: 1024,
            pipelined: false,
        }
    }

    /// A wide-deployment regime: `leaves` (1,000+) tiny-digest leaves
    /// behind `aggregators` regions. Digest shapes are reduced from the
    /// paper's, but the budget is sized for the *prescreened* unaligned
    /// graph engine: the weight-class/band screen discharges most of
    /// the quadratic group-pair work on this null traffic, which is
    /// what lets a wide run keep paper-width 1,024-bit arrays. (The
    /// pre-PR-8 all-pairs engine forced 256-bit arrays here.) The point
    /// of a wide run is topology accounting, not detection power.
    pub fn wide(leaves: usize, aggregators: usize, epochs: usize, seed: u64) -> Self {
        TieredSoakConfig {
            leaves,
            aggregators,
            infected: 0,
            epochs,
            seed,
            leaf_channel: ChannelConfig::soak(),
            up_channel: ChannelConfig::soak(),
            leaf_collector: CollectorConfig::default(),
            up_collector: CollectorConfig::default(),
            max_payload: 4096,
            min_quorum: leaves / 2,
            content_packets: 0,
            bg_packets: 40,
            bg_flows: 16,
            aligned_bits: 1 << 10,
            groups_per_leaf: 1,
            arrays_per_group: 2,
            array_bits: 1024,
            pipelined: false,
        }
    }

    /// The contiguous child range of aggregator `a`.
    fn region(&self, a: usize) -> std::ops::Range<usize> {
        let per = self.leaves / self.aggregators;
        let start = a * per;
        let end = if a + 1 == self.aggregators {
            self.leaves
        } else {
            start + per
        };
        start..end
    }
}

/// The full tiered-soak record.
#[derive(Debug)]
pub struct TieredSoakResult {
    /// One outcome per epoch, in order.
    pub outcomes: Vec<EpochOutcome>,
    /// Per-epoch `(tiered, flat)` detection fingerprints: the tiered
    /// path's verdicts next to a flat `analyze_epoch_wire` run over the
    /// same delivered child frames. Equal strings = detection
    /// equivalence held.
    pub detection_pairs: Vec<(String, String)>,
    /// Child-hop delivery stats summed over all aggregators and epochs.
    pub leaf_totals: TransportStats,
    /// Upstream-hop delivery stats summed over all epochs.
    pub up_totals: TransportStats,
    /// Ticks the virtual clock advanced.
    pub ticks: u64,
    /// The aggregation tier's metrics (per-level fuse spans, forwarded
    /// bytes, per-fault child exclusions).
    pub agg_metrics: dcs_core::MetricsSnapshot,
    /// The centre's metrics.
    pub metrics: dcs_core::MetricsSnapshot,
}

impl TieredSoakResult {
    /// Epochs that reached quorum.
    pub fn quorum_epochs(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, EpochOutcome::Report(_)))
            .count()
    }

    /// Whether every epoch's tiered and flat fingerprints matched.
    pub fn detection_equivalent(&self) -> bool {
        self.detection_pairs.iter().all(|(t, f)| t == f)
    }
}

fn accumulate(totals: &mut TransportStats, s: TransportStats) {
    totals.chunks_received += s.chunks_received;
    totals.retransmits += s.retransmits;
    totals.late_chunks += s.late_chunks;
    totals.duplicate_chunks += s.duplicate_chunks;
    totals.corrupt_chunks += s.corrupt_chunks;
    totals.checkpoint_resumes += s.checkpoint_resumes;
}

/// Detection-only fingerprint of an analysed epoch: exactly the fields
/// that must agree between the tiered and flat ingest paths. Ingest
/// indices and transport stats are deliberately excluded — the two
/// paths account those differently by design.
pub fn detection_fingerprint(r: &EpochReport) -> String {
    format!(
        "{{\"found\":{},\"routers\":{:?},\"packets\":{},\"signature\":{:?},\"alarm\":{},\"component\":{},\"suspected\":{:?},\"groups\":{:?}}}",
        r.aligned.found,
        r.aligned.routers,
        r.aligned.content_packets,
        r.aligned.signature_indices,
        r.unaligned.alarm,
        r.unaligned.largest_component,
        r.unaligned.suspected_routers,
        r.unaligned.suspected_groups,
    )
}

/// Fingerprint of a typed epoch outcome: the detection fingerprint for
/// a report, a compact quorum marker otherwise.
pub fn outcome_fingerprint(o: &EpochOutcome) -> String {
    match o {
        EpochOutcome::Report(r) => detection_fingerprint(r),
        EpochOutcome::QuorumTooSmall { accepted, .. } => {
            format!("{{\"quorum_too_small\":{accepted}}}")
        }
    }
}

fn to_outcome(min_quorum: usize, result: Result<EpochReport, PipelineError>) -> EpochOutcome {
    match result {
        Ok(report) => EpochOutcome::Report(Box::new(report)),
        Err(PipelineError::Ingest(IngestError::QuorumTooSmall { required, report })) => {
            EpochOutcome::QuorumTooSmall {
                required,
                accepted: report.accepted.len(),
            }
        }
        Err(PipelineError::Ingest(IngestError::NoDigests)) => EpochOutcome::QuorumTooSmall {
            required: min_quorum,
            accepted: 0,
        },
        Err(PipelineError::Panicked(msg)) => panic!("tiered soak analysis panicked: {msg}"),
    }
}

enum Driver {
    Sequential(Box<AnalysisCenter>),
    Pipelined(EpochPipeline),
}

/// Runs the two-level soak. Deterministic in `cfg`; every transport or
/// quorum failure is a typed outcome, never a panic.
pub fn run_tiered_soak(cfg: &TieredSoakConfig) -> TieredSoakResult {
    assert!(cfg.aggregators >= 1 && cfg.leaves >= cfg.aggregators);
    assert!(cfg.infected <= cfg.leaves);
    let mut mcfg = MonitorConfig::small(7, cfg.aligned_bits, cfg.groups_per_leaf);
    mcfg.unaligned.arrays_per_group = cfg.arrays_per_group;
    mcfg.unaligned.array_bits = cfg.array_bits;
    let mut monitors: Vec<MonitoringPoint> = (0..cfg.leaves)
        .map(|id| MonitoringPoint::new(id, &mcfg))
        .collect();

    let make_acfg = || {
        let mut acfg = AnalysisConfig::for_groups(cfg.leaves * cfg.groups_per_leaf)
            .with_min_quorum(cfg.min_quorum);
        acfg.search.n_prime = 400.min(cfg.aligned_bits);
        acfg.search.hopefuls = 300.min(cfg.aligned_bits);
        acfg
    };
    let driver = if cfg.pipelined {
        Driver::Pipelined(EpochPipeline::new(
            AnalysisCenter::new(make_acfg()),
            PipelineConfig::default(),
        ))
    } else {
        Driver::Sequential(Box::new(AnalysisCenter::new(make_acfg())))
    };
    // The flat-replay centre: identical configuration, fed the same
    // delivered child frames without the tier in between.
    let flat_center = AnalysisCenter::new(make_acfg());
    let agg_metrics = MetricsRegistry::new();

    let mut leaf_channels: Vec<LossyChannel> = (0..cfg.aggregators)
        .map(|a| LossyChannel::new(cfg.leaf_channel, cfg.seed ^ (a as u64)))
        .collect();
    let mut up_channel = LossyChannel::new(cfg.up_channel, cfg.seed ^ 0xA55A);

    let bg = BackgroundConfig {
        packets: cfg.bg_packets,
        flows: cfg.bg_flows,
        zipf_exponent: 1.0,
        size_mix: SizeMix::constant(536),
    };

    let mut outcomes: Vec<EpochOutcome> = Vec::with_capacity(cfg.epochs);
    let mut detection_pairs: Vec<(String, String)> = Vec::new();
    let mut flat_queue: VecDeque<String> = VecDeque::new();
    let mut leaf_totals = TransportStats::default();
    let mut up_totals = TransportStats::default();
    let mut now: u64 = 0;

    for e in 0..cfg.epochs {
        let epoch_seed = cfg
            .seed
            .wrapping_add((e as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        for (a, ch) in leaf_channels.iter_mut().enumerate() {
            ch.reseed(epoch_seed ^ (a as u64).wrapping_mul(0x517C_C1B7_2722_0A95));
        }
        up_channel.reseed(epoch_seed ^ 0xA55A);
        let mut rng = StdRng::seed_from_u64(epoch_seed);

        let plant = (cfg.content_packets > 0).then(|| {
            Planting::aligned(
                ContentObject::random_with_packets(&mut rng, cfg.content_packets, 536),
                536,
            )
        });
        let epoch_id = monitors[0].epochs_finished();

        let mut aggs: Vec<Aggregator> = (0..cfg.aggregators)
            .map(|a| {
                Aggregator::new(
                    AGG_ID_BASE + a as u64,
                    1,
                    epoch_id,
                    cfg.region(a).map(|l| l as u64),
                    cfg.leaf_collector,
                    epoch_seed ^ (a as u64),
                    now,
                )
            })
            .collect();

        for (id, mp) in monitors.iter_mut().enumerate() {
            let mut traffic = gen::generate_epoch(&mut rng, &bg);
            if let Some(plant) = plant.as_ref().filter(|_| id < cfg.infected) {
                plant.plant_into(&mut rng, &mut traffic);
            }
            mp.observe_all(&traffic);
            let chunks = mp
                .finish_epoch_chunks(cfg.max_payload)
                .expect("leaf bundles fit the wire format");
            let owner = (0..cfg.aggregators)
                .find(|&a| cfg.region(a).contains(&id))
                .expect("regions partition the leaves");
            for chunk in chunks {
                leaf_channels[owner].send(&chunk, now);
            }
        }

        // Hop 1: drive every region until its straggler policy is
        // satisfied (hard-capped so a pathological regime terminates).
        let cap = now + cfg.leaf_collector.deadline * 4;
        loop {
            for (a, agg) in aggs.iter_mut().enumerate() {
                for frame in leaf_channels[a].deliver_due(now) {
                    if let ChunkDisposition::Accepted {
                        router_id,
                        cumulative_ack,
                    } = agg.offer(&frame, now)
                    {
                        monitors[router_id as usize].ack(epoch_id, cumulative_ack);
                    }
                }
                for req in agg.poll(now) {
                    for frame in monitors[req.router_id as usize].resend(req.epoch_id, &req.missing)
                    {
                        leaf_channels[a].send(&frame, now);
                    }
                }
            }
            if aggs.iter().all(|a| a.ready(now)) || now >= cap {
                break;
            }
            now += 1;
        }

        // Each aggregator finalizes its region, pre-fuses, and ships the
        // bundle upstream as ordinary chunks (kept for retransmits).
        let mut resend_store: Vec<Vec<Vec<u8>>> = Vec::with_capacity(cfg.aggregators);
        let mut up_collector = EpochCollector::new(
            epoch_id,
            (0..cfg.aggregators).map(|a| AGG_ID_BASE + a as u64),
            cfg.up_collector,
            epoch_seed ^ 0x5A5A,
            now,
        );
        for agg in &mut aggs {
            accumulate(&mut leaf_totals, agg.stats());
            let bundle = agg.finalize(now, &agg_metrics);
            let wire = bundle.encode_wire();
            let chunks = chunk_bundle(agg.id(), epoch_id, &wire, cfg.max_payload);
            for chunk in &chunks {
                up_channel.send(chunk, now);
            }
            resend_store.push(chunks);
        }

        // Hop 2: aggregators → centre.
        let cap = now + cfg.up_collector.deadline * 4;
        loop {
            for frame in up_channel.deliver_due(now) {
                up_collector.offer(&frame, now);
            }
            for RetransmitRequest {
                router_id, missing, ..
            } in up_collector.poll(now)
            {
                let a = (router_id - AGG_ID_BASE) as usize;
                let chunks = &resend_store[a];
                let frames: Vec<&Vec<u8>> = match &missing {
                    Missing::All => chunks.iter().collect(),
                    Missing::Seqs(seqs) => seqs
                        .iter()
                        .filter_map(|&s| chunks.get(s as usize))
                        .collect(),
                };
                for frame in frames {
                    up_channel.send(frame, now);
                }
            }
            if up_collector.ready(now) || now >= cap {
                break;
            }
            now += 1;
        }

        let epoch = up_collector.finalize(now);
        accumulate(&mut up_totals, epoch.stats);

        // Flat replay: the child frames that actually reached the centre,
        // straight into a flat wire-ingest run.
        let flat_frames: Vec<Vec<u8>> = epoch
            .frames
            .iter()
            .filter_map(|(_, bytes)| AggregateBundle::decode_wire(bytes).ok())
            .flat_map(|(bundle, _)| bundle.frames)
            .collect();
        let flat = flat_center
            .analyze_epoch_wire(&flat_frames)
            .map_err(PipelineError::Ingest);
        flat_queue.push_back(outcome_fingerprint(&to_outcome(cfg.min_quorum, flat)));

        match &driver {
            Driver::Sequential(center) => {
                let result = center
                    .analyze_epoch_aggregated_collected(&epoch)
                    .map_err(PipelineError::Ingest);
                outcomes.push(to_outcome(cfg.min_quorum, result));
            }
            Driver::Pipelined(pipe) => {
                pipe.submit(EpochInput::AggregatedCollected(epoch));
                while let Some((_, result)) = pipe.try_recv() {
                    outcomes.push(to_outcome(cfg.min_quorum, result));
                }
            }
        }
        while detection_pairs.len() < outcomes.len() {
            let flat_fp = flat_queue.pop_front().expect("one flat run per epoch");
            let tiered_fp = outcome_fingerprint(&outcomes[detection_pairs.len()]);
            detection_pairs.push((tiered_fp, flat_fp));
        }
        now += 1;
    }

    let metrics = match driver {
        Driver::Sequential(center) => center.metrics(),
        Driver::Pipelined(pipe) => {
            for (_, result) in pipe.drain() {
                outcomes.push(to_outcome(cfg.min_quorum, result));
            }
            while detection_pairs.len() < outcomes.len() {
                let flat_fp = flat_queue.pop_front().expect("one flat run per epoch");
                let tiered_fp = outcome_fingerprint(&outcomes[detection_pairs.len()]);
                detection_pairs.push((tiered_fp, flat_fp));
            }
            pipe.center().metrics()
        }
    };

    TieredSoakResult {
        outcomes,
        detection_pairs,
        leaf_totals,
        up_totals,
        ticks: now,
        agg_metrics: agg_metrics.snapshot(),
        metrics,
    }
}

/// The level-2 super-aggregator's router id in deep runs.
const AGG2_ID: u64 = AGG_ID_BASE * 2;

/// Runs the *deep* soak: leaves → level-1 regional aggregators → one
/// level-2 super-aggregator → centre, with an independent lossy hop
/// between every tier. The level-2 aggregator receives whole DCSG
/// bundles as its child frames and flattens them (leaf frames spliced,
/// fused bitmaps OR-merged, exclusions re-wrapped one
/// [`dcs_core::ingest::RouterFault::AtLevel`] deeper), so the centre
/// still counts quorum in *leaves* after three aggregation levels.
///
/// Analysis is sequential (`cfg.pipelined` is ignored); every transport
/// or quorum failure is a typed outcome, never a panic.
pub fn run_tiered_soak_deep(cfg: &TieredSoakConfig) -> TieredSoakResult {
    assert!(cfg.aggregators >= 1 && cfg.leaves >= cfg.aggregators);
    assert!(cfg.infected <= cfg.leaves);
    let mut mcfg = MonitorConfig::small(7, cfg.aligned_bits, cfg.groups_per_leaf);
    mcfg.unaligned.arrays_per_group = cfg.arrays_per_group;
    mcfg.unaligned.array_bits = cfg.array_bits;
    let mut monitors: Vec<MonitoringPoint> = (0..cfg.leaves)
        .map(|id| MonitoringPoint::new(id, &mcfg))
        .collect();

    let make_acfg = || {
        let mut acfg = AnalysisConfig::for_groups(cfg.leaves * cfg.groups_per_leaf)
            .with_min_quorum(cfg.min_quorum);
        acfg.search.n_prime = 400.min(cfg.aligned_bits);
        acfg.search.hopefuls = 300.min(cfg.aligned_bits);
        acfg
    };
    let center = AnalysisCenter::new(make_acfg());
    let flat_center = AnalysisCenter::new(make_acfg());
    let agg_metrics = MetricsRegistry::new();

    let mut leaf_channels: Vec<LossyChannel> = (0..cfg.aggregators)
        .map(|a| LossyChannel::new(cfg.leaf_channel, cfg.seed ^ (a as u64)))
        .collect();
    let mut mid_channel = LossyChannel::new(cfg.up_channel, cfg.seed ^ 0xB44B);
    let mut up_channel = LossyChannel::new(cfg.up_channel, cfg.seed ^ 0xA55A);

    let bg = BackgroundConfig {
        packets: cfg.bg_packets,
        flows: cfg.bg_flows,
        zipf_exponent: 1.0,
        size_mix: SizeMix::constant(536),
    };

    let mut outcomes: Vec<EpochOutcome> = Vec::with_capacity(cfg.epochs);
    let mut detection_pairs: Vec<(String, String)> = Vec::new();
    let mut leaf_totals = TransportStats::default();
    let mut up_totals = TransportStats::default();
    let mut now: u64 = 0;

    for e in 0..cfg.epochs {
        let epoch_seed = cfg
            .seed
            .wrapping_add((e as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        for (a, ch) in leaf_channels.iter_mut().enumerate() {
            ch.reseed(epoch_seed ^ (a as u64).wrapping_mul(0x517C_C1B7_2722_0A95));
        }
        mid_channel.reseed(epoch_seed ^ 0xB44B);
        up_channel.reseed(epoch_seed ^ 0xA55A);
        let mut rng = StdRng::seed_from_u64(epoch_seed);

        let plant = (cfg.content_packets > 0).then(|| {
            Planting::aligned(
                ContentObject::random_with_packets(&mut rng, cfg.content_packets, 536),
                536,
            )
        });
        let epoch_id = monitors[0].epochs_finished();

        let mut aggs: Vec<Aggregator> = (0..cfg.aggregators)
            .map(|a| {
                Aggregator::new(
                    AGG_ID_BASE + a as u64,
                    1,
                    epoch_id,
                    cfg.region(a).map(|l| l as u64),
                    cfg.leaf_collector,
                    epoch_seed ^ (a as u64),
                    now,
                )
            })
            .collect();

        for (id, mp) in monitors.iter_mut().enumerate() {
            let mut traffic = gen::generate_epoch(&mut rng, &bg);
            if let Some(plant) = plant.as_ref().filter(|_| id < cfg.infected) {
                plant.plant_into(&mut rng, &mut traffic);
            }
            mp.observe_all(&traffic);
            let chunks = mp
                .finish_epoch_chunks(cfg.max_payload)
                .expect("leaf bundles fit the wire format");
            let owner = (0..cfg.aggregators)
                .find(|&a| cfg.region(a).contains(&id))
                .expect("regions partition the leaves");
            for chunk in chunks {
                leaf_channels[owner].send(&chunk, now);
            }
        }

        // Hop 1: leaves → level-1 aggregators.
        let cap = now + cfg.leaf_collector.deadline * 4;
        loop {
            for (a, agg) in aggs.iter_mut().enumerate() {
                for frame in leaf_channels[a].deliver_due(now) {
                    if let ChunkDisposition::Accepted {
                        router_id,
                        cumulative_ack,
                    } = agg.offer(&frame, now)
                    {
                        monitors[router_id as usize].ack(epoch_id, cumulative_ack);
                    }
                }
                for req in agg.poll(now) {
                    for frame in monitors[req.router_id as usize].resend(req.epoch_id, &req.missing)
                    {
                        leaf_channels[a].send(&frame, now);
                    }
                }
            }
            if aggs.iter().all(|a| a.ready(now)) || now >= cap {
                break;
            }
            now += 1;
        }

        // Hop 2: level-1 bundles → the level-2 super-aggregator, again
        // as ordinary chunks over a lossy channel.
        let mut agg2 = Aggregator::new(
            AGG2_ID,
            2,
            epoch_id,
            (0..cfg.aggregators).map(|a| AGG_ID_BASE + a as u64),
            cfg.up_collector,
            epoch_seed ^ 0x2222,
            now,
        );
        let mut mid_store: Vec<Vec<Vec<u8>>> = Vec::with_capacity(cfg.aggregators);
        for agg in &mut aggs {
            accumulate(&mut leaf_totals, agg.stats());
            let bundle = agg.finalize(now, &agg_metrics);
            let chunks = chunk_bundle(agg.id(), epoch_id, &bundle.encode_wire(), cfg.max_payload);
            for chunk in &chunks {
                mid_channel.send(chunk, now);
            }
            mid_store.push(chunks);
        }
        let cap = now + cfg.up_collector.deadline * 4;
        loop {
            for frame in mid_channel.deliver_due(now) {
                agg2.offer(&frame, now);
            }
            for req in agg2.poll(now) {
                let a = (req.router_id - AGG_ID_BASE) as usize;
                let chunks = &mid_store[a];
                let frames: Vec<&Vec<u8>> = match &req.missing {
                    Missing::All => chunks.iter().collect(),
                    Missing::Seqs(seqs) => seqs
                        .iter()
                        .filter_map(|&s| chunks.get(s as usize))
                        .collect(),
                };
                for frame in frames {
                    mid_channel.send(frame, now);
                }
            }
            if agg2.ready(now) || now >= cap {
                break;
            }
            now += 1;
        }

        // Hop 3: the flattened super-bundle → centre.
        accumulate(&mut up_totals, agg2.stats());
        let bundle2 = agg2.finalize(now, &agg_metrics);
        let up_chunks = chunk_bundle(AGG2_ID, epoch_id, &bundle2.encode_wire(), cfg.max_payload);
        let mut up_collector = EpochCollector::new(
            epoch_id,
            [AGG2_ID],
            cfg.up_collector,
            epoch_seed ^ 0x5A5A,
            now,
        );
        for chunk in &up_chunks {
            up_channel.send(chunk, now);
        }
        let cap = now + cfg.up_collector.deadline * 4;
        loop {
            for frame in up_channel.deliver_due(now) {
                up_collector.offer(&frame, now);
            }
            for req in up_collector.poll(now) {
                let frames: Vec<&Vec<u8>> = match &req.missing {
                    Missing::All => up_chunks.iter().collect(),
                    Missing::Seqs(seqs) => seqs
                        .iter()
                        .filter_map(|&s| up_chunks.get(s as usize))
                        .collect(),
                };
                for frame in frames {
                    up_channel.send(frame, now);
                }
            }
            if up_collector.ready(now) || now >= cap {
                break;
            }
            now += 1;
        }

        let epoch = up_collector.finalize(now);
        accumulate(&mut up_totals, epoch.stats);

        // Flat replay: the leaf frames that actually survived all three
        // hops, straight into a flat wire-ingest run.
        let flat_frames: Vec<Vec<u8>> = epoch
            .frames
            .iter()
            .filter_map(|(_, bytes)| AggregateBundle::decode_wire(bytes).ok())
            .flat_map(|(bundle, _)| bundle.frames)
            .collect();
        let flat = flat_center
            .analyze_epoch_wire(&flat_frames)
            .map_err(PipelineError::Ingest);
        let flat_fp = outcome_fingerprint(&to_outcome(cfg.min_quorum, flat));

        let result = center
            .analyze_epoch_aggregated_collected(&epoch)
            .map_err(PipelineError::Ingest);
        let outcome = to_outcome(cfg.min_quorum, result);
        detection_pairs.push((outcome_fingerprint(&outcome), flat_fp));
        outcomes.push(outcome);
        now += 1;
    }

    TieredSoakResult {
        outcomes,
        detection_pairs,
        leaf_totals,
        up_totals,
        ticks: now,
        agg_metrics: agg_metrics.snapshot(),
        metrics: center.metrics(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelConfig;

    #[test]
    fn tiered_soak_detects_and_matches_flat_ingest() {
        let cfg = TieredSoakConfig::standard(2, 21);
        let result = run_tiered_soak(&cfg);
        assert_eq!(result.quorum_epochs(), 2, "{:?}", result.detection_pairs);
        assert!(
            result.detection_equivalent(),
            "tiered and flat detection diverged: {:?}",
            result.detection_pairs
        );
        for o in &result.outcomes {
            let EpochOutcome::Report(r) = o else {
                unreachable!()
            };
            assert!(r.aligned.found, "planted content missed through the tier");
        }
        assert!(
            result.leaf_totals.retransmits > 0,
            "lossy child hop must retransmit"
        );
        assert!(
            result
                .agg_metrics
                .gauge("aggregate_fuse_ns{level=1}")
                .is_some(),
            "aggregator tier must record its fuse span"
        );
        // The centre's unaligned graph ran through the prescreened
        // engine: both pair-accounting counters exist and work happened.
        let screened = result.metrics.counter("pairs_screened_total");
        let exact = result.metrics.counter("pairs_exact_total");
        assert!(
            screened.is_some() && exact.is_some(),
            "prescreen pair counters missing from the tiered snapshot"
        );
        assert!(
            screened.unwrap() + exact.unwrap() > 0,
            "tiered soak visited no unaligned group pairs"
        );
    }

    #[test]
    fn deep_soak_three_levels_detects_and_matches_flat_ingest() {
        let cfg = TieredSoakConfig::standard(2, 31);
        let result = run_tiered_soak_deep(&cfg);
        assert_eq!(result.quorum_epochs(), 2, "{:?}", result.detection_pairs);
        assert!(
            result.detection_equivalent(),
            "deep and flat detection diverged: {:?}",
            result.detection_pairs
        );
        for o in &result.outcomes {
            let EpochOutcome::Report(r) = o else {
                unreachable!()
            };
            assert!(r.aligned.found, "planted content missed through 3 levels");
            // Leaf-based quorum accounting composes through the extra
            // hop: everything the centre counts is a leaf, never an
            // aggregator bundle.
            assert!(r.ingest.submitted <= cfg.leaves);
            assert!(r.ingest.accepted.len() >= cfg.min_quorum);
        }
        // Both aggregation levels recorded fuse spans.
        assert!(
            result
                .agg_metrics
                .gauge("aggregate_fuse_ns{level=1}")
                .is_some(),
            "level-1 fuse span missing"
        );
        assert!(
            result
                .agg_metrics
                .gauge("aggregate_fuse_ns{level=2}")
                .is_some(),
            "level-2 fuse span missing"
        );
    }

    #[test]
    fn deep_soak_perfect_channels_account_every_leaf() {
        let mut cfg = TieredSoakConfig::standard(1, 32);
        cfg.leaf_channel = ChannelConfig::perfect();
        cfg.up_channel = ChannelConfig::perfect();
        let result = run_tiered_soak_deep(&cfg);
        assert_eq!(result.quorum_epochs(), 1);
        assert!(result.detection_equivalent());
        assert_eq!(result.leaf_totals.retransmits, 0);
        assert_eq!(result.up_totals.retransmits, 0);
        let EpochOutcome::Report(r) = &result.outcomes[0] else {
            unreachable!()
        };
        assert_eq!(r.routers, 24);
        assert_eq!(
            r.ingest.submitted, 24,
            "quorum counts leaves through all three levels"
        );
    }

    #[test]
    fn tiered_soak_perfect_channels_are_loss_free() {
        let mut cfg = TieredSoakConfig::standard(1, 22);
        cfg.leaf_channel = ChannelConfig::perfect();
        cfg.up_channel = ChannelConfig::perfect();
        let result = run_tiered_soak(&cfg);
        assert_eq!(result.quorum_epochs(), 1);
        assert!(result.detection_equivalent());
        assert_eq!(result.leaf_totals.retransmits, 0);
        assert_eq!(result.up_totals.retransmits, 0);
        let EpochOutcome::Report(r) = &result.outcomes[0] else {
            unreachable!()
        };
        assert_eq!(r.routers, 24);
        assert_eq!(r.ingest.submitted, 24, "quorum counts leaves");
    }
}
