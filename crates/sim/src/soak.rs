//! Transport soak harness: many epochs of the full digest path —
//! monitoring points chunking their bundles, a [`LossyChannel`]
//! impairing delivery, the [`EpochCollector`] reassembling, acking and
//! re-requesting, the analysis centre detecting — under configurable
//! fault regimes, with an optional mid-soak centre kill/restart that
//! exercises checkpoint recovery.
//!
//! Everything runs on virtual ticks from one seed: a soak run is a pure
//! function of its [`SoakConfig`], so two runs that differ only in
//! whether the centre crashed can be compared detection-set for
//! detection-set.

use crate::channel::{ChannelConfig, LossyChannel};
use dcs_core::center::{AnalysisCenter, AnalysisConfig};
use dcs_core::ingest::IngestError;
use dcs_core::monitor::{MonitorConfig, MonitoringPoint};
use dcs_core::report::{EpochReport, TransportStats};
use dcs_core::runtime::{EpochInput, EpochPipeline, PipelineConfig, PipelineError};
use dcs_core::session::{ChunkDisposition, CollectorConfig, EpochCollector};
use dcs_traffic::{gen, BackgroundConfig, ContentObject, Planting, SizeMix};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Kill the centre mid-epoch: checkpoint the collector at the given tick
/// offset of the given epoch, lose everything in flight, resume from the
/// checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillPlan {
    /// Which soak epoch (0-based) the crash hits.
    pub epoch: usize,
    /// Tick offset within that epoch at which the centre dies.
    pub tick: u64,
}

/// Parameters of one soak run.
#[derive(Debug, Clone, Copy)]
pub struct SoakConfig {
    /// Monitoring points / expected digest bundles per epoch.
    pub routers: usize,
    /// Routers `0..infected` carry the planted content each epoch.
    pub infected: usize,
    /// Epochs to run.
    pub epochs: usize,
    /// Master seed; every epoch derives its own traffic/channel/jitter
    /// seeds from it.
    pub seed: u64,
    /// Channel impairment model.
    pub channel: ChannelConfig,
    /// Collector deadline/straggler/backoff settings.
    pub collector: CollectorConfig,
    /// Chunk payload bound handed to
    /// [`MonitoringPoint::finish_epoch_chunks`].
    pub max_payload: usize,
    /// The centre's minimum surviving-bundle quorum.
    pub min_quorum: usize,
    /// Packets of the planted content object.
    pub content_packets: usize,
    /// Background packets per router per epoch.
    pub bg_packets: usize,
    /// Background flows per router per epoch.
    pub bg_flows: usize,
    /// Optional mid-soak centre crash.
    pub kill: Option<KillPlan>,
    /// Drive the centre through the pipelined runtime
    /// ([`EpochPipeline`]) instead of analysing inline: epoch N's
    /// analysis overlaps epoch N+1's collection. Detection outcomes are
    /// byte-identical either way — the pipeline reorders *when* work
    /// happens, never what it computes.
    pub pipelined: bool,
}

impl SoakConfig {
    /// The issue's soak regime: 24 routers, 20 infected, lossy channel
    /// per [`ChannelConfig::soak`], quorum-16 floor, no crash.
    pub fn standard(epochs: usize, seed: u64) -> Self {
        SoakConfig {
            routers: 24,
            infected: 20,
            epochs,
            seed,
            channel: ChannelConfig::soak(),
            collector: CollectorConfig::default(),
            max_payload: 1024,
            min_quorum: 16,
            content_packets: 30,
            bg_packets: 800,
            bg_flows: 200,
            kill: None,
            pipelined: false,
        }
    }
}

/// What one soak epoch produced.
#[derive(Debug, Clone)]
pub enum EpochOutcome {
    /// The epoch reached quorum and was analysed.
    Report(Box<EpochReport>),
    /// Too few bundles survived transport + validation; the typed
    /// degradation outcome, never a panic.
    QuorumTooSmall {
        /// The configured floor.
        required: usize,
        /// Bundles that did survive.
        accepted: usize,
    },
}

impl EpochOutcome {
    /// The detection verdicts of this epoch, serialized to a canonical
    /// JSON string — the unit of the kill/restart byte-identity check.
    /// Transport stats and timings are deliberately excluded: a crashed
    /// run legitimately retransmits more; it must *detect* identically.
    pub fn detection_set(&self) -> String {
        match self {
            EpochOutcome::Report(r) => format!(
                "{{\"found\":{},\"routers\":{:?},\"packets\":{},\"signature\":{:?},\"alarm\":{},\"suspected\":{:?},\"accepted\":{:?}}}",
                r.aligned.found,
                r.aligned.routers,
                r.aligned.content_packets,
                r.aligned.signature_indices,
                r.unaligned.alarm,
                r.unaligned.suspected_routers,
                r.ingest.accepted,
            ),
            EpochOutcome::QuorumTooSmall { required, accepted } => {
                format!("{{\"quorum_too_small\":[{required},{accepted}]}}")
            }
        }
    }
}

/// The full soak record.
#[derive(Debug)]
pub struct SoakResult {
    /// One outcome per epoch, in order.
    pub outcomes: Vec<EpochOutcome>,
    /// Transport stats summed across every epoch.
    pub totals: TransportStats,
    /// Ticks the virtual clock advanced over the whole run.
    pub ticks: u64,
    /// The centre's final metrics snapshot: cumulative per-stage
    /// timings, ingest/transport counters and kernel dispatch across
    /// every analysed epoch of the run.
    pub metrics: dcs_core::MetricsSnapshot,
}

impl SoakResult {
    /// Per-epoch detection sets (see [`EpochOutcome::detection_set`]).
    pub fn detection_sets(&self) -> Vec<String> {
        self.outcomes
            .iter()
            .map(EpochOutcome::detection_set)
            .collect()
    }

    /// Epochs that reached quorum.
    pub fn quorum_epochs(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, EpochOutcome::Report(_)))
            .count()
    }
}

fn accumulate(totals: &mut TransportStats, s: TransportStats) {
    totals.chunks_received += s.chunks_received;
    totals.retransmits += s.retransmits;
    totals.late_chunks += s.late_chunks;
    totals.duplicate_chunks += s.duplicate_chunks;
    totals.corrupt_chunks += s.corrupt_chunks;
    totals.checkpoint_resumes += s.checkpoint_resumes;
}

/// Maps one analysed epoch's result onto the soak's typed outcome.
/// Panics only on harness bugs (a panicked analysis body).
fn to_outcome(min_quorum: usize, result: Result<EpochReport, PipelineError>) -> EpochOutcome {
    match result {
        Ok(report) => EpochOutcome::Report(Box::new(report)),
        Err(PipelineError::Ingest(IngestError::QuorumTooSmall { required, report })) => {
            EpochOutcome::QuorumTooSmall {
                required,
                accepted: report.accepted.len(),
            }
        }
        Err(PipelineError::Ingest(IngestError::NoDigests)) => EpochOutcome::QuorumTooSmall {
            required: min_quorum,
            accepted: 0,
        },
        Err(PipelineError::Panicked(msg)) => panic!("soak epoch analysis panicked: {msg}"),
    }
}

/// How the soak drives the centre: inline per-epoch analysis, or the
/// continuously running pipeline.
enum Driver {
    Sequential(Box<AnalysisCenter>),
    Pipelined(EpochPipeline),
}

/// Runs the soak. Deterministic in `cfg`; panics only on harness bugs —
/// every transport or quorum failure is a typed [`EpochOutcome`].
pub fn run_soak(cfg: &SoakConfig) -> SoakResult {
    assert!(cfg.infected <= cfg.routers);
    let mcfg = MonitorConfig::small(7, 1 << 14, 4);
    let mut monitors: Vec<MonitoringPoint> = (0..cfg.routers)
        .map(|id| MonitoringPoint::new(id, &mcfg))
        .collect();
    let mut acfg = AnalysisConfig::for_groups(cfg.routers * 4).with_min_quorum(cfg.min_quorum);
    acfg.search.n_prime = 400;
    acfg.search.hopefuls = 300;
    let center = AnalysisCenter::new(acfg);
    let driver = if cfg.pipelined {
        Driver::Pipelined(EpochPipeline::new(center, PipelineConfig::default()))
    } else {
        Driver::Sequential(Box::new(center))
    };
    let mut channel = LossyChannel::new(cfg.channel, cfg.seed);

    let bg = BackgroundConfig {
        packets: cfg.bg_packets,
        flows: cfg.bg_flows,
        zipf_exponent: 1.0,
        size_mix: SizeMix::constant(536),
    };

    let mut outcomes = Vec::with_capacity(cfg.epochs);
    let mut totals = TransportStats::default();
    let mut now: u64 = 0;
    let mut crashed = false;

    for e in 0..cfg.epochs {
        // Per-epoch derived seed: traffic, channel impairments and
        // retransmit jitter all replay from it, so a divergence in one
        // epoch (e.g. a centre crash) cannot cascade into the next
        // epoch's fault pattern.
        let epoch_seed = cfg
            .seed
            .wrapping_add((e as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        channel.reseed(epoch_seed);
        let mut rng = StdRng::seed_from_u64(epoch_seed);

        let obj = ContentObject::random_with_packets(&mut rng, cfg.content_packets, 536);
        let plant = Planting::aligned(obj, 536);
        let epoch_id = monitors[0].epochs_finished();
        let mut collector = EpochCollector::new(
            epoch_id,
            (0..cfg.routers as u64).collect::<Vec<_>>(),
            cfg.collector,
            epoch_seed,
            now,
        );

        for (id, mp) in monitors.iter_mut().enumerate() {
            let mut traffic = gen::generate_epoch(&mut rng, &bg);
            if id < cfg.infected {
                plant.plant_into(&mut rng, &mut traffic);
            }
            mp.observe_all(&traffic);
            let chunks = mp
                .finish_epoch_chunks(cfg.max_payload)
                .expect("collector bundles fit the wire format");
            for chunk in chunks {
                channel.send(&chunk, now);
            }
        }

        // Drive ticks until the straggler policy says the epoch is done
        // (hard-capped at 4× the deadline so a pathological regime still
        // terminates and finalizes with typed exclusions).
        let cap = now + cfg.collector.deadline * 4;
        loop {
            for frame in channel.deliver_due(now) {
                if let ChunkDisposition::Accepted {
                    router_id,
                    cumulative_ack,
                } = collector.offer(&frame, now)
                {
                    // The ack path: senders prune their resend buffers
                    // below the cumulative ack.
                    monitors[router_id as usize].ack(epoch_id, cumulative_ack);
                }
            }
            if let Some(kill) = cfg.kill {
                if !crashed && kill.epoch == e && now >= collector.started_at() + kill.tick {
                    crashed = true;
                    // The centre dies: progress survives only through the
                    // checkpoint; frames addressed to it are lost.
                    let ckpt = collector.checkpoint();
                    drop(collector);
                    channel.clear();
                    collector = EpochCollector::resume(&ckpt, cfg.collector, epoch_seed, now)
                        .expect("own checkpoint must resume");
                }
            }
            for req in collector.poll(now) {
                for frame in monitors[req.router_id as usize].resend(req.epoch_id, &req.missing) {
                    channel.send(&frame, now);
                }
            }
            if collector.ready(now) || now >= cap {
                break;
            }
            now += 1;
        }

        let epoch = collector.finalize(now);
        accumulate(&mut totals, epoch.stats);
        match &driver {
            Driver::Sequential(center) => {
                let result = center
                    .analyze_epoch_collected(&epoch)
                    .map_err(PipelineError::Ingest);
                outcomes.push(to_outcome(cfg.min_quorum, result));
            }
            Driver::Pipelined(pipe) => {
                // Hold the worker across the first two submissions so the
                // double buffer is deterministically exercised — the
                // `epochs_in_flight_peak ≥ 2` acceptance signal cannot
                // depend on scheduler luck on a single-CPU host. From
                // epoch 2 on, overlap is natural: collection of epoch
                // N+1 proceeds while the worker analyses epoch N.
                if e == 0 {
                    pipe.pause();
                }
                pipe.submit(EpochInput::Collected(epoch));
                if e == 1 {
                    pipe.resume();
                }
                while let Some((_, result)) = pipe.try_recv() {
                    outcomes.push(to_outcome(cfg.min_quorum, result));
                }
            }
        }
        now += 1;
    }

    let metrics = match driver {
        Driver::Sequential(center) => center.metrics(),
        Driver::Pipelined(pipe) => {
            pipe.resume(); // a 1-epoch pipelined run never hit the e == 1 unpause
            for (_, result) in pipe.drain() {
                outcomes.push(to_outcome(cfg.min_quorum, result));
            }
            pipe.center().metrics()
        }
    };

    SoakResult {
        outcomes,
        totals,
        ticks: now,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelConfig;

    #[test]
    fn perfect_channel_soak_detects_every_epoch() {
        let mut cfg = SoakConfig::standard(2, 11);
        cfg.channel = ChannelConfig::perfect();
        let result = run_soak(&cfg);
        assert_eq!(result.quorum_epochs(), 2);
        for o in &result.outcomes {
            let EpochOutcome::Report(r) = o else {
                panic!("perfect channel must reach quorum")
            };
            assert_eq!(r.routers, 24);
            assert!(r.aligned.found, "planted content missed");
            assert_eq!(r.transport.retransmits, 0);
            assert_eq!(r.transport.corrupt_chunks, 0);
        }
        assert!(result.totals.chunks_received > 0);
        assert_eq!(
            result.metrics.counter("epochs_analyzed_total"),
            Some(2),
            "soak metrics must cover every analysed epoch"
        );
        assert_eq!(
            result.metrics.counter("transport_chunks_received_total"),
            Some(result.totals.chunks_received),
        );
    }

    #[test]
    fn lossy_soak_recovers_via_retransmits() {
        let cfg = SoakConfig::standard(2, 12);
        let result = run_soak(&cfg);
        assert_eq!(result.quorum_epochs(), 2, "{:?}", result.detection_sets());
        assert!(
            result.totals.retransmits > 0,
            "a 10% loss regime must trigger retransmits"
        );
        for o in &result.outcomes {
            let EpochOutcome::Report(r) = o else {
                unreachable!()
            };
            assert!(r.aligned.found, "planted content missed under loss");
        }
    }
}
