//! Seeded fault injection on the digest shipping path.
//!
//! The analysis centre's ingest layer (`dcs_core::ingest`) promises
//! graceful degradation: malformed bundles are excluded with a typed
//! account and the pipelines run on the surviving quorum. This module is
//! the adversary that promise is tested against. It takes one epoch of
//! clean [`RouterDigest`]s and ships them through a lossy measurement
//! plane, applying a per-router [`FaultKind`] chosen by a [`FaultPlan`]:
//!
//! * [`FaultKind::Drop`] — the frame never arrives;
//! * [`FaultKind::Truncate`] — the frame is cut short mid-flight;
//! * [`FaultKind::BitFlip`] — 1–8 random bits are flipped in the frame;
//! * [`FaultKind::Duplicate`] — the router double-ships after a retransmit;
//! * [`FaultKind::Desync`] — a rebooted router ships a stale epoch id.
//!
//! Everything is driven by a caller-supplied seeded RNG, so a failing
//! matrix entry reproduces exactly.

use dcs_core::monitor::RouterDigest;
use rand::Rng;

/// One way a router's digest shipment can go wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The frame is lost entirely.
    Drop,
    /// The frame arrives cut short at a random byte offset.
    Truncate,
    /// The frame arrives with 1–8 random bits flipped.
    BitFlip,
    /// The frame arrives twice.
    Duplicate,
    /// The bundle carries a stale (decremented) epoch id.
    Desync,
}

/// Every fault kind, for building exhaustive test matrices.
pub const ALL_FAULTS: [FaultKind; 5] = [
    FaultKind::Drop,
    FaultKind::Truncate,
    FaultKind::BitFlip,
    FaultKind::Duplicate,
    FaultKind::Desync,
];

/// Which routers are faulted this epoch, and how.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: Vec<(usize, FaultKind)>,
}

impl FaultPlan {
    /// No faults: every frame ships clean.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// The same fault for every listed victim (one row of a test matrix).
    pub fn uniform(victims: &[usize], kind: FaultKind) -> Self {
        FaultPlan {
            faults: victims.iter().map(|&v| (v, kind)).collect(),
        }
    }

    /// `count` distinct victims drawn from `0..routers`, each with a
    /// fault kind cycled from [`ALL_FAULTS`] starting at a random offset.
    ///
    /// # Panics
    /// Panics if `count > routers`.
    pub fn random<R: Rng>(rng: &mut R, routers: usize, count: usize) -> Self {
        assert!(count <= routers, "cannot fault more routers than exist");
        let mut ids: Vec<usize> = (0..routers).collect();
        // Partial Fisher–Yates: the first `count` entries end up random.
        for i in 0..count {
            let j = rng.gen_range(i..routers);
            ids.swap(i, j);
        }
        let start = rng.gen_range(0..ALL_FAULTS.len());
        let faults = ids[..count]
            .iter()
            .enumerate()
            .map(|(k, &v)| (v, ALL_FAULTS[(start + k) % ALL_FAULTS.len()]))
            .collect();
        FaultPlan { faults }
    }

    /// The fault assigned to batch position `index`, if any.
    pub fn fault_for(&self, index: usize) -> Option<FaultKind> {
        self.faults
            .iter()
            .find(|&&(v, _)| v == index)
            .map(|&(_, k)| k)
    }

    /// Batch positions with a fault assigned.
    pub fn victims(&self) -> Vec<usize> {
        self.faults.iter().map(|&(v, _)| v).collect()
    }

    /// Number of faulted routers.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan faults nobody.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// Ships one epoch of digests through the faulty measurement plane,
/// returning the wire frames as they arrive at the analysis centre.
///
/// Clean digests encode via [`RouterDigest::encode_wire`]. Faulted ones
/// are mangled per their [`FaultKind`]; dropped frames are simply absent,
/// so the returned batch can be shorter (drops) or longer (duplicates)
/// than `digests`.
///
/// # Panics
/// Panics if a digest does not fit the wire format — clean collector
/// output always does.
pub fn ship_with_faults<R: Rng>(
    rng: &mut R,
    digests: &[RouterDigest],
    plan: &FaultPlan,
) -> Vec<Vec<u8>> {
    let mut frames: Vec<Vec<u8>> = Vec::with_capacity(digests.len());
    for (index, digest) in digests.iter().enumerate() {
        let encode = |d: &RouterDigest| -> Vec<u8> {
            d.encode_wire()
                .expect("collector digests fit the wire format")
                .to_vec()
        };
        match plan.fault_for(index) {
            None => frames.push(encode(digest)),
            Some(FaultKind::Drop) => {}
            Some(FaultKind::Truncate) => {
                let mut frame = encode(digest);
                frame.truncate(rng.gen_range(0..frame.len()));
                frames.push(frame);
            }
            Some(FaultKind::BitFlip) => {
                let mut frame = encode(digest);
                let flips = rng.gen_range(1..=8usize);
                for _ in 0..flips {
                    let byte = rng.gen_range(0..frame.len());
                    let bit = rng.gen_range(0..8usize);
                    frame[byte] ^= 1u8 << bit;
                }
                frames.push(frame);
            }
            Some(FaultKind::Duplicate) => {
                let frame = encode(digest);
                frames.push(frame.clone());
                frames.push(frame);
            }
            Some(FaultKind::Desync) => {
                let mut stale = digest.clone();
                stale.epoch_id = stale.epoch_id.wrapping_sub(1);
                frames.push(encode(&stale));
            }
        }
    }
    frames
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_bitmap::Bitmap;
    use dcs_collect::{AlignedDigest, UnalignedDigest};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn digest(router_id: usize) -> RouterDigest {
        RouterDigest {
            router_id,
            epoch_id: 5,
            aligned: AlignedDigest {
                bitmap: Bitmap::from_indices(64, [router_id % 64]),
                packets_seen: 10,
                packets_hashed: 10,
                raw_bytes: 1000,
            },
            unaligned: UnalignedDigest {
                arrays: vec![Bitmap::from_indices(32, [1]); 4],
                arrays_per_group: 2,
                packets_seen: 10,
                packets_sampled: 10,
                raw_bytes: 1000,
            },
            artifacts: Vec::new(),
        }
    }

    #[test]
    fn clean_plan_ships_every_frame_intact() {
        let digests: Vec<_> = (0..4).map(digest).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let frames = ship_with_faults(&mut rng, &digests, &FaultPlan::none());
        assert_eq!(frames.len(), 4);
        for (i, frame) in frames.iter().enumerate() {
            let (back, used) = RouterDigest::decode_wire(frame).unwrap();
            assert_eq!(used, frame.len());
            assert_eq!(back.router_id, i);
            assert_eq!(back.epoch_id, 5);
        }
    }

    #[test]
    fn drop_removes_and_duplicate_doubles() {
        let digests: Vec<_> = (0..4).map(digest).collect();
        let mut rng = StdRng::seed_from_u64(2);
        let plan = FaultPlan {
            faults: vec![(0, FaultKind::Drop), (2, FaultKind::Duplicate)],
        };
        let frames = ship_with_faults(&mut rng, &digests, &plan);
        // 4 - 1 dropped + 1 duplicate = 4 frames.
        assert_eq!(frames.len(), 4);
        let ids: Vec<usize> = frames
            .iter()
            .map(|f| RouterDigest::decode_wire(f).unwrap().0.router_id)
            .collect();
        assert_eq!(ids, vec![1, 2, 2, 3]);
    }

    #[test]
    fn truncate_always_fails_decode_and_desync_decodes_stale() {
        let digests: Vec<_> = (0..2).map(digest).collect();
        let mut rng = StdRng::seed_from_u64(3);
        let plan = FaultPlan {
            faults: vec![(0, FaultKind::Truncate), (1, FaultKind::Desync)],
        };
        for _ in 0..50 {
            let frames = ship_with_faults(&mut rng, &digests, &plan);
            assert!(RouterDigest::decode_wire(&frames[0]).is_err());
            let (stale, _) = RouterDigest::decode_wire(&frames[1]).unwrap();
            assert_eq!(stale.epoch_id, 4);
        }
    }

    #[test]
    fn bit_flips_never_panic_the_decoder() {
        let digests: Vec<_> = (0..3).map(digest).collect();
        let mut rng = StdRng::seed_from_u64(4);
        let plan = FaultPlan::uniform(&[0, 1, 2], FaultKind::BitFlip);
        for _ in 0..200 {
            for frame in ship_with_faults(&mut rng, &digests, &plan) {
                // Either outcome is fine; panicking is not.
                let _ = RouterDigest::decode_wire(&frame);
            }
        }
    }

    #[test]
    fn random_plan_picks_distinct_victims_and_all_kinds_cycle() {
        let mut rng = StdRng::seed_from_u64(5);
        let plan = FaultPlan::random(&mut rng, 20, 10);
        assert_eq!(plan.len(), 10);
        let mut victims = plan.victims();
        victims.sort_unstable();
        victims.dedup();
        assert_eq!(victims.len(), 10, "victims must be distinct");
        assert!(victims.iter().all(|&v| v < 20));
        // 10 victims cycling through 5 kinds hit every kind twice.
        for kind in ALL_FAULTS {
            let n = (0..20).filter(|&i| plan.fault_for(i) == Some(kind)).count();
            assert_eq!(n, 2, "{kind:?} assigned {n} times");
        }
    }
}
