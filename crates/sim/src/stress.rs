//! The Section V-B.4 stress test: bursty synthetic trace through the real
//! collector → matrix → graph → detection path.
//!
//! The paper cut a tier-1 ISP trace into one-second segments, treated each
//! segment as one interface's epoch (32 groups × 10 offset arrays × 1,024
//! bits), planted content instances, and measured how trace burstiness
//! moves the detectable threshold relative to the uniform Monte-Carlo
//! model. We reproduce the pipeline with the synthetic bursty trace
//! substrate standing in for the ISP trace.

use dcs_bitmap::RowMatrix;
use dcs_collect::{UnalignedCollector, UnalignedConfig};
use dcs_traffic::burst::{coefficient_of_variation, BurstModel};
use dcs_traffic::{gen, BackgroundConfig, ContentObject, Planting, SizeMix};
use dcs_unaligned::corefind::precision_recall;
use dcs_unaligned::lambda::{p_star_for_edge_prob, LambdaTable};
use dcs_unaligned::{build_group_graph_parallel, find_pattern, CoreFindConfig, GroupLayout};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of one stress-test run.
#[derive(Debug, Clone)]
pub struct StressConfig {
    /// Trace segments (each plays the role of one interface-epoch).
    pub segments: usize,
    /// Flow-split groups per segment (paper: 32).
    pub groups_per_segment: usize,
    /// Base payload-carrying packets per segment before burst modulation
    /// (sets the array fill; ~586 per group-row reproduces the paper's
    /// ≈ 44 % fill).
    pub packets_per_segment: usize,
    /// Number of segments that carry one planted content instance.
    pub n1: usize,
    /// Content length in packets.
    pub content_packets: usize,
    /// Payload size carrying the content (and the background), bytes.
    pub payload_size: usize,
    /// Burst model for per-segment load modulation.
    pub burst: BurstModel,
    /// Detection-graph edge probability (sets λ′ through p*).
    pub detect_p1: f64,
    /// Core-finding parameters.
    pub corefind: CoreFindConfig,
    /// Correlation worker threads.
    pub threads: usize,
    /// Master seed.
    pub seed: u64,
}

impl StressConfig {
    /// A reduced-scale default that runs in seconds.
    pub fn small() -> Self {
        let n_groups = 40 * 16;
        StressConfig {
            segments: 40,
            groups_per_segment: 16,
            packets_per_segment: 16 * 586,
            n1: 25,
            content_packets: 150,
            payload_size: 536,
            burst: BurstModel::default(),
            detect_p1: 2.0 / n_groups as f64,
            corefind: CoreFindConfig { beta: 30, d: 2 },
            threads: 4,
            seed: 0xD05,
        }
    }
}

/// Outcome of a stress-test run.
#[derive(Debug, Clone)]
pub struct StressOutcome {
    /// Total group-vertices in the fused matrix.
    pub groups: usize,
    /// Ground-truth groups that received a content instance.
    pub truth_groups: Vec<u32>,
    /// Groups reported by the detector.
    pub reported_groups: Vec<u32>,
    /// Fraction of reported groups that are true (1 − per-router FP).
    pub precision: f64,
    /// Fraction of truth groups recovered (1 − per-router FN).
    pub recall: f64,
    /// Coefficient of variation of row weights — the burstiness the test
    /// is about.
    pub row_weight_cv: f64,
    /// Mean row weight (for calibrating the uniform-model comparison).
    pub mean_row_weight: f64,
}

/// Runs the full stress pipeline.
pub fn run_stress(cfg: &StressConfig) -> StressOutcome {
    assert!(
        cfg.n1 <= cfg.segments,
        "cannot infect more segments than exist"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let k = 10usize; // arrays per group, paper geometry

    // One shared content object; each infected segment gets an instance
    // with its own random prefix (the unaligned case).
    let object = ContentObject::random(&mut rng, cfg.content_packets * cfg.payload_size);
    let planting = Planting::unaligned(object, cfg.payload_size);

    // Choose infected segments.
    use rand::seq::SliceRandom;
    let mut seg_ids: Vec<usize> = (0..cfg.segments).collect();
    seg_ids.shuffle(&mut rng);
    let infected: std::collections::HashSet<usize> = seg_ids.into_iter().take(cfg.n1).collect();

    let mut rows = RowMatrix::new(1024);
    let mut truth_groups: Vec<u32> = Vec::new();
    for seg in 0..cfg.segments {
        // Bursty load: scale this segment's packet count.
        let mult = cfg.burst.epoch_multiplier(&mut rng);
        let packets = ((cfg.packets_per_segment as f64 * mult) as usize)
            .clamp(cfg.packets_per_segment / 10, cfg.packets_per_segment * 4);
        let mut traffic = gen::generate_epoch(
            &mut rng,
            &BackgroundConfig {
                packets,
                flows: (packets / 12).max(8),
                zipf_exponent: 1.0,
                size_mix: SizeMix::constant(cfg.payload_size),
            },
        );
        let ucfg = UnalignedConfig {
            groups: cfg.groups_per_segment,
            arrays_per_group: k,
            array_bits: 1024,
            payload_modulus: cfg.payload_size,
            min_payload: 500.min(cfg.payload_size),
            large_payload: 1000,
            fragment_len: 16,
            seed: cfg.seed ^ 0xC0DE, // shared content-hash seed
            router_seed: seg as u64, // per-interface offsets
        };
        let mut collector = UnalignedCollector::new(ucfg);
        if infected.contains(&seg) {
            let instance = planting.instantiate(&mut rng);
            let g = collector.group_of(&instance[0]);
            truth_groups.push((seg * cfg.groups_per_segment + g) as u32);
            let at = rng.gen_range(0..=traffic.len());
            traffic.splice(at..at, instance);
        }
        for p in &traffic {
            collector.observe(p);
        }
        rows.vstack(&collector.finish_epoch().to_rows());
    }
    truth_groups.sort_unstable();

    // Burstiness diagnostics.
    let weights = rows.row_weights();
    let counts: Vec<usize> = weights.iter().map(|&w| w as usize).collect();
    let row_weight_cv = coefficient_of_variation(&counts);
    let mean_row_weight = weights.iter().map(|&w| f64::from(w)).sum::<f64>() / weights.len() as f64;

    // Detection-graph construction and core finding.
    let layout = GroupLayout { rows_per_group: k };
    let p_star = p_star_for_edge_prob(cfg.detect_p1, k * k);
    let table = LambdaTable::new(1024, p_star);
    let graph = build_group_graph_parallel(&rows, layout, &table, cfg.threads);
    let result = find_pattern(&graph, cfg.corefind);
    let reported_groups = result.vertices();
    let (precision, recall) = precision_recall(&reported_groups, &truth_groups);

    StressOutcome {
        groups: cfg.segments * cfg.groups_per_segment,
        truth_groups,
        reported_groups,
        precision,
        recall,
        row_weight_cv,
        mean_row_weight,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stress_pipeline_end_to_end() {
        let mut cfg = StressConfig::small();
        cfg.segments = 24;
        cfg.n1 = 18;
        cfg.packets_per_segment = 16 * 500;
        cfg.detect_p1 = 2.0 / (24.0 * 16.0);
        cfg.corefind = CoreFindConfig { beta: 14, d: 2 };
        let out = run_stress(&cfg);
        assert_eq!(out.groups, 24 * 16);
        assert_eq!(out.truth_groups.len(), 18);
        // Burstiness must actually be present.
        assert!(
            out.row_weight_cv > 0.1,
            "cv {} too smooth",
            out.row_weight_cv
        );
        // The detector should find a meaningful part of the pattern with
        // decent precision (exact numbers are the bench's business).
        assert!(out.recall > 0.2, "recall {}", out.recall);
        assert!(out.precision > 0.5, "precision {}", out.precision);
    }

    #[test]
    fn clean_trace_reports_incoherent_core() {
        let mut cfg = StressConfig::small();
        cfg.segments = 16;
        cfg.n1 = 0;
        cfg.packets_per_segment = 16 * 400;
        cfg.detect_p1 = 2.0 / (16.0 * 16.0);
        cfg.corefind = CoreFindConfig { beta: 10, d: 2 };
        let out = run_stress(&cfg);
        assert!(out.truth_groups.is_empty());
        // Precision against an empty truth set is 0 by definition when
        // anything is reported; the meaningful check is recall = 1 (no
        // truth to miss) — and that the pipeline does not crash.
        assert!(out.recall >= 1.0 - f64::EPSILON);
    }

    #[test]
    #[should_panic(expected = "cannot infect")]
    fn overfull_infection_rejected() {
        let mut cfg = StressConfig::small();
        cfg.segments = 4;
        cfg.n1 = 5;
        run_stress(&cfg);
    }
}
