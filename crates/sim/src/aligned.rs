//! Aligned-case Monte-Carlo: planted matrices and detection-ratio
//! estimation (paper Section V-A, Figures 7, 11, 12).

use dcs_aligned::thresholds::screening_weight;
use dcs_aligned::{refined_detect, AlignedDetection, SearchConfig};
use dcs_bitmap::ColMatrix;
use dcs_stats::binomial::ln_binomial_pmf;
use dcs_stats::binomial_sf;
use dcs_stats::sample::sample_binomial;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A fully materialised planted matrix (for moderate n — tests and the
/// reduced-scale paths).
#[derive(Debug)]
pub struct PlantedMatrix {
    /// The m×n matrix.
    pub matrix: ColMatrix,
    /// Ground-truth pattern rows.
    pub rows: Vec<u32>,
    /// Ground-truth pattern columns.
    pub cols: Vec<usize>,
}

/// Generates an m×n Bernoulli(½) matrix with an a×b all-1 pattern planted
/// on random rows and columns (the paper's Section V-A methodology).
pub fn planted_matrix(rng: &mut StdRng, m: usize, n: usize, a: usize, b: usize) -> PlantedMatrix {
    assert!(a <= m && b <= n, "pattern exceeds matrix");
    let mut matrix = ColMatrix::new(m, n);
    for c in 0..n {
        for r in 0..m {
            if rng.gen::<bool>() {
                matrix.set(r, c);
            }
        }
    }
    let mut all_rows: Vec<u32> = (0..m as u32).collect();
    all_rows.shuffle(rng);
    let mut rows: Vec<u32> = all_rows.into_iter().take(a).collect();
    rows.sort_unstable();
    let mut all_cols: Vec<usize> = (0..n).collect();
    all_cols.shuffle(rng);
    let mut cols: Vec<usize> = all_cols.into_iter().take(b).collect();
    cols.sort_unstable();
    for &c in &cols {
        for &r in &rows {
            matrix.set(r as usize, c);
        }
    }
    PlantedMatrix { matrix, rows, cols }
}

/// The refined algorithm's input reproduced at paper scale by
/// *conditioning*: screening-by-weight only consumes column weights, so we
/// sample survivor counts and weights from their exact distributions and
/// materialise only the n′ surviving columns.
#[derive(Debug)]
pub struct ScreenedMatrix {
    /// The m×n′ screened matrix (columns shuffled).
    pub matrix: ColMatrix,
    /// Ground-truth pattern rows (always `0..a` in this construction; row
    /// identity is exchangeable).
    pub rows: Vec<u32>,
    /// Indices (into `matrix`) of the pattern columns that survived
    /// screening.
    pub surviving_pattern_cols: Vec<usize>,
    /// The screening weight used.
    pub w: u64,
}

/// Samples `Binomial(n, ½)` conditioned on exceeding `w` by walking the
/// pmf ratio upward from `w+1` (the tail is short — a few dozen steps).
fn sample_binomial_tail_half(rng: &mut StdRng, n: u64, w: u64) -> u64 {
    let sf = binomial_sf(w as i64, n, 0.5);
    assert!(sf > 0.0, "empty tail");
    let mut u: f64 = rng.gen::<f64>() * sf;
    let mut k = w + 1;
    let mut pmf = ln_binomial_pmf(k, n, 0.5).exp();
    loop {
        if u <= pmf || k >= n {
            return k;
        }
        u -= pmf;
        // pmf(k+1)/pmf(k) = (n-k)/(k+1) at p = 1/2.
        pmf *= (n - k) as f64 / (k + 1) as f64;
        k += 1;
    }
}

/// Builds the screened planted matrix for the configuration
/// `(m, n, a, b, n′)`: expected null survivors fill ~75 % of n′ (the
/// paper's 2,900-of-4,000 margin), pattern columns survive by their own
/// weight, and the list is padded to n′ with weight-w null columns (the
/// columns the real algorithm would take just below the cut).
pub fn screened_planted_matrix(
    rng: &mut StdRng,
    m: usize,
    n: usize,
    a: usize,
    b: usize,
    n_prime: usize,
) -> ScreenedMatrix {
    assert!(a <= m, "pattern taller than matrix");
    let w = screening_weight(m as u64, n as u64, n_prime as u64, 0.75);
    let p_null = binomial_sf(w as i64, m as u64, 0.5);

    struct Col {
        weight_extra_rows: u64, // rows beyond the pattern block
        is_pattern: bool,
    }
    let mut cols: Vec<Col> = Vec::new();

    // Null survivors above the cut.
    let null_count = sample_binomial(rng, (n - b) as u64, p_null) as usize;
    for _ in 0..null_count.min(n_prime) {
        let weight = sample_binomial_tail_half(rng, m as u64, w);
        cols.push(Col {
            weight_extra_rows: weight,
            is_pattern: false,
        });
    }
    // Pattern survivors: weight = a + Binom(m−a, ½) must exceed w.
    for _ in 0..b {
        let extra = sample_binomial(rng, (m - a) as u64, 0.5);
        if a as u64 + extra > w {
            cols.push(Col {
                weight_extra_rows: extra,
                is_pattern: true,
            });
        }
    }
    // Pad to n′ with columns right at the cut (what the top-n′ selection
    // would pick next).
    while cols.len() < n_prime {
        cols.push(Col {
            weight_extra_rows: w,
            is_pattern: false,
        });
    }
    // If oversubscribed, drop random null columns (the real selection
    // would drop the lightest; survivor weights are exchangeable enough
    // that random dropping preserves the distribution of the kept set).
    while cols.len() > n_prime {
        let victim = rng.gen_range(0..cols.len());
        if !cols[victim].is_pattern {
            cols.swap_remove(victim);
        }
    }
    cols.shuffle(rng);

    let mut matrix = ColMatrix::new(m, cols.len());
    let mut surviving_pattern_cols = Vec::new();
    // Separate pools: shuffling permutes contents, so the pattern-extra
    // pool must only ever contain rows outside the pattern block.
    let mut null_pool: Vec<u32> = (0..m as u32).collect();
    let mut extra_pool: Vec<u32> = (a as u32..m as u32).collect();
    for (ci, col) in cols.iter().enumerate() {
        if col.is_pattern {
            surviving_pattern_cols.push(ci);
            for r in 0..a {
                matrix.set(r, ci);
            }
            let extra = col.weight_extra_rows as usize;
            let (pool, _) = extra_pool.partial_shuffle(rng, extra);
            for &r in pool.iter() {
                matrix.set(r as usize, ci);
            }
        } else {
            let weight = col.weight_extra_rows as usize;
            let (pool, _) = null_pool.partial_shuffle(rng, weight);
            for &r in pool.iter() {
                matrix.set(r as usize, ci);
            }
        }
    }
    ScreenedMatrix {
        matrix,
        rows: (0..a as u32).collect(),
        surviving_pattern_cols,
        w,
    }
}

/// Did a detection run actually find the planted pattern (and not a
/// mirage)? Requires the verdict plus a majority of reported rows being
/// true pattern rows.
pub fn detection_hits_pattern(det: &AlignedDetection, truth_rows: &[u32]) -> bool {
    if !det.found || det.rows.is_empty() {
        return false;
    }
    let hits = det.rows.iter().filter(|r| truth_rows.contains(r)).count();
    2 * hits >= det.rows.len()
}

/// One Figure-11-style trial at paper scale: screened sampler + refined
/// search over the screened columns.
pub fn paper_scale_trial(
    seed: u64,
    m: usize,
    n: usize,
    a: usize,
    b: usize,
    n_prime: usize,
    cfg: &SearchConfig,
) -> (AlignedDetection, Vec<u32>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let sm = screened_planted_matrix(&mut rng, m, n, a, b, n_prime);
    let mut search = cfg.clone();
    search.n_prime = sm.matrix.ncols();
    // The verdict must be judged against the full-matrix dimensions: use
    // naive_detect on the screened matrix but keep the non-natural check
    // meaningful by running the refined entry (screening is a no-op here).
    let det = refined_detect(&sm.matrix, &search);
    (det, sm.rows)
}

/// Detection ratio over `reps` trials, parallelised with scoped worker
/// threads (each trial is seeded independently by its index, so the
/// estimate is identical for any thread count).
#[allow(clippy::too_many_arguments)] // flat args mirror the experiment factors
pub fn detection_ratio(
    base_seed: u64,
    m: usize,
    n: usize,
    a: usize,
    b: usize,
    n_prime: usize,
    cfg: &SearchConfig,
    reps: usize,
    threads: usize,
) -> f64 {
    assert!(reps > 0 && threads > 0, "need work and workers");
    let counter = std::sync::atomic::AtomicUsize::new(0);
    let hit_counts = dcs_parallel::map_workers(threads.min(reps), |_| {
        let mut local = 0usize;
        loop {
            let i = counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if i >= reps {
                break;
            }
            let (det, truth) =
                paper_scale_trial(base_seed ^ (i as u64) << 20, m, n, a, b, n_prime, cfg);
            if detection_hits_pattern(&det, &truth) {
                local += 1;
            }
        }
        local
    });
    hit_counts.into_iter().sum::<usize>() as f64 / reps as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn planted_matrix_ground_truth_is_all_ones() {
        let mut r = rng(1);
        let p = planted_matrix(&mut r, 40, 100, 8, 5);
        for &c in &p.cols {
            for &row in &p.rows {
                assert!(p.matrix.get(row as usize, c));
            }
        }
        assert_eq!(p.rows.len(), 8);
        assert_eq!(p.cols.len(), 5);
    }

    #[test]
    fn planted_matrix_background_is_half_full() {
        let mut r = rng(2);
        let p = planted_matrix(&mut r, 100, 200, 0, 0);
        let total: u64 = p.matrix.col_weights().iter().map(|&w| u64::from(w)).sum();
        let fill = total as f64 / (100.0 * 200.0);
        assert!((fill - 0.5).abs() < 0.02, "fill {fill}");
    }

    #[test]
    fn tail_sampler_stays_in_tail_and_matches_mean() {
        let mut r = rng(3);
        let (n, w) = (1000u64, 550u64);
        let mut acc = 0u64;
        let reps = 2000;
        for _ in 0..reps {
            let k = sample_binomial_tail_half(&mut r, n, w);
            assert!(k > w && k <= n);
            acc += k;
        }
        let mean = acc as f64 / reps as f64;
        // Conditional mean of Binom(1000,1/2) | >550: ≈ 554.5.
        assert!((mean - 554.5).abs() < 1.5, "tail mean {mean}");
    }

    #[test]
    fn screened_matrix_shape_and_truth() {
        let mut r = rng(8);
        let sm = screened_planted_matrix(&mut r, 200, 100_000, 40, 20, 300);
        assert_eq!(sm.matrix.ncols(), 300);
        assert_eq!(sm.matrix.nrows(), 200);
        // Every surviving pattern column has all pattern rows set and
        // weight above w.
        for &c in &sm.surviving_pattern_cols {
            for r0 in 0..40 {
                assert!(sm.matrix.get(r0, c), "pattern row missing in col {c}");
            }
            assert!(u64::from(sm.matrix.col_weight(c)) > sm.w);
        }
        // With a=40 of m=200, survival prob is high: most of b survives.
        assert!(sm.surviving_pattern_cols.len() >= 10);
    }

    #[test]
    fn screened_null_columns_exceed_cut() {
        let mut r = rng(5);
        let sm = screened_planted_matrix(&mut r, 200, 100_000, 0, 0, 300);
        for c in 0..sm.matrix.ncols() {
            assert!(u64::from(sm.matrix.col_weight(c)) >= sm.w);
        }
        assert!(sm.surviving_pattern_cols.is_empty());
    }

    #[test]
    fn paper_scale_trial_detects_strong_pattern() {
        let cfg = SearchConfig {
            hopefuls: 300,
            max_iterations: 30,
            n_prime: 0, // overridden inside
            gamma: 2,
            epsilon: 1e-3,
            termination: Default::default(),
            compute: Default::default(),
        };
        let (det, truth) = paper_scale_trial(99, 200, 100_000, 40, 20, 300, &cfg);
        assert!(
            detection_hits_pattern(&det, &truth),
            "strong pattern missed; curve {:?}",
            det.weight_curve
        );
    }

    #[test]
    fn detection_ratio_separates_signal_from_noise() {
        let cfg = SearchConfig {
            hopefuls: 200,
            max_iterations: 25,
            n_prime: 0,
            gamma: 2,
            epsilon: 1e-3,
            termination: Default::default(),
            compute: Default::default(),
        };
        let strong = detection_ratio(7, 200, 100_000, 40, 20, 250, &cfg, 6, 3);
        let none = detection_ratio(8, 200, 100_000, 0, 0, 250, &cfg, 6, 3);
        assert!(strong >= 0.8, "strong-pattern ratio {strong}");
        assert!(none <= 0.2, "false-positive ratio {none}");
    }
}
