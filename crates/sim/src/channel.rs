//! A seeded lossy-channel model for the digest transport path.
//!
//! [`LossyChannel`] carries chunk frames (see `dcs_core::transport`) from
//! the monitoring points to the analysis centre through an adversarial
//! network: frames can be dropped, delayed, reordered, duplicated or
//! bit-corrupted, each with an independent configured probability, all
//! driven by one seeded RNG over virtual ticks — a failing soak epoch
//! replays exactly from its seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Impairment probabilities and delay model of one channel.
#[derive(Debug, Clone, Copy)]
pub struct ChannelConfig {
    /// Probability a sent frame is silently dropped.
    pub drop_prob: f64,
    /// Probability a delivered frame takes an extra reordering delay
    /// (large enough to land behind later-sent frames).
    pub reorder_prob: f64,
    /// Probability a frame is delivered twice.
    pub duplicate_prob: f64,
    /// Probability a delivered frame has 1–3 bits flipped in flight.
    pub corrupt_prob: f64,
    /// Fixed propagation delay, in ticks.
    pub base_delay: u64,
    /// Random extra delay drawn from `[0, jitter]`.
    pub jitter: u64,
    /// Extra delay (beyond the jitter window) applied to reordered
    /// frames, drawn from `[1, reorder_extra]`.
    pub reorder_extra: u64,
}

impl ChannelConfig {
    /// A perfect channel: instant, loss-free, in order.
    pub fn perfect() -> Self {
        ChannelConfig {
            drop_prob: 0.0,
            reorder_prob: 0.0,
            duplicate_prob: 0.0,
            corrupt_prob: 0.0,
            base_delay: 0,
            jitter: 0,
            reorder_extra: 0,
        }
    }

    /// The issue's soak regime: 10% chunk loss, 5% reordering, 2%
    /// corruption, a little duplication and delay jitter.
    pub fn soak() -> Self {
        ChannelConfig {
            drop_prob: 0.10,
            reorder_prob: 0.05,
            duplicate_prob: 0.02,
            corrupt_prob: 0.02,
            base_delay: 1,
            jitter: 2,
            reorder_extra: 6,
        }
    }
}

/// One frame in flight.
#[derive(Debug, Clone)]
struct InFlight {
    deliver_at: u64,
    seq: u64,
    frame: Vec<u8>,
}

/// A seeded lossy channel over virtual ticks.
#[derive(Debug)]
pub struct LossyChannel {
    cfg: ChannelConfig,
    rng: StdRng,
    in_flight: Vec<InFlight>,
    next_seq: u64,
    /// Frames dropped since construction (diagnostics).
    pub dropped: u64,
    /// Frames corrupted since construction (diagnostics).
    pub corrupted: u64,
}

impl LossyChannel {
    /// A channel with the given impairments, seeded for exact replay.
    pub fn new(cfg: ChannelConfig, seed: u64) -> Self {
        LossyChannel {
            cfg,
            rng: StdRng::seed_from_u64(seed),
            in_flight: Vec::new(),
            next_seq: 0,
            dropped: 0,
            corrupted: 0,
        }
    }

    /// Re-seeds the RNG (e.g. per soak epoch, so a mid-soak divergence in
    /// one run cannot cascade into every later epoch). In-flight frames
    /// are kept — stragglers from the previous epoch still arrive, late.
    pub fn reseed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
    }

    /// Sends one frame at tick `now`, applying the impairment model.
    pub fn send(&mut self, frame: &[u8], now: u64) {
        if self.cfg.drop_prob > 0.0 && self.rng.gen_bool(self.cfg.drop_prob) {
            self.dropped += 1;
            return;
        }
        let copies = if self.cfg.duplicate_prob > 0.0 && self.rng.gen_bool(self.cfg.duplicate_prob)
        {
            2
        } else {
            1
        };
        for _ in 0..copies {
            let mut delay = self.cfg.base_delay;
            if self.cfg.jitter > 0 {
                delay += self.rng.gen_range(0..=self.cfg.jitter);
            }
            if self.cfg.reorder_prob > 0.0
                && self.cfg.reorder_extra > 0
                && self.rng.gen_bool(self.cfg.reorder_prob)
            {
                delay += self.rng.gen_range(1..=self.cfg.reorder_extra);
            }
            let mut bytes = frame.to_vec();
            if self.cfg.corrupt_prob > 0.0
                && !bytes.is_empty()
                && self.rng.gen_bool(self.cfg.corrupt_prob)
            {
                let flips = self.rng.gen_range(1..=3usize);
                for _ in 0..flips {
                    let byte = self.rng.gen_range(0..bytes.len());
                    let bit = self.rng.gen_range(0..8usize);
                    bytes[byte] ^= 1u8 << bit;
                }
                self.corrupted += 1;
            }
            self.in_flight.push(InFlight {
                deliver_at: now + delay,
                seq: self.next_seq,
                frame: bytes,
            });
            self.next_seq += 1;
        }
    }

    /// Delivers every frame due at or before `now`, in deterministic
    /// (deliver-tick, send-order) order.
    pub fn deliver_due(&mut self, now: u64) -> Vec<Vec<u8>> {
        let mut due: Vec<InFlight> = Vec::new();
        let mut i = 0;
        while i < self.in_flight.len() {
            if self.in_flight[i].deliver_at <= now {
                due.push(self.in_flight.swap_remove(i));
            } else {
                i += 1;
            }
        }
        due.sort_by_key(|f| (f.deliver_at, f.seq));
        due.into_iter().map(|f| f.frame).collect()
    }

    /// Frames still in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Drops everything still in flight (e.g. frames addressed to a
    /// centre that just crashed).
    pub fn clear(&mut self) {
        self.dropped += self.in_flight.len() as u64;
        self.in_flight.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| vec![i as u8; 32]).collect()
    }

    #[test]
    fn perfect_channel_delivers_everything_in_order() {
        let mut ch = LossyChannel::new(ChannelConfig::perfect(), 1);
        for f in frames(10) {
            ch.send(&f, 0);
        }
        let got = ch.deliver_due(0);
        assert_eq!(got, frames(10));
        assert_eq!(ch.in_flight(), 0);
        assert_eq!(ch.dropped, 0);
    }

    #[test]
    fn delay_holds_frames_until_due() {
        let cfg = ChannelConfig {
            base_delay: 5,
            ..ChannelConfig::perfect()
        };
        let mut ch = LossyChannel::new(cfg, 1);
        ch.send(b"x", 0);
        assert!(ch.deliver_due(4).is_empty());
        assert_eq!(ch.deliver_due(5).len(), 1);
    }

    #[test]
    fn drop_rate_is_roughly_honoured() {
        let cfg = ChannelConfig {
            drop_prob: 0.3,
            ..ChannelConfig::perfect()
        };
        let mut ch = LossyChannel::new(cfg, 7);
        for _ in 0..2000 {
            ch.send(b"frame", 0);
        }
        let delivered = ch.deliver_due(0).len();
        assert!(
            (1200..=1600).contains(&delivered),
            "delivered {delivered}/2000 at 30% drop"
        );
        assert_eq!(ch.dropped as usize + delivered, 2000);
    }

    #[test]
    fn duplicates_and_corruption_show_up() {
        let cfg = ChannelConfig {
            duplicate_prob: 0.5,
            corrupt_prob: 0.5,
            ..ChannelConfig::perfect()
        };
        let mut ch = LossyChannel::new(cfg, 3);
        for _ in 0..200 {
            ch.send(&[0u8; 64], 0);
        }
        let got = ch.deliver_due(0);
        assert!(got.len() > 240, "expected duplicates, got {}", got.len());
        let mangled = got.iter().filter(|f| f.iter().any(|&b| b != 0)).count();
        assert!(mangled > 50, "expected corruption, got {mangled}");
        assert_eq!(ch.corrupted as usize, mangled);
    }

    #[test]
    fn same_seed_replays_identically() {
        let run = || {
            let mut ch = LossyChannel::new(ChannelConfig::soak(), 42);
            let mut out = Vec::new();
            for (i, f) in frames(50).iter().enumerate() {
                ch.send(f, i as u64);
            }
            for now in 0..80 {
                out.extend(ch.deliver_due(now));
            }
            out
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn clear_loses_in_flight_frames() {
        let cfg = ChannelConfig {
            base_delay: 10,
            ..ChannelConfig::perfect()
        };
        let mut ch = LossyChannel::new(cfg, 1);
        ch.send(b"a", 0);
        ch.send(b"b", 0);
        ch.clear();
        assert!(ch.deliver_due(100).is_empty());
        assert_eq!(ch.dropped, 2);
    }
}
