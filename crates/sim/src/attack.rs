//! Attack-scenario suite: three canonical heavy-content attacks driven
//! end-to-end through the two-level aggregation topology with sidecar
//! sketches enabled at every leaf.
//!
//! Each scenario pairs a traffic generator with the
//! [`SketchSpec`] domain built to spot it:
//!
//! * **DNS amplification** — every attacked leaf forwards the same
//!   amplified multi-packet response to spoofed victims, many times per
//!   epoch. The content-index Space-Saving sketch surfaces exactly the
//!   bitmap columns the response hashes to, which double as the aligned
//!   search's seed columns.
//! * **DRDoS reflection** — thousands of spoofed *sources* bounce one
//!   reflector payload at a single victim AS. The distinct-HH sketch
//!   keyed on (src-port, dst-AS) counts distinct sources per key, so
//!   the reflection fan-in towers over any benign key.
//! * **Elephant flows** — each attacked leaf carries one huge flow
//!   moving the same content object. The flow-bytes Space-Saving
//!   sketch, weighted by payload length, ranks those flows first.
//!
//! The harness replays the tiered soak's topology — leaves chunk their
//! bundles over a [`LossyChannel`] to regional [`Aggregator`]s, which
//! pre-fuse and ship DCSG bundles over a second lossy hop to the
//! centre — and analyses every delivered epoch **twice**: once with
//! sketch seeding on and once with it off. Seeding is advisory, so the
//! two detection fingerprints must be identical every epoch; the
//! harness records the pairs and [`AttackResult::seeding_equivalent`]
//! is the suite's central acceptance check. Transport faults never
//! panic: a failed quorum is a typed [`EpochOutcome`].

use crate::channel::{ChannelConfig, LossyChannel};
use crate::soak::EpochOutcome;
use crate::tiered::outcome_fingerprint;
use dcs_collect::{AlignedCollector, ARTIFACT_KIND_SKETCH};
use dcs_core::aggregate::{AggregateBundle, Aggregator};
use dcs_core::center::{AnalysisCenter, AnalysisConfig};
use dcs_core::ingest::IngestError;
use dcs_core::monitor::{
    src_port_dst_as_key, MonitorConfig, MonitoringPoint, RouterDigest, SketchSpec,
};
use dcs_core::report::TransportStats;
use dcs_core::session::{
    ChunkDisposition, CollectorConfig, EpochCollector, Missing, RetransmitRequest,
};
use dcs_core::transport::chunk_bundle;
use dcs_core::MetricsRegistry;
use dcs_hash::IndexHasher;
use dcs_sketch::{decode_sketch, DistinctSketch, SketchWire, SpaceSaving};
use dcs_traffic::{gen, BackgroundConfig, ContentObject, FlowLabel, Packet, SizeMix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Aggregator router ids live far above any leaf id.
const AGG_ID_BASE: u64 = 1 << 20;

/// The three attack scenarios of the suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackScenario {
    /// Amplified DNS responses replayed to spoofed victims.
    DnsAmplification,
    /// One reflector payload bounced off many spoofed sources at one
    /// victim AS.
    DrdosReflection,
    /// One very large flow per attacked leaf, all moving the same
    /// object.
    ElephantFlows,
}

impl AttackScenario {
    /// The sketch domain built to spot this scenario.
    pub fn sketch_spec(self, cap: usize) -> SketchSpec {
        match self {
            AttackScenario::DnsAmplification => SketchSpec::heavy_content(cap),
            AttackScenario::DrdosReflection => SketchSpec::drdos(cap),
            AttackScenario::ElephantFlows => SketchSpec::elephant_flows(cap),
        }
    }

    /// Human-readable scenario slug (used by the repro binaries).
    pub fn name(self) -> &'static str {
        match self {
            AttackScenario::DnsAmplification => "dns_amplification",
            AttackScenario::DrdosReflection => "drdos_reflection",
            AttackScenario::ElephantFlows => "elephant_flows",
        }
    }
}

/// Parameters of one attack-scenario soak.
#[derive(Debug, Clone)]
pub struct AttackConfig {
    /// Which attack is running.
    pub scenario: AttackScenario,
    /// Leaf monitoring points.
    pub leaves: usize,
    /// Regional aggregators; leaves are partitioned contiguously.
    pub aggregators: usize,
    /// Leaves `0..attacked` observe the attack each epoch.
    pub attacked: usize,
    /// Epochs to run.
    pub epochs: usize,
    /// Master seed.
    pub seed: u64,
    /// Sidecar sketch capacity at every leaf.
    pub sketch_cap: usize,
    /// Packets of the attack content object (536-byte payloads).
    pub content_packets: usize,
    /// Times each attacked leaf replays the object per epoch (DNS),
    /// spoofed sources (DRDoS), or object repetitions on the elephant
    /// flow.
    pub intensity: usize,
    /// Background packets per leaf per epoch.
    pub bg_packets: usize,
    /// Background flows per leaf per epoch.
    pub bg_flows: usize,
    /// Impairments of the leaf → aggregator hop.
    pub leaf_channel: ChannelConfig,
    /// Impairments of the aggregator → centre hop.
    pub up_channel: ChannelConfig,
    /// Collector settings of each aggregator (child hop).
    pub leaf_collector: CollectorConfig,
    /// Collector settings of the centre (upstream hop).
    pub up_collector: CollectorConfig,
    /// Chunk payload bound on both hops.
    pub max_payload: usize,
    /// The centre's minimum surviving-leaf quorum.
    pub min_quorum: usize,
}

impl AttackConfig {
    /// The suite's standard regime: 24 leaves behind 3 aggregators,
    /// lossy on both hops, background light enough that the
    /// Space-Saving guarantee (`count > total/cap`) pins every attack
    /// key in the sketch.
    pub fn standard(scenario: AttackScenario, epochs: usize, seed: u64) -> Self {
        AttackConfig {
            scenario,
            leaves: 24,
            aggregators: 3,
            attacked: 20,
            epochs,
            seed,
            sketch_cap: 64,
            content_packets: 30,
            intensity: 20,
            bg_packets: 400,
            bg_flows: 120,
            leaf_channel: ChannelConfig::soak(),
            up_channel: ChannelConfig::soak(),
            leaf_collector: CollectorConfig::default(),
            up_collector: CollectorConfig::default(),
            max_payload: 1024,
            min_quorum: 16,
        }
    }

    /// The contiguous child range of aggregator `a`.
    fn region(&self, a: usize) -> std::ops::Range<usize> {
        let per = self.leaves / self.aggregators;
        let start = a * per;
        let end = if a + 1 == self.aggregators {
            self.leaves
        } else {
            start + per
        };
        start..end
    }
}

/// One epoch's record in the attack soak.
#[derive(Debug)]
pub struct AttackEpoch {
    /// The sketch-seeded centre's outcome.
    pub outcome: EpochOutcome,
    /// `(seeded, unseeded)` detection fingerprints of the same
    /// delivered epoch — equal strings = seeding stayed advisory.
    pub fingerprints: (String, String),
    /// Ranks (0 = heaviest) of the expected attack keys in the
    /// reference sketch merged from the leaf artifacts that survived
    /// both hops. One entry per expected key; `None` = key fell out.
    pub attack_key_ranks: Vec<Option<usize>>,
    /// How many surviving leaf bundles carried a decodable sketch.
    pub artifacts_delivered: usize,
}

/// The full attack-soak record.
#[derive(Debug)]
pub struct AttackResult {
    /// One record per epoch, in order.
    pub epochs: Vec<AttackEpoch>,
    /// Child-hop delivery stats summed over all aggregators and epochs.
    pub leaf_totals: TransportStats,
    /// Upstream-hop delivery stats summed over all epochs.
    pub up_totals: TransportStats,
    /// The seeded centre's metrics.
    pub metrics: dcs_core::MetricsSnapshot,
}

impl AttackResult {
    /// Whether every epoch's seeded and unseeded fingerprints matched
    /// (the seeding-is-advisory soak check).
    pub fn seeding_equivalent(&self) -> bool {
        self.epochs
            .iter()
            .all(|e| e.fingerprints.0 == e.fingerprints.1)
    }

    /// Epochs that reached quorum.
    pub fn quorum_epochs(&self) -> usize {
        self.epochs
            .iter()
            .filter(|e| matches!(e.outcome, EpochOutcome::Report(_)))
            .count()
    }

    /// Whether the planted content was found in every quorum epoch.
    pub fn attack_detected_in_all_quorum_epochs(&self) -> bool {
        self.epochs.iter().all(|e| match &e.outcome {
            EpochOutcome::Report(r) => r.aligned.found,
            EpochOutcome::QuorumTooSmall { .. } => true,
        })
    }
}

/// The per-epoch attack plan: packets to inject at each attacked leaf
/// plus the sketch keys the attack is expected to dominate.
struct AttackPlan {
    /// `injections[l]` is appended to leaf `l`'s background traffic.
    injections: Vec<Vec<Packet>>,
    /// Expected heavy keys in the scenario's sketch domain.
    expected_keys: Vec<u64>,
}

/// Builds one epoch's attack plan. Deterministic in `rng`.
fn plan_attack(cfg: &AttackConfig, mcfg: &MonitorConfig, rng: &mut StdRng) -> AttackPlan {
    let object = ContentObject::random_with_packets(rng, cfg.content_packets, 536);
    let payloads = object.packetize(&[], 536);
    match cfg.scenario {
        AttackScenario::DnsAmplification => {
            // Resolver replays the amplified response to a fresh spoofed
            // victim per repetition; src port 53/UDP marks the reflector.
            let injections = (0..cfg.attacked)
                .map(|_| {
                    let mut pkts = Vec::with_capacity(cfg.intensity * payloads.len());
                    for _ in 0..cfg.intensity {
                        let flow = FlowLabel {
                            src_ip: rng.gen(),
                            dst_ip: rng.gen(),
                            src_port: 53,
                            dst_port: rng.gen_range(1024..=u16::MAX),
                            proto: 17,
                        };
                        pkts.extend(payloads.iter().map(|p| Packet::new(flow, p.clone())));
                    }
                    pkts
                })
                .collect();
            // Expected heavy keys: the bitmap columns the response's
            // packets hash to (the same at every leaf — shared seed).
            let probe = AlignedCollector::new(mcfg.aligned.clone());
            let f = FlowLabel::random(rng);
            let expected_keys = payloads
                .iter()
                .filter_map(|p| probe.index_of(&Packet::new(f, p.clone())))
                .map(|c| c as u64)
                .collect();
            AttackPlan {
                injections,
                expected_keys,
            }
        }
        AttackScenario::DrdosReflection => {
            // One victim AS; `intensity` spoofed sources each bounce the
            // whole reflector payload off src port 123 (NTP).
            let victim_ip: u32 = rng.gen();
            let injections = (0..cfg.attacked)
                .map(|_| {
                    let mut pkts = Vec::with_capacity(cfg.intensity * payloads.len());
                    for _ in 0..cfg.intensity {
                        let flow = FlowLabel {
                            src_ip: rng.gen(),
                            dst_ip: victim_ip,
                            src_port: 123,
                            dst_port: rng.gen_range(1024..=u16::MAX),
                            proto: 17,
                        };
                        pkts.extend(payloads.iter().map(|p| Packet::new(flow, p.clone())));
                    }
                    pkts
                })
                .collect();
            let key_flow = FlowLabel {
                src_ip: 0,
                dst_ip: victim_ip,
                src_port: 123,
                dst_port: 0,
                proto: 17,
            };
            AttackPlan {
                injections,
                expected_keys: vec![src_port_dst_as_key(&key_flow)],
            }
        }
        AttackScenario::ElephantFlows => {
            // One elephant flow per attacked leaf, all hauling the same
            // object `intensity` times. Keys are the flow-label hashes
            // under the sketch hasher (aligned seed, fixed tweak).
            let hasher = IndexHasher::new(mcfg.aligned.seed ^ 0x5C5C_5C5C_5C5C_5C5Cu64);
            let mut expected_keys = Vec::with_capacity(cfg.attacked);
            let injections = (0..cfg.attacked)
                .map(|_| {
                    let flow = FlowLabel::random(rng);
                    expected_keys.push(hasher.hash64(&flow.to_bytes()));
                    let mut pkts = Vec::with_capacity(cfg.intensity * payloads.len());
                    for _ in 0..cfg.intensity {
                        pkts.extend(payloads.iter().map(|p| Packet::new(flow, p.clone())));
                    }
                    pkts
                })
                .collect();
            AttackPlan {
                injections,
                expected_keys,
            }
        }
    }
}

/// Reference merge of the leaf sketches that survived both hops, in the
/// scenario's own kernel. Returns per-expected-key ranks plus how many
/// bundles carried a decodable sketch.
fn rank_attack_keys(
    scenario: AttackScenario,
    cap: usize,
    leaf_frames: &[Vec<u8>],
    expected: &[u64],
) -> (Vec<Option<usize>>, usize) {
    let mut heavy: Option<SpaceSaving> = None;
    let mut distinct: Option<DistinctSketch> = None;
    let mut delivered = 0usize;
    for frame in leaf_frames {
        let Ok((digest, _)) = RouterDigest::decode_wire(frame) else {
            continue;
        };
        let Some(payload) = digest
            .artifacts
            .iter()
            .find(|a| a.kind == ARTIFACT_KIND_SKETCH)
            .map(|a| a.payload.clone())
        else {
            continue;
        };
        let Ok(wire) = decode_sketch(&payload) else {
            continue;
        };
        delivered += 1;
        match wire {
            SketchWire::SpaceSaving { sketch, .. } => {
                heavy
                    .get_or_insert_with(|| SpaceSaving::new(cap))
                    .merge(&sketch);
            }
            SketchWire::Distinct { sketch, .. } => {
                distinct
                    .get_or_insert_with(|| DistinctSketch::new(cap, sketch.kmv_size()))
                    .merge(&sketch);
            }
        }
    }
    let ranked: Vec<u64> = match scenario {
        AttackScenario::DnsAmplification | AttackScenario::ElephantFlows => heavy
            .map(|s| s.top_k(cap).into_iter().map(|h| h.key).collect())
            .unwrap_or_default(),
        AttackScenario::DrdosReflection => distinct
            .map(|s| s.top_k(cap).into_iter().map(|(k, _)| k).collect())
            .unwrap_or_default(),
    };
    let ranks = expected
        .iter()
        .map(|k| ranked.iter().position(|r| r == k))
        .collect();
    (ranks, delivered)
}

fn accumulate(totals: &mut TransportStats, s: TransportStats) {
    totals.chunks_received += s.chunks_received;
    totals.retransmits += s.retransmits;
    totals.late_chunks += s.late_chunks;
    totals.duplicate_chunks += s.duplicate_chunks;
    totals.corrupt_chunks += s.corrupt_chunks;
    totals.checkpoint_resumes += s.checkpoint_resumes;
}

fn to_outcome(
    min_quorum: usize,
    result: Result<dcs_core::report::EpochReport, IngestError>,
) -> EpochOutcome {
    match result {
        Ok(report) => EpochOutcome::Report(Box::new(report)),
        Err(IngestError::QuorumTooSmall { required, report }) => EpochOutcome::QuorumTooSmall {
            required,
            accepted: report.accepted.len(),
        },
        Err(IngestError::NoDigests) => EpochOutcome::QuorumTooSmall {
            required: min_quorum,
            accepted: 0,
        },
    }
}

/// Runs the attack soak: scenario traffic at the leaves, sketches in
/// every bundle, two lossy hops through the aggregation tier, then the
/// same delivered epoch analysed with sketch seeding on and off.
/// Deterministic in `cfg`; transport and quorum failures are typed
/// outcomes, never panics.
pub fn run_attack_soak(cfg: &AttackConfig) -> AttackResult {
    assert!(cfg.aggregators >= 1 && cfg.leaves >= cfg.aggregators);
    assert!(cfg.attacked <= cfg.leaves);
    let mcfg =
        MonitorConfig::small(7, 1 << 14, 4).with_sketch(cfg.scenario.sketch_spec(cfg.sketch_cap));
    let mut monitors: Vec<MonitoringPoint> = (0..cfg.leaves)
        .map(|id| MonitoringPoint::new(id, &mcfg))
        .collect();

    let make_acfg = || {
        let mut acfg = AnalysisConfig::for_groups(cfg.leaves * 4).with_min_quorum(cfg.min_quorum);
        acfg.search.n_prime = 400;
        acfg.search.hopefuls = 300;
        acfg
    };
    let seeded = AnalysisCenter::new(make_acfg());
    let unseeded = AnalysisCenter::new(make_acfg().with_sketch_seed(false));
    let agg_metrics = MetricsRegistry::new();

    let mut leaf_channels: Vec<LossyChannel> = (0..cfg.aggregators)
        .map(|a| LossyChannel::new(cfg.leaf_channel, cfg.seed ^ (a as u64)))
        .collect();
    let mut up_channel = LossyChannel::new(cfg.up_channel, cfg.seed ^ 0xA55A);

    let bg = BackgroundConfig {
        packets: cfg.bg_packets,
        flows: cfg.bg_flows,
        zipf_exponent: 1.0,
        size_mix: SizeMix::constant(536),
    };

    let mut epochs: Vec<AttackEpoch> = Vec::with_capacity(cfg.epochs);
    let mut leaf_totals = TransportStats::default();
    let mut up_totals = TransportStats::default();
    let mut now: u64 = 0;

    for e in 0..cfg.epochs {
        let epoch_seed = cfg
            .seed
            .wrapping_add((e as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        for (a, ch) in leaf_channels.iter_mut().enumerate() {
            ch.reseed(epoch_seed ^ (a as u64).wrapping_mul(0x517C_C1B7_2722_0A95));
        }
        up_channel.reseed(epoch_seed ^ 0xA55A);
        let mut rng = StdRng::seed_from_u64(epoch_seed);
        let plan = plan_attack(cfg, &mcfg, &mut rng);
        let epoch_id = monitors[0].epochs_finished();

        let mut aggs: Vec<Aggregator> = (0..cfg.aggregators)
            .map(|a| {
                Aggregator::new(
                    AGG_ID_BASE + a as u64,
                    1,
                    epoch_id,
                    cfg.region(a).map(|l| l as u64),
                    cfg.leaf_collector,
                    epoch_seed ^ (a as u64),
                    now,
                )
            })
            .collect();

        for (id, mp) in monitors.iter_mut().enumerate() {
            let mut traffic = gen::generate_epoch(&mut rng, &bg);
            if id < cfg.attacked {
                let at = if traffic.is_empty() {
                    0
                } else {
                    rng.gen_range(0..=traffic.len())
                };
                traffic.splice(at..at, plan.injections[id].iter().cloned());
            }
            mp.observe_all(&traffic);
            let chunks = mp
                .finish_epoch_chunks(cfg.max_payload)
                .expect("leaf bundles fit the wire format");
            let owner = (0..cfg.aggregators)
                .find(|&a| cfg.region(a).contains(&id))
                .expect("regions partition the leaves");
            for chunk in chunks {
                leaf_channels[owner].send(&chunk, now);
            }
        }

        // Hop 1: leaves → regional aggregators, retransmit-driven.
        let cap = now + cfg.leaf_collector.deadline * 4;
        loop {
            for (a, agg) in aggs.iter_mut().enumerate() {
                for frame in leaf_channels[a].deliver_due(now) {
                    if let ChunkDisposition::Accepted {
                        router_id,
                        cumulative_ack,
                    } = agg.offer(&frame, now)
                    {
                        monitors[router_id as usize].ack(epoch_id, cumulative_ack);
                    }
                }
                for req in agg.poll(now) {
                    for frame in monitors[req.router_id as usize].resend(req.epoch_id, &req.missing)
                    {
                        leaf_channels[a].send(&frame, now);
                    }
                }
            }
            if aggs.iter().all(|a| a.ready(now)) || now >= cap {
                break;
            }
            now += 1;
        }

        // Hop 2: pre-fused DCSG bundles → centre.
        let mut resend_store: Vec<Vec<Vec<u8>>> = Vec::with_capacity(cfg.aggregators);
        let mut up_collector = EpochCollector::new(
            epoch_id,
            (0..cfg.aggregators).map(|a| AGG_ID_BASE + a as u64),
            cfg.up_collector,
            epoch_seed ^ 0x5A5A,
            now,
        );
        for agg in &mut aggs {
            accumulate(&mut leaf_totals, agg.stats());
            let bundle = agg.finalize(now, &agg_metrics);
            let chunks = chunk_bundle(agg.id(), epoch_id, &bundle.encode_wire(), cfg.max_payload);
            for chunk in &chunks {
                up_channel.send(chunk, now);
            }
            resend_store.push(chunks);
        }
        let cap = now + cfg.up_collector.deadline * 4;
        loop {
            for frame in up_channel.deliver_due(now) {
                up_collector.offer(&frame, now);
            }
            for RetransmitRequest {
                router_id, missing, ..
            } in up_collector.poll(now)
            {
                let a = (router_id - AGG_ID_BASE) as usize;
                let chunks = &resend_store[a];
                let frames: Vec<&Vec<u8>> = match &missing {
                    Missing::All => chunks.iter().collect(),
                    Missing::Seqs(seqs) => seqs
                        .iter()
                        .filter_map(|&s| chunks.get(s as usize))
                        .collect(),
                };
                for frame in frames {
                    up_channel.send(frame, now);
                }
            }
            if up_collector.ready(now) || now >= cap {
                break;
            }
            now += 1;
        }

        let epoch = up_collector.finalize(now);
        accumulate(&mut up_totals, epoch.stats);

        // Reference sketch merge over the leaf frames that survived.
        let leaf_frames: Vec<Vec<u8>> = epoch
            .frames
            .iter()
            .filter_map(|(_, bytes)| AggregateBundle::decode_wire(bytes).ok())
            .flat_map(|(bundle, _)| bundle.frames)
            .collect();
        let (attack_key_ranks, artifacts_delivered) = rank_attack_keys(
            cfg.scenario,
            cfg.sketch_cap,
            &leaf_frames,
            &plan.expected_keys,
        );

        // The same delivered epoch, analysed seeded and unseeded.
        let on = seeded.analyze_epoch_aggregated_collected(&epoch);
        let off = unseeded.analyze_epoch_aggregated_collected(&epoch);
        let outcome_on = to_outcome(cfg.min_quorum, on);
        let outcome_off = to_outcome(cfg.min_quorum, off);
        epochs.push(AttackEpoch {
            fingerprints: (
                outcome_fingerprint(&outcome_on),
                outcome_fingerprint(&outcome_off),
            ),
            outcome: outcome_on,
            attack_key_ranks,
            artifacts_delivered,
        });
        now += 1;
    }

    AttackResult {
        epochs,
        leaf_totals,
        up_totals,
        metrics: seeded.metrics(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_suite_invariants(result: &AttackResult, cfg: &AttackConfig) {
        assert_eq!(
            result.quorum_epochs(),
            cfg.epochs,
            "standard regime reaches quorum every epoch"
        );
        assert!(
            result.seeding_equivalent(),
            "sketch seeding changed the verdict: {:?}",
            result
                .epochs
                .iter()
                .map(|e| &e.fingerprints)
                .collect::<Vec<_>>()
        );
        assert!(
            result.attack_detected_in_all_quorum_epochs(),
            "planted heavy content missed"
        );
        assert!(
            result.leaf_totals.retransmits > 0,
            "lossy child hop must retransmit"
        );
        for e in &result.epochs {
            assert!(
                e.artifacts_delivered >= cfg.min_quorum,
                "sketch artifacts lost in the tier: {} < {}",
                e.artifacts_delivered,
                cfg.min_quorum
            );
        }
    }

    #[test]
    fn dns_amplification_detected_with_advisory_seeding() {
        let cfg = AttackConfig::standard(AttackScenario::DnsAmplification, 2, 41);
        let result = run_attack_soak(&cfg);
        assert_suite_invariants(&result, &cfg);
        for e in &result.epochs {
            // Every response column survives the merged content sketch.
            assert!(
                e.attack_key_ranks.iter().all(|r| r.is_some()),
                "amplified-response column fell out of the sketch: {:?}",
                e.attack_key_ranks
            );
            let EpochOutcome::Report(r) = &e.outcome else {
                unreachable!()
            };
            assert_eq!(r.sketch.artifacts, r.ingest.accepted.len());
            assert_eq!(r.sketch.merged, r.sketch.artifacts);
            assert_eq!(r.sketch.skipped, 0);
            assert!(
                !r.sketch.seed_columns.is_empty(),
                "content-index sketch must seed the search"
            );
            // Seed columns are real heavy columns: every one is part of
            // the detected signature.
            for c in &r.sketch.seed_columns {
                assert!(
                    r.aligned.signature_indices.contains(c),
                    "seed column {c} not in the detected signature"
                );
            }
        }
        assert!(
            result.metrics.counter("sketch_merged_total").unwrap_or(0) > 0,
            "centre never merged a sketch"
        );
    }

    #[test]
    fn drdos_reflection_fan_in_tops_the_distinct_sketch() {
        let cfg = AttackConfig::standard(AttackScenario::DrdosReflection, 2, 43);
        let result = run_attack_soak(&cfg);
        assert_suite_invariants(&result, &cfg);
        for e in &result.epochs {
            // The (src-port 123, victim-AS) key has `attacked *
            // intensity` distinct sources behind it — no benign key
            // comes close, so it ranks first.
            assert_eq!(
                e.attack_key_ranks,
                vec![Some(0)],
                "reflection key must dominate the distinct sketch"
            );
            let EpochOutcome::Report(r) = &e.outcome else {
                unreachable!()
            };
            // Non-content domains still ship and merge, but never seed.
            assert_eq!(r.sketch.merged, r.sketch.artifacts);
            assert!(
                r.sketch.seed_columns.is_empty(),
                "a distinct sketch must not seed the aligned search"
            );
        }
    }

    #[test]
    fn elephant_flows_dominate_the_byte_weighted_sketch() {
        let cfg = AttackConfig::standard(AttackScenario::ElephantFlows, 2, 47);
        let result = run_attack_soak(&cfg);
        assert_suite_invariants(&result, &cfg);
        for e in &result.epochs {
            assert_eq!(e.attack_key_ranks.len(), cfg.attacked);
            let present = e.attack_key_ranks.iter().filter(|r| r.is_some()).count();
            // Elephants on leaves whose bundles were lost to the channel
            // cannot appear; everything delivered must rank.
            assert!(
                present >= cfg.min_quorum.min(cfg.attacked),
                "only {present} of {} elephant flows ranked",
                cfg.attacked
            );
            let EpochOutcome::Report(r) = &e.outcome else {
                unreachable!()
            };
            assert_eq!(r.sketch.merged, r.sketch.artifacts);
            assert!(r.sketch.seed_columns.is_empty());
        }
    }

    #[test]
    fn quorum_collapse_is_a_typed_outcome() {
        let mut cfg = AttackConfig::standard(AttackScenario::DnsAmplification, 1, 53);
        // Nothing survives a hop that drops everything; the soak must
        // still terminate with a typed quorum failure, not a panic.
        cfg.up_channel = ChannelConfig {
            drop_prob: 1.0,
            ..ChannelConfig::perfect()
        };
        let result = run_attack_soak(&cfg);
        assert_eq!(result.quorum_epochs(), 0);
        assert!(matches!(
            result.epochs[0].outcome,
            EpochOutcome::QuorumTooSmall { accepted: 0, .. }
        ));
        assert!(result.seeding_equivalent());
    }
}
