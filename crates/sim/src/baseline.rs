//! Baseline comparators the paper argues against.
//!
//! * [`RawAggregationDetector`] — the strawman of Section II-B: ship the
//!   (fingerprints of the) raw traffic of every link to the centre and
//!   detect exactly. It is the accuracy *oracle* — zero false positives
//!   and negatives up to hash collisions — but its shipping cost is what
//!   makes it "clearly not a feasible approach for a large network";
//!   implementing it makes the DCS digest-size claims concrete.
//! * [`LocalPrevalenceDetector`] — a single-vantage content-prevalence
//!   detector in the spirit of EarlyBird (paper \[17\]): count repeated
//!   payloads *locally*, alarm above a repetition threshold. It shows the
//!   paper's motivating failure: content spread one-instance-per-link is
//!   locally indistinguishable from background, however many links it
//!   crosses.

use dcs_hash::IndexHasher;
use dcs_traffic::Packet;
use std::collections::HashMap;

/// Exact centralized detection over shipped per-packet fingerprints.
#[derive(Debug)]
pub struct RawAggregationDetector {
    hasher: IndexHasher,
    /// fingerprint → sorted unique router ids that saw it.
    seen: HashMap<u64, Vec<u32>>,
    /// Raw traffic bytes represented (what "raw aggregation" would ship).
    raw_bytes: u64,
    /// Fingerprint bytes shipped (8 per payload packet) — the cheapest
    /// honest version of the baseline.
    fingerprint_bytes: u64,
}

/// One exactly-detected common content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExactContent {
    /// Routers that saw every packet of the content.
    pub routers: Vec<u32>,
    /// Number of distinct packets (fingerprints) shared.
    pub packets: usize,
}

impl RawAggregationDetector {
    /// Creates the detector; the hash seed plays the role of the epoch
    /// seed (collisions at 64 bits are negligible at any realistic scale).
    pub fn new(seed: u64) -> Self {
        RawAggregationDetector {
            hasher: IndexHasher::new(seed),
            seen: HashMap::new(),
            raw_bytes: 0,
            fingerprint_bytes: 0,
        }
    }

    /// Ingests one router's epoch of traffic (the "shipping").
    pub fn ingest<'a>(&mut self, router: u32, pkts: impl IntoIterator<Item = &'a Packet>) {
        for p in pkts {
            self.raw_bytes += p.wire_len() as u64;
            if !p.has_payload() {
                continue;
            }
            self.fingerprint_bytes += 8;
            let fp = self.hasher.hash64(&p.payload);
            let routers = self.seen.entry(fp).or_default();
            if routers.last() != Some(&router) && !routers.contains(&router) {
                routers.push(router);
            }
        }
    }

    /// Exact detection: contents are groups of fingerprints seen by the
    /// *same* set of at least `min_routers` routers, of at least
    /// `min_packets` packets.
    pub fn detect(&self, min_routers: usize, min_packets: usize) -> Vec<ExactContent> {
        // Group fingerprints by their (sorted) router set.
        let mut by_set: HashMap<Vec<u32>, usize> = HashMap::new();
        for routers in self.seen.values() {
            if routers.len() >= min_routers {
                let mut key = routers.clone();
                key.sort_unstable();
                *by_set.entry(key).or_default() += 1;
            }
        }
        let mut out: Vec<ExactContent> = by_set
            .into_iter()
            .filter(|&(_, packets)| packets >= min_packets)
            .map(|(routers, packets)| ExactContent { routers, packets })
            .collect();
        out.sort_by_key(|c| std::cmp::Reverse((c.routers.len(), c.packets)));
        out
    }

    /// Bytes raw aggregation would ship (full traffic).
    pub fn raw_bytes(&self) -> u64 {
        self.raw_bytes
    }

    /// Bytes the fingerprint variant ships.
    pub fn fingerprint_bytes(&self) -> u64 {
        self.fingerprint_bytes
    }

    /// Working-set size at the centre (distinct fingerprints tracked).
    pub fn table_entries(&self) -> usize {
        self.seen.len()
    }
}

/// Single-vantage content-prevalence detector (EarlyBird-style).
#[derive(Debug)]
pub struct LocalPrevalenceDetector {
    hasher: IndexHasher,
    counts: HashMap<u64, u32>,
}

impl LocalPrevalenceDetector {
    /// Creates a per-link detector.
    pub fn new(seed: u64) -> Self {
        LocalPrevalenceDetector {
            hasher: IndexHasher::new(seed),
            counts: HashMap::new(),
        }
    }

    /// Observes one packet.
    pub fn observe(&mut self, pkt: &Packet) {
        if pkt.has_payload() {
            *self
                .counts
                .entry(self.hasher.hash64(&pkt.payload))
                .or_default() += 1;
        }
    }

    /// Highest local prevalence of any single content packet.
    pub fn max_prevalence(&self) -> u32 {
        self.counts.values().copied().max().unwrap_or(0)
    }

    /// Does any payload repeat at least `threshold` times locally?
    pub fn alarm(&self, threshold: u32) -> bool {
        self.max_prevalence() >= threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_traffic::gen::{generate_epoch, BackgroundConfig, SizeMix};
    use dcs_traffic::{ContentObject, Planting};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setting(
        seed: u64,
        routers: u32,
        infected: u32,
        instances_per_router: usize,
    ) -> (Vec<Vec<Packet>>, usize) {
        let mut rng = StdRng::seed_from_u64(seed);
        let object = ContentObject::random_with_packets(&mut rng, 25, 536);
        let plant = Planting::aligned(object, 536);
        let bg = BackgroundConfig {
            packets: 400,
            flows: 100,
            zipf_exponent: 1.0,
            size_mix: SizeMix::constant(536),
        };
        let traffic: Vec<Vec<Packet>> = (0..routers)
            .map(|r| {
                let mut t = generate_epoch(&mut rng, &bg);
                if r < infected {
                    for _ in 0..instances_per_router {
                        plant.plant_into(&mut rng, &mut t);
                    }
                }
                t
            })
            .collect();
        (traffic, 25)
    }

    #[test]
    fn raw_aggregation_is_exact() {
        let (traffic, g) = setting(1, 12, 8, 1);
        let mut det = RawAggregationDetector::new(7);
        for (r, t) in traffic.iter().enumerate() {
            det.ingest(r as u32, t);
        }
        let found = det.detect(4, 5);
        assert_eq!(found.len(), 1, "exactly one content: {found:?}");
        assert_eq!(found[0].routers, (0..8).collect::<Vec<u32>>());
        assert_eq!(found[0].packets, g);
    }

    #[test]
    fn raw_aggregation_clean_traffic_empty() {
        let (traffic, _) = setting(2, 10, 0, 0);
        let mut det = RawAggregationDetector::new(7);
        for (r, t) in traffic.iter().enumerate() {
            det.ingest(r as u32, t);
        }
        assert!(det.detect(2, 2).is_empty());
    }

    #[test]
    fn raw_aggregation_cost_accounting() {
        let (traffic, _) = setting(3, 4, 0, 0);
        let mut det = RawAggregationDetector::new(7);
        for (r, t) in traffic.iter().enumerate() {
            det.ingest(r as u32, t);
        }
        // 4 routers × 400 packets × 576 wire bytes.
        assert_eq!(det.raw_bytes(), 4 * 400 * 576);
        assert_eq!(det.fingerprint_bytes(), 4 * 400 * 8);
        assert!(det.table_entries() <= 1600);
        // Even the fingerprint variant ships 72x less than raw — but the
        // centre must hold per-packet state, which is the real scaling
        // wall (2.4M entries/s/link at OC-48).
        assert_eq!(det.raw_bytes() / det.fingerprint_bytes(), 72);
    }

    #[test]
    fn local_detector_blind_to_distributed_content() {
        // One instance per infected link: local prevalence of the content
        // equals 1, identical to background — the paper's core motivation.
        let (traffic, _) = setting(4, 12, 12, 1);
        for t in &traffic {
            let mut local = LocalPrevalenceDetector::new(7);
            for p in t {
                local.observe(p);
            }
            assert_eq!(
                local.max_prevalence(),
                1,
                "one-instance-per-link content must look unique locally"
            );
            assert!(!local.alarm(2));
        }
    }

    #[test]
    fn local_detector_sees_local_repetition() {
        // Many instances at one link: the local detector fires (this is
        // the regime EarlyBird handles; DCS targets the other one).
        let (traffic, _) = setting(5, 1, 1, 5);
        let mut local = LocalPrevalenceDetector::new(7);
        for p in &traffic[0] {
            local.observe(p);
        }
        assert_eq!(local.max_prevalence(), 5);
        assert!(local.alarm(3));
    }
}
