//! Plain-text table/series formatting for the `repro_*` binaries — the
//! same rows the paper prints, aligned for terminal reading.

/// Formats a table: header row plus data rows, columns padded to the
/// widest cell.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    for (i, r) in rows.iter().enumerate() {
        assert_eq!(r.len(), ncols, "row {i} has wrong arity");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for r in rows {
        for (c, cell) in r.iter().enumerate() {
            widths[c] = widths[c].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (c, cell) in cells.iter().enumerate() {
            if c > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:>width$}", width = widths[c]));
        }
        line.push('\n');
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for r in rows {
        out.push_str(&fmt_row(r, &widths));
    }
    out
}

/// Formats an (x, y) series as two aligned columns — for figure curves.
pub fn render_series(x_label: &str, y_label: &str, points: &[(f64, f64)]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|&(x, y)| vec![trim_float(x), trim_float(y)])
        .collect();
    render_table(&[x_label, y_label], &rows)
}

/// Formats a float without trailing zero noise.
pub fn trim_float(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else if v.abs() >= 0.01 {
        format!("{v:.3}")
    } else {
        format!("{v:.3e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let s = render_table(
            &["g", "minimum m"],
            &[
                vec!["80".into(), "297".into()],
                vec!["150".into(), "23".into()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("minimum m"));
        assert!(lines[2].ends_with("297"));
        // All rows equal width.
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    #[should_panic(expected = "wrong arity")]
    fn ragged_rows_rejected() {
        render_table(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn float_trimming() {
        assert_eq!(trim_float(3.0), "3");
        assert_eq!(trim_float(0.988), "0.988");
        assert_eq!(trim_float(6.5e-6), "6.500e-6");
    }

    #[test]
    fn series_renders() {
        let s = render_series("a", "detection", &[(20.0, 0.5), (30.0, 0.988)]);
        assert!(s.contains("0.988"));
        assert!(s.lines().count() == 4);
    }
}
