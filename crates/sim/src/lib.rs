//! Monte-Carlo experiment harness: everything needed to regenerate the
//! paper's evaluation (Section V).
//!
//! * [`aligned`] — planted m×n Bernoulli matrices, a *conditioned screened
//!   sampler* that reproduces the refined algorithm's input at the
//!   1000×4M paper scale without materialising four million columns, and
//!   detection-ratio runners (Figures 7, 11, 12);
//! * [`unaligned`] — graph-model trials (planted G(n,p₁)+G(n₁,p₂), exactly
//!   the model the paper's own Monte-Carlo uses) for the ER test and core
//!   finding (Figure 13, Tables I–III);
//! * [`baseline`] — the comparators the paper argues against: exact
//!   raw-aggregation detection (the infeasible strawman of §II-B) and a
//!   single-vantage prevalence detector (EarlyBird-style, §VI);
//! * [`stress`] — the Section V-B.4 stress test: a bursty synthetic trace
//!   pushed through the real collector → matrix → graph → detection path;
//! * [`faults`] — seeded fault injection on the digest shipping path
//!   (drops, truncation, bit flips, duplicates, epoch desync), for
//!   exercising the analysis centre's ingest layer;
//! * [`channel`] — a seeded lossy-channel model (drop, delay, reorder,
//!   duplicate, corrupt) for the chunked digest transport;
//! * [`soak`] — the transport soak harness: many epochs of monitors →
//!   lossy channel → epoch collector → analysis centre, with optional
//!   mid-soak centre kill/restart through the checkpoint path;
//! * [`tiered`] — the two-level topology soak: leaves → regional
//!   aggregators → centre, with per-epoch flat-replay detection
//!   equivalence checking;
//! * [`attack`] — the attack-scenario suite: DNS amplification, DRDoS
//!   reflection and elephant flows driven through the tier with sidecar
//!   sketches, plus per-epoch sketch-seeding-on/off detection parity;
//! * [`table`] — plain-text row/series formatting for the `repro_*`
//!   binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aligned;
pub mod attack;
pub mod baseline;
pub mod channel;
pub mod faults;
pub mod soak;
pub mod stress;
pub mod table;
pub mod tiered;
pub mod unaligned;
