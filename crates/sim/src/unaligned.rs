//! Unaligned-case Monte-Carlo at the graph-model level — exactly the
//! abstraction the paper's own Section V-B simulations use: a background
//! G(n, p₁) plus a planted G(n₁, p₂) among the pattern vertices.

use dcs_graph::component_sizes;
use dcs_graph::er::{gnp, gnp_planted, PlantedConfig};
use dcs_stats::Ecdf;
use dcs_unaligned::corefind::precision_recall;
use dcs_unaligned::lambda::{p_star_for_edge_prob, LambdaTable};
use dcs_unaligned::{find_pattern, CoreFindConfig, MatchModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives the pattern edge probability p₂ for content of `g` packets at
/// an operating point with group-edge probability `p1` (k = 10 offsets,
/// 100 row pairs per group pair, paper geometry).
pub fn p2_for(g: usize, p1: f64) -> f64 {
    let model = MatchModel::paper_default(g);
    let p_star = p_star_for_edge_prob(p1, model.k * model.k);
    let table = LambdaTable::new(model.n_bits, p_star);
    let lam = table.lambda(model.row_weight as u32, model.row_weight as u32);
    model.pattern_edge_prob(lam, p_star)
}

/// Largest-component sizes over `reps` trials of the (possibly planted)
/// graph model — the raw material of Figure 13's CDFs.
pub fn largest_component_samples(
    base_seed: u64,
    n: usize,
    p1: f64,
    n1: usize,
    p2: f64,
    reps: usize,
) -> Ecdf {
    let samples: Vec<f64> = (0..reps)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(base_seed ^ ((i as u64) << 24));
            let largest = if n1 == 0 {
                let g = gnp(&mut rng, n, p1);
                component_sizes(&g)[0]
            } else {
                let (g, _) = gnp_planted(&mut rng, PlantedConfig { n, p1, n1, p2 });
                component_sizes(&g)[0]
            };
            largest as f64
        })
        .collect();
    Ecdf::new(samples)
}

/// False-negative probability of the ER test at a component threshold:
/// the fraction of *planted* trials whose largest component stays at or
/// under the threshold.
pub fn er_false_negative(planted: &Ecdf, threshold: usize) -> f64 {
    planted.cdf(threshold as f64)
}

/// False-positive probability: the fraction of *null* trials whose
/// largest component exceeds the threshold.
pub fn er_false_positive(null: &Ecdf, threshold: usize) -> f64 {
    null.exceed(threshold as f64)
}

/// Per-trial core-finding statistics (Table I's columns).
#[derive(Debug, Clone, Copy, Default)]
pub struct CoreStats {
    /// Mean reported-set size `|V_core ∪ V_2nd_core|`.
    pub avg_core_size: f64,
    /// Mean per-router false-negative rate (pattern vertices missed).
    pub avg_false_negative: f64,
    /// Mean per-router false-positive rate (reported vertices that never
    /// saw the content).
    pub avg_false_positive: f64,
}

/// Runs `reps` core-finding trials on the planted graph model.
pub fn core_finding_stats(
    base_seed: u64,
    n: usize,
    p1_detect: f64,
    n1: usize,
    p2: f64,
    cfg: CoreFindConfig,
    reps: usize,
) -> CoreStats {
    assert!(reps > 0, "need at least one trial");
    let mut acc = CoreStats::default();
    for i in 0..reps {
        let mut rng = StdRng::seed_from_u64(base_seed ^ ((i as u64) << 24));
        let (g, pattern) = gnp_planted(
            &mut rng,
            PlantedConfig {
                n,
                p1: p1_detect,
                n1,
                p2,
            },
        );
        let result = find_pattern(&g, cfg);
        let reported = result.vertices();
        let (precision, recall) = precision_recall(&reported, &pattern);
        acc.avg_core_size += reported.len() as f64;
        acc.avg_false_negative += 1.0 - recall;
        acc.avg_false_positive += 1.0 - precision;
    }
    acc.avg_core_size /= reps as f64;
    acc.avg_false_negative /= reps as f64;
    acc.avg_false_positive /= reps as f64;
    acc
}

/// Finds the minimum n₁ whose average recovery (`1 − FN`) reaches
/// `target_recovery`, scanning upward in steps then refining — the search
/// behind Table I's n₁ columns and Table III's detectable thresholds.
///
/// `cfg_for` maps a candidate n₁ to core-finding parameters — the paper
/// tunes β by Monte-Carlo per operating point, and a β that scales with
/// the expected pattern size (e.g. `n1/2`) is needed for the 75 %/90 %
/// recovery tiers (a fixed β caps the reported set at `2β`).
#[allow(clippy::too_many_arguments)] // flat args mirror the experiment factors
pub fn min_n1_for_recovery(
    base_seed: u64,
    n: usize,
    p1_detect: f64,
    p2: f64,
    cfg_for: &dyn Fn(usize) -> CoreFindConfig,
    target_recovery: f64,
    reps: usize,
    n1_max: usize,
) -> Option<usize> {
    assert!(
        (0.0..=1.0).contains(&target_recovery),
        "recovery target in [0,1]"
    );
    let recovery = |n1: usize| {
        let s = core_finding_stats(base_seed, n, p1_detect, n1, p2, cfg_for(n1), reps);
        1.0 - s.avg_false_negative
    };
    // Coarse upward scan (recovery is monotone in n1 up to MC noise).
    let step = (n1_max / 16).max(4);
    let mut hi = None;
    let mut n1 = step;
    while n1 <= n1_max {
        if recovery(n1) >= target_recovery {
            hi = Some(n1);
            break;
        }
        n1 += step;
    }
    let hi = hi?;
    // Refine downward in half-steps.
    let mut lo = hi.saturating_sub(step).max(1);
    let mut hi = hi;
    while hi - lo > (hi / 50).max(2) {
        let mid = (lo + hi) / 2;
        if recovery(mid) >= target_recovery {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2_is_physical_and_monotone_in_g() {
        let p1 = 0.8e-4;
        let p100 = p2_for(100, p1);
        let p120 = p2_for(120, p1);
        let p150 = p2_for(150, p1);
        assert!(p100 > p1, "p2 {p100} must exceed background");
        assert!(p100 < 0.2, "p2 {p100} bounded by the match probability");
        assert!(p100 < p120 && p120 < p150);
    }

    #[test]
    fn fig13_shape_null_vs_planted() {
        let n = 20_000;
        let p1 = 0.65 / n as f64;
        let p2 = 0.12;
        let null = largest_component_samples(1, n, p1, 0, 0.0, 12);
        let planted = largest_component_samples(2, n, p1, 120, p2, 12);
        // Null max stays small; planted mostly exceeds it.
        assert!(null.max() < 100.0, "null max {}", null.max());
        assert!(
            planted.quantile(0.5) > null.max(),
            "planted median {} vs null max {}",
            planted.quantile(0.5),
            null.max()
        );
        let threshold = 80;
        assert!(er_false_positive(&null, threshold) < 0.2);
        assert!(er_false_negative(&planted, threshold) < 0.4);
    }

    #[test]
    fn fn_decreases_with_n1() {
        let n = 20_000;
        let p1 = 0.65 / n as f64;
        let p2 = 0.05;
        let small = largest_component_samples(3, n, p1, 60, p2, 10);
        let large = largest_component_samples(4, n, p1, 200, p2, 10);
        let threshold = 80;
        assert!(
            er_false_negative(&large, threshold) <= er_false_negative(&small, threshold),
            "FN must not grow with n1"
        );
    }

    #[test]
    fn core_stats_recover_dense_pattern() {
        let n = 20_000;
        let stats = core_finding_stats(
            5,
            n,
            2.0 / n as f64,
            100,
            0.15,
            CoreFindConfig { beta: 50, d: 2 },
            4,
        );
        assert!(
            stats.avg_false_negative < 0.5,
            "FN {} too high",
            stats.avg_false_negative
        );
        assert!(
            stats.avg_false_positive < 0.2,
            "FP {} too high",
            stats.avg_false_positive
        );
        assert!(stats.avg_core_size >= 50.0);
    }

    #[test]
    fn min_n1_search_finds_a_threshold() {
        let n = 10_000;
        let p1 = 2.0 / n as f64;
        let found = min_n1_for_recovery(
            6,
            n,
            p1,
            0.15,
            &|n1| CoreFindConfig {
                beta: (n1 / 2).max(10),
                d: 2,
            },
            0.5,
            3,
            400,
        );
        let n1 = found.expect("a 50% threshold must exist at p2 = 0.15");
        assert!(
            (20..=300).contains(&n1),
            "threshold n1 = {n1} out of plausible band"
        );
        // Verify: recovery at the found point indeed meets the target.
        let cfg = CoreFindConfig {
            beta: (n1 / 2).max(10),
            d: 2,
        };
        let s = core_finding_stats(6, n, p1, n1, 0.15, cfg, 6);
        assert!(
            1.0 - s.avg_false_negative >= 0.35,
            "refound recovery too low"
        );
    }
}
