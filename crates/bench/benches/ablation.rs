//! Performance ablations: the complexity-management options of paper
//! Section IV-D (serial vs parallel vs sampled correlation), bucket-queue
//! vs naive peeling, and hopefuls-list sizing in the aligned search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcs_aligned::{refined_detect, SearchConfig};
use dcs_bitmap::{Bitmap, RowMatrix};
use dcs_graph::er::{gnp_planted, PlantedConfig};
use dcs_graph::peel::{peel_to_size, peel_to_size_naive};
use dcs_sim::aligned::planted_matrix;
use dcs_unaligned::graphbuild::build_group_graph_sampled;
use dcs_unaligned::{build_group_graph, build_group_graph_parallel, GroupLayout, LambdaTable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn correlation_variants(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    // 200 groups x 10 rows of 1024 bits at ~44% fill.
    let mut m = RowMatrix::new(1024);
    for _ in 0..2_000 {
        let bm = Bitmap::from_indices(1024, (0..450).map(|_| rng.gen_range(0..1024)));
        m.push_bitmap(&bm);
    }
    let layout = GroupLayout { rows_per_group: 10 };
    let table = LambdaTable::new(1024, 1e-6);
    // Warm the λ memo so all variants measure the sweep, not table setup.
    build_group_graph(&m, layout, &table);

    let mut g = c.benchmark_group("correlation_200groups");
    g.sample_size(10);
    g.bench_function("serial", |b| {
        b.iter(|| build_group_graph(&m, layout, &table).m())
    });
    for threads in [2usize, 4, 8] {
        g.bench_with_input(BenchmarkId::new("parallel", threads), &threads, |b, &t| {
            b.iter(|| build_group_graph_parallel(&m, layout, &table, t).m())
        });
    }
    g.bench_function("sampled_div10", |b| {
        b.iter(|| build_group_graph_sampled(&m, layout, &table, 10).0.m())
    });
    g.finish();
}

fn peeling_variants(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let (g, _) = gnp_planted(
        &mut rng,
        PlantedConfig {
            n: 5_000,
            p1: 2.0 / 5_000.0,
            n1: 80,
            p2: 0.2,
        },
    );
    let mut grp = c.benchmark_group("peeling_5k");
    grp.sample_size(10);
    grp.bench_function("bucket_queue", |b| b.iter(|| peel_to_size(&g, 50).len()));
    grp.bench_function("naive_rescan", |b| {
        b.iter(|| peel_to_size_naive(&g, 50).len())
    });
    grp.finish();
}

fn hopefuls_sizing(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let p = planted_matrix(&mut rng, 96, 800, 30, 12);
    let mut grp = c.benchmark_group("aligned_hopefuls");
    grp.sample_size(10);
    for hopefuls in [100usize, 400, 1600] {
        grp.bench_with_input(BenchmarkId::from_parameter(hopefuls), &hopefuls, |b, &h| {
            let cfg = SearchConfig {
                hopefuls: h,
                max_iterations: 25,
                n_prime: 120,
                gamma: 2,
                epsilon: 1e-3,
                termination: Default::default(),
                compute: Default::default(),
            };
            b.iter(|| refined_detect(&p.matrix, &cfg).found)
        });
    }
    grp.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = correlation_variants, peeling_variants, hopefuls_sizing
}
criterion_main!(benches);
