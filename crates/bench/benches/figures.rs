//! One Criterion bench per paper table/figure: times the computation each
//! `repro_*` binary performs (at a reduced scale where a single trial at
//! paper scale would dominate `cargo bench` wall-clock). The accuracy
//! numbers themselves come from the binaries; these benches track the
//! cost of regenerating them.

use criterion::{criterion_group, criterion_main, Criterion};
use dcs_aligned::thresholds::{detectable_min_b, non_natural_min_b, DetectableParams};
use dcs_aligned::{refined_detect, SearchConfig};
use dcs_sim::aligned::screened_planted_matrix;
use dcs_sim::stress::{run_stress, StressConfig};
use dcs_sim::unaligned::{core_finding_stats, largest_component_samples, p2_for};
use dcs_unaligned::thresholds::{cluster_threshold_cotuned, default_p1_grid};
use dcs_unaligned::CoreFindConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn search_cfg() -> SearchConfig {
    SearchConfig {
        hopefuls: 300,
        max_iterations: 30,
        n_prime: 0,
        gamma: 2,
        epsilon: 1e-3,
        termination: Default::default(),
        compute: Default::default(),
    }
}

fn fig07_weight_curve(c: &mut Criterion) {
    c.bench_function("fig07/weight_curve_trial", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = StdRng::seed_from_u64(seed);
            let sm = screened_planted_matrix(&mut rng, 500, 1_000_000, 60, 30, 1_000);
            let mut cfg = search_cfg();
            cfg.n_prime = sm.matrix.ncols();
            refined_detect(&sm.matrix, &cfg).weight_curve.len()
        })
    });
}

fn fig11_detection_trial(c: &mut Criterion) {
    c.bench_function("fig11/detection_trial", |b| {
        let mut seed = 100u64;
        b.iter(|| {
            seed += 1;
            let mut rng = StdRng::seed_from_u64(seed);
            let sm = screened_planted_matrix(&mut rng, 500, 1_000_000, 50, 25, 1_000);
            let mut cfg = search_cfg();
            cfg.n_prime = sm.matrix.ncols();
            refined_detect(&sm.matrix, &cfg).found
        })
    });
}

fn fig12_threshold_curves(c: &mut Criterion) {
    c.bench_function("fig12/both_curves_10pts", |b| {
        let p = DetectableParams::paper_default();
        b.iter(|| {
            let mut acc = 0u64;
            for a in (20..=110).step_by(10) {
                acc += non_natural_min_b(p.m, p.n, a, p.epsilon, 10_000).unwrap_or(0);
                acc += detectable_min_b(p, a, 0.95, 10_000).unwrap_or(0);
            }
            acc
        })
    });
}

fn fig13_er_trial(c: &mut Criterion) {
    c.bench_function("fig13/er_trial_paper_n", |b| {
        let p1 = 0.65e-5;
        let p2 = p2_for(100, p1);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            largest_component_samples(seed, 102_400, p1, 130, p2, 1).max()
        })
    });
}

fn table1_core_trial(c: &mut Criterion) {
    c.bench_function("table1/core_trial_paper_n", |b| {
        let n = 102_400;
        let p1 = 2.0 / n as f64;
        let p2 = p2_for(100, p1);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            core_finding_stats(seed, n, p1, 300, p2, CoreFindConfig { beta: 50, d: 2 }, 1)
                .avg_core_size
        })
    });
}

fn table2_cotuning(c: &mut Criterion) {
    c.bench_function("table2/cotuned_threshold_g100", |b| {
        let grid = default_p1_grid(102_400);
        b.iter(|| {
            cluster_threshold_cotuned(102_400, 100, 100, &grid, 1e-10, 0.95, 2_000).map(|t| t.m)
        })
    });
}

fn table3_detectable_probe(c: &mut Criterion) {
    c.bench_function("table3/reliability_probe", |b| {
        let n = 102_400;
        let p1 = 2.0 / n as f64;
        let p2 = p2_for(125, p1);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            core_finding_stats(seed, n, p1, 200, p2, CoreFindConfig { beta: 40, d: 2 }, 1)
                .avg_false_positive
        })
    });
}

fn stress_pipeline(c: &mut Criterion) {
    c.bench_function("stress/pipeline_small", |b| {
        let mut cfg = StressConfig::small();
        cfg.segments = 16;
        cfg.n1 = 10;
        cfg.packets_per_segment = 16 * 400;
        cfg.detect_p1 = 2.0 / (16.0 * 16.0);
        cfg.corefind = CoreFindConfig { beta: 8, d: 2 };
        cfg.threads = 4;
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut c2 = cfg.clone();
            c2.seed = seed;
            run_stress(&c2).recall
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = fig07_weight_curve, fig11_detection_trial, fig12_threshold_curves,
              fig13_er_trial, table1_core_trial, table2_cotuning,
              table3_detectable_probe, stress_pipeline
}
criterion_main!(benches);
