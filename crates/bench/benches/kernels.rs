//! Microbenchmarks of the hot kernels: word AND/popcount, row
//! correlation, collectors at line rate, Rabin fingerprinting, ER
//! generation and peeling.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dcs_bitmap::{words, Bitmap, RowMatrix};
use dcs_collect::{AlignedCollector, AlignedConfig, UnalignedCollector, UnalignedConfig};
use dcs_graph::er::gnp;
use dcs_graph::peel::peel_to_size;
use dcs_hash::{IndexHasher, RabinFingerprinter, RollingRabin, DEFAULT_POLY};
use dcs_traffic::{gen, BackgroundConfig, SizeMix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_words(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    // Scalar vs blocked kernels at the aligned column size (16 words =
    // 1000 routers) and at a size where blocking matters (4096 words).
    for nw in [16usize, 4096] {
        let a: Vec<u64> = (0..nw).map(|_| rng.gen()).collect();
        let b: Vec<u64> = (0..nw).map(|_| rng.gen()).collect();
        let mut g = c.benchmark_group("words");
        g.throughput(Throughput::Bytes((nw * 8) as u64));
        g.bench_function(format!("weight_scalar_{nw}w"), |bch| {
            bch.iter(|| words::weight_scalar(black_box(&a)))
        });
        g.bench_function(format!("weight_blocked_{nw}w"), |bch| {
            bch.iter(|| words::weight(black_box(&a)))
        });
        g.bench_function(format!("and_weight_scalar_{nw}w"), |bch| {
            bch.iter(|| words::and_weight_scalar(black_box(&a), black_box(&b)))
        });
        g.bench_function(format!("and_weight_blocked_{nw}w"), |bch| {
            bch.iter(|| words::and_weight(black_box(&a), black_box(&b)))
        });
        g.finish();
    }

    // The batched sweep kernel vs a pairwise loop — the expansion sweep's
    // access pattern (one base column against a block of candidates).
    let nw = 4096;
    let ncols = 16;
    let base: Vec<u64> = (0..nw).map(|_| rng.gen()).collect();
    let cols: Vec<Vec<u64>> = (0..ncols)
        .map(|_| (0..nw).map(|_| rng.gen()).collect())
        .collect();
    let refs: Vec<&[u64]> = cols.iter().map(Vec::as_slice).collect();
    let mut g = c.benchmark_group("words");
    g.throughput(Throughput::Bytes((nw * 8 * (ncols + 1)) as u64));
    g.bench_function(format!("and_weight_pairwise_x{ncols}_4096w"), |bch| {
        bch.iter(|| {
            refs.iter()
                .map(|col| words::and_weight_scalar(black_box(&base), col))
                .sum::<u32>()
        })
    });
    g.bench_function(format!("and_weight_many_x{ncols}_4096w"), |bch| {
        bch.iter(|| words::and_weight_many(black_box(&base), black_box(&refs)))
    });
    g.finish();

    // 1024-bit rows — the unaligned case's unit of work.
    let r1 = Bitmap::from_indices(1024, (0..512).map(|i| i * 2));
    let r2 = Bitmap::from_indices(1024, (0..512).map(|i| i * 2 + 1));
    c.bench_function("words/common_ones_1024b", |bch| {
        bch.iter(|| black_box(&r1).common_ones(black_box(&r2)))
    });
}

fn bench_row_sweep(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut m = RowMatrix::new(1024);
    for _ in 0..400 {
        let bm = Bitmap::from_indices(1024, (0..450).map(|_| rng.gen_range(0..1024)));
        m.push_bitmap(&bm);
    }
    c.bench_function("analysis/pairwise_400rows", |bch| {
        bch.iter(|| {
            let mut acc = 0u64;
            for i in 0..m.nrows() {
                for j in (i + 1)..m.nrows() {
                    acc += u64::from(m.common_ones(i, j));
                }
            }
            acc
        })
    });
}

fn bench_collectors(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let epoch = gen::generate_epoch(
        &mut rng,
        &BackgroundConfig {
            packets: 2_000,
            flows: 400,
            zipf_exponent: 1.0,
            size_mix: SizeMix::constant(536),
        },
    );
    let bytes: usize = epoch.iter().map(|p| p.wire_len()).sum();
    let mut g = c.benchmark_group("collectors");
    g.throughput(Throughput::Bytes(bytes as u64));
    g.bench_function("aligned_observe_2k_pkts", |bch| {
        bch.iter(|| {
            let mut col = AlignedCollector::new(AlignedConfig::small(1 << 20, 1));
            for p in &epoch {
                col.observe(p);
            }
            col.finish_epoch().bitmap.weight()
        })
    });
    g.bench_function("unaligned_observe_2k_pkts", |bch| {
        bch.iter(|| {
            let mut col = UnalignedCollector::new(UnalignedConfig::small(128, 1, 2));
            for p in &epoch {
                col.observe(p);
            }
            col.finish_epoch().packets_sampled
        })
    });
    g.finish();
}

fn bench_hashing(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let mut payload = vec![0u8; 536];
    rng.fill(payload.as_mut_slice());
    let fp = RabinFingerprinter::new(DEFAULT_POLY);
    let idx = IndexHasher::new(7);
    let mut g = c.benchmark_group("hashing");
    g.throughput(Throughput::Bytes(536));
    g.bench_function("rabin_536B", |bch| {
        bch.iter(|| fp.fingerprint(black_box(&payload)))
    });
    g.bench_function("index_hash_536B", |bch| {
        bch.iter(|| idx.index(black_box(&payload), 1 << 22))
    });
    g.bench_function("rolling_rabin_536B_w16", |bch| {
        bch.iter(|| RollingRabin::windows_of(DEFAULT_POLY, 16, black_box(&payload)).len())
    });
    g.finish();
}

fn bench_graph(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    c.bench_function("graph/gnp_100k_subcritical", |bch| {
        bch.iter(|| gnp(&mut rng, 102_400, 0.65e-5).m())
    });
    let g = gnp(&mut rng, 102_400, 2.0 / 102_400.0);
    c.bench_function("graph/peel_100k_to_50", |bch| {
        bch.iter(|| peel_to_size(black_box(&g), 50).len())
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_words, bench_row_sweep, bench_collectors, bench_hashing, bench_graph
}
criterion_main!(benches);
