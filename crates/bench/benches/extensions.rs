//! Benches for the extension layers: capture filters, multi-pattern
//! detection, sampled correlation + expansion, wire codecs and the
//! baseline comparators.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dcs_aligned::{refined_detect_multi, SearchConfig};
use dcs_collect::{AlignedConfig, UnalignedConfig};
use dcs_core::capture::{GroupCapture, SignatureCapture};
use dcs_sim::aligned::planted_matrix;
use dcs_sim::baseline::{LocalPrevalenceDetector, RawAggregationDetector};
use dcs_traffic::gen::{generate_epoch, BackgroundConfig, SizeMix};
use dcs_unaligned::multi::find_patterns_multi;
use dcs_unaligned::CoreFindConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn capture_filters(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let epoch = generate_epoch(
        &mut rng,
        &BackgroundConfig {
            packets: 2_000,
            flows: 400,
            zipf_exponent: 1.0,
            size_mix: SizeMix::constant(536),
        },
    );
    let bytes: usize = epoch.iter().map(|p| p.wire_len()).sum();
    let acfg = AlignedConfig::small(1 << 20, 7);
    let sig: Vec<usize> = (0..30).map(|i| i * 1000).collect();
    let sig_filter = SignatureCapture::new(&acfg, &sig);
    let ucfg = UnalignedConfig::small(32, 7, 3);
    let grp_filter = GroupCapture::new(&ucfg, &[1, 5, 9]);

    let mut g = c.benchmark_group("capture");
    g.throughput(Throughput::Bytes(bytes as u64));
    g.bench_function("signature_2k_pkts", |b| {
        b.iter(|| sig_filter.capture(black_box(&epoch)).len())
    });
    g.bench_function("group_2k_pkts", |b| {
        b.iter(|| grp_filter.capture(black_box(&epoch)).len())
    });
    g.finish();
}

fn multi_pattern(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let p = planted_matrix(&mut rng, 96, 600, 30, 12);
    let cfg = SearchConfig {
        hopefuls: 200,
        max_iterations: 25,
        n_prime: 120,
        gamma: 2,
        epsilon: 1e-3,
        termination: Default::default(),
        compute: Default::default(),
    };
    c.bench_function("multi/aligned_detect_multi", |b| {
        b.iter(|| refined_detect_multi(&p.matrix, &cfg, 3).len())
    });

    let mut r2 = StdRng::seed_from_u64(3);
    let (g, _) = dcs_graph::er::gnp_planted(
        &mut r2,
        dcs_graph::er::PlantedConfig {
            n: 10_000,
            p1: 2.0 / 10_000.0,
            n1: 80,
            p2: 0.3,
        },
    );
    c.bench_function("multi/unaligned_find_patterns", |b| {
        b.iter(|| find_patterns_multi(&g, CoreFindConfig { beta: 40, d: 2 }, 3, 1.0).len())
    });
}

fn baselines(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let epoch = generate_epoch(
        &mut rng,
        &BackgroundConfig {
            packets: 2_000,
            flows: 400,
            zipf_exponent: 1.0,
            size_mix: SizeMix::constant(536),
        },
    );
    let bytes: usize = epoch.iter().map(|p| p.wire_len()).sum();
    let mut g = c.benchmark_group("baseline");
    g.throughput(Throughput::Bytes(bytes as u64));
    g.bench_function("raw_aggregation_ingest_2k", |b| {
        b.iter(|| {
            let mut det = RawAggregationDetector::new(7);
            det.ingest(0, &epoch);
            det.table_entries()
        })
    });
    g.bench_function("local_prevalence_2k", |b| {
        b.iter(|| {
            let mut det = LocalPrevalenceDetector::new(7);
            for p in &epoch {
                det.observe(p);
            }
            det.max_prevalence()
        })
    });
    g.finish();
}

fn wire_codec(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let mut col = dcs_collect::UnalignedCollector::new(UnalignedConfig::small(32, 1, 2));
    for p in generate_epoch(
        &mut rng,
        &BackgroundConfig {
            packets: 4_000,
            flows: 800,
            zipf_exponent: 1.0,
            size_mix: SizeMix::constant(536),
        },
    ) {
        col.observe(&p);
    }
    let digest = col.finish_epoch();
    let wire = digest.encode_wire().expect("digest fits wire format");
    let mut g = c.benchmark_group("wire");
    g.throughput(Throughput::Bytes(wire.len() as u64));
    g.bench_function("unaligned_encode", |b| {
        b.iter(|| digest.encode_wire().expect("digest fits wire format").len())
    });
    g.bench_function("unaligned_decode", |b| {
        b.iter(|| {
            dcs_collect::UnalignedDigest::decode_wire(black_box(&wire))
                .expect("roundtrip")
                .1
        })
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = capture_filters, multi_pattern, baselines, wire_codec
}
criterion_main!(benches);
