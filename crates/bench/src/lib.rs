//! Shared experiment presets for the `repro_*` binaries and Criterion
//! benches.
//!
//! Every binary accepts the environment variables
//! `DCS_REPS` (Monte-Carlo repetitions), `DCS_THREADS` (worker threads)
//! and `DCS_SCALE` (`paper` or `quick`), so the same code regenerates a
//! quick sanity pass or the full paper-scale figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dcs_aligned::SearchConfig;

/// Paper constants for the aligned case (Section V-A).
pub mod aligned_paper {
    /// Routers monitored.
    pub const M: usize = 1_000;
    /// Bitmap width (4 Mbit).
    pub const N: usize = 4 * 1024 * 1024;
    /// Screening budget.
    pub const N_PRIME: usize = 4_000;
    /// The showcase pattern (Figures 7 and 11): 100 routers × 30 packets.
    pub const SHOWCASE: (usize, usize) = (100, 30);
}

/// Paper constants for the unaligned case (Section V-B).
pub mod unaligned_paper {
    /// Group-vertices (800 links × 128 groups).
    pub const N: usize = 102_400;
    /// Statistical-test edge probability (below 1/n ≈ 0.98e-5).
    pub const TEST_P1: f64 = 0.65e-5;
    /// Detection-graph edge probability used by the paper's Table I.
    pub const DETECT_P1_PAPER: f64 = 0.8e-4;
    /// Largest-component alarm threshold (Figure 13).
    pub const COMPONENT_THRESHOLD: usize = 100;
}

/// Run-scale knobs read from the environment.
#[derive(Debug, Clone, Copy)]
pub struct RunScale {
    /// Monte-Carlo repetitions.
    pub reps: usize,
    /// Worker threads.
    pub threads: usize,
    /// Full paper scale or a quick pass.
    pub quick: bool,
}

impl RunScale {
    /// Reads `DCS_REPS`, `DCS_THREADS`, `DCS_SCALE` with the given default
    /// repetitions.
    pub fn from_env(default_reps: usize) -> Self {
        let reps = std::env::var("DCS_REPS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default_reps);
        let threads = std::env::var("DCS_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |p| p.get().min(16)));
        let quick = std::env::var("DCS_SCALE").is_ok_and(|v| v == "quick");
        RunScale {
            reps: reps.max(1),
            threads: threads.clamp(1, 64),
            quick,
        }
    }
}

/// The search configuration used by the aligned reproduction runs: paper
/// geometry, hopefuls list sized for tractable wall-clock.
pub fn repro_search_config() -> SearchConfig {
    SearchConfig {
        hopefuls: 800,
        max_iterations: 40,
        n_prime: aligned_paper::N_PRIME,
        gamma: 2,
        epsilon: 1e-3,
        termination: Default::default(),
        compute: Default::default(),
    }
}

/// Prints the standard experiment banner.
pub fn banner(what: &str, paper_ref: &str) {
    println!("== DCS reproduction: {what}");
    println!("   paper reference: {paper_ref}");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_scale_defaults() {
        // Not manipulating the environment (tests run concurrently);
        // just sanity-check the default path.
        let s = RunScale::from_env(42);
        assert!(s.reps >= 1);
        assert!((1..=64).contains(&s.threads));
    }

    #[test]
    fn paper_constants_consistent() {
        assert!(unaligned_paper::TEST_P1 < 1.0 / unaligned_paper::N as f64);
        assert!(unaligned_paper::DETECT_P1_PAPER > 1.0 / unaligned_paper::N as f64);
        assert_eq!(aligned_paper::N, 4_194_304);
    }
}
