//! Shared experiment presets for the `repro_*` binaries and Criterion
//! benches.
//!
//! Every binary accepts the environment variables
//! `DCS_REPS` (Monte-Carlo repetitions), `DCS_THREADS` (worker threads)
//! and `DCS_SCALE` (`paper` or `quick`), so the same code regenerates a
//! quick sanity pass or the full paper-scale figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dcs_aligned::SearchConfig;
use dcs_core::Stage;
use dcs_obs::MetricsSnapshot;
use std::fmt;

/// Paper constants for the aligned case (Section V-A).
pub mod aligned_paper {
    /// Routers monitored.
    pub const M: usize = 1_000;
    /// Bitmap width (4 Mbit).
    pub const N: usize = 4 * 1024 * 1024;
    /// Screening budget.
    pub const N_PRIME: usize = 4_000;
    /// The showcase pattern (Figures 7 and 11): 100 routers × 30 packets.
    pub const SHOWCASE: (usize, usize) = (100, 30);
}

/// Paper constants for the unaligned case (Section V-B).
pub mod unaligned_paper {
    /// Group-vertices (800 links × 128 groups).
    pub const N: usize = 102_400;
    /// Statistical-test edge probability (below 1/n ≈ 0.98e-5).
    pub const TEST_P1: f64 = 0.65e-5;
    /// Detection-graph edge probability used by the paper's Table I.
    pub const DETECT_P1_PAPER: f64 = 0.8e-4;
    /// Largest-component alarm threshold (Figure 13).
    pub const COMPONENT_THRESHOLD: usize = 100;
}

/// Run-scale knobs read from the environment.
#[derive(Debug, Clone, Copy)]
pub struct RunScale {
    /// Monte-Carlo repetitions.
    pub reps: usize,
    /// Worker threads.
    pub threads: usize,
    /// Full paper scale or a quick pass.
    pub quick: bool,
}

impl RunScale {
    /// Reads `DCS_REPS`, `DCS_THREADS`, `DCS_SCALE` with the given default
    /// repetitions.
    pub fn from_env(default_reps: usize) -> Self {
        let reps = std::env::var("DCS_REPS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default_reps);
        let threads = std::env::var("DCS_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |p| p.get().min(16)));
        let quick = std::env::var("DCS_SCALE").is_ok_and(|v| v == "quick");
        RunScale {
            reps: reps.max(1),
            threads: threads.clamp(1, 64),
            quick,
        }
    }
}

/// The search configuration used by the aligned reproduction runs: paper
/// geometry, hopefuls list sized for tractable wall-clock.
pub fn repro_search_config() -> SearchConfig {
    SearchConfig {
        hopefuls: 800,
        max_iterations: 40,
        n_prime: aligned_paper::N_PRIME,
        gamma: 2,
        epsilon: 1e-3,
        termination: Default::default(),
        compute: Default::default(),
    }
}

/// Prints the standard experiment banner.
pub fn banner(what: &str, paper_ref: &str) {
    println!("== DCS reproduction: {what}");
    println!("   paper reference: {paper_ref}");
    println!();
}

/// A typed failure of a bench generator's output path — serialising the
/// report or writing the BENCH JSON file. The `repro_*` binaries map
/// this to a non-zero exit code instead of panicking.
#[derive(Debug)]
pub enum BenchError {
    /// The report failed to serialise to JSON.
    Serialize(serde_json::Error),
    /// Writing the report file failed.
    Write {
        /// Destination path of the report.
        path: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A measured quantity failed its acceptance gate.
    Gate(String),
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::Serialize(e) => write!(f, "serialising report: {e}"),
            BenchError::Write { path, source } => write!(f, "writing {path}: {source}"),
            BenchError::Gate(msg) => write!(f, "acceptance gate: {msg}"),
        }
    }
}

impl std::error::Error for BenchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BenchError::Serialize(e) => Some(e),
            BenchError::Write { source, .. } => Some(source),
            BenchError::Gate(_) => None,
        }
    }
}

/// Serialises `report` as pretty JSON and writes it to `path` with a
/// trailing newline.
pub fn write_report<T: serde::Serialize>(path: &str, report: &T) -> Result<(), BenchError> {
    let json = serde_json::to_string_pretty(report).map_err(BenchError::Serialize)?;
    std::fs::write(path, json + "\n").map_err(|source| BenchError::Write {
        path: path.to_string(),
        source,
    })
}

/// Per-stage wall-clock gauges (`epoch_stage_ns{pipeline,stage}`) of the
/// centre's most recently analysed epoch — one named field per stage of
/// both detection pipelines, the flat breakdown the BENCH JSON embeds.
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct StageGauges {
    /// Aligned `fuse`: digest fusion into the m×n column matrix.
    pub fuse_ns: u64,
    /// Aligned `sketch_fuse`: sidecar-sketch merge and seed derivation.
    pub sketch_fuse_ns: u64,
    /// Aligned `screen`: rank columns, materialise the n′ heaviest.
    pub screen_ns: u64,
    /// Aligned `core_find`: product search plus the stop-point read.
    pub core_find_ns: u64,
    /// Aligned `sweep`: expansion sweep of the core row vector.
    pub sweep_ns: u64,
    /// Aligned `terminate`: natural-occurrence verdict.
    pub terminate_ns: u64,
    /// Unaligned `stack_rows`: array stacking and group-owner mapping.
    pub stack_rows_ns: u64,
    /// Unaligned `prescreen`: λ table, weight classes and band
    /// signatures for the conservative pair screen.
    pub prescreen_ns: u64,
    /// Unaligned `graph_build`: screened/incremental match-graph
    /// construction.
    pub graph_build_ns: u64,
    /// Unaligned `er_test`: Erdős–Rényi giant-component test.
    pub er_test_ns: u64,
    /// Unaligned `peel`: detection-graph core peeling.
    pub peel_ns: u64,
}

impl StageGauges {
    /// Reads the eleven stage gauges out of a snapshot (zero for stages
    /// the snapshot has never seen).
    pub fn from_snapshot(snap: &MetricsSnapshot) -> StageGauges {
        let g = |s: Stage| snap.gauge(&s.gauge_key()).unwrap_or(0);
        StageGauges {
            fuse_ns: g(Stage::Fuse),
            sketch_fuse_ns: g(Stage::SketchFuse),
            screen_ns: g(Stage::Screen),
            core_find_ns: g(Stage::CoreFind),
            sweep_ns: g(Stage::Sweep),
            terminate_ns: g(Stage::Terminate),
            stack_rows_ns: g(Stage::StackRows),
            prescreen_ns: g(Stage::Prescreen),
            graph_build_ns: g(Stage::GraphBuild),
            er_test_ns: g(Stage::ErTest),
            peel_ns: g(Stage::Peel),
        }
    }

    /// True when every stage of both pipelines recorded a non-zero span.
    pub fn all_nonzero(&self) -> bool {
        [
            self.fuse_ns,
            self.sketch_fuse_ns,
            self.screen_ns,
            self.core_find_ns,
            self.sweep_ns,
            self.terminate_ns,
            self.stack_rows_ns,
            self.prescreen_ns,
            self.graph_build_ns,
            self.er_test_ns,
            self.peel_ns,
        ]
        .iter()
        .all(|&ns| ns > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_scale_defaults() {
        // Not manipulating the environment (tests run concurrently);
        // just sanity-check the default path.
        let s = RunScale::from_env(42);
        assert!(s.reps >= 1);
        assert!((1..=64).contains(&s.threads));
    }

    #[test]
    fn stage_gauges_read_all_eleven_stages() {
        let reg = dcs_obs::MetricsRegistry::new();
        let rec = dcs_core::StageRecorder::new(&reg);
        let empty = StageGauges::from_snapshot(&reg.snapshot());
        assert!(!empty.all_nonzero(), "unrecorded stages must read zero");
        for (i, s) in Stage::ALIGNED
            .iter()
            .chain(Stage::UNALIGNED.iter())
            .enumerate()
        {
            rec.record(*s, (i as u64 + 1) * 10);
        }
        let gauges = StageGauges::from_snapshot(&reg.snapshot());
        assert!(gauges.all_nonzero());
        assert_eq!(gauges.fuse_ns, 10);
        assert_eq!(gauges.sketch_fuse_ns, 20);
        assert_eq!(gauges.prescreen_ns, 80);
        assert_eq!(gauges.peel_ns, 110);
    }

    #[test]
    fn write_report_surfaces_io_failure() {
        #[derive(serde::Serialize)]
        struct Tiny {
            v: u64,
        }
        let err = write_report("/nonexistent-dir/x/y.json", &Tiny { v: 1 })
            .expect_err("writing into a missing directory must fail");
        let msg = err.to_string();
        assert!(msg.contains("/nonexistent-dir/x/y.json"), "{msg}");
    }

    #[test]
    fn paper_constants_consistent() {
        assert!(unaligned_paper::TEST_P1 < 1.0 / unaligned_paper::N as f64);
        assert!(unaligned_paper::DETECT_P1_PAPER > 1.0 / unaligned_paper::N as f64);
        assert_eq!(aligned_paper::N, 4_194_304);
    }
}
