//! Baseline comparison (paper Sections I, II-B, VI): DCS digests vs raw
//! aggregation vs shipped fingerprints vs a single-vantage prevalence
//! detector, on the same planted epoch.
//!
//! The paper's argument, quantified on an implemented system:
//! * raw aggregation detects perfectly but ships the whole network
//!   ("would require doubling the network capacity");
//! * per-packet fingerprints cut shipping ~70× but the centre holds
//!   per-packet state (2.4 M entries per second per OC-48 link);
//! * a local detector holds tiny state but is *blind* to content spread
//!   one instance per link;
//! * DCS digests ship ~1000× less than raw, hold per-bit state, and still
//!   find the content and the routers carrying it.

use dcs_bench::{banner, RunScale};
use dcs_core::prelude::*;
use dcs_sim::baseline::{LocalPrevalenceDetector, RawAggregationDetector};
use dcs_sim::table::render_table;
use dcs_traffic::gen::{self, SizeMix};
use rand::rngs::StdRng;
use rand::SeedableRng;

const ROUTERS: usize = 24;
const INFECTED: usize = 18;
const CONTENT_PACKETS: usize = 30;

fn main() {
    let _scale = RunScale::from_env(1);
    banner(
        "Baselines — raw aggregation, fingerprints, local prevalence vs DCS",
        "Sections I / II-B / VI; one epoch, 18 of 24 routers infected",
    );
    let mut rng = StdRng::seed_from_u64(0xBA5E);
    let monitor_cfg = MonitorConfig::small(7, 1 << 14, 4);
    let object = ContentObject::random_with_packets(&mut rng, CONTENT_PACKETS, 536);
    let plant = Planting::aligned(object, 536);
    let bg = BackgroundConfig {
        packets: 800,
        flows: 200,
        zipf_exponent: 1.0,
        size_mix: SizeMix::constant(536),
    };

    // Shared epoch of traffic.
    let traffic: Vec<Vec<dcs_traffic::Packet>> = (0..ROUTERS)
        .map(|r| {
            let mut t = gen::generate_epoch(&mut rng, &bg);
            if r < INFECTED {
                plant.plant_into(&mut rng, &mut t);
            }
            t
        })
        .collect();

    // --- DCS ---
    let mut digests = Vec::new();
    for (r, t) in traffic.iter().enumerate() {
        let mut point = MonitoringPoint::new(r, &monitor_cfg);
        point.observe_all(t);
        digests.push(point.finish_epoch());
    }
    let mut acfg = AnalysisConfig::for_groups(ROUTERS * 4);
    acfg.search.n_prime = 400;
    acfg.search.hopefuls = 300;
    let report = AnalysisCenter::new(acfg)
        .analyze_epoch(&digests)
        .expect("freshly collected digests form a quorum");
    let dcs_hits = report
        .aligned
        .routers
        .iter()
        .filter(|&&r| r < INFECTED)
        .count();

    // --- raw aggregation / fingerprints ---
    let mut raw = RawAggregationDetector::new(7);
    for (r, t) in traffic.iter().enumerate() {
        raw.ingest(r as u32, t);
    }
    let exact = raw.detect(INFECTED / 2, CONTENT_PACKETS / 2);
    let raw_found = !exact.is_empty();
    let raw_hits = exact
        .first()
        .map(|c| {
            c.routers
                .iter()
                .filter(|&&r| (r as usize) < INFECTED)
                .count()
        })
        .unwrap_or(0);

    // --- local prevalence, per router ---
    let mut local_alarms = 0usize;
    for t in &traffic {
        let mut local = LocalPrevalenceDetector::new(7);
        for p in t {
            local.observe(p);
        }
        if local.alarm(2) {
            local_alarms += 1;
        }
    }

    let rows = vec![
        vec![
            "raw aggregation".into(),
            format!("{}", raw.raw_bytes()),
            "per-packet".into(),
            format!("{raw_found} ({raw_hits}/{INFECTED} routers)"),
        ],
        vec![
            "fingerprint ship".into(),
            format!("{}", raw.fingerprint_bytes()),
            format!("{} entries", raw.table_entries()),
            format!("{raw_found} ({raw_hits}/{INFECTED} routers)"),
        ],
        vec![
            "local prevalence".into(),
            "0 (local only)".into(),
            "per-payload/link".into(),
            format!("{} of {ROUTERS} links alarmed", local_alarms),
        ],
        vec![
            "DCS digests".into(),
            format!("{}", report.digest_bytes),
            "fixed bitmaps".into(),
            format!("{} ({dcs_hits}/{INFECTED} routers)", report.aligned.found),
        ],
    ];
    println!(
        "{}",
        render_table(
            &[
                "method",
                "bytes shipped",
                "centre state",
                "detects the content?"
            ],
            &rows
        )
    );
    println!(
        "shipping ratios vs raw: fingerprints {:.0}x, DCS {:.0}x",
        raw.raw_bytes() as f64 / raw.fingerprint_bytes() as f64,
        raw.raw_bytes() as f64 / report.digest_bytes as f64,
    );
    println!(
        "(the local detector sees max prevalence 1 for one-instance-per-link \
         content — the paper's motivating blind spot)"
    );
    // Digest size is *fixed per epoch* while fingerprints scale with the
    // packet rate; extrapolate both to a full OC-48 second per link.
    let oc48_pkts = 2_400_000f64;
    let fp_oc48 = oc48_pkts * 8.0;
    let dcs_oc48 = (4 * 1024 * 1024) as f64 / 8.0 // 4-Mbit aligned bitmap
        + (128 * 10 * 1024) as f64 / 8.0; // 128 groups × 10 arrays × 1024 b
    println!(
        "at OC-48 line rate the gap opens: fingerprints {:.1} MB/s/link vs \
         DCS {:.2} MB/s/link ({:.0}x smaller, and independent of packet rate)",
        fp_oc48 / 1e6,
        dcs_oc48 / 1e6,
        fp_oc48 / dcs_oc48
    );
}
