//! Figure 13: CDFs of the largest connected component of the test graph —
//! null G(n, p₁) versus planted patterns with n₁ ∈ {120, 130, 140}
//! vertices — plus false-positive / false-negative rates at the
//! component threshold of 100.
//!
//! Paper: FP ≈ 0 in all cases; FN = 16.6 %, 5.2 %, 1.0 % for n₁ = 120,
//! 130, 140 (content g = 100 packets, n = 102,400, p₁ = 0.65×10⁻⁵).

use dcs_bench::{banner, unaligned_paper, RunScale};
use dcs_sim::table::{render_table, trim_float};
use dcs_sim::unaligned::{er_false_negative, er_false_positive, largest_component_samples, p2_for};

fn main() {
    let scale = RunScale::from_env(100);
    banner(
        "Figure 13 — ER test: largest-component CDFs and FP/FN",
        "n = 102,400, p1 = 0.65e-5, g = 100 packets, threshold = 100",
    );
    let (n, p1, threshold) = if scale.quick {
        (20_000usize, 0.65 / 20_000.0, 80usize)
    } else {
        (
            unaligned_paper::N,
            unaligned_paper::TEST_P1,
            unaligned_paper::COMPONENT_THRESHOLD,
        )
    };
    let g = 100;
    let p2 = p2_for(g, p1);
    println!(
        "model-derived pattern edge probability p2 = {} (match 0.17 × exceedance)",
        trim_float(p2)
    );

    let null = largest_component_samples(0xF1613, n, p1, 0, 0.0, scale.reps);
    // The paper's n1 ∈ {120, 130, 140} plus smaller values bracketing our
    // operating point's critical band (n1 ≈ 1/p2), where the FN transition
    // from ~1 to ~0 is visible.
    let n1s: &[usize] = if scale.quick {
        &[120, 160, 200]
    } else {
        &[60, 70, 80, 90, 120, 130, 140]
    };
    let mut curves = Vec::new();
    for &n1 in n1s {
        curves.push((
            n1,
            largest_component_samples(0xF1613 ^ (n1 as u64) << 32, n, p1, n1, p2, scale.reps),
        ));
    }

    // CDF table at sampled component sizes.
    let xs: Vec<usize> = (0..=20).map(|i| i * 25).collect();
    let mut rows = Vec::new();
    for &x in &xs {
        let mut row = vec![x.to_string(), format!("{:.3}", null.cdf(x as f64))];
        for (_, e) in &curves {
            row.push(format!("{:.3}", e.cdf(x as f64)));
        }
        rows.push(row);
    }
    let headers: Vec<String> = ["size".to_string(), "null CDF".to_string()]
        .into_iter()
        .chain(curves.iter().map(|(n1, _)| format!("n1={n1} CDF")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    println!("{}", render_table(&header_refs, &rows));

    println!(
        "false positive at threshold {threshold}: {:.3}  (paper: ~0)",
        er_false_positive(&null, threshold)
    );
    for (n1, e) in &curves {
        println!(
            "false negative at threshold {threshold}, n1 = {n1}: {:.3}",
            er_false_negative(e, threshold)
        );
    }
    println!("(paper: FN = 0.166 / 0.052 / 0.010 for n1 = 120 / 130 / 140)");
}
