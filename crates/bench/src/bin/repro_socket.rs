//! Real-socket soak measurements: the chunked digest path pushed through
//! actual localhost UDP sockets (monitors in threads → `CenterSocket` →
//! epoch collector → analysis centre) under the deterministic impairment
//! shim (10% drop, 5% reorder, 3% duplicate, 2% corrupt at the socket
//! boundary). Reports per-epoch wall time and the socket-path metrics —
//! send amplification, send stalls, impairment counts, reassembly
//! backlog — next to the detection verdicts. Emits `BENCH_socket.json`.
//!
//! Honours `DCS_SCALE=quick` for a fast smoke pass (64-Kbit digests) and
//! `DCS_REPS` as the epoch count of the full paper-scale (4-Mbit) run.

use dcs_bench::{banner, write_report, BenchError, RunScale, StageGauges};
use dcs_core::clock::{Clock, TickClock};
use dcs_core::monitor::{MonitorConfig, MonitoringPoint};
use dcs_core::net::{
    run_center_epoch, run_monitor_epoch, CenterEpochEnd, CenterSocket, ImpairmentConfig,
    ImpairmentShim, MonitorEpochConfig, MonitorEpochEnd, MonitorSocket, Transport,
};
use dcs_core::session::{CollectorConfig, EpochCollector, SessionConfig, StragglerPolicy};
use dcs_core::transport::{chunk_bundle, DATAGRAM_SAFE_PAYLOAD};
use dcs_core::{AnalysisCenter, AnalysisConfig, MetricsRegistry, MetricsSnapshot};
use dcs_traffic::{gen, BackgroundConfig, ContentObject, Planting, SizeMix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

const ROUTERS: usize = 24;
const INFECTED: usize = 20;
const TICK: Duration = Duration::from_micros(200);

/// One socket epoch's record.
#[derive(serde::Serialize)]
struct EpochRow {
    epoch: usize,
    found: bool,
    routers_analyzed: usize,
    chunks_unique: u64,
    wall_ms: u64,
}

#[derive(serde::Serialize)]
struct Report {
    generator: String,
    cpus_available: usize,
    scale: String,
    note: String,
    routers: usize,
    infected: usize,
    bits: usize,
    transport: String,
    impairment_per_mille: [u16; 4],
    epochs: Vec<EpochRow>,
    /// Unique chunks across the whole run (the no-loss lower bound on
    /// monitor sends).
    chunks_total: u64,
    /// Monitor frames actually sent ÷ `chunks_total`: the resend
    /// amplification of kernel-buffer overflow plus the 10% shim drop.
    send_amplification: f64,
    /// Centre send stalls ÷ centre frames sent (WouldBlock pressure).
    stall_ratio: f64,
    /// The shared socket-path metrics of the whole run (both roles).
    socket: MetricsSnapshot,
    /// Per-stage breakdown of the final analysed epoch.
    center_stage_ns: StageGauges,
    /// The analysis centre's cumulative metrics snapshot.
    metrics: MetricsSnapshot,
}

fn epoch_frames(seed: u64, bits: usize, packets: usize) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mcfg = MonitorConfig::small(7, bits, 4);
    let obj = ContentObject::random_with_packets(&mut rng, 30, 536);
    let plant = Planting::aligned(obj, 536);
    let bg = BackgroundConfig {
        packets,
        flows: (packets / 4).max(1),
        zipf_exponent: 1.0,
        size_mix: SizeMix::constant(536),
    };
    (0..ROUTERS)
        .map(|id| {
            let mut traffic = gen::generate_epoch(&mut rng, &bg);
            if id < INFECTED {
                plant.plant_into(&mut rng, &mut traffic);
            }
            let mut mp = MonitoringPoint::new(id, &mcfg);
            mp.observe_all(&traffic);
            mp.finish_epoch()
                .encode_wire()
                .expect("bundle fits the wire format")
                .to_vec()
        })
        .collect()
}

/// One epoch over a real localhost UDP socket; every socket metric goes
/// to the shared registry. Returns (collected epoch, unique chunks).
fn socket_epoch(
    frames: &[Vec<u8>],
    seed: u64,
    metrics: &Arc<MetricsRegistry>,
) -> (dcs_core::CollectedEpoch, u64) {
    let clock = TickClock::new(TICK);
    let mut sock = CenterSocket::bind("127.0.0.1:0", Transport::Udp).expect("bind centre");
    let addr = sock.local_addr().expect("local addr");

    let mut chunks_unique = 0u64;
    let handles: Vec<_> = frames
        .iter()
        .enumerate()
        .map(|(id, frame)| {
            let chunks = chunk_bundle(id as u64, 0, frame, DATAGRAM_SAFE_PAYLOAD);
            chunks_unique += chunks.len() as u64;
            let metrics = Arc::clone(metrics);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(id as u64));
                let clock = TickClock::new(TICK);
                let mut sock =
                    MonitorSocket::connect(addr, Transport::Udp).expect("connect to centre");
                sock.set_shim(ImpairmentShim::new(
                    ImpairmentConfig::soak(),
                    seed ^ (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ));
                let end = run_monitor_epoch(
                    &mut sock,
                    &chunks,
                    &MonitorEpochConfig {
                        router_id: id as u64,
                        epoch_id: 0,
                        resend_after: 50,
                        max_backoff: 2_000,
                        give_up: 600_000,
                    },
                    &clock,
                    &metrics,
                );
                assert!(
                    matches!(end, MonitorEpochEnd::Delivered),
                    "router {id} failed to deliver: {end:?}"
                );
            })
        })
        .collect();

    let ccfg = CollectorConfig {
        deadline: 1 << 40,
        straggler: StragglerPolicy::WaitAll,
        session: SessionConfig {
            base_backoff: 50,
            max_backoff: 2_000,
            max_retries: 100_000,
            jitter: 4,
        },
    };
    let mut coll = EpochCollector::new(
        0,
        (0..ROUTERS as u64).collect::<Vec<_>>(),
        ccfg,
        seed,
        clock.now(),
    );
    let end = run_center_epoch(&mut sock, &mut coll, &clock, metrics, |_| {
        assert!(
            clock.now() < 600_000,
            "socket epoch failed to converge within 2 minutes"
        );
        false
    });
    let CenterEpochEnd::Collected(epoch) = end else {
        unreachable!("the abort hook never fires");
    };
    for h in handles {
        h.join().expect("monitor thread panicked");
    }
    (*epoch, chunks_unique)
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), BenchError> {
    banner(
        "socket soak: digest delivery through real localhost UDP under impairment",
        "PR 9 socket transport; paper §II-B digest shipping at 24×4 Mbit",
    );
    let scale = RunScale::from_env(4);
    let (bits, epochs, packets) = if scale.quick {
        (1 << 16, 2, 400)
    } else {
        (4 * 1024 * 1024, scale.reps, 800)
    };
    let seed = 0x0050_C4E7_u64;
    let impair = ImpairmentConfig::soak();

    let socket_metrics = Arc::new(MetricsRegistry::new());
    let mut acfg = AnalysisConfig::for_groups(ROUTERS * 4);
    acfg.search.n_prime = 400.min(bits);
    acfg.search.hopefuls = 300.min(bits);
    let center = AnalysisCenter::new(acfg);

    let mut rows = Vec::new();
    let mut chunks_total = 0u64;
    println!(
        "\n{:<6} {:>6} {:>9} {:>9} {:>9}",
        "epoch", "found", "routers", "chunks", "wall_ms"
    );
    for e in 0..epochs {
        let epoch_seed = seed.wrapping_add(e as u64 * 0x9E37_79B9_7F4A_7C15);
        let frames = epoch_frames(epoch_seed, bits, packets);
        let started = Instant::now();
        let (epoch, chunks_unique) = socket_epoch(&frames, epoch_seed, &socket_metrics);
        let wall_ms = started.elapsed().as_millis() as u64;
        chunks_total += chunks_unique;
        let report = center
            .analyze_epoch_collected(&epoch)
            .expect("socket epoch reaches quorum");
        println!(
            "{:<6} {:>6} {:>9} {:>9} {:>9}",
            e, report.aligned.found, report.routers, chunks_unique, wall_ms
        );
        rows.push(EpochRow {
            epoch: e,
            found: report.aligned.found,
            routers_analyzed: report.routers,
            chunks_unique,
            wall_ms,
        });
    }

    let socket = socket_metrics.snapshot();
    let sent_monitor = socket
        .counter("socket_frames_sent_total{role=monitor}")
        .unwrap_or(0);
    let sent_center = socket
        .counter("socket_frames_sent_total{role=center}")
        .unwrap_or(0);
    let stalls_center = socket
        .counter("socket_send_stalls_total{role=center}")
        .unwrap_or(0);
    let send_amplification = sent_monitor as f64 / chunks_total.max(1) as f64;
    let stall_ratio = stalls_center as f64 / sent_center.max(1) as f64;
    println!(
        "\nsend amplification {send_amplification:.2}x over {chunks_total} unique chunks, \
         centre stall ratio {stall_ratio:.3}"
    );

    let report = Report {
        generator: "repro_socket".to_string(),
        cpus_available: std::thread::available_parallelism().map_or(1, |p| p.get()),
        scale: if scale.quick { "quick" } else { "full" }.to_string(),
        note: "real localhost UDP soak: 24 monitor threads blast chunked digests \
               through the deterministic impairment shim (10% drop, 5% reorder, \
               3% duplicate, 2% corrupt) at a CenterSocket; session-layer NACKs \
               and cumulative acks recover every bundle, then the analysis \
               centre detects the planted content"
            .to_string(),
        routers: ROUTERS,
        infected: INFECTED,
        bits,
        transport: "udp".to_string(),
        impairment_per_mille: [
            impair.drop_per_mille,
            impair.duplicate_per_mille,
            impair.reorder_per_mille,
            impair.corrupt_per_mille,
        ],
        epochs: rows,
        chunks_total,
        send_amplification,
        stall_ratio,
        socket,
        center_stage_ns: StageGauges::from_snapshot(&center.metrics()),
        metrics: center.metrics(),
    };
    write_report("BENCH_socket.json", &report)?;
    println!("wrote BENCH_socket.json");
    Ok(())
}
