//! Table II: the minimum non-naturally-occurring cluster size m for
//! content of g ∈ {80 … 150} packets, from the eq. (2)/(3) bounds with
//! brute-force co-tuning of (p₁, d).
//!
//! Paper values: 297, 150, 95, 62, 46, 36, 28, 23.

use dcs_bench::{banner, unaligned_paper, RunScale};
use dcs_sim::table::render_table;
use dcs_unaligned::thresholds::{cluster_threshold_cotuned, default_p1_grid};

fn main() {
    let _scale = RunScale::from_env(1);
    banner(
        "Table II — non-naturally-occurring cluster bound",
        "n = 102,400; FP bound 1e-10; power 0.95; co-tuned (p1, d)",
    );
    let n = unaligned_paper::N as u64;
    let grid = default_p1_grid(n);
    let mut rows = Vec::new();
    for g in (80..=150).step_by(10) {
        match cluster_threshold_cotuned(n, g, 100, &grid, 1e-10, 0.95, 3_000) {
            Some(t) => rows.push(vec![
                g.to_string(),
                t.m.to_string(),
                t.d.to_string(),
                format!("{:.2e}", t.p1),
                format!("{:.4}", t.p2),
            ]),
            None => rows.push(vec![
                g.to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]),
        }
    }
    println!(
        "{}",
        render_table(&["g (pkts)", "min size m", "edge cut d", "p1", "p2"], &rows)
    );
    println!("(paper: m = 297, 150, 95, 62, 46, 36, 28, 23 for g = 80 … 150)");
}
