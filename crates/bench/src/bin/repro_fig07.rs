//! Figure 7: the weight-loss curve of the greedy product search on a
//! 1,000×4M matrix with a planted 100×30 pattern (S₁ = 4,000 heaviest
//! columns; ~15 pattern columns survive screening).
//!
//! Expected shape: first exponential dive → plateau while pattern columns
//! are absorbed → second exponential dive; the termination procedure stops
//! at the end of the plateau.

use dcs_aligned::{refined_detect, stop_point};
use dcs_bench::{aligned_paper, banner, repro_search_config, RunScale};
use dcs_sim::aligned::screened_planted_matrix;
use dcs_sim::table::render_series;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = RunScale::from_env(1);
    banner(
        "Figure 7 — weight loss vs iterations (aligned case)",
        "1000×4M matrix, planted 100×30, S1 = 4000 heaviest columns",
    );
    let (m, n) = if scale.quick {
        (200, 100_000)
    } else {
        (aligned_paper::M, aligned_paper::N)
    };
    let (a, b) = aligned_paper::SHOWCASE;
    let (a, b) = if scale.quick { (40, 20) } else { (a, b) };
    let n_prime = if scale.quick {
        400
    } else {
        aligned_paper::N_PRIME
    };

    let mut rng = StdRng::seed_from_u64(0xF1607);
    let sm = screened_planted_matrix(&mut rng, m, n, a, b, n_prime);
    println!(
        "screening weight w = {}; pattern columns surviving screening: {} of {b}",
        sm.w,
        sm.surviving_pattern_cols.len()
    );

    let mut cfg = repro_search_config();
    cfg.n_prime = sm.matrix.ncols();
    let det = refined_detect(&sm.matrix, &cfg);

    let points: Vec<(f64, f64)> = det
        .weight_curve
        .iter()
        .enumerate()
        .map(|(i, &w)| ((i + 2) as f64, f64::from(w)))
        .collect();
    println!(
        "{}",
        render_series("product order k", "heaviest k-product weight", &points)
    );
    match stop_point(&det.weight_curve, cfg.termination) {
        Some(stop) => println!(
            "termination procedure stops at product order {} (curve index {stop})",
            stop + 2
        ),
        None => println!("termination procedure found no plateau (no pattern)"),
    }
    println!(
        "pattern verdict: found = {}, core columns = {}, witness columns = {}",
        det.found,
        det.core_cols.len(),
        det.cols.len()
    );
}
