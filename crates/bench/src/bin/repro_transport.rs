//! Transport soak measurements: the chunked digest path (monitors →
//! lossy channel → epoch collector → analysis centre) run across fault
//! regimes, reporting per-epoch transport stats (`retransmits`,
//! `late_chunks`, `checkpoint_resumes`, …) next to the detection
//! verdicts. Emits `BENCH_transport.json`.
//!
//! Honours `DCS_SCALE=quick` for a fast smoke pass and `DCS_REPS` as the
//! epoch count of the full run.

use dcs_bench::{banner, write_report, BenchError, RunScale, StageGauges};
use dcs_core::report::TransportStats;
use dcs_core::MetricsSnapshot;
use dcs_sim::channel::ChannelConfig;
use dcs_sim::soak::{run_soak, EpochOutcome, KillPlan, SoakConfig};
use std::process::ExitCode;

/// One soak epoch's record.
#[derive(serde::Serialize)]
struct EpochRow {
    epoch: usize,
    reached_quorum: bool,
    found: bool,
    routers_analyzed: usize,
    chunks_received: u64,
    retransmits: u64,
    late_chunks: u64,
    duplicate_chunks: u64,
    corrupt_chunks: u64,
    checkpoint_resumes: u64,
}

/// One fault regime's summary.
#[derive(serde::Serialize)]
struct RegimeRow {
    name: String,
    drop_prob: f64,
    reorder_prob: f64,
    corrupt_prob: f64,
    epochs: usize,
    quorum_epochs: usize,
    detected_epochs: usize,
    totals: TransportStats,
    virtual_ticks: u64,
}

#[derive(serde::Serialize)]
struct Report {
    generator: String,
    cpus_available: usize,
    scale: String,
    note: String,
    routers: usize,
    infected: usize,
    regimes: Vec<RegimeRow>,
    /// Per-epoch breakdown of the standard (issue) regime.
    standard_epochs: Vec<EpochRow>,
    /// Per-stage breakdown of the standard regime's final analysed
    /// epoch — all ten stages of both pipelines.
    center_stage_ns: StageGauges,
    /// The standard regime centre's full metrics snapshot: cumulative
    /// per-stage histograms plus ingest/transport counters of the soak.
    metrics: MetricsSnapshot,
}

fn summarize(name: &str, cfg: &SoakConfig, result: &dcs_sim::soak::SoakResult) -> RegimeRow {
    let detected = result
        .outcomes
        .iter()
        .filter(|o| matches!(o, EpochOutcome::Report(r) if r.aligned.found))
        .count();
    RegimeRow {
        name: name.to_string(),
        drop_prob: cfg.channel.drop_prob,
        reorder_prob: cfg.channel.reorder_prob,
        corrupt_prob: cfg.channel.corrupt_prob,
        epochs: cfg.epochs,
        quorum_epochs: result.quorum_epochs(),
        detected_epochs: detected,
        totals: result.totals,
        virtual_ticks: result.ticks,
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), BenchError> {
    banner(
        "transport soak: chunked digest delivery under loss/reorder/corruption",
        "PR 4 transport layer; paper §II-B digest shipping",
    );
    let scale = RunScale::from_env(50);
    let epochs = if scale.quick { 6 } else { scale.reps };
    let seed = 0xD15C_0DE5u64;

    let mut regimes = Vec::new();

    let mut perfect = SoakConfig::standard(epochs, seed);
    perfect.channel = ChannelConfig::perfect();
    let perfect_result = run_soak(&perfect);
    regimes.push(summarize("perfect", &perfect, &perfect_result));

    let standard = SoakConfig::standard(epochs, seed);
    let standard_result = run_soak(&standard);
    regimes.push(summarize("standard_soak", &standard, &standard_result));

    let mut heavy = SoakConfig::standard(epochs, seed);
    heavy.channel = ChannelConfig {
        drop_prob: 0.25,
        reorder_prob: 0.10,
        duplicate_prob: 0.05,
        corrupt_prob: 0.05,
        base_delay: 2,
        jitter: 4,
        reorder_extra: 10,
    };
    let heavy_result = run_soak(&heavy);
    regimes.push(summarize("heavy_loss", &heavy, &heavy_result));

    let mut crash = SoakConfig::standard(epochs, seed);
    crash.kill = Some(KillPlan {
        epoch: epochs / 2,
        tick: 4,
    });
    let crash_result = run_soak(&crash);
    regimes.push(summarize("mid_soak_crash", &crash, &crash_result));

    let standard_epochs: Vec<EpochRow> = standard_result
        .outcomes
        .iter()
        .enumerate()
        .map(|(epoch, o)| match o {
            EpochOutcome::Report(r) => EpochRow {
                epoch,
                reached_quorum: true,
                found: r.aligned.found,
                routers_analyzed: r.routers,
                chunks_received: r.transport.chunks_received,
                retransmits: r.transport.retransmits,
                late_chunks: r.transport.late_chunks,
                duplicate_chunks: r.transport.duplicate_chunks,
                corrupt_chunks: r.transport.corrupt_chunks,
                checkpoint_resumes: r.transport.checkpoint_resumes,
            },
            EpochOutcome::QuorumTooSmall { .. } => EpochRow {
                epoch,
                reached_quorum: false,
                found: false,
                routers_analyzed: 0,
                chunks_received: 0,
                retransmits: 0,
                late_chunks: 0,
                duplicate_chunks: 0,
                corrupt_chunks: 0,
                checkpoint_resumes: 0,
            },
        })
        .collect();

    println!(
        "\n{:<16} {:>7} {:>7} {:>9} {:>12} {:>11} {:>7} {:>8}",
        "regime", "quorum", "found", "chunks", "retransmits", "late", "dup", "corrupt"
    );
    for r in &regimes {
        println!(
            "{:<16} {:>4}/{:<2} {:>7} {:>9} {:>12} {:>11} {:>7} {:>8}",
            r.name,
            r.quorum_epochs,
            r.epochs,
            r.detected_epochs,
            r.totals.chunks_received,
            r.totals.retransmits,
            r.totals.late_chunks,
            r.totals.duplicate_chunks,
            r.totals.corrupt_chunks,
        );
    }
    let resumes: u64 = regimes.iter().map(|r| r.totals.checkpoint_resumes).sum();
    println!("checkpoint resumes across regimes: {resumes}");
    let center_stage_ns = StageGauges::from_snapshot(&standard_result.metrics);
    println!(
        "standard regime per-epoch analysis (last epoch): {:.2} ms across both pipelines",
        standard_result.metrics.gauge("epoch_total_ns").unwrap_or(0) as f64 / 1e6
    );

    let report = Report {
        generator: "repro_transport".to_string(),
        cpus_available: std::thread::available_parallelism().map_or(1, |p| p.get()),
        scale: if scale.quick { "quick" } else { "full" }.to_string(),
        note: "virtual-tick soak of the chunked digest transport: seeded lossy \
               channel (drop/reorder/duplicate/corrupt), cumulative-ack resend \
               buffers, capped-backoff retransmits, checkpoint kill/restart in \
               the mid_soak_crash regime"
            .to_string(),
        routers: standard.routers,
        infected: standard.infected,
        regimes,
        standard_epochs,
        center_stage_ns,
        metrics: standard_result.metrics,
    };
    write_report("BENCH_transport.json", &report)?;
    println!("wrote BENCH_transport.json");
    Ok(())
}
