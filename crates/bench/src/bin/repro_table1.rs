//! Table I: average core size, false negative and false positive of the
//! greedy 3-step detection, for content sizes g ∈ {100, 110, 120} and the
//! minimum n₁ reaching ~50 %, 75 % and 90 % average recovery.
//!
//! Operating point: the paper builds the detection graph at
//! p₁′ = 0.8×10⁻⁴ (background mean degree ≈ 8); our match-model p₂ is
//! calibrated at the typical row weight, and the detection graph is built
//! at a leaner p₁′ = 2/n (background degree 2) where min-degree peeling
//! separates the pattern best — the co-tuning freedom the paper's
//! Section IV-C explicitly allows. Set DCS_P1_PAPER=1 to use 0.8e-4.

use dcs_bench::{banner, unaligned_paper, RunScale};
use dcs_sim::table::render_table;
use dcs_sim::unaligned::{core_finding_stats, min_n1_for_recovery, p2_for};
use dcs_unaligned::CoreFindConfig;

fn main() {
    let scale = RunScale::from_env(10);
    banner(
        "Table I — greedy core finding: size, FN, FP",
        "n = 102,400 group-vertices; g = 100/110/120; recovery tiers 50/75/90%",
    );
    let n = if scale.quick {
        20_000
    } else {
        unaligned_paper::N
    };
    let p1 = if std::env::var("DCS_P1_PAPER").is_ok() {
        unaligned_paper::DETECT_P1_PAPER
    } else {
        2.0 / n as f64
    };
    println!("detection graph p1' = {p1:.2e}, reps = {}", scale.reps);

    let tiers = [0.5, 0.75, 0.9];
    let mut rows = Vec::new();
    for g in [100usize, 110, 120] {
        let p2 = p2_for(g, p1);
        for &tier in &tiers {
            let seed = 0x7AB1 ^ ((g as u64) << 32) ^ ((tier * 100.0) as u64);
            // β scales with the candidate pattern size, as the paper's
            // per-operating-point Monte-Carlo tuning does.
            let cfg_for = |n1: usize| CoreFindConfig {
                beta: (n1 / 2).max(20),
                d: 2,
            };
            let Some(n1) = min_n1_for_recovery(seed, n, p1, p2, &cfg_for, tier, scale.reps, 2_000)
            else {
                rows.push(vec![
                    g.to_string(),
                    format!("{:.0}%", tier * 100.0),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
                continue;
            };
            let stats = core_finding_stats(seed ^ 0xFF, n, p1, n1, p2, cfg_for(n1), scale.reps);
            rows.push(vec![
                g.to_string(),
                format!("{:.0}%", tier * 100.0),
                n1.to_string(),
                format!("{:.1}", stats.avg_core_size),
                format!("{:.3}", stats.avg_false_negative),
                format!("{:.3}", stats.avg_false_positive),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &["g (pkts)", "tier", "n1", "avg core", "avg FN", "avg FP"],
            &rows
        )
    );
    println!("(paper, g=100: n1 = 125/144/165 → core 65.3/112.1/154.4, FN 0.485/0.241/0.099, FP ≤ 0.037)");
}
