//! Hierarchical aggregation measurements: the two-level topology
//! (leaves → regional aggregators → centre) swept over aggregator and
//! leaf counts, demonstrating that the centre's *session-layer* work —
//! upstream sessions held, bundles ingested, upstream chunks received —
//! scales with the number of aggregators, not the number of leaves.
//! Emits `BENCH_aggregate.json`.
//!
//! Honours `DCS_SCALE=quick` for a fast smoke pass and `DCS_REPS` as the
//! epoch count of the paper-shape regime.

use dcs_bench::{banner, write_report, BenchError, RunScale, StageGauges};
use dcs_core::MetricsSnapshot;
use dcs_sim::tiered::{run_tiered_soak, TieredSoakConfig, TieredSoakResult};
use std::process::ExitCode;

/// One topology point of a sweep.
#[derive(serde::Serialize)]
struct TierRow {
    sweep: String,
    leaves: usize,
    aggregators: usize,
    epochs: usize,
    quorum_epochs: usize,
    /// Tiered detection matched flat ingest of the same delivered
    /// frames, byte for byte, every epoch.
    detection_equivalent: bool,
    /// Upstream retransmit sessions the centre holds per epoch — one
    /// per aggregator, regardless of leaf count.
    centre_sessions: usize,
    /// `aggregate_bundles_total`: bundles the centre decoded across the
    /// run (≈ aggregators × epochs under mild loss).
    bundles_ingested: u64,
    /// `aggregate_received_bytes_total` at the centre.
    centre_bytes_received: u64,
    /// Chunks the centre's collector accepted on the upstream hop —
    /// the centre-side transport workload.
    up_chunks_received: u64,
    /// Chunks the aggregation tier accepted on the child hop — the
    /// workload the tier absorbs *instead of* the centre.
    leaf_chunks_received: u64,
    /// Latest per-epoch tier-1 fuse span (`aggregate_fuse_ns{level=1}`).
    tier_fuse_ns: u64,
}

fn row(sweep: &str, cfg: &TieredSoakConfig, r: &TieredSoakResult) -> TierRow {
    TierRow {
        sweep: sweep.to_string(),
        leaves: cfg.leaves,
        aggregators: cfg.aggregators,
        epochs: cfg.epochs,
        quorum_epochs: r.quorum_epochs(),
        detection_equivalent: r.detection_equivalent(),
        centre_sessions: cfg.aggregators,
        bundles_ingested: r.metrics.counter("aggregate_bundles_total").unwrap_or(0),
        centre_bytes_received: r
            .metrics
            .counter("aggregate_received_bytes_total")
            .unwrap_or(0),
        up_chunks_received: r.up_totals.chunks_received,
        leaf_chunks_received: r.leaf_totals.chunks_received,
        tier_fuse_ns: r
            .agg_metrics
            .gauge("aggregate_fuse_ns{level=1}")
            .unwrap_or(0),
    }
}

#[derive(serde::Serialize)]
struct Report {
    generator: String,
    cpus_available: usize,
    scale: String,
    note: String,
    /// Fixed 768 leaves, aggregator count swept: centre-side columns
    /// must track the aggregator column, not the (constant) leaf column.
    fixed_leaves: Vec<TierRow>,
    /// Fixed 48 leaves per aggregator, total leaves swept: the centre's
    /// session count stays leaves/48 — far below the leaf count.
    fixed_region: Vec<TierRow>,
    /// The paper-shape 24-leaf regime the metrics snapshot comes from.
    standard: TierRow,
    /// Per-stage breakdown of the standard regime's final analysed
    /// epoch — the detection stages themselves still scale with leaf
    /// rows, exactly as in flat ingest (§10 of DESIGN.md).
    center_stage_ns: StageGauges,
    /// The standard regime centre's full metrics snapshot.
    metrics: MetricsSnapshot,
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), BenchError> {
    banner(
        "hierarchical aggregation: centre-side work vs aggregator and leaf count",
        "PR 7 aggregation tier; paper §II-B digest shipping at deployment scale",
    );
    let scale = RunScale::from_env(4);
    let sweep_epochs = if scale.quick { 1 } else { 2 };
    let seed = 0xA66E_6A7Eu64;

    println!(
        "{:<14} {:>7} {:>6} {:>8} {:>9} {:>11} {:>11} {:>10}",
        "sweep", "leaves", "aggs", "quorum", "bundles", "up_chunks", "leaf_chunks", "bytes_up"
    );
    let print_row = |r: &TierRow| {
        println!(
            "{:<14} {:>7} {:>6} {:>5}/{:<2} {:>9} {:>11} {:>11} {:>10}",
            r.sweep,
            r.leaves,
            r.aggregators,
            r.quorum_epochs,
            r.epochs,
            r.bundles_ingested,
            r.up_chunks_received,
            r.leaf_chunks_received,
            r.centre_bytes_received,
        );
        assert!(r.detection_equivalent, "tiered/flat detection diverged");
    };

    // Sweep 1: leaves held at 768, aggregator count varied. The centre's
    // bundle and chunk workload follows this column.
    let mut fixed_leaves = Vec::new();
    let agg_counts: &[usize] = if scale.quick {
        &[4, 16]
    } else {
        &[4, 8, 16, 32]
    };
    for &aggs in agg_counts {
        let cfg = TieredSoakConfig::wide(768, aggs, sweep_epochs, seed ^ aggs as u64);
        let result = run_tiered_soak(&cfg);
        let r = row("fixed_leaves", &cfg, &result);
        print_row(&r);
        fixed_leaves.push(r);
    }

    // Sweep 2: 48 leaves per aggregator, total leaf count varied. The
    // centre's session count stays leaves/48.
    let mut fixed_region = Vec::new();
    let leaf_counts: &[usize] = if scale.quick {
        &[240, 960]
    } else {
        &[240, 480, 960]
    };
    for &leaves in leaf_counts {
        let cfg = TieredSoakConfig::wide(leaves, leaves / 48, sweep_epochs, seed ^ leaves as u64);
        let result = run_tiered_soak(&cfg);
        let r = row("fixed_region", &cfg, &result);
        print_row(&r);
        fixed_region.push(r);
    }

    // The paper-shape regime: planted content, full digest geometry —
    // the metrics snapshot embedded in the report (and gated by
    // check_metrics_json.py) comes from this run.
    let std_epochs = if scale.quick { 2 } else { scale.reps.max(2) };
    let std_cfg = TieredSoakConfig::standard(std_epochs, seed);
    let std_result = run_tiered_soak(&std_cfg);
    let standard = row("standard", &std_cfg, &std_result);
    print_row(&standard);

    let center_stage_ns = StageGauges::from_snapshot(&std_result.metrics);
    println!(
        "\nstandard regime last-epoch analysis: {:.2} ms across both pipelines",
        std_result.metrics.gauge("epoch_total_ns").unwrap_or(0) as f64 / 1e6
    );

    let report = Report {
        generator: "repro_aggregate".to_string(),
        cpus_available: std::thread::available_parallelism().map_or(1, |p| p.get()),
        scale: if scale.quick { "quick" } else { "full" }.to_string(),
        note: "two-level topology soak, both hops lossy: with leaves fixed the \
               centre's bundles/chunks/bytes track the aggregator count; with \
               region size fixed the centre holds leaves/48 sessions however \
               many leaves report. Detection stays byte-identical to flat \
               ingest of the delivered frames in every cell."
            .to_string(),
        fixed_leaves,
        fixed_region,
        standard,
        center_stage_ns,
        metrics: std_result.metrics,
    };
    write_report("BENCH_aggregate.json", &report)?;
    println!("wrote BENCH_aggregate.json");
    Ok(())
}
