//! Figure 11: detection ratio of the greedy algorithm for the aligned
//! case — one curve per content size b ∈ {20, 30, 40} packets, x-axis the
//! number of pattern routers a.
//!
//! Paper anchor: the 100×30 pattern is detected with probability ≈ 0.988.

use dcs_bench::{aligned_paper, banner, repro_search_config, RunScale};
use dcs_sim::aligned::detection_ratio;
use dcs_sim::table::render_table;

fn main() {
    let scale = RunScale::from_env(20);
    banner(
        "Figure 11 — detection ratio vs pattern routers (aligned case)",
        "1000×4M matrix; curves b = 20, 30, 40 packets; 100 MC reps in the paper",
    );
    let (m, n, n_prime) = if scale.quick {
        (200, 100_000, 400)
    } else {
        (aligned_paper::M, aligned_paper::N, aligned_paper::N_PRIME)
    };
    let a_values: &[usize] = if scale.quick {
        &[20, 30, 40, 50]
    } else {
        &[60, 80, 100, 120, 140]
    };
    let b_values: &[usize] = if scale.quick {
        &[10, 20]
    } else {
        &[20, 30, 40]
    };
    let cfg = repro_search_config();

    println!(
        "m = {m}, n = {n}, n' = {n_prime}, reps = {}, threads = {}",
        scale.reps, scale.threads
    );
    let mut rows = Vec::new();
    for &a in a_values {
        let mut row = vec![a.to_string()];
        for &b in b_values {
            let r = detection_ratio(
                0xF1611 ^ ((a as u64) << 32) ^ (b as u64),
                m,
                n,
                a,
                b,
                n_prime,
                &cfg,
                scale.reps,
                scale.threads,
            );
            row.push(format!("{r:.3}"));
        }
        rows.push(row);
    }
    let headers: Vec<String> = std::iter::once("a (routers)".to_string())
        .chain(b_values.iter().map(|b| format!("b={b}")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    println!("{}", render_table(&header_refs, &rows));
    println!("(paper: detection ratio grows with both a and b; (100, 30) ≈ 0.988)");
}
