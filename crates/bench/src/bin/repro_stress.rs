//! Section V-B.4: the bursty-trace stress test.
//!
//! Replays the paper's methodology on the synthetic bursty trace: cut the
//! trace into segments, flow-split each into 32 groups × 10 arrays of
//! 1,024 bits, plant unaligned content instances into n₁ segments, run
//! the full matrix → graph → detection path, and compare against the
//! uniform graph-model Monte-Carlo at the same (n, n₁).
//!
//! Paper finding: burstiness *helps* slightly — 121 vertices sufficed
//! where the uniform model needed 125 (Zipf elephants concentrate in a
//! few rows, leaving the majority of rows lighter and their signal
//! stronger).

use dcs_bench::{banner, RunScale};
use dcs_sim::stress::{run_stress, StressConfig};
use dcs_sim::table::render_table;
use dcs_sim::unaligned::core_finding_stats;
use dcs_traffic::burst::BurstModel;
use dcs_unaligned::lambda::p_star_for_edge_prob;
use dcs_unaligned::{CoreFindConfig, LambdaTable, MatchModel};

fn main() {
    let scale = RunScale::from_env(3);
    banner(
        "Stress test — bursty trace vs uniform Monte-Carlo",
        "Section V-B.4: 32 groups × 10 arrays × 1024 bits per segment",
    );
    let segments = if scale.quick { 30 } else { 100 };
    let groups_per_segment = if scale.quick { 16 } else { 32 };
    let n_groups = segments * groups_per_segment;
    // Fix the per-row-pair exceedance level p* at the paper's operating
    // point (≈2e-7, the level its 102,400-vertex detection graph uses)
    // instead of scaling λ′ with our smaller group count: at a lax λ′ the
    // matched-pair exceedance saturates at 1 for *any* fill and the
    // burstiness effect the experiment measures disappears.
    let p_star: f64 = 2.0e-7;
    let detect_p1 = 1.0 - (1.0 - p_star).powi(100);
    // g = 100 keeps the matched-pair exceedance q well below 1 at the design
    // fill — the unsaturated regime where burstiness can matter (the paper's
    // own stress content is 100 packets).
    let content_packets = 100;
    let n1 = if scale.quick { 24 } else { 80 };
    let cfg = StressConfig {
        segments,
        groups_per_segment,
        packets_per_segment: groups_per_segment * 586,
        n1,
        content_packets,
        payload_size: 536,
        burst: BurstModel::default(),
        detect_p1,
        corefind: CoreFindConfig {
            beta: (n1 / 2).max(10),
            d: 2,
        },
        threads: scale.threads,
        seed: 0x57E55,
    };

    let mut rows = Vec::new();
    let mut mean_weight_acc = 0.0;
    let mut bursty_recall_acc = 0.0;
    for rep in 0..scale.reps {
        let mut c = cfg.clone();
        c.seed ^= (rep as u64) << 16;
        let out = run_stress(&c);
        mean_weight_acc += out.mean_row_weight;
        bursty_recall_acc += out.recall;
        rows.push(vec![
            format!("bursty #{rep}"),
            out.groups.to_string(),
            out.truth_groups.len().to_string(),
            out.reported_groups.len().to_string(),
            format!("{:.3}", out.recall),
            format!("{:.3}", out.precision),
            format!("{:.2}", out.row_weight_cv),
        ]);
    }
    let mean_weight = mean_weight_acc / scale.reps as f64;

    // Uniform comparison: the same total traffic spread evenly — every
    // row carries the *design* weight 1024·(1 − e^(−pkts_per_row/1024)).
    // (Burstiness pushes the measured mean weight below this because
    // overloaded elephant rows lose distinct bits to collisions while the
    // majority of rows run light — exactly the effect the paper observed
    // to help detection.)
    let pkts_per_row = cfg.packets_per_segment as f64 / groups_per_segment as f64;
    let design_weight = 1024.0 * (1.0 - (-pkts_per_row / 1024.0).exp());
    let mut model = MatchModel::paper_default(content_packets);
    model.row_weight = design_weight.round() as usize;
    let p_star = p_star_for_edge_prob(detect_p1, model.k * model.k);
    let table = LambdaTable::new(model.n_bits, p_star);
    let lam = table.lambda(model.row_weight as u32, model.row_weight as u32);
    let p2 = model.pattern_edge_prob(lam, p_star);
    let uni = core_finding_stats(
        0x57E55,
        n_groups,
        detect_p1,
        n1,
        p2,
        cfg.corefind,
        scale.reps.max(5),
    );
    rows.push(vec![
        "uniform MC".into(),
        n_groups.to_string(),
        n1.to_string(),
        format!("{:.1}", uni.avg_core_size),
        format!("{:.3}", 1.0 - uni.avg_false_negative),
        format!("{:.3}", 1.0 - uni.avg_false_positive),
        "0.00".into(),
    ]);
    println!(
        "{}",
        render_table(
            &[
                "run",
                "groups",
                "n1",
                "reported",
                "recall",
                "precision",
                "weight CV"
            ],
            &rows
        )
    );
    let bursty_recall = bursty_recall_acc / scale.reps as f64;
    println!(
        "bursty mean recall {:.3} vs uniform-model recall {:.3}",
        bursty_recall,
        1.0 - uni.avg_false_negative,
    );
    println!(
        "(design row weight {:.0}, measured bursty mean weight {:.0}, uniform-model p2 = {:.4})",
        design_weight, mean_weight, p2
    );
    println!("(paper: burstiness slightly lowers the detectable threshold — 121 vs 125 vertices)");
}
