//! Kernel and thread-scaling measurements: scalar vs blocked popcount
//! kernels, the batched `and_weight_many` sweep, and the refined search
//! at 1/2/4/8 worker threads. Emits `BENCH_kernels.json` in the current
//! directory so the numbers (and the hardware they came from) are
//! versioned alongside the code.
//!
//! Honours `DCS_SCALE=quick` for a fast smoke pass.

use dcs_aligned::refined_detect;
use dcs_bench::{banner, repro_search_config, write_report, BenchError, RunScale};
use dcs_bitmap::words::{
    and_weight, and_weight_many_into, and_weight_scalar, weight, weight_scalar,
};
use dcs_parallel::ComputeBudget;
use dcs_sim::aligned::screened_planted_matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::process::ExitCode;
use std::time::Instant;

/// One timed kernel variant at one operand size.
#[derive(serde::Serialize)]
struct KernelSample {
    kernel: String,
    words: usize,
    ns_per_call: f64,
    gib_per_s: f64,
}

/// One refined-search run at a fixed thread count.
#[derive(serde::Serialize)]
struct ScalingSample {
    threads: usize,
    ms_per_search: f64,
    speedup_vs_1: f64,
}

#[derive(serde::Serialize)]
struct Report {
    generator: String,
    cpus_available: usize,
    cpu_model: String,
    scale: String,
    note: String,
    kernels: Vec<KernelSample>,
    search_scaling: Vec<ScalingSample>,
}

/// Minimum of `samples` timings of `reps` calls each, in ns per call.
fn time_ns(samples: usize, reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let t0 = Instant::now();
        for _ in 0..reps {
            f();
        }
        let ns = t0.elapsed().as_nanos() as f64 / reps as f64;
        best = best.min(ns);
    }
    best
}

fn cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|m| m.trim().to_string())
        })
        .unwrap_or_else(|| "unknown".to_string())
}

fn bench_kernels(rng: &mut StdRng, quick: bool) -> Vec<KernelSample> {
    let sizes: &[usize] = if quick {
        &[16, 4096]
    } else {
        &[16, 256, 4096, 65_536]
    };
    let mut out = Vec::new();
    for &nw in sizes {
        let a: Vec<u64> = (0..nw).map(|_| rng.gen()).collect();
        let b: Vec<u64> = (0..nw).map(|_| rng.gen()).collect();
        let reps = (4_000_000 / nw).max(8);
        let bytes = (nw * 8) as f64;
        let mut push = |kernel: &str, ns: f64, streams: f64| {
            out.push(KernelSample {
                kernel: kernel.to_string(),
                words: nw,
                ns_per_call: ns,
                gib_per_s: streams * bytes / ns, // bytes/ns == GiB-ish/s (10^9)
            });
        };
        let ns = time_ns(5, reps, || {
            std::hint::black_box(weight_scalar(std::hint::black_box(&a)));
        });
        push("weight_scalar", ns, 1.0);
        let ns = time_ns(5, reps, || {
            std::hint::black_box(weight(std::hint::black_box(&a)));
        });
        push("weight_blocked", ns, 1.0);
        let ns = time_ns(5, reps, || {
            std::hint::black_box(and_weight_scalar(
                std::hint::black_box(&a),
                std::hint::black_box(&b),
            ));
        });
        push("and_weight_scalar", ns, 2.0);
        let ns = time_ns(5, reps, || {
            std::hint::black_box(and_weight(
                std::hint::black_box(&a),
                std::hint::black_box(&b),
            ));
        });
        push("and_weight_blocked", ns, 2.0);
    }

    // Batched sweep: one base against many columns, the expansion sweep's
    // shape. Compare a scalar loop against the cache-blocked batch kernel.
    let nw = if quick { 1024 } else { 16_384 };
    let ncols = 32;
    let base: Vec<u64> = (0..nw).map(|_| rng.gen()).collect();
    let cols: Vec<Vec<u64>> = (0..ncols)
        .map(|_| (0..nw).map(|_| rng.gen()).collect())
        .collect();
    let refs: Vec<&[u64]> = cols.iter().map(Vec::as_slice).collect();
    let bytes = (nw * 8 * (ncols + 1)) as f64;
    let reps = if quick { 64 } else { 16 };
    let ns = time_ns(5, reps, || {
        let acc: u32 = refs
            .iter()
            .map(|c| and_weight_scalar(std::hint::black_box(&base), c))
            .sum();
        std::hint::black_box(acc);
    });
    out.push(KernelSample {
        kernel: format!("and_weight_sweep_scalar_x{ncols}"),
        words: nw,
        ns_per_call: ns,
        gib_per_s: bytes / ns,
    });
    let mut buf = vec![0u32; ncols];
    let ns = time_ns(5, reps, || {
        buf.iter_mut().for_each(|w| *w = 0);
        and_weight_many_into(std::hint::black_box(&base), &refs, &mut buf);
        std::hint::black_box(&buf);
    });
    out.push(KernelSample {
        kernel: format!("and_weight_many_x{ncols}"),
        words: nw,
        ns_per_call: ns,
        gib_per_s: bytes / ns,
    });
    out
}

fn bench_search_scaling(rng: &mut StdRng, quick: bool) -> Vec<ScalingSample> {
    let (m, n, a, b, n_prime) = if quick {
        (200, 100_000, 40, 20, 400)
    } else {
        (500, 1_000_000, 60, 30, 1_000)
    };
    let sm = screened_planted_matrix(rng, m, n, a, b, n_prime);
    let mut cfg = repro_search_config();
    cfg.n_prime = sm.matrix.ncols();
    let reps = if quick { 2 } else { 3 };
    let mut out: Vec<ScalingSample> = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        cfg.compute = ComputeBudget::with_threads(threads);
        let ns = time_ns(reps, 1, || {
            std::hint::black_box(refined_detect(&sm.matrix, &cfg).found);
        });
        let ms = ns / 1e6;
        let base = out.first().map_or(ms, |s: &ScalingSample| s.ms_per_search);
        out.push(ScalingSample {
            threads,
            ms_per_search: ms,
            speedup_vs_1: base / ms,
        });
    }
    out
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), BenchError> {
    let scale = RunScale::from_env(1);
    banner(
        "kernel & thread-scaling measurements",
        "implementation study (no paper figure): blocked popcount kernels, parallel refined search",
    );
    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut rng = StdRng::seed_from_u64(0x5CA1E);

    let kernels = bench_kernels(&mut rng, scale.quick);
    println!(
        "{:<28} {:>8} {:>12} {:>10}",
        "kernel", "words", "ns/call", "GB/s"
    );
    for k in &kernels {
        println!(
            "{:<28} {:>8} {:>12.1} {:>10.2}",
            k.kernel, k.words, k.ns_per_call, k.gib_per_s
        );
    }
    println!();

    let search_scaling = bench_search_scaling(&mut rng, scale.quick);
    println!("{:<8} {:>14} {:>12}", "threads", "ms/search", "speedup");
    for s in &search_scaling {
        println!(
            "{:<8} {:>14.1} {:>12.2}",
            s.threads, s.ms_per_search, s.speedup_vs_1
        );
    }

    let report = Report {
        generator: "repro_scaling".to_string(),
        cpus_available: cpus,
        cpu_model: cpu_model(),
        scale: if scale.quick { "quick" } else { "paper" }.to_string(),
        note: "speedup_vs_1 is bounded by cpus_available; on a 1-CPU host \
               thread counts above 1 only measure scheduling overhead"
            .to_string(),
        kernels,
        search_scaling,
    };
    write_report("BENCH_kernels.json", &report)?;
    println!("\nwrote BENCH_kernels.json ({cpus} CPU(s) available)");
    Ok(())
}
