//! Table III: the *detectable* thresholds achievable by the greedy
//! algorithm — the minimum pattern size m at which detection is reliable,
//! with the average core size found there.
//!
//! Paper values: (g, m, avg core) = (100, 150, 56), (125, 80, 50),
//! (150, 50, 30). Detectability here means the reported set is mostly
//! correct (precision ≥ 0.9) and recovers a meaningful share of the
//! pattern (recall ≥ 0.3) — the operational criterion of Section IV-C.

use dcs_bench::{banner, unaligned_paper, RunScale};
use dcs_sim::table::render_table;
use dcs_sim::unaligned::{core_finding_stats, p2_for};
use dcs_unaligned::CoreFindConfig;

fn main() {
    let scale = RunScale::from_env(10);
    banner(
        "Table III — detectable thresholds of the greedy algorithm",
        "n = 102,400; g = 100/125/150; reliability: precision ≥ 0.9, recall ≥ 0.3",
    );
    let n = if scale.quick {
        20_000
    } else {
        unaligned_paper::N
    };
    let p1 = 2.0 / n as f64;
    println!("detection graph p1' = {p1:.2e}, reps = {}", scale.reps);

    let reliable = |seed: u64, n1: usize, p2: f64| {
        let cfg = CoreFindConfig {
            beta: (n1 / 2).max(15),
            d: 2,
        };
        let s = core_finding_stats(seed, n, p1, n1, p2, cfg, scale.reps);
        (
            s,
            s.avg_false_positive <= 0.1 && 1.0 - s.avg_false_negative >= 0.3,
        )
    };

    let mut rows = Vec::new();
    for g in [100usize, 125, 150] {
        let p2 = p2_for(g, p1);
        // Scan n1 upward until reliability holds, then report the stats.
        let seed = 0x7AB3 ^ ((g as u64) << 32);
        let mut found = None;
        let mut n1 = 20;
        while n1 <= 1_200 {
            let (stats, ok) = reliable(seed ^ n1 as u64, n1, p2);
            if ok {
                found = Some((n1, stats));
                break;
            }
            n1 += (n1 / 5).max(10);
        }
        match found {
            Some((n1, stats)) => rows.push(vec![
                g.to_string(),
                n1.to_string(),
                format!("{:.1}", stats.avg_core_size),
                format!("{:.3}", stats.avg_false_negative),
                format!("{:.3}", stats.avg_false_positive),
            ]),
            None => rows.push(vec![
                g.to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]),
        }
    }
    println!(
        "{}",
        render_table(
            &["g (pkts)", "detectable m", "avg core", "avg FN", "avg FP"],
            &rows
        )
    );
    println!("(paper: (100, 150, 56), (125, 80, 50), (150, 50, 30))");
}
