//! PR-8 acceptance bench: the subquadratic unaligned graph engine.
//!
//! Three measurements over one 10× paper-scale null matrix (no planted
//! content — the regime the centre sits in almost every epoch):
//!
//! 1. **all-pairs oracle** — the retained reference path
//!    (`build_group_graph_parallel`), exact AND-popcount over every
//!    group pair;
//! 2. **prescreened cold build** — same graph through the conservative
//!    weight-class/band screen (on dense null rows the screen rarely
//!    fires: the point of this row is showing the screen's overhead is
//!    negligible, not that it prunes here);
//! 3. **incremental steady state** — [`IncrementalCorrelator`] across
//!    churned epochs, where the headline ≥ 5× exact-pair reduction
//!    comes from: only `changed × all` group pairs are re-tested.
//!
//! A churn sweep then shows per-epoch work scaling with churned groups,
//! not total groups, and a real [`AnalysisCenter`] runs a few epochs so
//! the emitted `BENCH_graph.json` carries the ten-stage span breakdown
//! and metrics snapshot `scripts/check_metrics_json.py` gates in CI.

use dcs_bench::{banner, write_report, BenchError, RunScale, StageGauges};
use dcs_bitmap::{Bitmap, RowMatrix};
use dcs_core::{
    AnalysisCenter, AnalysisConfig, MetricsSnapshot, MonitorConfig, MonitoringPoint, RouterDigest,
};
use dcs_traffic::{gen, BackgroundConfig, SizeMix};
use dcs_unaligned::{
    build_group_graph_parallel, build_group_graph_prescreened, GroupLayout, IncrementalConfig,
    IncrementalCorrelator, LambdaTable, PreScreen, ScreenConfig,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::time::Instant;

/// Paper null-traffic shape: 1,024-bit rows at the design fill
/// (~44 %, the weight a 586-packet group settles at).
const ARRAY_BITS: usize = 1024;
const ROW_WEIGHT: usize = 446;
const ARRAYS_PER_GROUP: usize = 10;
/// The paper's per-row-pair exceedance operating point (≈ its
/// 102,400-vertex detection graph level).
const P_STAR: f64 = 2.0e-7;

#[derive(serde::Serialize)]
struct Shape {
    groups: usize,
    arrays_per_group: usize,
    rows: usize,
    array_bits: usize,
    row_weight: usize,
    p_star: f64,
    threads: usize,
}

#[derive(serde::Serialize)]
struct ChurnPoint {
    churn_frac: f64,
    groups_churned: usize,
    epochs: usize,
    mean_pair_visits: f64,
    mean_exact_pairs: f64,
    mean_epoch_ms: f64,
}

#[derive(serde::Serialize)]
struct Report {
    generator: String,
    scale: String,
    note: String,
    shape: Shape,
    allpairs_ms: f64,
    allpairs_exact_pairs: u64,
    prescreened_cold_ms: f64,
    prescreened_screened_pairs: u64,
    prescreened_exact_pairs: u64,
    steady_churn_frac: f64,
    steady_epochs: usize,
    steady_mean_exact_pairs: f64,
    steady_mean_epoch_ms: f64,
    /// all-pairs exact pairs ÷ steady-state mean exact pairs — the
    /// acceptance headline (must be ≥ 5).
    exact_pair_reduction: f64,
    churn_sweep: Vec<ChurnPoint>,
    center_stage_ns: StageGauges,
    metrics: MetricsSnapshot,
}

/// `groups × ARRAYS_PER_GROUP` null rows at the design weight.
fn null_matrix(rng: &mut StdRng, groups: usize) -> RowMatrix {
    let mut m = RowMatrix::new(ARRAY_BITS);
    for _ in 0..groups * ARRAYS_PER_GROUP {
        let mut bm = Bitmap::new(ARRAY_BITS);
        while (bm.weight() as usize) < ROW_WEIGHT {
            bm.set(rng.gen_range(0..ARRAY_BITS));
        }
        m.push_bitmap(&bm);
    }
    m
}

/// Rewrites exactly `count` distinct groups with fresh null rows; the
/// rest persist verbatim. Deterministic churn volume keeps the measured
/// reduction ratio stable across seeds.
fn churn_groups(rng: &mut StdRng, m: &RowMatrix, groups: usize, count: usize) -> RowMatrix {
    let mut victims = BTreeSet::new();
    while victims.len() < count.min(groups) {
        victims.insert(rng.gen_range(0..groups));
    }
    let mut out = RowMatrix::new(ARRAY_BITS);
    for g in 0..groups {
        for r in g * ARRAYS_PER_GROUP..(g + 1) * ARRAYS_PER_GROUP {
            if victims.contains(&g) {
                let mut bm = Bitmap::new(ARRAY_BITS);
                while (bm.weight() as usize) < ROW_WEIGHT {
                    bm.set(rng.gen_range(0..ARRAY_BITS));
                }
                out.push_bitmap(&bm);
            } else {
                out.push_words(m.row(r));
            }
        }
    }
    out
}

fn sorted_edges(g: &dcs_graph::Graph) -> Vec<(u32, u32)> {
    let mut e: Vec<_> = g.edges().collect();
    e.sort_unstable();
    e
}

/// A few real centre epochs (8 routers, one churned per epoch) so the
/// report embeds the ten-stage breakdown and the engine's counters.
fn center_epochs(threads: usize) -> (StageGauges, MetricsSnapshot) {
    let mut rng = StdRng::seed_from_u64(0x6EA9);
    let routers = 8;
    let mcfg = MonitorConfig::small(7, 1 << 13, 4);
    let bg = BackgroundConfig {
        packets: 500,
        flows: 120,
        zipf_exponent: 1.0,
        size_mix: SizeMix::constant(536),
    };
    let digest = |rng: &mut StdRng, id: usize| -> RouterDigest {
        let traffic = gen::generate_epoch(rng, &bg);
        let mut mp = MonitoringPoint::new(id, &mcfg);
        mp.observe_all(&traffic);
        mp.finish_epoch()
    };
    let mut digests: Vec<RouterDigest> = (0..routers).map(|id| digest(&mut rng, id)).collect();
    let mut cfg = AnalysisConfig::for_groups(routers * 4)
        .with_compute(dcs_parallel::ComputeBudget::with_threads(threads));
    cfg.search.n_prime = 300;
    cfg.search.hopefuls = 200;
    cfg.ugraph.audit_every = 2;
    let center = AnalysisCenter::new(cfg);
    for epoch in 0..3u64 {
        let id = epoch as usize % routers;
        digests[id] = digest(&mut rng, id);
        for d in &mut digests {
            d.epoch_id = epoch;
        }
        center.analyze_epoch(&digests).expect("clean quorum");
    }
    let metrics = center.metrics();
    (StageGauges::from_snapshot(&metrics), metrics)
}

fn run() -> Result<(), BenchError> {
    let scale = RunScale::from_env(1);
    banner(
        "Unaligned graph engine — prescreen + cross-epoch delta maintenance",
        "10× the Section V-B segment shape (32 groups × 10 arrays × 1,024 bits), null traffic",
    );
    // 10× the paper segment's 32 groups at full scale.
    let groups = if scale.quick { 64 } else { 320 };
    let steady_churn_frac = 0.08;
    let steady_epochs = if scale.quick { 4 } else { 8 };
    let layout = GroupLayout {
        rows_per_group: ARRAYS_PER_GROUP,
    };
    let table = LambdaTable::new(ARRAY_BITS, P_STAR);
    let threads = scale.threads;
    let mut rng = StdRng::seed_from_u64(0x9A4B);
    let m0 = null_matrix(&mut rng, groups);

    // 1. All-pairs oracle.
    let t = Instant::now();
    let oracle = build_group_graph_parallel(&m0, layout, &table, threads);
    let allpairs_ms = t.elapsed().as_secs_f64() * 1e3;
    let allpairs_exact_pairs =
        (groups * (groups - 1) / 2) as u64 * (ARRAYS_PER_GROUP * ARRAYS_PER_GROUP) as u64;

    // 2. Prescreened cold build — identical graph, by construction.
    let mut screen = PreScreen::new();
    let t = Instant::now();
    screen.rebuild(&m0, &table, ScreenConfig::default(), threads);
    let (pre_graph, pre_stats) =
        build_group_graph_prescreened(&m0, layout, &table, &screen, threads);
    let prescreened_cold_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        sorted_edges(&pre_graph),
        sorted_edges(&oracle),
        "prescreened build diverged from the all-pairs oracle"
    );
    // ≤, not ==: a group pair early-exits its remaining row pairs once
    // one row pair connects, so the tally undershoots the nominal
    // triangle by a hair whenever the null graph grows an edge.
    assert!(pre_stats.total() <= allpairs_exact_pairs);

    // 3. Incremental steady state at fixed churn.
    let steady_churn = ((steady_churn_frac * groups as f64).round() as usize).max(1);
    let mut corr = IncrementalCorrelator::new(IncrementalConfig { audit_every: 2 });
    let mut m = m0;
    screen.rebuild(&m, &table, ScreenConfig::default(), threads);
    corr.epoch(&m, layout, &table, &screen, threads); // cold full build
    let (mut exact_sum, mut ms_sum, mut ms_epochs) = (0u64, 0.0f64, 0usize);
    for _ in 0..steady_epochs {
        m = churn_groups(&mut rng, &m, groups, steady_churn);
        let t = Instant::now();
        screen.rebuild(&m, &table, ScreenConfig::default(), threads);
        let (_, stats) = corr.epoch(&m, layout, &table, &screen, threads);
        let ms = t.elapsed().as_secs_f64() * 1e3;
        assert!(!stats.full_rebuild, "steady state must not rebuild");
        exact_sum += stats.pairs_exact;
        // Audited epochs pay a deliberate extra full build (the safety
        // net); time the incremental path, not the net.
        if !stats.audited {
            ms_sum += ms;
            ms_epochs += 1;
        }
    }
    let steady_mean_exact_pairs = exact_sum as f64 / steady_epochs as f64;
    let steady_mean_epoch_ms = ms_sum / ms_epochs.max(1) as f64;
    let exact_pair_reduction = allpairs_exact_pairs as f64 / steady_mean_exact_pairs.max(1.0);

    // 4. Churn sweep: per-epoch work follows churned groups, not total.
    let sweep_epochs = if scale.quick { 2 } else { 3 };
    let mut churn_sweep = Vec::new();
    for &frac in &[0.02f64, 0.05, 0.1, 0.2, 0.4] {
        let count = ((frac * groups as f64).round() as usize).max(1);
        let mut corr = IncrementalCorrelator::new(IncrementalConfig { audit_every: 0 });
        let mut m = null_matrix(&mut rng, groups);
        screen.rebuild(&m, &table, ScreenConfig::default(), threads);
        corr.epoch(&m, layout, &table, &screen, threads);
        let (mut visits, mut exact, mut ms) = (0u64, 0u64, 0.0f64);
        for _ in 0..sweep_epochs {
            m = churn_groups(&mut rng, &m, groups, count);
            let t = Instant::now();
            screen.rebuild(&m, &table, ScreenConfig::default(), threads);
            let (_, stats) = corr.epoch(&m, layout, &table, &screen, threads);
            ms += t.elapsed().as_secs_f64() * 1e3;
            visits += stats.pairs_screened + stats.pairs_exact;
            exact += stats.pairs_exact;
        }
        churn_sweep.push(ChurnPoint {
            churn_frac: frac,
            groups_churned: count,
            epochs: sweep_epochs,
            mean_pair_visits: visits as f64 / sweep_epochs as f64,
            mean_exact_pairs: exact as f64 / sweep_epochs as f64,
            mean_epoch_ms: ms / sweep_epochs as f64,
        });
    }
    for w in churn_sweep.windows(2) {
        assert!(
            w[0].mean_pair_visits <= w[1].mean_pair_visits,
            "per-epoch work must grow with churn, not stay at the all-pairs level"
        );
    }

    // 5. Real centre epochs for the CI-gated stage/metrics sections.
    let (center_stage_ns, metrics) = center_epochs(threads);
    assert!(
        center_stage_ns.all_nonzero(),
        "every stage of both pipelines must record a span"
    );
    for key in ["pairs_screened_total", "pairs_exact_total"] {
        assert!(
            metrics.counter(key).is_some(),
            "{key} missing from the centre snapshot"
        );
    }
    assert_eq!(
        metrics.counter("graph_full_rebuilds_total"),
        Some(1),
        "only the centre's cold epoch may rebuild from scratch"
    );
    assert!(metrics.gauge("graph_edges_live").is_some());

    println!(
        "{:<34} {:>12} {:>14} {:>14}",
        "engine", "epoch_ms", "screened", "exact_pairs"
    );
    println!(
        "{:<34} {:>12.2} {:>14} {:>14}",
        "all-pairs oracle (cold)", allpairs_ms, "-", allpairs_exact_pairs
    );
    println!(
        "{:<34} {:>12.2} {:>14} {:>14}",
        "prescreened (cold)", prescreened_cold_ms, pre_stats.pairs_screened, pre_stats.pairs_exact
    );
    println!(
        "{:<34} {:>12.2} {:>14} {:>14.0}",
        format!("incremental steady ({steady_churn} grp churn)"),
        steady_mean_epoch_ms,
        "-",
        steady_mean_exact_pairs
    );
    println!("\nchurn sweep (per-epoch mean):");
    for p in &churn_sweep {
        println!(
            "  churn {:>5.2} ({:>3} groups): {:>12.0} pair visits, {:>8.2} ms",
            p.churn_frac, p.groups_churned, p.mean_pair_visits, p.mean_epoch_ms
        );
    }

    assert!(
        exact_pair_reduction >= 5.0,
        "steady-state exact-pair reduction {exact_pair_reduction:.1}x is below the 5x acceptance bar"
    );

    let report = Report {
        generator: "repro_graph".to_string(),
        scale: if scale.quick { "quick" } else { "paper" }.to_string(),
        note: "Null traffic at the paper's design fill keeps row weights dense and \
               near-equal, so the conservative prescreen rarely prunes here (it earns \
               its keep on skewed/sparse regimes — see the wide tiered soak); the \
               headline reduction is cross-epoch delta maintenance re-testing only \
               changed × all group pairs. The all-pairs build is retained as the \
               reference oracle and the incremental path audits against a full \
               rebuild every audit_every epochs."
            .to_string(),
        shape: Shape {
            groups,
            arrays_per_group: ARRAYS_PER_GROUP,
            rows: groups * ARRAYS_PER_GROUP,
            array_bits: ARRAY_BITS,
            row_weight: ROW_WEIGHT,
            p_star: P_STAR,
            threads,
        },
        allpairs_ms,
        allpairs_exact_pairs,
        prescreened_cold_ms,
        prescreened_screened_pairs: pre_stats.pairs_screened,
        prescreened_exact_pairs: pre_stats.pairs_exact,
        steady_churn_frac,
        steady_epochs,
        steady_mean_exact_pairs,
        steady_mean_epoch_ms,
        exact_pair_reduction,
        churn_sweep,
        center_stage_ns,
        metrics,
    };
    write_report("BENCH_graph.json", &report)?;
    println!(
        "\nsteady-state exact-pair reduction {exact_pair_reduction:.1}x vs all-pairs; \
         wrote BENCH_graph.json"
    );
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
