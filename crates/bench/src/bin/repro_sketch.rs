//! Sidecar-sketch measurements: heavy-hitter recall, wire overhead and
//! the aligned search's seeded-vs-unseeded work, all on the same
//! deterministic deployment. Emits `BENCH_sketch.json`.
//!
//! Each epoch plants a 30-packet content object at 20 of 24 routers and
//! has every infected router replay it heavily, so the deployment has a
//! known set of true heavy columns. Every bundle ships a content-index
//! Space-Saving artifact; the centre fuses them, seeds its refined
//! search from the top-k, and the run reports:
//!
//! * **recall** — fraction of the fused sketch's top-k that are true
//!   heavy columns (exact counts over the generated traffic are the
//!   ground truth);
//! * **bytes ratio** — sketch artifact bytes ÷ digest bytes (the
//!   sidecar must stay a rounding error next to the bitmaps);
//! * **search work** — candidate pairs scanned/pruned with seeding on
//!   vs off, plus the detection-fingerprint equality that proves the
//!   seeds never changed the verdict.
//!
//! Honours `DCS_SCALE=quick` (128-Kbit digests) and `DCS_REPS` as the
//! epoch count of the full paper-scale (4-Mbit) run.

use dcs_bench::{banner, write_report, BenchError, RunScale, StageGauges};
use dcs_core::monitor::{MonitorConfig, MonitoringPoint, RouterDigest, SketchSpec};
use dcs_core::{AnalysisCenter, AnalysisConfig, MetricsSnapshot};
use dcs_traffic::{gen, BackgroundConfig, ContentObject, Packet, Planting, SizeMix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::process::ExitCode;

const ROUTERS: usize = 24;
const INFECTED: usize = 20;
const CONTENT_PACKETS: usize = 30;
// 41 copies of each content column per infected leaf against 800
// background singletons: with cap 64 the Space-Saving retention
// guarantee (count > total/cap ≈ 32) pins every column in every leaf
// sketch, independent of offer order.
const REPLAYS: usize = 40;
const SKETCH_CAP: usize = 64;

#[derive(serde::Serialize)]
struct EpochRow {
    epoch: usize,
    found: bool,
    recall: f64,
    seed_columns: usize,
    /// Candidate pairs (scanned + pruned) with seeding on / off. The
    /// totals are partition-invariant; equality of the fingerprints is
    /// the advisory-seeding guarantee.
    candidates_seeded: u64,
    candidates_unseeded: u64,
    pairs_pruned_seeded: u64,
    pairs_pruned_unseeded: u64,
    fingerprints_equal: bool,
}

#[derive(serde::Serialize)]
struct Report {
    generator: String,
    cpus_available: usize,
    scale: String,
    note: String,
    routers: usize,
    infected: usize,
    bits: usize,
    sketch_cap: usize,
    epochs: Vec<EpochRow>,
    /// Mean fused-sketch top-k recall against exact heavy columns.
    recall_mean: f64,
    /// Sketch artifact bytes ÷ digest bytes, whole run.
    sketch_bytes_ratio: f64,
    digest_bytes: u64,
    sketch_bytes: u64,
    /// Whether every epoch's seeded and unseeded verdicts matched.
    seeding_advisory: bool,
    /// Per-stage breakdown of the final seeded epoch (includes
    /// `sketch_fuse_ns`).
    center_stage_ns: StageGauges,
    /// The seeded centre's cumulative metrics snapshot.
    metrics: MetricsSnapshot,
}

/// Detection fields that must be identical seeded vs unseeded.
fn fingerprint(r: &dcs_core::report::EpochReport) -> String {
    format!(
        "{}|{:?}|{}|{:?}|{}|{}|{:?}|{:?}",
        r.aligned.found,
        r.aligned.routers,
        r.aligned.content_packets,
        r.aligned.signature_indices,
        r.unaligned.alarm,
        r.unaligned.largest_component,
        r.unaligned.suspected_routers,
        r.unaligned.suspected_groups,
    )
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), BenchError> {
    banner(
        "sidecar sketch: heavy-hitter recall, wire overhead, seeded search work",
        "PR 10 dcs-sketch prefilter; paper §IV screening at 24×4 Mbit",
    );
    let scale = RunScale::from_env(3);
    let (bits, epochs) = if scale.quick {
        (1 << 17, 2)
    } else {
        (4 * 1024 * 1024, scale.reps)
    };
    let seed = 0x5EE7_C4B0_u64;

    let mcfg = MonitorConfig::small(7, bits, 4).with_sketch(SketchSpec::heavy_content(SKETCH_CAP));
    let make_acfg = || {
        let mut acfg = AnalysisConfig::for_groups(ROUTERS * 4);
        acfg.search.n_prime = 400.min(bits);
        acfg.search.hopefuls = 300.min(bits);
        acfg
    };
    let seeded = AnalysisCenter::new(make_acfg());
    let unseeded = AnalysisCenter::new(make_acfg().with_sketch_seed(false));
    // Probe collector for exact ground-truth column counts.
    let probe = dcs_collect::AlignedCollector::new(mcfg.aligned.clone());

    let bg = BackgroundConfig {
        packets: 800,
        flows: 200,
        zipf_exponent: 1.0,
        size_mix: SizeMix::constant(536),
    };

    let mut rows = Vec::new();
    let mut digest_bytes = 0u64;
    let mut sketch_bytes = 0u64;
    println!(
        "\n{:<6} {:>6} {:>7} {:>12} {:>12} {:>7}",
        "epoch", "found", "recall", "cand_seeded", "cand_plain", "equal"
    );
    for e in 0..epochs {
        let epoch_seed = seed.wrapping_add(e as u64 * 0x9E37_79B9_7F4A_7C15);
        let mut rng = StdRng::seed_from_u64(epoch_seed);
        let object = ContentObject::random_with_packets(&mut rng, CONTENT_PACKETS, 536);
        let plant = Planting::aligned(object.clone(), 536);
        let heavy_payloads = object.packetize(&[], 536);

        let mut true_counts: HashMap<usize, u64> = HashMap::new();
        let digests: Vec<RouterDigest> = (0..ROUTERS)
            .map(|id| {
                let mut traffic = gen::generate_epoch(&mut rng, &bg);
                if id < INFECTED {
                    plant.plant_into(&mut rng, &mut traffic);
                    // Heavy replay: the object circulates REPLAYS times
                    // on fresh flows, making its columns the epoch's
                    // true heavy hitters.
                    for _ in 0..REPLAYS {
                        let flow = dcs_traffic::FlowLabel::random(&mut rng);
                        let at = rng.gen_range(0..=traffic.len());
                        let burst: Vec<Packet> = heavy_payloads
                            .iter()
                            .map(|p| Packet::new(flow, p.clone()))
                            .collect();
                        traffic.splice(at..at, burst);
                    }
                }
                for pkt in &traffic {
                    if let Some(c) = probe.index_of(pkt) {
                        *true_counts.entry(c).or_insert(0) += 1;
                    }
                }
                let mut mp = MonitoringPoint::new(id, &mcfg);
                mp.observe_all(&traffic);
                mp.finish_epoch()
            })
            .collect();
        for d in &digests {
            digest_bytes += d.encoded_len() as u64;
            sketch_bytes += d.artifact_bytes() as u64;
        }

        let on = seeded.analyze_epoch(&digests).expect("full quorum");
        let off = unseeded.analyze_epoch(&digests).expect("full quorum");
        let fingerprints_equal = fingerprint(&on) == fingerprint(&off);

        // Ground truth: the heavy set is every column whose exact count
        // reaches the k-th largest (ties included), so recall is
        // well-defined when the replayed columns tie.
        let k = on.sketch.seed_columns.len().max(1);
        let mut counts: Vec<u64> = true_counts.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let kth = counts.get(k - 1).copied().unwrap_or(0);
        let hits = on
            .sketch
            .seed_columns
            .iter()
            .filter(|c| true_counts.get(c).copied().unwrap_or(0) >= kth)
            .count();
        let recall = hits as f64 / k as f64;

        let snap_on = seeded.metrics();
        let snap_off = unseeded.metrics();
        let row = EpochRow {
            epoch: e,
            found: on.aligned.found,
            recall,
            seed_columns: on.sketch.seed_columns.len(),
            candidates_seeded: snap_on.counter("search_candidates_total").unwrap_or(0),
            candidates_unseeded: snap_off.counter("search_candidates_total").unwrap_or(0),
            pairs_pruned_seeded: snap_on.gauge("search_pairs_pruned").unwrap_or(0),
            pairs_pruned_unseeded: snap_off.gauge("search_pairs_pruned").unwrap_or(0),
            fingerprints_equal,
        };
        println!(
            "{:<6} {:>6} {:>7.3} {:>12} {:>12} {:>7}",
            e,
            row.found,
            row.recall,
            row.candidates_seeded,
            row.candidates_unseeded,
            row.fingerprints_equal
        );
        rows.push(row);
    }

    let recall_mean = rows.iter().map(|r| r.recall).sum::<f64>() / rows.len().max(1) as f64;
    let sketch_bytes_ratio = sketch_bytes as f64 / digest_bytes.max(1) as f64;
    let seeding_advisory = rows.iter().all(|r| r.fingerprints_equal);
    println!(
        "\nmean top-k recall {recall_mean:.3}, sketch overhead {:.2}% of digest bytes, \
         seeding advisory: {seeding_advisory}",
        sketch_bytes_ratio * 100.0
    );
    if recall_mean < 0.9 {
        return Err(BenchError::Gate(format!(
            "fused sketch recall {recall_mean:.3} below the 0.9 gate"
        )));
    }
    if sketch_bytes_ratio > 0.05 {
        return Err(BenchError::Gate(format!(
            "sketch bytes are {:.2}% of digest bytes (gate: 5%)",
            sketch_bytes_ratio * 100.0
        )));
    }
    if !seeding_advisory {
        return Err(BenchError::Gate(
            "seeded and unseeded verdicts diverged".to_string(),
        ));
    }

    let report = Report {
        generator: "repro_sketch".to_string(),
        cpus_available: std::thread::available_parallelism().map_or(1, |p| p.get()),
        scale: if scale.quick { "quick" } else { "full" }.to_string(),
        note: "content-index Space-Saving sidecar at every monitoring point: the \
               centre fuses 24 leaf sketches per epoch, seeds the refined aligned \
               search from the top-k, and the verdict is byte-identical to the \
               unseeded run; recall is measured against exact column counts of \
               the generated traffic"
            .to_string(),
        routers: ROUTERS,
        infected: INFECTED,
        bits,
        sketch_cap: SKETCH_CAP,
        epochs: rows,
        recall_mean,
        sketch_bytes_ratio,
        digest_bytes,
        sketch_bytes,
        seeding_advisory,
        center_stage_ns: StageGauges::from_snapshot(&seeded.metrics()),
        metrics: seeded.metrics(),
    };
    write_report("BENCH_sketch.json", &report)?;
    println!("wrote BENCH_sketch.json");
    Ok(())
}
