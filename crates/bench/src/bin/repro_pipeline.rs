//! Streaming epoch-pipeline measurements: the retained baseline (owned
//! wire decode + per-bit fusion + uncached search, what the centre ran
//! before the zero-copy path landed) against the fused pipeline
//! (validate-then-view frames, word-level transpose fusion with
//! incremental column weights, scratch-cached search) — under the
//! dispatched kernel and under `DCS_FORCE_SCALAR`-equivalent forcing, and
//! cold versus steady-state scratch. Emits `BENCH_pipeline.json` so the
//! numbers (and the hardware they came from) are versioned alongside the
//! code.
//!
//! Honours `DCS_SCALE=quick` for a fast smoke pass.

use dcs_aligned::{refined_detect, refined_detect_cached, SearchScratch};
use dcs_bench::{banner, repro_search_config, write_report, BenchError, RunScale, StageGauges};
use dcs_bitmap::words::{active_kernel, force_kernel};
use dcs_bitmap::{Bitmap, ColMatrix, Kernel};
use dcs_collect::{AlignedDigest, UnalignedDigest};
use dcs_core::center::{AnalysisCenter, AnalysisConfig};
use dcs_core::ingest;
use dcs_core::{
    EpochInput, EpochPipeline, EpochTimings, MetricsSnapshot, PipelineConfig, RouterDigest,
    RouterDigestView,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::process::ExitCode;
use std::time::Instant;

/// Deployment shape of one synthetic epoch.
#[derive(Clone, Copy, serde::Serialize)]
struct Shape {
    routers: usize,
    infected: usize,
    aligned_bits: usize,
    common_packets: usize,
    groups_per_router: usize,
    arrays_per_group: usize,
    array_bits: usize,
}

/// Stage breakdown of one aligned ingest-to-verdict pass, ns per epoch.
#[derive(Clone, Copy, serde::Serialize)]
struct StageNs {
    /// Wire decode (or parse) + batch validation.
    ingest_ns: f64,
    /// Digest fusion into the m×n column matrix.
    fuse_ns: f64,
    /// Column weights + screening + product search + verdict.
    search_ns: f64,
    total_ns: f64,
}

#[derive(serde::Serialize)]
struct Variant {
    name: String,
    kernel: String,
    /// Worker threads the variant's compute budget was allowed.
    threads: usize,
    /// Column-range shards the fusion/search stages were split into.
    shards: usize,
    stages: StageNs,
    speedup_vs_baseline: f64,
}

#[derive(serde::Serialize)]
struct Report {
    generator: String,
    cpus_available: usize,
    cpu_model: String,
    kernel_detected: String,
    scale: String,
    note: String,
    shape: Shape,
    variants: Vec<Variant>,
    /// `EpochReport::timings` of a full `analyze_epoch_wire` call on a
    /// fresh centre (first epoch allocates the scratch)…
    epoch_timings_cold: EpochTimings,
    /// …and on the same centre at steady state (scratch reused).
    epoch_timings_steady: EpochTimings,
    /// Per-stage breakdown of the centre's final sampled epoch — all
    /// ten stages of both pipelines, from the metrics registry.
    center_stage_ns: StageGauges,
    /// The centre's full metrics snapshot after the sampled epochs
    /// (cumulative histograms/counters; gauges hold the last epoch).
    metrics: MetricsSnapshot,
    headline_speedup: f64,
}

fn cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|m| m.trim().to_string())
        })
        .unwrap_or_else(|| "unknown".to_string())
}

/// A random bitmap with P(bit) = 2^-fill_shift, planted with `common`.
fn random_bitmap(rng: &mut StdRng, bits: usize, fill_shift: u32, common: &[usize]) -> Bitmap {
    let words = bits.div_ceil(64);
    let mut data: Vec<u64> = (0..words)
        .map(|_| (0..fill_shift).fold(u64::MAX, |acc, _| acc & rng.gen::<u64>()))
        .collect();
    if let Some(last) = data.last_mut() {
        *last &= dcs_bitmap::words::tail_mask(bits);
    }
    let mut bm = Bitmap::from_words(bits, data);
    for &i in common {
        bm.set(i);
    }
    bm
}

/// One epoch of synthetic digest bundles at paper-like fill: the first
/// `infected` routers share `common_packets` aligned columns on a ~50%
/// random background.
fn synth_epoch(rng: &mut StdRng, shape: &Shape) -> Vec<RouterDigest> {
    let common: Vec<usize> = (0..shape.common_packets)
        .map(|_| rng.gen_range(0..shape.aligned_bits))
        .collect();
    (0..shape.routers)
        .map(|id| {
            let planted = if id < shape.infected {
                &common[..]
            } else {
                &[]
            };
            let aligned = AlignedDigest {
                bitmap: random_bitmap(rng, shape.aligned_bits, 1, planted),
                packets_seen: 1_000_000,
                packets_hashed: 1_000_000,
                raw_bytes: 1_000_000_000,
            };
            let arrays = (0..shape.groups_per_router * shape.arrays_per_group)
                .map(|_| random_bitmap(rng, shape.array_bits, 3, &[]))
                .collect();
            RouterDigest {
                router_id: id,
                epoch_id: 0,
                aligned,
                artifacts: Vec::new(),
                unaligned: UnalignedDigest {
                    arrays,
                    arrays_per_group: shape.arrays_per_group,
                    packets_seen: 1_000_000,
                    packets_sampled: 500_000,
                    raw_bytes: 1_000_000_000,
                },
            }
        })
        .collect()
}

/// The retained baseline: what `analyze_epoch_wire`'s aligned half did
/// before the zero-copy pipeline — owned decode of every frame, owned
/// validation, per-bit fusion of cloned bitmaps, and the uncached search
/// (fresh screen + weight pass + allocations every epoch).
fn baseline_epoch(
    frames: &[Vec<u8>],
    cfg: &dcs_aligned::SearchConfig,
) -> (dcs_aligned::AlignedDetection, StageNs) {
    let t0 = Instant::now();
    let decoded: Vec<(usize, RouterDigest)> = frames
        .iter()
        .enumerate()
        .map(|(i, f)| (i, RouterDigest::decode_wire(f).expect("clean frame").0))
        .collect();
    let candidates: Vec<(usize, &RouterDigest)> = decoded.iter().map(|(i, d)| (*i, d)).collect();
    let (accepted, _) =
        ingest::validate_batch(frames.len(), candidates, Vec::new(), 1).expect("quorum");
    let ingest_ns = t0.elapsed().as_nanos() as f64;

    let t1 = Instant::now();
    let nrows = accepted.len();
    let ncols = accepted[0].aligned.bitmap.len();
    let mut matrix = ColMatrix::new(nrows, ncols);
    for (r, d) in accepted.iter().enumerate() {
        for j in d.aligned.bitmap.iter_ones() {
            matrix.set(r, j);
        }
    }
    let fuse_ns = t1.elapsed().as_nanos() as f64;

    let t2 = Instant::now();
    let det = refined_detect(&matrix, cfg);
    let search_ns = t2.elapsed().as_nanos() as f64;
    let stages = StageNs {
        ingest_ns,
        fuse_ns,
        search_ns,
        total_ns: t0.elapsed().as_nanos() as f64,
    };
    (det, stages)
}

/// The fused pipeline: validate-then-view every frame, transpose-fuse the
/// borrowed bitmaps straight into the reused matrix (incremental column
/// weights), run the scratch-cached search.
fn fused_epoch(
    frames: &[Vec<u8>],
    cfg: &dcs_aligned::SearchConfig,
    matrix: &mut ColMatrix,
    weights: &mut Vec<u32>,
    scratch: &mut SearchScratch,
) -> (dcs_aligned::AlignedDetection, StageNs) {
    let t0 = Instant::now();
    let views: Vec<(usize, RouterDigestView<'_>)> = frames
        .iter()
        .enumerate()
        .map(|(i, f)| (i, RouterDigestView::parse(f).expect("clean frame").0))
        .collect();
    let candidates: Vec<(usize, &RouterDigestView<'_>)> =
        views.iter().map(|(i, v)| (*i, v)).collect();
    let (accepted, _) =
        ingest::validate_batch(frames.len(), candidates, Vec::new(), 1).expect("quorum");
    let ingest_ns = t0.elapsed().as_nanos() as f64;

    let t1 = Instant::now();
    let rows: Vec<_> = accepted.iter().map(|v| v.aligned.bitmap).collect();
    let shards = cfg.compute.effective_shards();
    matrix.fuse_rows_into_sharded(&rows, weights, shards, cfg.compute.workers_for(shards));
    let fuse_ns = t1.elapsed().as_nanos() as f64;

    let t2 = Instant::now();
    let (det, _) = refined_detect_cached(matrix, weights, cfg, scratch);
    let search_ns = t2.elapsed().as_nanos() as f64;
    let stages = StageNs {
        ingest_ns,
        fuse_ns,
        search_ns,
        total_ns: t0.elapsed().as_nanos() as f64,
    };
    (det, stages)
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), BenchError> {
    let scale = RunScale::from_env(1);
    banner(
        "streaming epoch-pipeline measurements",
        "implementation study (no paper figure): zero-copy wire fusion vs owned decode + per-bit fusion",
    );
    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut rng = StdRng::seed_from_u64(0xD1DE57);

    let shape = if scale.quick {
        Shape {
            routers: 16,
            infected: 12,
            aligned_bits: 1 << 18,
            common_packets: 120,
            groups_per_router: 4,
            arrays_per_group: 4,
            array_bits: 1024,
        }
    } else {
        // The paper's analysis-centre scale: 4 Mbit digests from two
        // dozen monitored links.
        Shape {
            routers: 24,
            infected: 16,
            aligned_bits: 4 << 20,
            common_packets: 200,
            groups_per_router: 4,
            arrays_per_group: 4,
            array_bits: 1024,
        }
    };
    let digests = synth_epoch(&mut rng, &shape);
    let frames: Vec<Vec<u8>> = digests
        .iter()
        .map(|d| d.encode_wire().expect("frame fits").to_vec())
        .collect();
    let mut cfg = repro_search_config();
    cfg.n_prime = 1_000.min(shape.aligned_bits);
    cfg.compute = dcs_parallel::ComputeBudget::sequential();

    let samples = if scale.quick { 3 } else { 5 };
    let kernel_detected = format!("{:?}", active_kernel());
    let mut variants: Vec<Variant> = Vec::new();
    let mut baseline_total = f64::NAN;

    for (name, kernel) in [
        ("dispatched", None),
        ("forced_scalar", Some(Kernel::Scalar)),
    ] {
        force_kernel(kernel);
        let kernel_name = format!("{:?}", active_kernel());

        // Baseline: fresh matrices and uncached search every epoch. First
        // call warms the page cache; stage minima over the sampled runs.
        let (base_det, _) = baseline_epoch(&frames, &cfg);
        let mut base_stages = StageNs {
            ingest_ns: f64::INFINITY,
            fuse_ns: f64::INFINITY,
            search_ns: f64::INFINITY,
            total_ns: f64::INFINITY,
        };
        for _ in 0..samples {
            let (det, st) = baseline_epoch(&frames, &cfg);
            std::hint::black_box(det.found);
            base_stages.ingest_ns = base_stages.ingest_ns.min(st.ingest_ns);
            base_stages.fuse_ns = base_stages.fuse_ns.min(st.fuse_ns);
            base_stages.search_ns = base_stages.search_ns.min(st.search_ns);
            base_stages.total_ns = base_stages.total_ns.min(st.total_ns);
        }
        if name == "dispatched" {
            baseline_total = base_stages.total_ns;
        }
        variants.push(Variant {
            name: format!("baseline_owned_perbit_{name}"),
            kernel: kernel_name.clone(),
            threads: 1,
            shards: 1,
            stages: base_stages,
            speedup_vs_baseline: baseline_total / base_stages.total_ns,
        });

        // Fused: warm the scratch once (cold epoch), then steady state.
        let mut matrix = ColMatrix::new(0, 0);
        let mut weights = Vec::new();
        let mut scratch = SearchScratch::new();
        let cold = Instant::now();
        let (fused_det, _) = fused_epoch(&frames, &cfg, &mut matrix, &mut weights, &mut scratch);
        let cold_ns = cold.elapsed().as_nanos() as f64;
        assert_eq!(
            fused_det.rows, base_det.rows,
            "{name}: fused pipeline diverged from baseline (rows)"
        );
        assert_eq!(
            fused_det.cols, base_det.cols,
            "{name}: fused pipeline diverged from baseline (cols)"
        );
        let mut steady_stages = StageNs {
            ingest_ns: f64::INFINITY,
            fuse_ns: f64::INFINITY,
            search_ns: f64::INFINITY,
            total_ns: f64::INFINITY,
        };
        for _ in 0..samples {
            let (_, st) = fused_epoch(&frames, &cfg, &mut matrix, &mut weights, &mut scratch);
            steady_stages.ingest_ns = steady_stages.ingest_ns.min(st.ingest_ns);
            steady_stages.fuse_ns = steady_stages.fuse_ns.min(st.fuse_ns);
            steady_stages.search_ns = steady_stages.search_ns.min(st.search_ns);
            steady_stages.total_ns = steady_stages.total_ns.min(st.total_ns);
        }
        variants.push(Variant {
            name: format!("zero_copy_fused_cold_{name}"),
            kernel: kernel_name.clone(),
            threads: 1,
            shards: 1,
            stages: StageNs {
                ingest_ns: 0.0,
                fuse_ns: 0.0,
                search_ns: 0.0,
                total_ns: cold_ns,
            },
            speedup_vs_baseline: baseline_total / cold_ns,
        });
        variants.push(Variant {
            name: format!("zero_copy_fused_steady_{name}"),
            kernel: kernel_name.clone(),
            threads: 1,
            shards: 1,
            stages: steady_stages,
            speedup_vs_baseline: baseline_total / steady_stages.total_ns,
        });

        // Column-range-sharded steady state: fusion and search split into
        // `s` shards driven by up to `s` worker threads (clamped to the
        // host's CPUs so a 1-CPU runner measures pure shard-partition
        // overhead, not thread contention). Detection is asserted
        // identical to the baseline for every shard count; on a 1-CPU
        // host the times should sit within noise of the s1 row.
        for shards in [1usize, 2, 4] {
            let threads = shards.min(cpus);
            let mut scfg = cfg.clone();
            scfg.compute = dcs_parallel::ComputeBudget::with_threads(threads).with_shards(shards);
            let mut matrix = ColMatrix::new(0, 0);
            let mut weights = Vec::new();
            let mut scratch = SearchScratch::new();
            let (det, _) = fused_epoch(&frames, &scfg, &mut matrix, &mut weights, &mut scratch);
            assert_eq!(
                det.rows, base_det.rows,
                "{name}: sharded pipeline (s={shards}) diverged from baseline (rows)"
            );
            assert_eq!(
                det.cols, base_det.cols,
                "{name}: sharded pipeline (s={shards}) diverged from baseline (cols)"
            );
            let mut stages = StageNs {
                ingest_ns: f64::INFINITY,
                fuse_ns: f64::INFINITY,
                search_ns: f64::INFINITY,
                total_ns: f64::INFINITY,
            };
            for _ in 0..samples {
                let (_, st) = fused_epoch(&frames, &scfg, &mut matrix, &mut weights, &mut scratch);
                stages.ingest_ns = stages.ingest_ns.min(st.ingest_ns);
                stages.fuse_ns = stages.fuse_ns.min(st.fuse_ns);
                stages.search_ns = stages.search_ns.min(st.search_ns);
                stages.total_ns = stages.total_ns.min(st.total_ns);
            }
            variants.push(Variant {
                name: format!("sharded_fused_steady_s{shards}_{name}"),
                kernel: kernel_name.clone(),
                threads,
                shards,
                stages,
                speedup_vs_baseline: baseline_total / stages.total_ns,
            });
        }
    }
    force_kernel(None);

    // Full-centre stage timings over the same frames (includes the
    // unaligned graph pipelines), cold and steady.
    let mut acfg = AnalysisConfig::for_groups(shape.routers * shape.groups_per_router);
    acfg.search = cfg.clone();
    let center = AnalysisCenter::new(acfg);
    let epoch_timings_cold = center
        .analyze_epoch_wire(&frames)
        .expect("clean frames form a quorum")
        .timings;
    let mut epoch_timings_steady = epoch_timings_cold;
    for _ in 0..samples {
        let t = center
            .analyze_epoch_wire(&frames)
            .expect("clean frames form a quorum")
            .timings;
        if t.total_ns < epoch_timings_steady.total_ns {
            epoch_timings_steady = t;
        }
    }
    let metrics = center.metrics();
    let center_stage_ns = StageGauges::from_snapshot(&metrics);

    // Pipelined runtime: the double-buffered epoch scheduler driving the
    // same full centre (both pipelines). One warm-up epoch fills the
    // scratch pool, then `samples` epochs stream through submit/drain;
    // the figure is steady per-epoch wall time seen by the submitter.
    let mut pcfg = AnalysisConfig::for_groups(shape.routers * shape.groups_per_router);
    pcfg.search = cfg.clone();
    let pipe = EpochPipeline::new(AnalysisCenter::new(pcfg), PipelineConfig::default());
    pipe.submit(EpochInput::Frames(frames.clone()));
    for (_, r) in pipe.drain() {
        r.expect("clean frames form a quorum");
    }
    let t = Instant::now();
    for _ in 0..samples {
        pipe.submit(EpochInput::Frames(frames.clone()));
    }
    let mut analyzed = 0usize;
    for (_, r) in pipe.drain() {
        r.expect("clean frames form a quorum");
        analyzed += 1;
    }
    let pipelined_ns = t.elapsed().as_nanos() as f64 / analyzed as f64;
    variants.push(Variant {
        name: "pipelined_center_steady_dispatched".to_string(),
        kernel: format!("{:?}", active_kernel()),
        threads: 2,
        shards: 1,
        stages: StageNs {
            ingest_ns: 0.0,
            fuse_ns: 0.0,
            search_ns: 0.0,
            total_ns: pipelined_ns,
        },
        speedup_vs_baseline: baseline_total / pipelined_ns,
    });

    println!(
        "{:<38} {:>9} {:>12} {:>12} {:>12} {:>12} {:>8}",
        "variant", "kernel", "ingest_ms", "fuse_ms", "search_ms", "total_ms", "speedup"
    );
    for v in &variants {
        println!(
            "{:<38} {:>9} {:>12.2} {:>12.2} {:>12.2} {:>12.2} {:>8.2}",
            v.name,
            v.kernel,
            v.stages.ingest_ns / 1e6,
            v.stages.fuse_ns / 1e6,
            v.stages.search_ns / 1e6,
            v.stages.total_ns / 1e6,
            v.speedup_vs_baseline
        );
    }
    println!(
        "\nfull centre epoch (incl. unaligned graphs): cold {:.2} ms, steady {:.2} ms \
         (fuse {:.2} ms, screen {:.2} ms, sweep {:.2} ms)",
        epoch_timings_cold.total_ns as f64 / 1e6,
        epoch_timings_steady.total_ns as f64 / 1e6,
        epoch_timings_steady.fuse_ns as f64 / 1e6,
        epoch_timings_steady.screen_ns as f64 / 1e6,
        epoch_timings_steady.sweep_ns as f64 / 1e6,
    );
    println!(
        "per-stage (last epoch): aligned fuse {:.2} / screen {:.2} / core_find {:.2} / \
         sweep {:.2} / terminate {:.2} ms; unaligned stack_rows {:.2} / prescreen {:.2} / \
         graph_build {:.2} / er_test {:.2} / peel {:.2} ms",
        center_stage_ns.fuse_ns as f64 / 1e6,
        center_stage_ns.screen_ns as f64 / 1e6,
        center_stage_ns.core_find_ns as f64 / 1e6,
        center_stage_ns.sweep_ns as f64 / 1e6,
        center_stage_ns.terminate_ns as f64 / 1e6,
        center_stage_ns.stack_rows_ns as f64 / 1e6,
        center_stage_ns.prescreen_ns as f64 / 1e6,
        center_stage_ns.graph_build_ns as f64 / 1e6,
        center_stage_ns.er_test_ns as f64 / 1e6,
        center_stage_ns.peel_ns as f64 / 1e6,
    );
    assert!(
        center_stage_ns.all_nonzero(),
        "every stage of both pipelines must record a span"
    );

    let headline_speedup = variants
        .iter()
        .find(|v| v.name == "zero_copy_fused_steady_dispatched")
        .map_or(f64::NAN, |v| v.speedup_vs_baseline);
    let report = Report {
        generator: "repro_pipeline".to_string(),
        cpus_available: cpus,
        cpu_model: cpu_model(),
        kernel_detected,
        scale: if scale.quick { "quick" } else { "paper" }.to_string(),
        note: "baseline is the pre-zero-copy centre: owned wire decode, per-bit \
               fusion, uncached search; fused variants view frames in place and \
               recycle the epoch scratch. Every variant records its threads/shards \
               budget; sharded rows split fusion and search into column-range \
               shards (detection asserted identical), and the pipelined row runs \
               the double-buffered epoch scheduler. On a 1-CPU host sharded and \
               pipelined rows sit within noise of their single-shard peers"
            .to_string(),
        shape,
        variants,
        epoch_timings_cold,
        epoch_timings_steady,
        center_stage_ns,
        metrics,
        headline_speedup,
    };
    write_report("BENCH_pipeline.json", &report)?;
    println!("\nheadline steady-state speedup {headline_speedup:.2}x; wrote BENCH_pipeline.json");
    Ok(())
}
