//! Figure 12: the non-naturally-occurring threshold curve and the
//! detectable threshold curve for the 1,000×4M aligned matrix.
//!
//! Paper anchors: non-natural — a=28 ⇒ b≈21, a=70 ⇒ b≈10;
//! detectable — a=25 ⇒ b≈3029, a=70 ⇒ b≈99, a=100 ⇒ b≈30; the detectable
//! curve always lies above the non-natural curve.

use dcs_aligned::thresholds::{detectable_min_b, non_natural_min_b, DetectableParams};
use dcs_bench::{aligned_paper, banner, RunScale};
use dcs_sim::table::render_table;

fn main() {
    let _scale = RunScale::from_env(1);
    banner(
        "Figure 12 — non-naturally-occurring and detectable thresholds",
        "m = 1000 routers, n = 4M columns, n' = 4000, detection target 95%",
    );
    let p = DetectableParams {
        m: aligned_paper::M as u64,
        n: aligned_paper::N as u64,
        n_prime: aligned_paper::N_PRIME as u64,
        epsilon: 1e-3,
    };
    let b_max = 10_000;
    let mut rows = Vec::new();
    for a in (20..=200).step_by(5) {
        let nn = non_natural_min_b(p.m, p.n, a, p.epsilon, b_max);
        let det = detectable_min_b(p, a, 0.95, b_max);
        rows.push(vec![
            a.to_string(),
            nn.map_or("-".into(), |b| b.to_string()),
            det.map_or("-".into(), |b| b.to_string()),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["a (routers)", "non-natural min b", "detectable min b"],
            &rows
        )
    );
    println!(
        "(paper anchors: a=28→21 / a=70→10 non-natural; a=25→3029, a=70→99, a=100→30 detectable)"
    );
}
