//! Accuracy ablations for the design choices DESIGN.md calls out:
//!
//! 1. offset-sampling k — the k² match-probability amplification (§IV-A);
//! 2. flow-split group count — signal magnification from narrower arrays
//!    (§IV-A "magnifying signal strength");
//! 3. screening budget n′ in the refined aligned algorithm (§III-B);
//! 4. core-expansion slack γ (§III-B, Figure 6).

use dcs_bench::{banner, repro_search_config, RunScale};
use dcs_sim::aligned::{detection_ratio, planted_matrix};
use dcs_sim::table::render_table;
use dcs_unaligned::lambda::{p_star_for_edge_prob, LambdaTable};
use dcs_unaligned::matchmodel::{offset_match_prob, MatchModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn ablate_offsets() {
    println!("--- ablation 1: offset-sampling k (match probability ~ 1 - e^(-k^2/536)) ---");
    let p1 = 2.0 / 102_400.0;
    let mut rows = Vec::new();
    for k in [1usize, 5, 10, 20] {
        let mut model = MatchModel::paper_default(100);
        model.k = k;
        let pairs = k * k;
        let p_star = p_star_for_edge_prob(p1, pairs);
        let table = LambdaTable::new(model.n_bits, p_star);
        let lam = table.lambda(model.row_weight as u32, model.row_weight as u32);
        let p2 = model.pattern_edge_prob(lam, p_star);
        rows.push(vec![
            k.to_string(),
            format!("{:.4}", offset_match_prob(k, 536)),
            format!("{:.4}", p2),
            format!("{:.0}", 1.0 / p2),
        ]);
    }
    println!(
        "{}",
        render_table(&["k", "match prob", "p2", "~n1 needed (1/p2)"], &rows)
    );
}

fn ablate_flow_split() {
    println!("--- ablation 2: flow-split group count (131,072 bits, 75,000 pkts/link) ---");
    let mut rows = Vec::new();
    for groups in [1usize, 32, 128, 512] {
        let n_bits = 131_072 / groups;
        let pkts_per_group = 75_000.0 / groups as f64;
        let fill = 1.0 - (-pkts_per_group / n_bits as f64).exp();
        let weight = (n_bits as f64 * fill).round() as usize;
        let mut model = MatchModel::paper_default(100);
        model.n_bits = n_bits;
        model.row_weight = weight;
        let p_star = p_star_for_edge_prob(2.0 / 102_400.0, 100);
        let table = LambdaTable::new(n_bits, p_star);
        let lam = table.lambda(weight as u32, weight as u32);
        let q = model.matched_exceed_prob(lam);
        rows.push(vec![
            groups.to_string(),
            n_bits.to_string(),
            format!("{:.2}", fill),
            format!("{:.3}", q),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["groups", "array bits", "fill", "matched exceedance q"],
            &rows
        )
    );
    println!("(narrower arrays concentrate the 100-packet signal: q -> 1 as width shrinks)\n");
}

fn ablate_screening(scale: &RunScale) {
    println!("--- ablation 3: screening budget n' (aligned refined algorithm) ---");
    // 60×30 in 500×1M straddles the detectable threshold across the n'
    // range: pattern columns survive the w(n') cut with probability ~0.2
    // at n'=500 but ~0.55 at n'=8000.
    let (m, n, a, b) = (500usize, 1_000_000usize, 60usize, 30usize);
    let cfg = repro_search_config();
    let mut rows = Vec::new();
    for n_prime in [500usize, 2_000, 8_000] {
        let r = detection_ratio(
            0xAB1A ^ (n_prime as u64) << 24,
            m,
            n,
            a,
            b,
            n_prime,
            &cfg,
            scale.reps,
            scale.threads,
        );
        rows.push(vec![n_prime.to_string(), format!("{r:.2}")]);
    }
    println!(
        "{}",
        render_table(&["n'", "detection ratio (60x30 in 500x1M)"], &rows)
    );
}

fn ablate_gamma() {
    println!("--- ablation 4: core-expansion slack gamma ---");
    let mut rng = StdRng::seed_from_u64(0xAB1B);
    let p = planted_matrix(&mut rng, 96, 800, 30, 14);
    let mut rows = Vec::new();
    for gamma in [0u32, 2, 5, 10] {
        let mut cfg = repro_search_config();
        cfg.n_prime = 120;
        cfg.hopefuls = 200;
        cfg.gamma = gamma;
        let det = dcs_aligned::refined_detect(&p.matrix, &cfg);
        let hits = det.cols.iter().filter(|c| p.cols.contains(c)).count();
        let fps = det.cols.len() - hits;
        rows.push(vec![gamma.to_string(), hits.to_string(), fps.to_string()]);
    }
    println!(
        "{}",
        render_table(
            &["gamma", "pattern cols recovered (of 14)", "false cols"],
            &rows
        )
    );
    println!("(small gamma misses shaded pattern columns; huge gamma admits noise)");
}

fn main() {
    let scale = RunScale::from_env(8);
    banner(
        "Ablations — design choices of DESIGN.md",
        "offset k; flow-split groups; screening n'; expansion gamma",
    );
    ablate_offsets();
    ablate_flow_split();
    ablate_screening(&scale);
    ablate_gamma();
}
