//! Sizing claims of Sections III-A and IV-A: digest widths, fill levels
//! and compression ratios.
//!
//! * aligned: a 4-Mbit bitmap holds one OC-48 second (~2.4 M packets) at
//!   ~50 % fill; digests are ≥3 orders of magnitude smaller than traffic;
//! * unaligned: 131,072 bits per link split into 128 groups × 10 arrays ×
//!   1,024 bits; update cost 10 bits per 536-byte packet.

use dcs_bench::{banner, RunScale};
use dcs_collect::{AlignedCollector, AlignedConfig, UnalignedCollector, UnalignedConfig};
use dcs_sim::table::render_table;
use dcs_traffic::{gen, BackgroundConfig, SizeMix};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = RunScale::from_env(1);
    banner(
        "Sizing — digest widths, fill and compression",
        "Sections III-A and IV-A",
    );
    let mut rng = StdRng::seed_from_u64(0x512E);

    // Scaled-down epoch: the 2.4M-packet OC-48 epoch shrinks by `div` but
    // keeps the packets-to-bits proportion, so the fill matches the paper.
    let div = if scale.quick { 512 } else { 64 };
    let bitmap_bits = 4 * 1024 * 1024 / div;
    let packets = 2_400_000 / div;
    let mut aligned = AlignedCollector::new(AlignedConfig {
        bitmap_bits,
        hash_prefix_len: 64,
        seed: 1,
        target_fill: 1.0, // let us push the whole epoch through
    });
    let mut unaligned = UnalignedCollector::new(UnalignedConfig {
        groups: 128 / (div / 16).max(1),
        seed: 1,
        router_seed: 2,
        ..UnalignedConfig::default()
    });
    let epoch = gen::generate_epoch(
        &mut rng,
        &BackgroundConfig {
            packets,
            flows: packets / 10,
            zipf_exponent: 1.0,
            size_mix: SizeMix::internet_default(),
        },
    );
    for p in &epoch {
        aligned.observe(p);
        unaligned.observe(p);
    }
    let ad = aligned.finish_epoch();
    let ud = unaligned.finish_epoch();

    let rows = vec![
        vec![
            "aligned".into(),
            format!("{} bits", bitmap_bits),
            format!("{:.1}%", ad.bitmap.fill_ratio() * 100.0),
            format!("{}", ad.raw_bytes),
            format!("{}", ad.bitmap.encoded_len()),
            format!("{:.0}x", ad.compression_ratio()),
        ],
        vec![
            "unaligned".into(),
            format!("{} arrays x 1024 bits", ud.arrays.len()),
            format!(
                "{:.1}%",
                ud.arrays.iter().map(|a| a.fill_ratio()).sum::<f64>() / ud.arrays.len() as f64
                    * 100.0
            ),
            format!("{}", ud.raw_bytes),
            format!("{}", ud.encoded_len()),
            format!("{:.0}x", ud.compression_ratio()),
        ],
    ];
    println!(
        "{}",
        render_table(
            &[
                "collector",
                "digest shape",
                "fill",
                "raw bytes",
                "digest bytes",
                "ratio"
            ],
            &rows
        )
    );
    println!(
        "aligned packets hashed: {} of {} seen (payload-carrying only)",
        ad.packets_hashed, ad.packets_seen
    );
    println!(
        "unaligned packets sampled: {} of {} (>= 500-byte payloads only; 10 bits per packet)",
        ud.packets_sampled, ud.packets_seen
    );
    println!(
        "(paper: digests ~1000x smaller than raw traffic; bitmap ends the epoch at ~50% fill)"
    );
}
