//! Aligned-case analysis (paper Section III).
//!
//! The analysis centre stacks one n-bit digest per router into an m×n 0-1
//! matrix; common content seen by `a` routers as `b` identical packets is
//! an a×b all-1 submatrix. Finding it in general (the ASID problem) is
//! NP-hard — Theorem 1 reduces Maximum Edge Biclique to it — but the
//! Bernoulli(½) background makes a greedy product search work with high
//! probability:
//!
//! * [`search`] — the naive O(n² log n) and refined O(n log n) greedy
//!   algorithms (Figures 5 and 6): iterate bounded lists of heaviest
//!   k-products, detect the stopping point from the weight-loss curve,
//!   then (refined) expand the found core across all columns;
//! * [`termination`] — the weight-loss-curve reader (Figure 7): first
//!   exponential dive → plateau → second dive, stop right before the
//!   second dive;
//! * [`thresholds`] — the non-naturally-occurring bound
//!   `C(m,a)·C(n,b)·2^(−ab)` (eq. 1) and the Theorem-2 detectable
//!   threshold chain, which generate both curves of Figure 12.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod search;
pub mod termination;
pub mod thresholds;

pub use search::{
    naive_detect, refined_detect, refined_detect_cached, refined_detect_multi,
    refined_detect_seeded, AlignedDetection, SearchConfig, SearchScratch, SearchTimings,
    SearchWork,
};
pub use termination::{stop_point, TerminationConfig};
pub use thresholds::{detectable_min_b, ln_natural_occurrence, non_natural_min_b, NonNaturalCurve};
