//! Greedy product search: the naive (Figure 5) and refined (Figure 6)
//! detection algorithms.
//!
//! Both search for a set of columns whose bitwise-AND ("k-product") stays
//! heavy. The naive algorithm works on the whole matrix; the refined one
//! first screens the `n′` heaviest columns (heavier columns are likelier
//! to be pattern columns, Theorem 2), finds a *core* there, and then uses
//! the core's row vector to sweep every remaining column at O(n) cost.
//!
//! Implementation notes:
//! * products are extended only by columns *after* their largest member
//!   (canonical combinatorial order), which enumerates every column set at
//!   most once — the paper's `w ∉ A_v` rule plus duplicate suppression;
//! * the per-iteration "hopefuls" list keeps the H heaviest candidates in
//!   a bounded min-heap, exactly as in the paper (a priority queue of
//!   size O(n));
//! * the candidate fan-outs (all 2-products, per-hopeful extensions, the
//!   heaviest-column screen, and the full-matrix expansion sweep) are cut
//!   into independent column shards ([`ComputeBudget::effective_shards`])
//!   executed by scoped worker threads per [`SearchConfig::compute`].
//!   Candidates are ranked by the *full* `(weight, parent, column)`
//!   tuple — a total order — so each shard's bounded heap merged into a
//!   global bounded heap yields exactly the canonical top-H set. The
//!   search result is therefore bit-identical for every thread count
//!   *and* every shard count (see the determinism tests).

use crate::termination::{stop_point, TerminationConfig};
use crate::thresholds::ln_natural_occurrence;
use dcs_bitmap::words::{and_weight, and_weight_many_into, iter_ones, weight};
use dcs_bitmap::ColMatrix;
use dcs_parallel::{map_chunks, run_jobs, split_range, ComputeBudget};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

/// Reusable buffers for repeated refined detections (one per epoch).
///
/// Holds everything [`refined_detect_cached`] needs between the fused
/// matrix and the detection report: the column ranking, the screened
/// working matrix, and the per-worker fan-out buffers of the product
/// search. All of it is allocated on the first epoch and reused —
/// steady-state detection performs no per-epoch screening allocations
/// beyond what the candidate products themselves need.
#[derive(Debug)]
pub struct SearchScratch {
    /// Column indices ranked by descending weight (truncated to n′).
    order: Vec<usize>,
    /// Per-shard screening buffers: shard-local top-n′ candidates,
    /// merged into `order` before the global cut.
    shard_orders: Vec<Vec<usize>>,
    /// The screened working matrix (the n′ heaviest columns).
    work: ColMatrix,
    /// Per-shard fan-out buffers of the product search.
    fanouts: Vec<Vec<u32>>,
}

impl Default for SearchScratch {
    fn default() -> Self {
        SearchScratch {
            order: Vec::new(),
            shard_orders: Vec::new(),
            work: ColMatrix::new(0, 0),
            fanouts: Vec::new(),
        }
    }
}

impl SearchScratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        SearchScratch::default()
    }

    /// Capacities of the internal buffers (column order, summed shard
    /// screening slots, screened matrix words, summed fan-out slots) —
    /// diagnostic hook for steady-state reuse tests: across epochs of
    /// equal shape these must not grow.
    pub fn capacities(&self) -> [usize; 4] {
        [
            self.order.capacity(),
            self.shard_orders.iter().map(Vec::capacity).sum(),
            self.work.word_capacity(),
            self.fanouts.iter().map(Vec::capacity).sum(),
        ]
    }
}

/// Wall-clock nanoseconds of the stages behind
/// [`refined_detect_cached`], one field per pipeline stage.
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchTimings {
    /// Ranking the columns and materialising the n′ heaviest (screening).
    pub screen_ns: u64,
    /// Greedy product search plus the termination-procedure read
    /// (core-finding).
    pub core_ns: u64,
    /// Expansion sweep of the core row vector across all columns.
    pub expand_ns: u64,
    /// Natural-occurrence verdict and report assembly.
    pub verdict_ns: u64,
}

impl SearchTimings {
    /// Everything after screening — the historical "sweep" aggregate
    /// (core search + expansion + verdict).
    pub fn sweep_ns(&self) -> u64 {
        self.core_ns + self.expand_ns + self.verdict_ns
    }
}

/// Work accounting of one product search: how many candidate products
/// were actually AND-popcounted, how many the conservative weight-bound
/// break discarded without computing, and how many of the computed ones
/// came from a sketch-seeded outer column.
///
/// These are *effort* numbers, not detection inputs: the pruned
/// candidates are exactly those that provably cannot enter the bounded
/// candidate heap (their weight upper bound sits strictly below the
/// full heap's minimum), so the detection set never depends on them —
/// or on the seed-first scan order that makes the bar rise early. The
/// counters do depend on shard/worker partitioning and scan order, so
/// they are excluded from cross-thread metric determinism checks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchWork {
    /// Candidate products AND-popcounted.
    pub pairs_scanned: u64,
    /// Candidates discarded by the conservative weight-bound break.
    pub pairs_pruned: u64,
    /// Scanned candidates whose outer column was a sketch seed.
    pub seeded_pairs: u64,
}

impl SearchWork {
    /// Accumulates another shard's counters.
    pub fn absorb(&mut self, other: SearchWork) {
        self.pairs_scanned += other.pairs_scanned;
        self.pairs_pruned += other.pairs_pruned;
        self.seeded_pairs += other.seeded_pairs;
    }

    /// Total candidates considered (scanned + pruned) — invariant
    /// across seed sets for an identical search, since seeding only
    /// reorders the scan.
    pub fn candidates(&self) -> u64 {
        self.pairs_scanned + self.pairs_pruned
    }
}

/// Tuning parameters of the greedy search.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SearchConfig {
    /// Size of the per-iteration hopefuls list (the paper's O(n)).
    pub hopefuls: usize,
    /// Upper bound on product order (the paper's `num_iterations`,
    /// ≈ b + c).
    pub max_iterations: usize,
    /// Screening budget n′ for the refined algorithm.
    pub n_prime: usize,
    /// Core-expansion slack γ: columns within γ of the core weight join
    /// the witness set (paper: "setting γ to 2 or 3 will work very well").
    pub gamma: u32,
    /// Non-natural level ε for the final verdict.
    pub epsilon: f64,
    /// Weight-curve reader configuration.
    pub termination: TerminationConfig,
    /// Threads and kernel blocking for the parallel sections.
    pub compute: ComputeBudget,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            hopefuls: 1_000,
            max_iterations: 40,
            n_prime: 4_000,
            gamma: 2,
            epsilon: 1e-3,
            termination: TerminationConfig::default(),
            compute: ComputeBudget::default(),
        }
    }
}

/// Result of an aligned-case detection run.
#[derive(Debug, Clone)]
pub struct AlignedDetection {
    /// Whether a non-naturally-occurring pattern was found.
    pub found: bool,
    /// Routers (row indices) of the detected pattern — the 1-bits of the
    /// final core product.
    pub rows: Vec<u32>,
    /// Columns of the full witness set (original matrix indices).
    pub cols: Vec<usize>,
    /// Columns of the core alone (original matrix indices).
    pub core_cols: Vec<usize>,
    /// Heaviest-product weight after each iteration (the Figure-7 curve);
    /// `weight_curve[k]` is the best (k+2)-product weight.
    pub weight_curve: Vec<u32>,
    /// Index into `weight_curve` where the termination procedure stopped.
    pub stopped_at: Option<usize>,
}

impl AlignedDetection {
    fn not_found(weight_curve: Vec<u32>) -> Self {
        AlignedDetection {
            found: false,
            rows: Vec::new(),
            cols: Vec::new(),
            core_cols: Vec::new(),
            weight_curve,
            stopped_at: None,
        }
    }
}

/// Bounded-heap entry order: the full `(weight, parent, column)` tuple
/// (a total order, so the retained top-H set is canonical for any
/// candidate partition).
type CandidateHeap = BinaryHeap<Reverse<(u32, u32, u32)>>;

/// A k-product under construction.
#[derive(Debug, Clone)]
struct Product {
    words: Vec<u64>,
    weight: u32,
    /// Member columns, ascending (indices into the *working* matrix).
    members: Vec<u32>,
}

/// The weight below which no candidate can enter `heap` once it is
/// full: candidates are ordered by the full `(weight, parent, column)`
/// tuple, so a weight *strictly* below the heap minimum's weight loses
/// to it for any tie-break — while an equal weight may still win.
fn heap_bar(heap: &CandidateHeap, cap: usize) -> u32 {
    if heap.len() == cap {
        heap.peek().map_or(0, |Reverse((w, _, _))| *w)
    } else {
        0
    }
}

/// Runs the greedy core search on `work` (a column subset of the original
/// matrix). Returns the best product per iteration. `fanouts` provides
/// per-shard fan-out buffers, reused across iterations and calls.
///
/// `seeded` (empty = no seeding) flags the work-matrix columns the
/// heavy-hitter sketch nominated; each shard scans its seeded outer
/// columns first. Seeding is **advisory**: the bounded heaps retain a
/// canonical top-H for any offer order, so the only effect is that the
/// heap's eviction bar rises early and the conservative weight-bound
/// break — a candidate whose `min(w_outer, max w_remaining)` upper
/// bound sits strictly below a full heap's minimum weight can never
/// enter and is skipped unscanned — fires sooner. `work_stats`
/// accumulates the scanned/pruned/seeded candidate counts.
fn product_search(
    work: &ColMatrix,
    cfg: &SearchConfig,
    fanouts: &mut Vec<Vec<u32>>,
    seeded: &[bool],
    work_stats: &mut SearchWork,
) -> (Vec<u32>, Vec<Product>) {
    let n = work.ncols();
    let mut curve = Vec::new();
    let mut best_per_iter: Vec<Product> = Vec::new();
    if n < 2 {
        return (curve, best_per_iter);
    }
    let cols: Vec<&[u64]> = (0..n).map(|j| work.column(j)).collect();
    // Per-column weight upper bounds for the conservative break: a
    // product with column j weighs at most w[j], and any candidate
    // drawn from columns ≥ j weighs at most suffix_max[j]. (On the
    // refined path the columns arrive weight-sorted so suffix_max[j]
    // == w[j]; the naive path is unsorted and needs the real suffix.)
    let w: Vec<u32> = cols.iter().map(|c| weight(c)).collect();
    let mut suffix_max = w.clone();
    for j in (0..n - 1).rev() {
        suffix_max[j] = suffix_max[j].max(suffix_max[j + 1]);
    }

    // Iteration 1: all 2-products, keep the H heaviest. Shard s owns the
    // outer indices congruent to s modulo the shard count (the pair loop
    // is triangular, striding balances the shards) and fills a private
    // bounded heap; merging them reproduces the canonical global top-H
    // because candidates are totally ordered — for any shard count and
    // any worker count.
    let shards = search_shards(&cfg.compute, n);
    let mut shard_heaps: Vec<CandidateHeap> = (0..shards).map(|_| BinaryHeap::new()).collect();
    let mut shard_stats: Vec<SearchWork> = vec![SearchWork::default(); shards];
    let jobs: Vec<((usize, &mut CandidateHeap), &mut SearchWork)> = shard_heaps
        .iter_mut()
        .enumerate()
        .zip(shard_stats.iter_mut())
        .collect();
    run_jobs(
        jobs,
        cfg.compute.workers_for(shards),
        |((s, heap), stats)| {
            let mut own: Vec<usize> = (s..n).step_by(shards).collect();
            if !seeded.is_empty() {
                // Stable partition: seeded outer columns first (false < true).
                own.sort_by_key(|&i| !seeded[i]);
            }
            for i in own {
                let start = i + 1;
                if start >= n {
                    continue;
                }
                let bar = heap_bar(heap, cfg.hopefuls);
                if w[i] < bar {
                    stats.pairs_pruned += (n - start) as u64;
                    continue;
                }
                let end = start + suffix_max[start..].partition_point(|&sm| sm >= bar);
                stats.pairs_pruned += (n - end) as u64;
                let ci = cols[i];
                for (j, cj) in cols[..end].iter().enumerate().skip(start) {
                    let wc = and_weight(ci, cj);
                    push_bounded(heap, cfg.hopefuls, (wc, i as u32, j as u32));
                }
                let scanned = (end - start) as u64;
                stats.pairs_scanned += scanned;
                if !seeded.is_empty() && seeded[i] {
                    stats.seeded_pairs += scanned;
                }
            }
        },
    );
    for s in shard_stats {
        work_stats.absorb(s);
    }
    let heap = merge_bounded(shard_heaps, cfg.hopefuls);
    let mut hopefuls: Vec<Product> = heap
        .into_sorted_vec()
        .into_iter()
        .map(|Reverse((w, i, j))| {
            let mut words = cols[i as usize].to_vec();
            dcs_bitmap::words::and_assign(&mut words, cols[j as usize]);
            Product {
                words,
                weight: w,
                members: vec![i, j],
            }
        })
        .collect();
    // into_sorted_vec of Reverse is descending by Reverse => ascending by
    // weight reversed... make the heaviest first explicitly.
    hopefuls.sort_by_key(|p| Reverse(p.weight));
    record_best(&hopefuls, &mut curve, &mut best_per_iter);

    // Iterations 2..: extend each hopeful with columns after its max
    // member. Shards stride the hopefuls list; each shard batches the
    // AND-popcounts of one hopeful against all its candidate columns
    // through the blocked many-columns kernel, reusing its persistent
    // fan-out buffer across iterations and epochs.
    for _ in 1..cfg.max_iterations {
        if hopefuls.is_empty() || curve.last() == Some(&0) {
            break;
        }
        let shards = search_shards(&cfg.compute, hopefuls.len());
        fanouts.resize_with(shards.max(fanouts.len()), Vec::new);
        let hopefuls_ref = &hopefuls;
        let cols_ref = &cols;
        let suffix_ref = &suffix_max;
        let mut shard_heaps: Vec<CandidateHeap> = (0..shards).map(|_| BinaryHeap::new()).collect();
        let mut shard_stats: Vec<SearchWork> = vec![SearchWork::default(); shards];
        type SweepJob<'a> = (
            ((usize, &'a mut CandidateHeap), &'a mut SearchWork),
            &'a mut Vec<u32>,
        );
        let jobs: Vec<SweepJob> = shard_heaps
            .iter_mut()
            .enumerate()
            .zip(shard_stats.iter_mut())
            .zip(fanouts.iter_mut())
            .collect();
        run_jobs(
            jobs,
            cfg.compute.workers_for(shards),
            |(((s, heap), stats), fanout)| {
                let mut pi = s;
                while pi < hopefuls_ref.len() {
                    let p = &hopefuls_ref[pi];
                    let start = p.members.last().copied().unwrap_or(0) as usize + 1;
                    if start < n {
                        // An extension of p weighs at most min(p.weight,
                        // w[j]) — skip what cannot enter the full heap.
                        let bar = heap_bar(heap, cfg.hopefuls);
                        if p.weight < bar {
                            stats.pairs_pruned += (n - start) as u64;
                            pi += shards;
                            continue;
                        }
                        let end = start + suffix_ref[start..].partition_point(|&sm| sm >= bar);
                        stats.pairs_pruned += (n - end) as u64;
                        if end > start {
                            fanout.clear();
                            fanout.resize(end - start, 0);
                            and_weight_many_into(&p.words, &cols_ref[start..end], fanout);
                            for (off, &w) in fanout.iter().enumerate() {
                                push_bounded(
                                    heap,
                                    cfg.hopefuls,
                                    (w, pi as u32, (start + off) as u32),
                                );
                            }
                            stats.pairs_scanned += (end - start) as u64;
                        }
                    }
                    pi += shards;
                }
            },
        );
        for s in shard_stats {
            work_stats.absorb(s);
        }
        let heap = merge_bounded(shard_heaps, cfg.hopefuls);
        if heap.is_empty() {
            break;
        }
        let mut next: Vec<Product> = heap
            .into_sorted_vec()
            .into_iter()
            .map(|Reverse((w, pi, j))| {
                let parent = &hopefuls[pi as usize];
                let mut words = parent.words.clone();
                dcs_bitmap::words::and_assign(&mut words, cols[j as usize]);
                let mut members = parent.members.clone();
                members.push(j);
                Product {
                    words,
                    weight: w,
                    members,
                }
            })
            .collect();
        next.sort_by_key(|p| Reverse(p.weight));
        hopefuls = next;
        record_best(&hopefuls, &mut curve, &mut best_per_iter);

        // Early exit: once the curve shows a plateau followed by a dive we
        // already have everything the termination procedure needs.
        if let Some(stop) = stop_point(&curve, cfg.termination) {
            if curve.len() - stop > 3 {
                break;
            }
        }
    }
    (curve, best_per_iter)
}

/// Shard count for a product-search fan-out of `items` work units.
///
/// A sharded plan only pays off when more than one worker executes it:
/// each per-shard bounded heap sees a fraction of the candidates, so its
/// eviction threshold sits below the single global heap's and it accepts
/// (then churns) more entries. Run sequentially that is strictly extra
/// heap work for the same canonical result — so with one worker the plan
/// collapses to one shard. Legal because the merged top-H is
/// shard-count-invariant (see the determinism tests): shards only ever
/// change where time is spent, never what is detected.
fn search_shards(budget: &ComputeBudget, items: usize) -> usize {
    let shards = budget.effective_shards().min(items).max(1);
    if budget.workers_for(shards) == 1 {
        1
    } else {
        shards
    }
}

fn record_best(hopefuls: &[Product], curve: &mut Vec<u32>, best: &mut Vec<Product>) {
    let b = hopefuls.first().expect("hopefuls non-empty");
    curve.push(b.weight);
    best.push(b.clone());
}

/// Offers `item` to a bounded min-heap keeping the `cap` largest
/// candidates.
///
/// Eviction compares the *full* tuple, not just the weight: candidates
/// form a total order, so the retained set is a canonical function of the
/// candidate multiset — independent of offer order, and hence of how the
/// fan-out was partitioned across workers.
fn push_bounded(heap: &mut CandidateHeap, cap: usize, item: (u32, u32, u32)) {
    if cap == 0 {
        return;
    }
    if heap.len() < cap {
        heap.push(Reverse(item));
    } else if let Some(Reverse(min)) = heap.peek() {
        if item > *min {
            heap.pop();
            heap.push(Reverse(item));
        }
    }
}

/// Merges per-worker bounded heaps into the canonical global top-`cap`
/// heap. Correct because every member of the global top-`cap` is in its
/// worker's local top-`cap`.
fn merge_bounded(heaps: Vec<CandidateHeap>, cap: usize) -> CandidateHeap {
    let mut iter = heaps.into_iter();
    let mut acc = iter.next().unwrap_or_default();
    for heap in iter {
        for Reverse(item) in heap {
            push_bounded(&mut acc, cap, item);
        }
    }
    acc
}

/// Iterated multi-pattern detection (the Section II-D layering for the
/// aligned case): run the refined search, remove the witness columns of
/// each found pattern, and repeat on the remaining columns until nothing
/// non-natural is left or `max_patterns` are found.
///
/// Distinct contents occupy distinct column sets (two different payload
/// streams hash to different indices with overwhelming probability), so
/// column removal cleanly peels one content at a time — including weaker
/// patterns initially shadowed by a dominant one.
pub fn refined_detect_multi(
    matrix: &ColMatrix,
    cfg: &SearchConfig,
    max_patterns: usize,
) -> Vec<AlignedDetection> {
    let mut remaining: Vec<usize> = (0..matrix.ncols()).collect();
    let mut found = Vec::new();
    for _ in 0..max_patterns {
        if remaining.len() < 2 {
            break;
        }
        let work = matrix.select_columns(&remaining);
        let mut det = refined_detect(&work, cfg);
        if !det.found {
            break;
        }
        // Map work-matrix column ids back to the original matrix.
        det.cols = det.cols.iter().map(|&c| remaining[c]).collect();
        det.core_cols = det.core_cols.iter().map(|&c| remaining[c]).collect();
        let taken: std::collections::HashSet<usize> = det.cols.iter().copied().collect();
        remaining.retain(|c| !taken.contains(c));
        found.push(det);
    }
    found
}

/// The naive algorithm (Figure 5): product search over the whole matrix,
/// no screening, no expansion sweep.
pub fn naive_detect(matrix: &ColMatrix, cfg: &SearchConfig) -> AlignedDetection {
    let identity: Vec<usize> = (0..matrix.ncols()).collect();
    detect_inner(
        matrix,
        matrix,
        &identity,
        cfg,
        false,
        &mut Vec::new(),
        &[],
        &mut SearchWork::default(),
    )
    .0
}

/// The refined algorithm (Figure 6): screen the n′ heaviest columns, find
/// a core there, then sweep all columns with the core row vector.
pub fn refined_detect(matrix: &ColMatrix, cfg: &SearchConfig) -> AlignedDetection {
    let n = matrix.ncols();
    // The weight pass is a full-matrix popcount, split over contiguous
    // column chunks. (The streaming ingest path skips it entirely: the
    // fusion transpose hands [`refined_detect_cached`] the weights it
    // accumulated while scattering.)
    let weights: Vec<u32> = map_chunks(n, cfg.compute.workers_for(n), |range| {
        range
            .map(|j| weight(matrix.column(j)))
            .collect::<Vec<u32>>()
    })
    .into_iter()
    .flatten()
    .collect();
    let mut scratch = SearchScratch::new();
    refined_detect_cached(matrix, &weights, cfg, &mut scratch).0
}

/// [`refined_detect`] with the column weights precomputed (by the fusion
/// transpose) and every screening buffer drawn from `scratch` — the
/// steady-state epoch path. Returns the detection and per-stage timings.
///
/// Screening selects the n′ heaviest columns by the total order
/// `(weight desc, index asc)`: each column shard partitions out its
/// local top-n′ (`O(n/s)` per shard, in parallel), the shard survivors
/// merge, and a global partition + `O(n′ log n′)` sort makes the final
/// cut. Every member of the global top-n′ is in its own shard's local
/// top-n′, so the screened set is identical for any shard count.
///
/// # Panics
/// Panics if `weights.len() != matrix.ncols()`.
pub fn refined_detect_cached(
    matrix: &ColMatrix,
    weights: &[u32],
    cfg: &SearchConfig,
    scratch: &mut SearchScratch,
) -> (AlignedDetection, SearchTimings) {
    let (det, timings, _) = refined_detect_seeded(matrix, weights, cfg, &[], scratch);
    (det, timings)
}

/// [`refined_detect_cached`] with an advisory heavy-hitter seed set:
/// `seeds` are *original-matrix* column indices (the sketch's top-k
/// candidates; out-of-range or screened-out entries are ignored). Seeded
/// columns are scanned first inside each product-search shard so the
/// bounded heap's eviction bar rises early and the conservative
/// weight-bound break prunes more of the pair scan.
///
/// Seeding is provably lossless: screening membership, the work-matrix
/// order, and the retained top-H candidate set (a canonical function of
/// the candidate multiset under the full-tuple total order) are all
/// unchanged, so the detection is byte-identical to the unseeded run —
/// see `seeding_never_changes_detection` in the tests. Only the returned
/// [`SearchWork`] differs.
///
/// # Panics
/// Panics if `weights.len() != matrix.ncols()`.
pub fn refined_detect_seeded(
    matrix: &ColMatrix,
    weights: &[u32],
    cfg: &SearchConfig,
    seeds: &[usize],
    scratch: &mut SearchScratch,
) -> (AlignedDetection, SearchTimings, SearchWork) {
    let n = matrix.ncols();
    assert_eq!(weights.len(), n, "one weight per column");
    let n_prime = cfg.n_prime.min(n);
    let t0 = Instant::now();
    let SearchScratch {
        order,
        shard_orders,
        work,
        fanouts,
    } = scratch;
    order.clear();
    let shards = cfg.compute.effective_shards();
    if n_prime < n && shards > 1 {
        let ranges = split_range(n, shards);
        shard_orders.resize_with(ranges.len().max(shard_orders.len()), Vec::new);
        let jobs: Vec<(std::ops::Range<usize>, &mut Vec<usize>)> = ranges
            .iter()
            .cloned()
            .zip(shard_orders.iter_mut())
            .collect();
        run_jobs(
            jobs,
            cfg.compute.workers_for(ranges.len()),
            |(range, buf)| {
                buf.clear();
                buf.extend(range);
                if n_prime < buf.len() {
                    buf.select_nth_unstable_by_key(n_prime, |&j| (Reverse(weights[j]), j));
                    buf.truncate(n_prime);
                }
            },
        );
        for buf in &shard_orders[..ranges.len()] {
            order.extend_from_slice(buf);
        }
    } else {
        order.extend(0..n);
    }
    if n_prime < order.len() {
        order.select_nth_unstable_by_key(n_prime, |&j| (Reverse(weights[j]), j));
        order.truncate(n_prime);
    }
    order.sort_unstable_by_key(|&j| (Reverse(weights[j]), j));
    matrix.select_columns_into(order, work);
    let seeded: Vec<bool> = if seeds.is_empty() {
        Vec::new()
    } else {
        let set: std::collections::HashSet<usize> = seeds.iter().copied().collect();
        order.iter().map(|j| set.contains(j)).collect()
    };
    let screen_ns = t0.elapsed().as_nanos() as u64;
    let mut work_stats = SearchWork::default();
    let (det, mut timings) = detect_inner(
        matrix,
        work,
        order,
        cfg,
        true,
        fanouts,
        &seeded,
        &mut work_stats,
    );
    timings.screen_ns = screen_ns;
    (det, timings, work_stats)
}

/// Shared tail: search `work` (whose column `k` is original column
/// `mapping[k]`), read the curve, optionally expand across `matrix`.
/// Returns the detection plus per-stage timings (`screen_ns` left zero —
/// screening happens in the caller).
#[allow(clippy::too_many_arguments)]
fn detect_inner(
    matrix: &ColMatrix,
    work: &ColMatrix,
    mapping: &[usize],
    cfg: &SearchConfig,
    expand: bool,
    fanouts: &mut Vec<Vec<u32>>,
    seeded: &[bool],
    work_stats: &mut SearchWork,
) -> (AlignedDetection, SearchTimings) {
    let mut timings = SearchTimings::default();
    let t_core = Instant::now();
    let (curve, best) = product_search(work, cfg, fanouts, seeded, work_stats);
    let stopped = stop_point(&curve, cfg.termination);
    timings.core_ns = t_core.elapsed().as_nanos() as u64;
    let Some(stop) = stopped else {
        return (AlignedDetection::not_found(curve), timings);
    };
    let core = &best[stop];
    let core_cols: Vec<usize> = core.members.iter().map(|&k| mapping[k as usize]).collect();

    // Witness set: the core plus (refined only) every other column sharing
    // ≥ weight(core) − γ ones with the core row vector. This is the O(n)
    // full-matrix sweep: each column shard scans its contiguous range,
    // batching `block_cols` columns per blocked-kernel call so the core
    // row vector stays cache-hot across the batch. Survivor sets from
    // disjoint ranges are sorted after the merge, so the witness set is
    // shard-count-invariant.
    let mut cols = core_cols.clone();
    if expand {
        let t_expand = Instant::now();
        let thresh = core.weight.saturating_sub(cfg.gamma);
        let core_set: std::collections::HashSet<usize> = core_cols.iter().copied().collect();
        let block_cols = cfg.compute.effective_block_cols();
        let n = matrix.ncols();
        let ranges = split_range(n, cfg.compute.effective_shards());
        let mut survivors: Vec<Vec<usize>> = ranges.iter().map(|_| Vec::new()).collect();
        let jobs: Vec<(std::ops::Range<usize>, &mut Vec<usize>)> =
            ranges.iter().cloned().zip(survivors.iter_mut()).collect();
        run_jobs(
            jobs,
            cfg.compute.workers_for(ranges.len()),
            |(range, out)| {
                let mut batch_weights = vec![0u32; block_cols];
                let mut start = range.start;
                while start < range.end {
                    let end = (start + block_cols).min(range.end);
                    let batch: Vec<&[u64]> = (start..end).map(|j| matrix.column(j)).collect();
                    batch_weights[..batch.len()].fill(0);
                    and_weight_many_into(&core.words, &batch, &mut batch_weights);
                    for (off, &w) in batch_weights[..batch.len()].iter().enumerate() {
                        let j = start + off;
                        if w >= thresh && !core_set.contains(&j) {
                            out.push(j);
                        }
                    }
                    start = end;
                }
            },
        );
        cols.extend(survivors.into_iter().flatten());
        cols.sort_unstable();
        timings.expand_ns = t_expand.elapsed().as_nanos() as u64;
    }

    // Verdict: is (weight(core) × |cols|) non-naturally-occurring in the
    // full matrix?
    let t_verdict = Instant::now();
    let ln_p = ln_natural_occurrence(
        matrix.nrows() as u64,
        matrix.ncols() as u64,
        u64::from(core.weight),
        cols.len() as u64,
    );
    let found = ln_p <= cfg.epsilon.ln();
    let det = if found {
        AlignedDetection {
            found,
            rows: iter_ones(&core.words).map(|r| r as u32).collect(),
            cols,
            core_cols,
            weight_curve: curve,
            stopped_at: Some(stop),
        }
    } else {
        AlignedDetection {
            found: false,
            rows: Vec::new(),
            cols: Vec::new(),
            core_cols,
            weight_curve: curve,
            stopped_at: Some(stop),
        }
    };
    timings.verdict_ns = t_verdict.elapsed().as_nanos() as u64;
    (det, timings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// m×n Bernoulli(1/2) matrix with an optional planted a×b pattern.
    /// Returns (matrix, pattern_rows, pattern_cols).
    fn planted_matrix(
        rng: &mut StdRng,
        m: usize,
        n: usize,
        a: usize,
        b: usize,
    ) -> (ColMatrix, Vec<u32>, Vec<usize>) {
        let mut mat = ColMatrix::new(m, n);
        for r in 0..m {
            for c in 0..n {
                if rng.gen::<bool>() {
                    mat.set(r, c);
                }
            }
        }
        // Plant: first `a` rows × a random set of `b` columns (random rows
        // would be equivalent; fixed rows simplify assertions).
        let mut cols: Vec<usize> = (0..n).collect();
        use rand::seq::SliceRandom;
        cols.shuffle(rng);
        let pattern_cols: Vec<usize> = {
            let mut v = cols.into_iter().take(b).collect::<Vec<_>>();
            v.sort_unstable();
            v
        };
        for &c in &pattern_cols {
            for r in 0..a {
                mat.set(r, c);
            }
        }
        (mat, (0..a as u32).collect(), pattern_cols)
    }

    fn small_cfg() -> SearchConfig {
        SearchConfig {
            hopefuls: 200,
            max_iterations: 25,
            n_prime: 120,
            gamma: 2,
            epsilon: 1e-3,
            termination: TerminationConfig::default(),
            compute: ComputeBudget::sequential(),
        }
    }

    #[test]
    fn refined_finds_planted_pattern() {
        let mut r = StdRng::seed_from_u64(42);
        let (mat, rows, cols) = planted_matrix(&mut r, 96, 800, 30, 12);
        let det = refined_detect(&mat, &small_cfg());
        assert!(det.found, "pattern not found; curve {:?}", det.weight_curve);
        // Most detected rows are true pattern rows.
        let row_hits = det.rows.iter().filter(|r| rows.contains(r)).count();
        assert!(
            row_hits * 10 >= det.rows.len() * 8,
            "row precision too low: {row_hits}/{}",
            det.rows.len()
        );
        // The witness set recovers a good share of the pattern columns.
        let col_hits = det.cols.iter().filter(|c| cols.contains(c)).count();
        assert!(
            col_hits >= cols.len() / 2,
            "recovered only {col_hits}/{} pattern columns",
            cols.len()
        );
    }

    #[test]
    fn refined_rejects_pure_noise() {
        let mut r = StdRng::seed_from_u64(43);
        let (mat, _, _) = planted_matrix(&mut r, 96, 800, 0, 0);
        let det = refined_detect(&mat, &small_cfg());
        assert!(!det.found, "false positive on pure noise");
    }

    #[test]
    fn naive_finds_planted_pattern_small() {
        let mut r = StdRng::seed_from_u64(44);
        let (mat, _, cols) = planted_matrix(&mut r, 64, 150, 24, 10);
        let cfg = SearchConfig {
            hopefuls: 150,
            ..small_cfg()
        };
        let det = naive_detect(&mat, &cfg);
        assert!(
            det.found,
            "naive missed pattern; curve {:?}",
            det.weight_curve
        );
        let hits = det.cols.iter().filter(|c| cols.contains(c)).count();
        assert!(hits >= 5, "naive recovered {hits} pattern columns");
    }

    #[test]
    fn naive_rejects_pure_noise_small() {
        let mut r = StdRng::seed_from_u64(45);
        let (mat, _, _) = planted_matrix(&mut r, 64, 150, 0, 0);
        let det = naive_detect(&mat, &small_cfg());
        assert!(!det.found);
    }

    #[test]
    fn weight_curve_shape_dive_plateau() {
        // With a planted pattern the curve must contain a plateau.
        let mut r = StdRng::seed_from_u64(46);
        let (mat, _, _) = planted_matrix(&mut r, 96, 800, 30, 12);
        let det = refined_detect(&mat, &small_cfg());
        assert!(det.stopped_at.is_some());
        let stop = det.stopped_at.unwrap();
        assert!(stop >= 1, "plateau should take a few iterations");
        // First step is a dive: from ~m/4 two-product to deeper products.
        assert!(det.weight_curve[0] > det.weight_curve[stop]);
    }

    #[test]
    fn tiny_matrices_do_not_panic() {
        let cfg = small_cfg();
        let det = naive_detect(&ColMatrix::new(8, 0), &cfg);
        assert!(!det.found);
        let det = naive_detect(&ColMatrix::new(8, 1), &cfg);
        assert!(!det.found);
        let mut m = ColMatrix::new(2, 2);
        m.set(0, 0);
        m.set(0, 1);
        let det = naive_detect(&m, &cfg);
        assert!(!det.found, "a 1x2 'pattern' is naturally occurring");
    }

    #[test]
    fn multi_detection_separates_two_contents() {
        let mut r = StdRng::seed_from_u64(48);
        // Two disjoint patterns: rows 0..30 x 12 cols, rows 40..70 x 12
        // other cols.
        let m = 96;
        let n = 800;
        let mut mat = ColMatrix::new(m, n);
        for c in 0..n {
            for row in 0..m {
                if r.gen::<bool>() {
                    mat.set(row, c);
                }
            }
        }
        use rand::seq::SliceRandom;
        let mut cols: Vec<usize> = (0..n).collect();
        cols.shuffle(&mut r);
        let cols_a: Vec<usize> = cols[..12].to_vec();
        let cols_b: Vec<usize> = cols[12..24].to_vec();
        for &c in &cols_a {
            for row in 0..30 {
                mat.set(row, c);
            }
        }
        for &c in &cols_b {
            for row in 40..70 {
                mat.set(row, c);
            }
        }
        let dets = refined_detect_multi(&mat, &small_cfg(), 4);
        assert!(dets.len() >= 2, "found {} patterns, wanted 2", dets.len());
        // Each truth pattern should be the best match of some detection.
        let row_match = |det: &AlignedDetection, lo: u32, hi: u32| {
            let hits = det.rows.iter().filter(|&&x| x >= lo && x < hi).count();
            hits * 10 >= det.rows.len() * 8 && hits >= 20
        };
        assert!(
            dets.iter().any(|d| row_match(d, 0, 30)),
            "pattern A (rows 0..30) not separated"
        );
        assert!(
            dets.iter().any(|d| row_match(d, 40, 70)),
            "pattern B (rows 40..70) not separated"
        );
        // Witness columns must not overlap across the two reports.
        let all: Vec<usize> = dets.iter().flat_map(|d| d.cols.iter().copied()).collect();
        let distinct: std::collections::HashSet<usize> = all.iter().copied().collect();
        assert_eq!(all.len(), distinct.len(), "column sets overlap");
    }

    #[test]
    fn multi_detection_on_noise_is_empty() {
        let mut r = StdRng::seed_from_u64(49);
        let (mat, _, _) = planted_matrix(&mut r, 96, 600, 0, 0);
        assert!(refined_detect_multi(&mat, &small_cfg(), 3).is_empty());
    }

    #[test]
    fn expansion_recovers_out_of_core_columns() {
        // Plant a pattern wide enough that the screening keeps only part
        // of it; expansion must pull in the rest.
        let mut r = StdRng::seed_from_u64(47);
        let (mat, _, cols) = planted_matrix(&mut r, 96, 600, 32, 20);
        let cfg = SearchConfig {
            n_prime: 60, // tight screening: most pattern columns excluded
            ..small_cfg()
        };
        let det = refined_detect(&mat, &cfg);
        assert!(det.found);
        assert!(
            det.cols.len() > det.core_cols.len(),
            "expansion added nothing"
        );
        let hits = det.cols.iter().filter(|c| cols.contains(c)).count();
        assert!(
            hits >= 15,
            "expansion recovered only {hits}/{} columns",
            cols.len()
        );
    }

    #[test]
    fn cached_detect_matches_uncached_and_reuses_scratch() {
        let mut r = StdRng::seed_from_u64(52);
        let (mat, _, _) = planted_matrix(&mut r, 96, 800, 30, 12);
        let cfg = small_cfg();
        let plain = refined_detect(&mat, &cfg);
        let weights = mat.col_weights();
        let mut scratch = SearchScratch::new();
        let (cached, timings) = refined_detect_cached(&mat, &weights, &cfg, &mut scratch);
        assert_eq!(cached.found, plain.found);
        assert_eq!(cached.rows, plain.rows);
        assert_eq!(cached.cols, plain.cols);
        assert_eq!(cached.core_cols, plain.core_cols);
        assert_eq!(cached.weight_curve, plain.weight_curve);
        assert!(timings.sweep_ns() > 0);
        assert!(timings.core_ns > 0, "core search must be timed");
        // A second epoch through the same scratch must not regrow the
        // screening buffers.
        let order_cap = scratch.order.capacity();
        let (again, _) = refined_detect_cached(&mat, &weights, &cfg, &mut scratch);
        assert_eq!(again.cols, plain.cols);
        assert_eq!(scratch.order.capacity(), order_cap);
    }

    #[test]
    fn refined_detect_is_shard_count_invariant() {
        // Shards decide only how the screen, pair scan, hopeful
        // extensions, and expansion sweep are partitioned; the bounded
        // heaps merge by the full candidate tuple, so the detection must
        // be bit-identical for any shard count — at any worker count.
        let mut r = StdRng::seed_from_u64(53);
        let (mat, _, _) = planted_matrix(&mut r, 96, 800, 30, 14);
        let run = |threads: usize, shards: usize| {
            let cfg = SearchConfig {
                compute: ComputeBudget::with_threads(threads).with_shards(shards),
                ..small_cfg()
            };
            let weights = mat.col_weights();
            let mut scratch = SearchScratch::new();
            refined_detect_cached(&mat, &weights, &cfg, &mut scratch).0
        };
        let seq = run(1, 1);
        assert!(seq.found, "planted pattern not found");
        for (threads, shards) in [(1, 2), (2, 2), (2, 8), (4, 3), (1, 8)] {
            let par = run(threads, shards);
            assert_eq!(par.rows, seq.rows, "t={threads} s={shards}: rows differ");
            assert_eq!(par.cols, seq.cols, "t={threads} s={shards}: cols differ");
            assert_eq!(
                par.core_cols, seq.core_cols,
                "t={threads} s={shards}: core differs"
            );
            assert_eq!(
                par.weight_curve, seq.weight_curve,
                "t={threads} s={shards}: weight curve differs"
            );
            assert_eq!(
                par.stopped_at, seq.stopped_at,
                "t={threads} s={shards}: termination differs"
            );
        }
    }

    #[test]
    fn seeded_run_is_shard_count_invariant() {
        // Seeds reorder each shard's scan and shift when the heap bar
        // rises, so different shard counts prune different candidate
        // subsets — making this the sharpest oracle that the prune is
        // exact: every partition must still converge on the same
        // canonical top-H.
        let mut r = StdRng::seed_from_u64(54);
        let (mat, _, cols) = planted_matrix(&mut r, 96, 800, 30, 14);
        let run = |threads: usize, shards: usize| {
            let cfg = SearchConfig {
                compute: ComputeBudget::with_threads(threads).with_shards(shards),
                ..small_cfg()
            };
            let weights = mat.col_weights();
            let mut scratch = SearchScratch::new();
            refined_detect_seeded(&mat, &weights, &cfg, &cols, &mut scratch)
        };
        let (seq, _, seq_work) = run(1, 1);
        assert!(seq.found, "planted pattern not found");
        assert!(seq_work.seeded_pairs > 0, "seeds never entered the scan");
        for (threads, shards) in [(1, 2), (2, 2), (2, 8), (4, 3)] {
            let (par, _, work) = run(threads, shards);
            assert_eq!(par.rows, seq.rows, "t={threads} s={shards}: rows differ");
            assert_eq!(par.cols, seq.cols, "t={threads} s={shards}: cols differ");
            assert_eq!(
                par.weight_curve, seq.weight_curve,
                "t={threads} s={shards}: weight curve differs"
            );
            // The split between scanned and pruned shifts with the
            // partition, but their sum counts every candidate exactly
            // once per iteration.
            assert_eq!(
                work.candidates(),
                seq_work.candidates(),
                "t={threads} s={shards}: candidate total differs"
            );
        }
    }

    proptest! {
        /// Seeding is advisory: for any seed set — empty, on-pattern,
        /// off-pattern, out of range, duplicated — the detection is
        /// byte-identical to the unseeded run. Only the work counters
        /// may move.
        #[test]
        fn seeding_never_changes_detection(
            matrix_seed in 0u64..64,
            raw_seeds in proptest::collection::vec(0usize..1000, 0..20),
            shards in 1usize..5,
        ) {
            let mut r = StdRng::seed_from_u64(matrix_seed);
            let plant = (matrix_seed % 3) != 0; // mix noise and pattern
            let (a, b) = if plant { (24, 10) } else { (0, 0) };
            let (mat, _, _) = planted_matrix(&mut r, 64, 300, a, b);
            let cfg = SearchConfig {
                compute: ComputeBudget::sequential().with_shards(shards),
                ..small_cfg()
            };
            let weights = mat.col_weights();
            let mut scratch = SearchScratch::new();
            let (base, _, base_work) =
                refined_detect_seeded(&mat, &weights, &cfg, &[], &mut scratch);
            let (seeded, _, work) =
                refined_detect_seeded(&mat, &weights, &cfg, &raw_seeds, &mut scratch);
            prop_assert_eq!(seeded.found, base.found);
            prop_assert_eq!(&seeded.rows, &base.rows);
            prop_assert_eq!(&seeded.cols, &base.cols);
            prop_assert_eq!(&seeded.core_cols, &base.core_cols);
            prop_assert_eq!(&seeded.weight_curve, &base.weight_curve);
            prop_assert_eq!(seeded.stopped_at, base.stopped_at);
            // Scanned + pruned covers the same candidate set either way.
            prop_assert_eq!(work.candidates(), base_work.candidates());
        }
    }

    #[test]
    fn refined_detect_is_thread_count_invariant() {
        // The parallel fan-outs use bounded heaps ordered by the full
        // (weight, i, j) tuple, so the merged top-H — and therefore the
        // whole search — must not depend on how work was partitioned.
        let mut r = StdRng::seed_from_u64(51);
        let (mat, _, _) = planted_matrix(&mut r, 96, 800, 30, 14);
        let run = |threads: usize| {
            let cfg = SearchConfig {
                compute: ComputeBudget::with_threads(threads),
                ..small_cfg()
            };
            refined_detect(&mat, &cfg)
        };
        let seq = run(1);
        assert!(seq.found, "planted pattern not found");
        for threads in [2, 8] {
            let par = run(threads);
            assert_eq!(par.found, seq.found, "threads={threads}: found differs");
            assert_eq!(par.rows, seq.rows, "threads={threads}: rows differ");
            assert_eq!(par.cols, seq.cols, "threads={threads}: cols differ");
            assert_eq!(
                par.core_cols, seq.core_cols,
                "threads={threads}: core differs"
            );
            assert_eq!(
                par.weight_curve, seq.weight_curve,
                "threads={threads}: weight curve differs"
            );
            assert_eq!(
                par.stopped_at, seq.stopped_at,
                "threads={threads}: termination differs"
            );
        }
    }
}
