//! Non-naturally-occurring and detectable thresholds (paper Sections III-C
//! and V-A.2, Figure 12).

use dcs_stats::{binocdf, binomial_sf, ln_choose};

/// Natural log of the paper's equation (1): the Markov bound on the
/// probability that some a×b all-1 submatrix occurs naturally in an m×n
/// Bernoulli(½) matrix,
///
/// ```text
/// P ≤ C(m, a) · C(n, b) · 2^(−ab)
/// ```
///
/// (`a` rows are chosen among the m routers and `b` columns among the n
/// hash indices).
pub fn ln_natural_occurrence(m: u64, n: u64, a: u64, b: u64) -> f64 {
    ln_choose(m, a) + ln_choose(n, b) - a as f64 * b as f64 * std::f64::consts::LN_2
}

/// Smallest `b` such that an a×b pattern is non-naturally-occurring at
/// level `epsilon`, or `None` if even `b = b_max` is still natural.
pub fn non_natural_min_b(m: u64, n: u64, a: u64, epsilon: f64, b_max: u64) -> Option<u64> {
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
    if a == 0 || a > m {
        return None;
    }
    let ln_eps = epsilon.ln();
    // ln_natural_occurrence is eventually decreasing in b (each extra
    // column multiplies the bound by n_eff·2^(−a) < 1 in the useful
    // regime), but not monotone from b = 1; scan.
    (1..=b_max).find(|&b| ln_natural_occurrence(m, n, a, b) <= ln_eps)
}

/// The full non-naturally-occurring threshold curve: for each `a` in
/// `a_range`, the minimum `b`. Points where no `b ≤ b_max` suffices are
/// omitted. This is the lower curve of Figure 12.
pub type NonNaturalCurve = Vec<(u64, u64)>;

/// Computes the lower curve of Figure 12.
pub fn non_natural_curve(
    m: u64,
    n: u64,
    epsilon: f64,
    a_range: impl IntoIterator<Item = u64>,
    b_max: u64,
) -> NonNaturalCurve {
    a_range
        .into_iter()
        .filter_map(|a| non_natural_min_b(m, n, a, epsilon, b_max).map(|b| (a, b)))
        .collect()
}

/// Parameters of the detectable-threshold estimate (the Theorem-2 /
/// Section V-A.2 procedure).
#[derive(Debug, Clone, Copy)]
pub struct DetectableParams {
    /// Rows (routers) in the full matrix.
    pub m: u64,
    /// Columns in the full matrix.
    pub n: u64,
    /// Screening budget n′ — how many heaviest columns the refined
    /// algorithm keeps (paper: 4,000 out of 4 M).
    pub n_prime: u64,
    /// Non-natural level ε used inside the screened submatrix.
    pub epsilon: f64,
}

impl DetectableParams {
    /// The paper's Figure-12 configuration.
    pub fn paper_default() -> Self {
        DetectableParams {
            m: 1_000,
            n: 4 * 1024 * 1024,
            n_prime: 4_000,
            epsilon: 1e-3,
        }
    }
}

/// Chooses the screening weight threshold `w`: the smallest `w` whose
/// expected number of *null* survivors `n · P[Binom(m,½) > w]` fits within
/// `margin · n_prime` (the paper keeps ~2,900 expected null survivors
/// against a 4,000-column budget, margin ≈ 0.75).
pub fn screening_weight(m: u64, n: u64, n_prime: u64, margin: f64) -> u64 {
    assert!(margin > 0.0 && margin <= 1.0, "margin must be in (0,1]");
    let budget = margin * n_prime as f64;
    // Binary search: expected survivors are decreasing in w.
    let (mut lo, mut hi) = (0u64, m);
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        let survivors = n as f64 * binomial_sf(mid as i64, m, 0.5);
        if survivors <= budget {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

/// Probability that one *pattern* column survives weight screening at `w`:
/// its weight is `a + Binom(m−a, ½)`, so survival is
/// `P[Binom(m−a, ½) > w − a]`.
pub fn pattern_column_survival(m: u64, a: u64, w: u64) -> f64 {
    assert!(a <= m, "pattern cannot have more rows than the matrix");
    binomial_sf(w as i64 - a as i64, m - a, 0.5)
}

/// Probability that an a×b pattern is *detected* by the refined algorithm:
/// at least `l*` of its `b` columns must survive screening, where `l*` is
/// the smallest core width that is non-natural inside the m×n′ screened
/// submatrix (Section V-A.2's worked example: a=100, b=30 ⇒ w=550,
/// survival≈0.55, l*=8, probability ≈ 0.99).
pub fn detection_probability(p: DetectableParams, a: u64, b: u64) -> f64 {
    if a == 0 || b == 0 {
        return 0.0;
    }
    let w = screening_weight(p.m, p.n, p.n_prime, 0.75);
    let surv = pattern_column_survival(p.m, a, w);
    let Some(l_star) = non_natural_min_b(p.m, p.n_prime, a, p.epsilon, b) else {
        return 0.0; // even b surviving columns would look natural
    };
    // P[at least l* of b pattern columns survive].
    1.0 - binocdf(l_star as i64 - 1, b, surv)
}

/// Smallest `b` whose detection probability reaches `target` (the upper
/// curve of Figure 12, e.g. target = 0.95), or `None` within `b_max`.
///
/// The result is clamped from below by the full-matrix non-natural bound:
/// the final verdict of the detection algorithm rejects any found pattern
/// that could occur naturally in the m×n matrix, so a pattern can never be
/// detectable before it is non-natural (the paper: "the detectable
/// threshold curve always lies above the non-naturally-occurring
/// threshold curve").
pub fn detectable_min_b(p: DetectableParams, a: u64, target: f64, b_max: u64) -> Option<u64> {
    assert!(target > 0.0 && target < 1.0, "target must be in (0,1)");
    let nn_floor = non_natural_min_b(p.m, p.n, a, p.epsilon, b_max)?;
    // Detection probability is monotone non-decreasing in b (more pattern
    // columns can only help): binary search after bracketing.
    if detection_probability(p, a, b_max) < target {
        return None;
    }
    let (mut lo, mut hi) = (0u64, b_max); // lo fails, hi succeeds
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if detection_probability(p, a, mid) >= target {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi.max(nn_floor))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_natural_occurrence_hand_check() {
        // 1×1 pattern in a 1×1 matrix: C(1,1)C(1,1)2^-1 = 0.5.
        let v = ln_natural_occurrence(1, 1, 1, 1);
        assert!((v - 0.5f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn paper_anchor_a28_b21() {
        // Section III-C: at a=28 routers, b must be ≥ 21 for the pattern
        // to be non-natural in the 1000×4M matrix. The bound at (28, 21)
        // should be small and at (28, 18) should be large.
        let at = |b| ln_natural_occurrence(1_000, 4_000_000, 28, b);
        assert!(at(21) < 0.0_f64.min(at(18) - 5.0), "no sharp transition");
        let b = non_natural_min_b(1_000, 4_000_000, 28, 0.05, 100).unwrap();
        assert!(
            (19..=23).contains(&b),
            "min b = {b}, paper says 21 (ε-dependent)"
        );
    }

    #[test]
    fn paper_anchor_a70_b10() {
        let b = non_natural_min_b(1_000, 4_000_000, 70, 0.05, 100).unwrap();
        assert!((8..=11).contains(&b), "min b = {b}, paper says 10");
    }

    #[test]
    fn curve_is_decreasing_in_a() {
        let curve = non_natural_curve(1_000, 4_000_000, 1e-3, (10..=100).step_by(10), 4000);
        assert!(!curve.is_empty());
        for pair in curve.windows(2) {
            assert!(
                pair[1].1 <= pair[0].1,
                "more routers should need fewer packets: {pair:?}"
            );
        }
    }

    #[test]
    fn screening_weight_paper_anchor() {
        // Paper: w = 550 keeps ≈ 2,900 of 4M null columns.
        let w = screening_weight(1_000, 4_000_000, 4_000, 0.75);
        assert!(
            (545..=555).contains(&w),
            "screening weight {w}, paper uses 550"
        );
        let survivors = 4_000_000.0 * dcs_stats::binomial_sf(w as i64, 1_000, 0.5);
        assert!(survivors <= 3_000.0, "survivors {survivors}");
    }

    #[test]
    fn pattern_survival_increases_with_a() {
        let w = 550;
        let s50 = pattern_column_survival(1_000, 50, w);
        let s100 = pattern_column_survival(1_000, 100, w);
        let s200 = pattern_column_survival(1_000, 200, w);
        assert!(s50 < s100 && s100 < s200);
        // a=100 anchor: survival ≈ 0.49–0.56 (paper quotes 0.55).
        assert!((0.4..0.6).contains(&s100), "survival {s100}");
    }

    #[test]
    fn detection_probability_paper_anchor_100x30() {
        // Section V-A.2: (a=100, b=30) detected with probability ≈ 0.988.
        let p = DetectableParams::paper_default();
        let prob = detection_probability(p, 100, 30);
        assert!(
            (0.95..=1.0).contains(&prob),
            "detection probability {prob}, paper says ≈0.988"
        );
    }

    #[test]
    fn detectable_ordering_matches_paper() {
        // a=70 needs b ≈ 99 (two-digit); a=25 needs thousands; a=100 ≈ 30.
        let p = DetectableParams::paper_default();
        let b100 = detectable_min_b(p, 100, 0.95, 10_000).unwrap();
        let b70 = detectable_min_b(p, 70, 0.95, 10_000).unwrap();
        let b25 = detectable_min_b(p, 25, 0.95, 10_000).unwrap();
        assert!(
            b100 < b70 && b70 < b25,
            "ordering broken: {b100} {b70} {b25}"
        );
        assert!(b100 <= 60, "a=100 needs b={b100}, paper says ≈30");
        assert!((50..=400).contains(&b70), "a=70 needs b={b70}, paper ≈99");
        assert!(b25 >= 1_000, "a=25 needs b={b25}, paper ≈3029");
    }

    #[test]
    fn detectable_always_above_non_natural() {
        // "The detectable threshold curve always lies above the
        // non-naturally-occurring threshold curve."
        let p = DetectableParams::paper_default();
        for a in [40u64, 70, 100, 200] {
            let nn = non_natural_min_b(p.m, p.n, a, p.epsilon, 10_000).unwrap();
            let det = detectable_min_b(p, a, 0.95, 10_000).unwrap();
            assert!(det >= nn, "a={a}: detectable {det} < non-natural {nn}");
        }
    }

    #[test]
    fn no_detection_with_zero_pattern() {
        let p = DetectableParams::paper_default();
        assert_eq!(detection_probability(p, 0, 10), 0.0);
        assert_eq!(detection_probability(p, 10, 0), 0.0);
    }
}
