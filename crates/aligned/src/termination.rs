//! Termination procedure: reading the weight-loss curve (paper Figure 7).
//!
//! Each iteration of the greedy product search reports the weight of the
//! heaviest product. Under pure noise every absorbed column halves the
//! weight — but because the search keeps the *maximum* over a large
//! candidate pool, the observed null decay is `w → w/2 + Θ(√w)` (the
//! maximum of ~Binomial(w, ½) over many candidates), not a clean halving.
//! When a pattern is present the dive flattens into a plateau — products
//! absorb pattern columns, which cost almost no weight — and once the
//! pattern is exhausted the dive resumes. "Our program should terminate
//! right before the second exponentially decreasing trend starts."
//!
//! The classifier therefore calls a step a **dive** when
//! `w_{k+1} < w_k/2 + c·√w_k`; with `c` a little above the max-selection
//! bias (≈1.5), noise steps classify as dives while plateaus (weight ≈
//! pattern height `a`) stay at or above the bound whenever `a/2 ≥ c·√a`,
//! i.e. patterns at least as tall as the noise floor `a = (2c)²`. The
//! comparison is strict so a perfectly flat step sitting exactly on the
//! bound (a pattern of height exactly `(2c)²` — 16 rows at the default
//! `c = 2`) reads as plateau, not dive.

/// Tuning knobs of the curve reader.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct TerminationConfig {
    /// Coefficient `c` of the dive bound `w/2 + c·√w`. Default 2.0: noise
    /// steps (bias ≈ 1.5·√w) fall under the bound, plateaus of patterns
    /// with a ≳ 16 rows stay above it.
    pub dive_coeff: f64,
    /// Minimum ratio `w_{k+1}/w_k` for a step to count as *plateau*. Steps
    /// that are neither dives nor plateaus (the ambiguous band between the
    /// two bounds) are neutral: they end a plateau run without marking a
    /// stop, so a marginally-slow second dive cannot drag the stop point
    /// past the true plateau.
    pub plateau_ratio: f64,
    /// Minimum number of consecutive plateau steps to call a plateau (a
    /// single flat step can be luck).
    pub min_plateau_len: usize,
}

impl Default for TerminationConfig {
    fn default() -> Self {
        TerminationConfig {
            dive_coeff: 2.0,
            plateau_ratio: 0.85,
            min_plateau_len: 2,
        }
    }
}

/// Analyses a weight-loss curve and returns the index (into `weights`) at
/// which to stop — the last point of the final plateau — or `None` when
/// the curve never plateaus (no pattern: a single uninterrupted dive).
///
/// `weights[k]` is the heaviest (k+2)-product weight after iteration k.
pub fn stop_point(weights: &[u32], cfg: TerminationConfig) -> Option<usize> {
    assert!(
        cfg.dive_coeff >= 0.0,
        "dive coefficient must be non-negative"
    );
    assert!(
        cfg.plateau_ratio > 0.0 && cfg.plateau_ratio <= 1.0,
        "plateau ratio must be in (0,1]"
    );
    if weights.len() < 2 {
        return None;
    }
    #[derive(PartialEq)]
    enum Step {
        Dive,
        Plateau,
        Neutral,
    }
    let steps: Vec<Step> = weights
        .windows(2)
        .map(|w| {
            let (prev, next) = (f64::from(w[0]), f64::from(w[1]));
            // A dead curve (weight zero) is never a plateau, even though
            // the strict bound below cannot classify a 0 → 0 step.
            if next == 0.0 || next < prev / 2.0 + cfg.dive_coeff * prev.sqrt() {
                Step::Dive
            } else if next >= cfg.plateau_ratio * prev {
                Step::Plateau
            } else {
                Step::Neutral
            }
        })
        .collect();
    // Find the last run of >= min_plateau_len consecutive plateau steps.
    let mut best_end: Option<usize> = None;
    let mut run = 0usize;
    for (i, step) in steps.iter().enumerate() {
        if *step == Step::Plateau {
            run += 1;
            if run >= cfg.min_plateau_len {
                best_end = Some(i + 1); // weights index at the end of the run
            }
        } else {
            run = 0;
        }
    }
    best_end
}

/// Convenience verdict: does the curve indicate a pattern at all?
pub fn has_plateau(weights: &[u32], cfg: TerminationConfig) -> bool {
    stop_point(weights, cfg).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TerminationConfig {
        TerminationConfig::default()
    }

    #[test]
    fn pure_noise_has_no_stop() {
        // Halving (plus max-selection bias) every step: all dives.
        let w = [500u32, 290, 170, 105, 66, 45, 30, 22, 15, 11];
        assert_eq!(stop_point(&w, cfg()), None);
    }

    #[test]
    fn dive_plateau_dive_stops_at_plateau_end() {
        // Figure-7 shape: dive to ~100, plateau while absorbing pattern
        // columns, second dive after exhaustion at index 7.
        let w = [800u32, 400, 200, 105, 101, 100, 99, 98, 48, 23, 11];
        let stop = stop_point(&w, cfg()).expect("plateau must be found");
        assert_eq!(stop, 7, "stop right before the second dive");
    }

    #[test]
    fn plateau_at_start_detected() {
        let w = [100u32, 99, 97, 96, 40, 20];
        assert_eq!(stop_point(&w, cfg()), Some(3));
    }

    #[test]
    fn single_flat_step_is_not_a_plateau() {
        let w = [512u32, 256, 250, 125, 62, 30];
        assert_eq!(stop_point(&w, cfg()), None, "one flat step is luck");
    }

    #[test]
    fn trailing_plateau_without_second_dive() {
        // Pattern big enough that iterations ran out before the second
        // dive: stop at the last plateau point.
        let w = [800u32, 400, 200, 100, 99, 98, 97];
        assert_eq!(stop_point(&w, cfg()), Some(6));
    }

    #[test]
    fn short_curves() {
        assert_eq!(stop_point(&[], cfg()), None);
        assert_eq!(stop_point(&[100], cfg()), None);
        assert_eq!(stop_point(&[100, 99], cfg()), None); // needs 2 steps
        assert_eq!(stop_point(&[100, 99, 98], cfg()), Some(2));
    }

    #[test]
    fn tiny_plateaus_sink_below_the_noise_floor() {
        // At weight ~9 the dive bound w/2 + 2√w ≈ 10.5 swallows even a
        // perfectly flat step: patterns this small are indistinguishable
        // from max-selection noise and are deliberately not reported.
        assert_eq!(stop_point(&[10, 9, 9], cfg()), None);
    }

    #[test]
    fn plateau_at_exactly_the_noise_floor_is_detected() {
        // Height 16 sits exactly on the dive bound (16 = 16/2 + 2√16):
        // the strict comparison must read flat steps there as plateau.
        // Regression: a 20-row pattern degraded to 16 surviving rows was
        // invisible with a non-strict bound.
        let w = [17u32, 16, 16, 16, 16, 6, 4, 3];
        assert_eq!(stop_point(&w, cfg()), Some(4));
    }

    #[test]
    fn zero_weights_terminate() {
        let w = [8u32, 4, 0, 0, 0];
        assert_eq!(stop_point(&w, cfg()), None);
    }

    #[test]
    fn ambiguous_second_dive_does_not_extend_plateau() {
        // After the plateau at ~100, steps to 73 and 54 fall in the
        // ambiguous band (neither < w/2 + 2√w nor ≥ 0.85w at first);
        // the stop must stay at the true plateau end.
        let w = [
            363u32, 242, 178, 147, 131, 119, 110, 106, 103, 101, 100, 73, 54, 41, 33,
        ];
        assert_eq!(stop_point(&w, cfg()), Some(10));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn invalid_coeff_rejected() {
        stop_point(
            &[1, 2],
            TerminationConfig {
                dive_coeff: -1.0,
                plateau_ratio: 0.85,
                min_plateau_len: 1,
            },
        );
    }
}
