//! The Erdős–Rényi statistical test (paper Section IV-B).
//!
//! Null hypothesis: the group graph is an instance of G(n, p₁) with p₁
//! held below the 1/n phase transition, so its largest connected component
//! is O(log n). Alternative: some subset of vertices attaches
//! preferentially (edge probability p₂ ≫ p₁), merging the small components
//! into a giant one. The test statistic is simply the size of the largest
//! connected component.

use dcs_graph::{component_sizes, Graph};

/// Configuration of the ER test.
#[derive(Debug, Clone, Copy)]
pub struct ErTestConfig {
    /// Alarm threshold on the largest-component size (the paper sets 100
    /// for n = 102,400 — comfortably above the O(log n) null range and
    /// below the pattern-merged giant).
    pub component_threshold: usize,
}

impl ErTestConfig {
    /// The paper's Figure-13 threshold.
    pub fn paper_default() -> Self {
        ErTestConfig {
            component_threshold: 100,
        }
    }

    /// A threshold scaled for a graph of `n` vertices at null edge
    /// probability `p1`.
    ///
    /// The asymptotic subcritical bound `ln n / (c − 1 − ln c)` (c = n·p₁)
    /// overshoots the empirical null maximum by ~3× at these sizes, so the
    /// constant here is calibrated against measurement: at the paper's
    /// operating point c = 0.65 the null largest component tops out near
    /// 6·ln n, and 9·ln n gives the same ~1.5× headroom the paper's fixed
    /// threshold of 100 has at n = 102,400. Other c values scale by the
    /// subcritical rate ratio.
    ///
    /// # Panics
    /// Panics if `n == 0` or p₁ is not in `(0, 1)`.
    pub fn scaled(n: usize, p1: f64) -> Self {
        assert!(n > 0, "empty graph");
        assert!(p1 > 0.0 && p1 < 1.0, "p1 must be in (0,1)");
        let c = n as f64 * p1; // mean degree; < 1 below the transition
        assert!(c < 1.0, "p1 = {p1} is at or above the phase transition 1/n");
        let rate_ref = 0.65_f64 - 1.0 - 0.65_f64.ln(); // ≈ 0.0808
        let rate = c - 1.0 - c.ln();
        let threshold = 9.0 * (n as f64).ln() * rate_ref / rate;
        ErTestConfig {
            component_threshold: threshold.ceil() as usize,
        }
    }

    /// Monte-Carlo calibration (how the paper actually tunes parameters):
    /// sample `trials` null graphs G(n, p₁) and set the threshold to
    /// `headroom ×` the largest component observed.
    pub fn calibrated<R: rand::Rng + ?Sized>(
        rng: &mut R,
        n: usize,
        p1: f64,
        trials: usize,
        headroom: f64,
    ) -> Self {
        assert!(trials > 0, "need at least one trial");
        let max_null = (0..trials)
            .map(|_| {
                let g = dcs_graph::er::gnp(rng, n, p1);
                component_sizes(&g).first().copied().unwrap_or(0)
            })
            .max()
            .expect("at least one trial");
        ErTestConfig {
            component_threshold: (max_null as f64 * headroom).ceil() as usize,
        }
    }
}

/// Outcome of the ER test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ErTestResult {
    /// Size of the largest connected component.
    pub largest_component: usize,
    /// Size of the second-largest component (diagnostic: under the
    /// alternative the gap between first and second is large).
    pub second_component: usize,
    /// Whether the alarm fired (largest > threshold).
    pub alarm: bool,
}

/// Runs the test on a group graph.
pub fn er_test(graph: &Graph, cfg: ErTestConfig) -> ErTestResult {
    let sizes = component_sizes(graph);
    let largest = sizes.first().copied().unwrap_or(0);
    let second = sizes.get(1).copied().unwrap_or(0);
    ErTestResult {
        largest_component: largest,
        second_component: second,
        alarm: largest > cfg.component_threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_graph::er::{gnp, gnp_planted, PlantedConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn null_graph_stays_quiet() {
        let mut r = StdRng::seed_from_u64(1);
        let n = 50_000;
        let p1 = 0.65 / n as f64; // same margin below 1/n as the paper
        let cfg = ErTestConfig::scaled(n, p1);
        for _ in 0..5 {
            let g = gnp(&mut r, n, p1);
            let res = er_test(&g, cfg);
            assert!(
                !res.alarm,
                "false alarm: largest {} vs threshold {}",
                res.largest_component, cfg.component_threshold
            );
        }
    }

    #[test]
    fn planted_pattern_fires_alarm() {
        let mut r = StdRng::seed_from_u64(2);
        let n = 50_000;
        let p1 = 0.65 / n as f64;
        let cfg = ErTestConfig::scaled(n, p1);
        let (g, _) = gnp_planted(
            &mut r,
            PlantedConfig {
                n,
                p1,
                n1: 140,
                p2: 0.17,
            },
        );
        let res = er_test(&g, cfg);
        assert!(
            res.alarm,
            "missed pattern: largest {} vs threshold {}",
            res.largest_component, cfg.component_threshold
        );
        // The giant dwarfs the runner-up.
        assert!(res.largest_component > 3 * res.second_component.max(1));
    }

    #[test]
    fn alarm_threshold_is_strict_inequality() {
        let mut b = dcs_graph::GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let g = b.build();
        let res = er_test(
            &g,
            ErTestConfig {
                component_threshold: 3,
            },
        );
        assert_eq!(res.largest_component, 3);
        assert!(!res.alarm, "component == threshold must not alarm");
    }

    #[test]
    fn empty_graph() {
        let g = dcs_graph::GraphBuilder::new(0).build();
        let res = er_test(&g, ErTestConfig::paper_default());
        assert_eq!(res.largest_component, 0);
        assert!(!res.alarm);
    }

    #[test]
    #[should_panic(expected = "phase transition")]
    fn supercritical_p1_rejected() {
        ErTestConfig::scaled(100, 0.02);
    }

    #[test]
    fn paper_threshold_value() {
        assert_eq!(ErTestConfig::paper_default().component_threshold, 100);
    }
}
