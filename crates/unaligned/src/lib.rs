//! Unaligned-case analysis (paper Section IV).
//!
//! Digests arrive as stacks of short rows (1,024 bits) grouped by
//! flow-split group. The analysis converts the row matrix into a graph on
//! groups and reads the graph:
//!
//! * [`lambda`] — the weight-aware hypergeometric threshold tables
//!   Λ = {λᵢⱼ} that make the null graph Erdős–Rényi with a uniform edge
//!   probability;
//! * [`graphbuild`] — pairwise row correlation (the dominant cost the
//!   paper analyses in Section IV-D) in serial, crossbeam-parallel and
//!   vertex-sampled variants;
//! * [`ertest`] — the phase-transition statistical test: alarm when the
//!   largest connected component outgrows what G(n, p₁) can produce;
//! * [`corefind`] — the 3-step greedy detection (Figure 10): peel to a
//!   core, keep outsiders with ≥ d edges into the core, peel again, report
//!   the union;
//! * [`prescreen`] — the conservative pair screen (weight classes +
//!   band signatures) that prunes row pairs provably unable to pass the
//!   λ test, leaving the graph bit-identical;
//! * [`incremental`] — the cross-epoch delta engine: persisting rows
//!   keep their previous edge results, only changed groups are
//!   re-tested, with a periodic full-rebuild equality audit;
//! * [`matchmodel`] — the offset-sampling match-probability model
//!   (`1 − e^(−k²/536)`) and the resulting pattern edge probability p₂;
//! * [`thresholds`] — the non-naturally-occurring cluster bound of
//!   eqs. (2)–(3) with brute-force co-tuning of (p₁, d);
//! * [`multi`] — sub-cluster separation on top of the single-cluster
//!   detector (the layered technique Section II-D assumes).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corefind;
pub mod ertest;
pub mod graphbuild;
pub mod incremental;
pub mod lambda;
pub mod matchmodel;
pub mod multi;
pub mod prescreen;
pub mod thresholds;

pub use corefind::{find_pattern, CoreFindConfig, PatternResult};
pub use ertest::{er_test, ErTestConfig, ErTestResult};
pub use graphbuild::{
    build_group_graph, build_group_graph_parallel, build_group_graph_prescreened,
    build_group_graph_sampled, expand_core_over_groups, sampled_find_pattern, GraphBuildStats,
    GroupLayout,
};
pub use incremental::{EpochStats, IncrementalConfig, IncrementalCorrelator};
pub use lambda::LambdaTable;
pub use matchmodel::{expected_null_overlap, offset_match_prob, pattern_edge_prob, MatchModel};
pub use multi::{find_patterns_multi, split_clusters, SeparatedPattern};
pub use prescreen::{PreScreen, ScreenConfig};
pub use thresholds::{cluster_threshold, ClusterThreshold};
