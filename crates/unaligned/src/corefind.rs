//! The 3-step greedy detection algorithm (paper Figure 10 + Section IV-B).
//!
//! 1. build the detection graph with a *laxer* λ′ table (p₁′ well above
//!    the phase transition — the statistical-test graph is too sparse to
//!    localise the pattern);
//! 2. `FindCore`: peel minimum-degree vertices until β remain — the
//!    stochastically optimal strategy under the paper's degree-oracle
//!    model (Appendix);
//! 3. keep non-core vertices with at least `d` edges into the core, peel
//!    the graph they induce again for a second core, and report
//!    `V_core ∪ V_2nd_core`.

use dcs_graph::peel::peel_to_size;
use dcs_graph::{Graph, GraphBuilder};

/// Tuning of the 3-step detection.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct CoreFindConfig {
    /// Peel target β: the size of the first core. Configured by
    /// Monte-Carlo so that, above the detectable threshold, the core is
    /// mostly pattern vertices.
    pub beta: usize,
    /// Minimum edges into the core for a non-core vertex to survive
    /// step 3.
    pub d: usize,
}

impl Default for CoreFindConfig {
    fn default() -> Self {
        CoreFindConfig { beta: 50, d: 2 }
    }
}

/// Result of the 3-step detection.
#[derive(Debug, Clone)]
pub struct PatternResult {
    /// The first core `V_core` (sorted).
    pub core: Vec<u32>,
    /// The second core `V_2nd_core` (sorted, disjoint from `core`).
    pub second_core: Vec<u32>,
}

impl PatternResult {
    /// The reported vertex set `V_core ∪ V_2nd_core`, sorted.
    pub fn vertices(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.core.iter().chain(&self.second_core).copied().collect();
        v.sort_unstable();
        v
    }
}

/// Runs steps 2–3 on an already-built detection graph.
pub fn find_pattern(graph: &Graph, cfg: CoreFindConfig) -> PatternResult {
    // Step 2: FindCore.
    let core = peel_to_size(graph, cfg.beta);
    let core_set: std::collections::HashSet<u32> = core.iter().copied().collect();

    // Step 3: survivors = non-core vertices with >= d edges into the core.
    let survivors: Vec<u32> = (0..graph.n() as u32)
        .filter(|v| !core_set.contains(v))
        .filter(|&v| {
            graph
                .neighbors(v)
                .iter()
                .filter(|u| core_set.contains(u))
                .count()
                >= cfg.d
        })
        .collect();

    // Induce H on the survivors and FindCore again.
    let index_of: std::collections::HashMap<u32, u32> = survivors
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i as u32))
        .collect();
    let mut hb = GraphBuilder::new(survivors.len());
    for &v in &survivors {
        for &u in graph.neighbors(v) {
            if u > v {
                if let Some((&iv, &iu)) = index_of.get(&v).zip(index_of.get(&u)) {
                    hb.add_edge(iv, iu);
                }
            }
        }
    }
    let h = hb.build();
    let beta2 = cfg.beta.min(h.n());
    let second_core: Vec<u32> = peel_to_size(&h, beta2)
        .into_iter()
        .map(|i| survivors[i as usize])
        .collect();

    let mut core = core;
    core.sort_unstable();
    let mut second_core = second_core;
    second_core.sort_unstable();
    PatternResult { core, second_core }
}

/// Precision/recall of a reported vertex set against the ground-truth
/// pattern — the paper's per-router false positive (reported but never saw
/// the content) and false negative (saw the content but missed) rates.
pub fn precision_recall(reported: &[u32], truth: &[u32]) -> (f64, f64) {
    let truth_set: std::collections::HashSet<u32> = truth.iter().copied().collect();
    let hits = reported.iter().filter(|v| truth_set.contains(v)).count();
    let precision = if reported.is_empty() {
        1.0
    } else {
        hits as f64 / reported.len() as f64
    };
    let recall = if truth.is_empty() {
        1.0
    } else {
        hits as f64 / truth.len() as f64
    };
    (precision, recall)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_graph::er::{gnp_planted, PlantedConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn recovers_planted_pattern() {
        let mut r = StdRng::seed_from_u64(1);
        let n = 20_000;
        let (g, pattern) = gnp_planted(
            &mut r,
            PlantedConfig {
                n,
                p1: 0.8 / n as f64,
                n1: 120,
                p2: 0.17,
            },
        );
        let res = find_pattern(&g, CoreFindConfig { beta: 60, d: 2 });
        let reported = res.vertices();
        let (precision, recall) = precision_recall(&reported, &pattern);
        assert!(
            precision > 0.8,
            "precision {precision} too low ({} reported)",
            reported.len()
        );
        assert!(recall > 0.3, "recall {recall} too low");
    }

    #[test]
    fn second_core_adds_vertices() {
        let mut r = StdRng::seed_from_u64(2);
        let n = 20_000;
        let (g, pattern) = gnp_planted(
            &mut r,
            PlantedConfig {
                n,
                p1: 0.8 / n as f64,
                n1: 150,
                p2: 0.2,
            },
        );
        let res = find_pattern(&g, CoreFindConfig { beta: 60, d: 2 });
        assert!(
            !res.second_core.is_empty(),
            "step 3 should recover more pattern vertices"
        );
        // Second core should also be mostly pattern.
        let (p2nd, _) = precision_recall(&res.second_core, &pattern);
        assert!(p2nd > 0.6, "second-core precision {p2nd}");
        // Cores are disjoint.
        for v in &res.second_core {
            assert!(!res.core.contains(v));
        }
    }

    #[test]
    fn null_graph_core_is_incoherent() {
        // Without a pattern the core exists (β survivors always remain)
        // but has almost no internal edges.
        let mut r = StdRng::seed_from_u64(3);
        let n = 20_000;
        let (g, _) = gnp_planted(
            &mut r,
            PlantedConfig {
                n,
                p1: 0.8 / n as f64,
                n1: 0,
                p2: 0.0,
            },
        );
        let res = find_pattern(&g, CoreFindConfig { beta: 60, d: 2 });
        let degs = dcs_graph::peel::induced_degrees(&g, &res.core);
        let internal_edges: usize = degs.iter().sum::<usize>() / 2;
        // A pattern core of 60 vertices at p2 = 0.17 would carry ~300
        // internal edges; a null core carries a handful.
        assert!(
            internal_edges < 60,
            "null core has {internal_edges} internal edges"
        );
    }

    #[test]
    fn beta_larger_than_graph() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1);
        let g = b.build();
        let res = find_pattern(&g, CoreFindConfig { beta: 50, d: 1 });
        assert_eq!(res.core.len(), 5);
        assert!(res.second_core.is_empty());
    }

    #[test]
    fn precision_recall_edges() {
        assert_eq!(precision_recall(&[], &[]), (1.0, 1.0));
        assert_eq!(precision_recall(&[1, 2], &[]), (0.0, 1.0));
        assert_eq!(precision_recall(&[], &[1]), (1.0, 0.0));
        let (p, r) = precision_recall(&[1, 2, 3, 4], &[3, 4, 5, 6]);
        assert_eq!((p, r), (0.5, 0.5));
    }
}
