//! Non-naturally-occurring cluster thresholds (paper Section IV-C,
//! equations 2–3, Table II).
//!
//! For a graph of n group-vertices with background edge probability p₁ and
//! pattern edge probability p₂ (from the match model), the smallest
//! meaningful pattern size m must admit an edge-count cut d with:
//!
//! * **low false positive** — the Markov bound
//!   `C(n,m) · P[Binom(m(m−1)/2, p₁) > d]` below `fp_bound` (eq. 2);
//! * **low false negative** — `P[Binom(m(m−1)/2, p₂) > d]` at least
//!   `power` (eq. 3 as printed gives the CDF; the text says "the
//!   probability … to have **more than d edges** is large enough", so the
//!   survival form is used here).
//!
//! The paper co-tunes p₁ and d numerically ("we implemented an efficient
//! numerical analysis procedure that searches for the best combination of
//! p₁ and d in a brute-force way"); [`cluster_threshold_cotuned`] does the
//! same over a p₁ grid, with p₂ recomputed per p₁ through the Λ/match
//! model (a laxer p₁ lowers λ, which raises p₂).

use crate::lambda::{p_star_for_edge_prob, LambdaTable};
use crate::matchmodel::MatchModel;
use dcs_stats::{binomial_sf, ln_choose};

/// Natural log of eq. (2): the false-positive Markov bound for a cluster
/// of `m` vertices and `d` edges under background p₁.
pub fn ln_cluster_natural(n: u64, m: u64, d: u64, p1: f64) -> f64 {
    let pairs = m * (m - 1) / 2;
    ln_choose(n, m) + binomial_sf(d as i64, pairs, p1).ln()
}

/// Eq. (3) (survival form): the probability a pattern cluster of `m`
/// vertices with edge probability p₂ shows more than `d` edges.
pub fn cluster_power(m: u64, d: u64, p2: f64) -> f64 {
    let pairs = m * (m - 1) / 2;
    binomial_sf(d as i64, pairs, p2)
}

/// A feasible (m, d) pair at a given p₁/p₂ operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterThreshold {
    /// Minimum pattern size (vertices).
    pub m: u64,
    /// The edge-count cut that certifies it.
    pub d: u64,
    /// Background edge probability used.
    pub p1: f64,
    /// Pattern edge probability used.
    pub p2: f64,
}

/// Smallest `m` (with its witness `d`) such that some cut `d` satisfies
/// both eq. (2) ≤ `fp_bound` and eq. (3) ≥ `power`, for fixed p₁ and p₂.
///
/// Returns `None` if no `m ≤ m_max` works.
pub fn cluster_threshold(
    n: u64,
    p1: f64,
    p2: f64,
    fp_bound: f64,
    power: f64,
    m_max: u64,
) -> Option<ClusterThreshold> {
    assert!(fp_bound > 0.0 && fp_bound < 1.0, "fp bound in (0,1)");
    assert!(power > 0.0 && power < 1.0, "power in (0,1)");
    assert!(p2 > p1, "pattern edges must be likelier than background");
    let ln_fp = fp_bound.ln();
    for m in 2..=m_max {
        let pairs = m * (m - 1) / 2;
        // d must be small enough for power: largest d with survival ≥ power.
        // Survival is decreasing in d; binary search its boundary.
        let d_power = {
            if cluster_power(m, 0, p2) < power {
                continue; // even d = 0 lacks power
            }
            let (mut lo, mut hi) = (0u64, pairs); // lo ok, hi fails
            if cluster_power(m, pairs, p2) >= power {
                pairs
            } else {
                while hi - lo > 1 {
                    let mid = lo + (hi - lo) / 2;
                    if cluster_power(m, mid, p2) >= power {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                lo
            }
        };
        // d must be large enough for the FP bound: smallest d meeting it.
        let d_fp = {
            if ln_cluster_natural(n, m, d_power, p1) > ln_fp {
                continue; // even the largest usable d fails the FP bound
            }
            let (mut lo, mut hi) = (0u64, d_power); // hi ok
            if ln_cluster_natural(n, m, 0, p1) <= ln_fp {
                0
            } else {
                while hi - lo > 1 {
                    let mid = lo + (hi - lo) / 2;
                    if ln_cluster_natural(n, m, mid, p1) <= ln_fp {
                        hi = mid;
                    } else {
                        lo = mid;
                    }
                }
                hi
            }
        };
        if d_fp <= d_power {
            return Some(ClusterThreshold { m, d: d_fp, p1, p2 });
        }
    }
    None
}

/// Brute-force co-tuning of (p₁, d) over a grid (the paper's numerical
/// procedure): for content of `g` packets, each candidate p₁ implies a λ
/// table, hence a p₂ from the match model; report the smallest m found.
pub fn cluster_threshold_cotuned(
    n: u64,
    g: usize,
    row_pairs: usize,
    p1_grid: &[f64],
    fp_bound: f64,
    power: f64,
    m_max: u64,
) -> Option<ClusterThreshold> {
    let model = MatchModel::paper_default(g);
    let mut best: Option<ClusterThreshold> = None;
    for &p1 in p1_grid {
        let p_star = p_star_for_edge_prob(p1, row_pairs);
        let table = LambdaTable::new(model.n_bits, p_star);
        let lam = table.lambda(model.row_weight as u32, model.row_weight as u32);
        let p2 = model.pattern_edge_prob(lam, p_star);
        if p2 <= p1 {
            continue;
        }
        if let Some(t) = cluster_threshold(n, p1, p2, fp_bound, power, m_max) {
            if best.is_none_or(|b| t.m < b.m) {
                best = Some(t);
            }
        }
    }
    best
}

/// The p₁ grid used by the Table-II reproduction: log-spaced between a
/// couple of decades below the phase transition and a decade above it
/// (the detection graph may exceed 1/n; only the *test* graph must not).
pub fn default_p1_grid(n: u64) -> Vec<f64> {
    let base = 1.0 / n as f64;
    [0.05, 0.1, 0.2, 0.4, 0.65, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0]
        .iter()
        .map(|&c| c * base)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_cluster_natural_decreases_in_d() {
        let n = 102_400;
        let mut prev = f64::INFINITY;
        for d in [0u64, 2, 5, 10, 20] {
            let v = ln_cluster_natural(n, 50, d, 1e-5);
            assert!(v <= prev);
            prev = v;
        }
    }

    #[test]
    fn cluster_power_monotonicity() {
        // More vertices or higher p2 => more power at a fixed cut (use a
        // p2 small enough that neither side saturates at 1).
        assert!(cluster_power(60, 10, 0.005) > cluster_power(40, 10, 0.005));
        assert!(cluster_power(40, 10, 0.02) > cluster_power(40, 10, 0.005));
        assert!(cluster_power(40, 2, 0.005) > cluster_power(40, 10, 0.005));
    }

    #[test]
    fn threshold_exists_at_paper_scale() {
        // g = 100 packets gives p2 ≈ 0.17 · 0.05 ≈ 0.009 through the match
        // model; with the paper's parameters the minimum cluster lands in
        // the ~95-vertex regime (Table II).
        let t = cluster_threshold(102_400, 0.65e-5, 0.009, 1e-10, 0.95, 1_000)
            .expect("threshold must exist");
        assert!(
            (60..=250).contains(&t.m),
            "m = {} out of the plausible band around the paper's 95",
            t.m
        );
        // The witness cut actually satisfies both sides.
        assert!(ln_cluster_natural(102_400, t.m, t.d, t.p1) <= (1e-10f64).ln());
        assert!(cluster_power(t.m, t.d, t.p2) >= 0.95);
    }

    #[test]
    fn threshold_shrinks_with_stronger_signal() {
        let weak = cluster_threshold(102_400, 0.65e-5, 0.005, 1e-10, 0.95, 2_000).unwrap();
        let strong = cluster_threshold(102_400, 0.65e-5, 0.02, 1e-10, 0.95, 2_000).unwrap();
        assert!(
            strong.m < weak.m,
            "stronger p2 must need fewer vertices: {} vs {}",
            strong.m,
            weak.m
        );
    }

    #[test]
    fn no_threshold_when_signal_too_weak() {
        // p2 barely above p1: no m ≤ 50 can separate them.
        let t = cluster_threshold(102_400, 1e-5, 2e-5, 1e-10, 0.95, 50);
        assert!(t.is_none());
    }

    #[test]
    fn cotuned_threshold_monotone_in_g() {
        // Table II: larger content ⇒ smaller minimum cluster.
        let n = 102_400;
        let grid = default_p1_grid(n);
        let m100 = cluster_threshold_cotuned(n, 100, 100, &grid, 1e-10, 0.95, 2_000)
            .expect("g=100 feasible")
            .m;
        let m140 = cluster_threshold_cotuned(n, 140, 100, &grid, 1e-10, 0.95, 2_000)
            .expect("g=140 feasible")
            .m;
        assert!(
            m140 < m100,
            "g=140 needs m={m140}, should be below g=100's m={m100}"
        );
    }

    #[test]
    #[should_panic(expected = "likelier")]
    fn p2_below_p1_rejected() {
        cluster_threshold(1000, 0.5, 0.1, 1e-10, 0.9, 100);
    }
}
