//! Conservative pair prescreen for the group-graph build.
//!
//! The exact edge test between two rows of weights `wa`, `wb` is
//! `common_ones > λ(wa, wb)`. Before paying an AND-popcount (and a λ
//! lookup) per row pair, the prescreen buckets rows by **weight class**
//! and attaches a small **band signature** per row; pairs are pruned only
//! when one of three *proofs* shows the exact test cannot pass, so the
//! resulting graph is identical to the all-pairs build — never
//! approximate:
//!
//! 1. **Zero weight** — a row with no ones shares no ones:
//!    `common = 0 ≤ λ` (λ ≥ 0). Matches the skip the all-pairs kernel
//!    already performs.
//! 2. **Weight class** — `common ≤ min(wa, wb)` always, and λ is
//!    monotone non-decreasing in each weight (hypergeometric stochastic
//!    dominance; pinned by a proptest in [`crate::lambda`]). Rows are
//!    classed by `w / class_width`, and each class is anchored at the
//!    minimum and maximum *occupied* nonzero weights `[lo, hi]` it
//!    actually holds this epoch (data-adaptive, so a class is never
//!    diluted by theoretical members it doesn't have). For a class pair,
//!    `λ(lo_a, lo_b) ≤ λ(wa, wb)` for every member pair, so
//!    `min(hi_a, hi_b) ≤ λ(lo_a, lo_b)` prunes the whole class pair,
//!    and per pair `min(wa, wb) ≤ λ(lo_a, lo_b)` prunes with no λ
//!    lookup — one λ evaluation per occupied class pair total.
//! 3. **Band signature** — each row's words are split into `bands`
//!    ranges, each hashed to 64 bits ([`dcs_bitmap::sig`]). Signatures
//!    are pure functions of the words, so `d` differing bands prove
//!    Hamming distance ≥ `d`, and `common = (wa + wb − dist) / 2` gives
//!    `common ≤ (wa + wb − d) / 2`. If that bound (tightened by
//!    `min(wa, wb)`) is ≤ `λ(lo_a, lo_b) ≤ λ(wa, wb)`, prune.
//!
//! Every proof bounds `common` from above and λ from below, so a pruned
//! pair can never satisfy `common > λ(wa, wb)` — the screen is
//! **conservative by construction**. (The converse is free: unpruned
//! pairs just pay the exact test.) All three checks are pure functions of
//! the row data, independent of thread/shard partition, so screening
//! decisions — and the screened/exact pair counters — are deterministic
//! across compute budgets.
//!
//! In the paper's dense null regime (rows ~44 % full, near-equal
//! weights) overlap concentrates tightly under λ and checks 2–3 rarely
//! fire — there the engine's win comes from cross-epoch delta
//! maintenance ([`crate::incremental`]). The class and band checks earn
//! their keep on skewed traffic: weight spread across flow-split groups,
//! sparse epochs, and quiet leaves behind the aggregation tier.

use crate::lambda::LambdaTable;
use dcs_bitmap::{sig, RowMatrix};
use dcs_parallel::{run_jobs, split_range};

/// Prescreen shape knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ScreenConfig {
    /// Band signatures per row (word ranges hashed to 64 bits each).
    pub bands: usize,
    /// Weight-class bucket width in bits (class = `weight / class_width`).
    pub class_width: u32,
}

impl Default for ScreenConfig {
    fn default() -> Self {
        // 8 bands over the paper's 16-word rows = 2 words per band;
        // 32-bit classes keep the class-pair λ table tiny (≤ 33 classes
        // at 1,024-bit rows) while separating weight regimes.
        ScreenConfig {
            bands: 8,
            class_width: 32,
        }
    }
}

/// Per-epoch prescreen state: row weights, classes, band signatures, and
/// the class-pair connectability table for one λ table. Buffers are
/// reused across epochs ([`PreScreen::rebuild`] clears and refills), so
/// steady-state epochs of one deployment shape allocate nothing — the
/// same pooling contract as the centre's epoch scratch.
#[derive(Debug, Default)]
pub struct PreScreen {
    bands: usize,
    class_width: u32,
    n_classes: usize,
    weights: Vec<u32>,
    class: Vec<u32>,
    sigs: Vec<u64>,
    /// `connectable[ca * n_classes + cb]`: may any pair from these
    /// classes pass the exact test? (Symmetric; both triangles filled.)
    connectable: Vec<bool>,
    /// `λ(lo_a, lo_b)` per class pair, with `lo` the minimum occupied
    /// nonzero weight of the class — the λ lower bound the per-pair
    /// weight and band checks compare against.
    lambda_lo: Vec<u32>,
}

impl PreScreen {
    /// An empty prescreen (rebuild before use).
    pub fn new() -> Self {
        PreScreen::default()
    }

    /// Number of rows screened.
    pub fn nrows(&self) -> usize {
        self.weights.len()
    }

    /// Bands per row in the current build.
    pub fn bands(&self) -> usize {
        self.bands
    }

    /// Per-row weights (index = row).
    pub fn weights(&self) -> &[u32] {
        &self.weights
    }

    /// Band signatures of row `r`.
    pub fn row_sigs(&self, r: usize) -> &[u64] {
        &self.sigs[r * self.bands..(r + 1) * self.bands]
    }

    /// Rebuilds the screen for `rows` against `table`, sharding the
    /// per-row pass (weights + signatures + classes) over up to
    /// `workers` threads. Results are written into disjoint row ranges,
    /// so the build is bit-identical for any worker count.
    pub fn rebuild(
        &mut self,
        rows: &RowMatrix,
        table: &LambdaTable,
        cfg: ScreenConfig,
        workers: usize,
    ) {
        self.rebuild_inner(rows, table, cfg, workers, true);
    }

    /// Shared rebuild body; `compute_sigs` decides whether the sharded
    /// per-row pass also extracts band signatures (plain rebuild) or
    /// `self.sigs` already holds them (fused stacking path).
    fn rebuild_inner(
        &mut self,
        rows: &RowMatrix,
        table: &LambdaTable,
        cfg: ScreenConfig,
        workers: usize,
        compute_sigs: bool,
    ) {
        assert!(cfg.bands > 0, "prescreen needs at least one band");
        assert!(cfg.class_width > 0, "class width must be positive");
        self.bands = cfg.bands;
        self.class_width = cfg.class_width;
        let nrows = rows.nrows();
        let wpr = rows.words_per_row();
        self.weights.clear();
        self.weights.resize(nrows, 0);
        self.class.clear();
        self.class.resize(nrows, 0);
        if compute_sigs {
            self.sigs.clear();
            self.sigs.resize(nrows * cfg.bands, 0);
        }

        let ranges = split_range(nrows, workers.max(1));
        let mut jobs = Vec::with_capacity(ranges.len());
        {
            let mut wrest: &mut [u32] = &mut self.weights;
            let mut crest: &mut [u32] = &mut self.class;
            let mut srest: &mut [u64] = &mut self.sigs;
            for range in ranges {
                let len = range.end - range.start;
                let (w, wtail) = wrest.split_at_mut(len);
                let (c, ctail) = crest.split_at_mut(len);
                wrest = wtail;
                crest = ctail;
                let s = if compute_sigs {
                    let (s, stail) = srest.split_at_mut(len * cfg.bands);
                    srest = stail;
                    Some(s)
                } else {
                    None
                };
                jobs.push((range, w, c, s));
            }
        }
        let width = cfg.class_width;
        run_jobs(jobs, workers.max(1), |(range, w, c, s)| {
            if let Some(s) = s {
                let data = &rows.as_words()[range.start * wpr..range.end * wpr];
                sig::band_signatures_into(data, wpr, range.end - range.start, cfg.bands, s);
            }
            for (local, r) in range.enumerate() {
                let wt = rows.row_weight(r);
                w[local] = wt;
                c[local] = wt / width;
            }
        });

        // Class-pair connectability: one λ evaluation per *occupied*
        // class pair (real digests occupy a narrow weight band, so this
        // is a handful of memoised quantiles). Classes are anchored at
        // the occupied nonzero weight range — zero-weight rows never
        // reach the class check (proof 1 fires first), so they must not
        // drag a class's λ anchor down to λ(0, ·) = 0.
        let ncols = rows.ncols() as u32;
        self.n_classes = (ncols / width) as usize + 1;
        let nc = self.n_classes;
        self.connectable.clear();
        self.connectable.resize(nc * nc, false);
        self.lambda_lo.clear();
        self.lambda_lo.resize(nc * nc, 0);
        let mut class_lo = vec![u32::MAX; nc];
        let mut class_hi = vec![0u32; nc];
        for (&c, &w) in self.class.iter().zip(&self.weights) {
            if w > 0 {
                let c = c as usize;
                class_lo[c] = class_lo[c].min(w);
                class_hi[c] = class_hi[c].max(w);
            }
        }
        for ca in 0..nc {
            if class_hi[ca] == 0 {
                continue;
            }
            for cb in ca..nc {
                if class_hi[cb] == 0 {
                    continue;
                }
                let lam_lo = table.lambda(class_lo[ca], class_lo[cb]);
                let conn = class_hi[ca].min(class_hi[cb]) > lam_lo;
                self.connectable[ca * nc + cb] = conn;
                self.connectable[cb * nc + ca] = conn;
                self.lambda_lo[ca * nc + cb] = lam_lo;
                self.lambda_lo[cb * nc + ca] = lam_lo;
            }
        }
    }

    /// [`PreScreen::rebuild`] with the band signatures already in hand —
    /// the fused stacking path computes them while the rows are being
    /// copied ([`RowMatrix::fill_rows_sharded_with_sigs`]
    /// (dcs_bitmap::RowMatrix::fill_rows_sharded_with_sigs)), so this
    /// variant swaps them in and shards only the weight/class pass. The
    /// resulting screen is bit-identical to a plain rebuild: signatures
    /// are a pure per-row function of the matrix, wherever computed.
    ///
    /// `sigs` is taken by swap (its previous contents come back out) so
    /// steady-state epochs keep recycling both buffers without copying.
    ///
    /// # Panics
    /// Panics unless `sigs.len() == rows.nrows() * cfg.bands`.
    pub fn rebuild_with_sigs(
        &mut self,
        rows: &RowMatrix,
        table: &LambdaTable,
        cfg: ScreenConfig,
        workers: usize,
        sigs: &mut Vec<u64>,
    ) {
        assert_eq!(
            sigs.len(),
            rows.nrows() * cfg.bands,
            "precomputed signatures disagree with the matrix shape"
        );
        std::mem::swap(&mut self.sigs, sigs);
        self.rebuild_inner(rows, table, cfg, workers, false);
    }

    /// Whether the row pair `(ra, rb)` needs the exact AND-popcount test:
    /// `false` means one of the conservative proofs shows
    /// `common ≤ λ(wa, wb)`, so the pair cannot be an edge.
    #[inline]
    pub fn needs_exact(&self, ra: usize, rb: usize) -> bool {
        let (wa, wb) = (self.weights[ra], self.weights[rb]);
        // Proof 1: zero weight.
        if wa == 0 || wb == 0 {
            return false;
        }
        // Proof 2: weight bounds against the class-pair λ lower bound —
        // whole-class first, then the sharper per-pair min weight.
        let idx = self.class[ra] as usize * self.n_classes + self.class[rb] as usize;
        if !self.connectable[idx] || wa.min(wb) <= self.lambda_lo[idx] {
            return false;
        }
        // Proof 3: band-signature Hamming lower bound.
        let (sa, sb) = (self.row_sigs(ra), self.row_sigs(rb));
        let d_lb = sa.iter().zip(sb).filter(|(x, y)| x != y).count() as u32;
        if d_lb > 0 {
            let ub = ((wa + wb).saturating_sub(d_lb) / 2).min(wa.min(wb));
            if ub <= self.lambda_lo[idx] {
                return false;
            }
        }
        true
    }

    /// Capacities of the reusable buffers (steady-state no-allocation
    /// diagnostics, mirroring [`dcs_bitmap::RowMatrix::word_capacity`]).
    pub fn capacities(&self) -> [usize; 2] {
        [self.weights.capacity(), self.sigs.capacity()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_bitmap::Bitmap;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const NBITS: usize = 1024;

    fn matrix_with_weights(rng: &mut StdRng, weights: &[usize]) -> RowMatrix {
        let mut m = RowMatrix::new(NBITS);
        for &w in weights {
            let mut bm = Bitmap::new(NBITS);
            while (bm.weight() as usize) < w {
                bm.set(rng.gen_range(0..NBITS));
            }
            m.push_bitmap(&bm);
        }
        m
    }

    /// The one property everything rests on: a pruned pair never passes
    /// the exact test.
    #[test]
    fn pruned_pairs_never_pass_exact_test() {
        let mut rng = StdRng::seed_from_u64(11);
        // Mixed regimes: zero rows, light rows, dense paper-like rows.
        let weights = [0usize, 3, 17, 40, 120, 300, 446, 446, 450, 512, 900];
        let m = matrix_with_weights(&mut rng, &weights);
        let table = LambdaTable::new(NBITS, 1e-4);
        let mut screen = PreScreen::new();
        for workers in [1usize, 3] {
            screen.rebuild(&m, &table, ScreenConfig::default(), workers);
            for a in 0..m.nrows() {
                for b in (a + 1)..m.nrows() {
                    if !screen.needs_exact(a, b) {
                        let lam = table.lambda(m.row_weight(a), m.row_weight(b));
                        assert!(
                            m.common_ones(a, b) <= lam,
                            "screen pruned a passing pair ({a},{b})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn rebuild_is_worker_count_invariant() {
        let mut rng = StdRng::seed_from_u64(5);
        let weights: Vec<usize> = (0..37).map(|i| (i * 29) % 700).collect();
        let m = matrix_with_weights(&mut rng, &weights);
        let table = LambdaTable::new(NBITS, 1e-5);
        let mut base = PreScreen::new();
        base.rebuild(&m, &table, ScreenConfig::default(), 1);
        for workers in [2usize, 5, 8] {
            let mut s = PreScreen::new();
            s.rebuild(&m, &table, ScreenConfig::default(), workers);
            assert_eq!(s.weights(), base.weights(), "workers={workers}");
            for r in 0..m.nrows() {
                assert_eq!(s.row_sigs(r), base.row_sigs(r), "row {r} workers={workers}");
            }
        }
    }

    #[test]
    fn rebuild_with_precomputed_sigs_is_bit_identical() {
        let mut rng = StdRng::seed_from_u64(6);
        let weights: Vec<usize> = (0..23).map(|i| (i * 31) % 650).collect();
        let m = matrix_with_weights(&mut rng, &weights);
        let table = LambdaTable::new(NBITS, 1e-5);
        let cfg = ScreenConfig::default();
        let mut base = PreScreen::new();
        base.rebuild(&m, &table, cfg, 1);
        for workers in [1usize, 4] {
            // Signatures from the fused stacking pass, at a shard count
            // deliberately different from the screen's worker count.
            let mut sigs = Vec::new();
            m.band_signatures_into(cfg.bands, &mut sigs);
            let mut s = PreScreen::new();
            s.rebuild_with_sigs(&m, &table, cfg, workers, &mut sigs);
            assert_eq!(s.weights(), base.weights(), "workers={workers}");
            for r in 0..m.nrows() {
                assert_eq!(s.row_sigs(r), base.row_sigs(r), "row {r}");
            }
            for a in 0..m.nrows() {
                for b in (a + 1)..m.nrows() {
                    assert_eq!(
                        s.needs_exact(a, b),
                        base.needs_exact(a, b),
                        "pair ({a},{b}) workers={workers}"
                    );
                }
            }
        }
    }

    #[test]
    fn zero_and_light_rows_are_pruned() {
        let mut rng = StdRng::seed_from_u64(7);
        // λ(446, 446) at p*=1e-4 is far above 2, so a weight-2 row can
        // never reach it: class prune must fire.
        let m = matrix_with_weights(&mut rng, &[0, 2, 446, 446]);
        let table = LambdaTable::new(NBITS, 1e-4);
        let mut screen = PreScreen::new();
        screen.rebuild(&m, &table, ScreenConfig::default(), 1);
        assert!(!screen.needs_exact(0, 2), "zero-weight row must be pruned");
        assert!(!screen.needs_exact(1, 2), "λ-unreachable class pair pruned");
        assert!(screen.needs_exact(2, 3), "dense pair needs the exact test");
    }

    #[test]
    fn identical_rows_survive_the_screen() {
        // Identical dense rows share all their ones — the screen must
        // keep them (signatures equal, d_lb = 0).
        let mut rng = StdRng::seed_from_u64(9);
        let m0 = matrix_with_weights(&mut rng, &[500]);
        let mut m = RowMatrix::new(NBITS);
        m.push_words(m0.row(0));
        m.push_words(m0.row(0));
        let table = LambdaTable::new(NBITS, 1e-4);
        let mut screen = PreScreen::new();
        screen.rebuild(&m, &table, ScreenConfig::default(), 1);
        assert!(screen.needs_exact(0, 1));
    }

    #[test]
    fn steady_state_rebuild_reuses_buffers() {
        let mut rng = StdRng::seed_from_u64(13);
        let m = matrix_with_weights(&mut rng, &[300; 24]);
        let table = LambdaTable::new(NBITS, 1e-4);
        let mut screen = PreScreen::new();
        screen.rebuild(&m, &table, ScreenConfig::default(), 2);
        let caps = screen.capacities();
        for _ in 0..3 {
            screen.rebuild(&m, &table, ScreenConfig::default(), 2);
            assert_eq!(screen.capacities(), caps, "steady-state rebuild regrew");
        }
    }
}
