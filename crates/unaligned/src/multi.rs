//! Multi-pattern separation (paper Section II-D).
//!
//! "This cluster can contain either single common item or multiple common
//! items. The techniques that are used to separate out sub-clusters upon
//! detecting a large cluster have been maturely developed. Thus we will
//! focus on only detecting one large cluster assuming those techniques
//! can be used on top of our algorithm."
//!
//! This module supplies that layer: split a detected vertex set into
//! sub-clusters (distinct contents connect *within* themselves but only at
//! background rate *across*, so the induced subgraph's connected
//! components separate them), and iterate detection after removing each
//! found cluster to surface weaker patterns hiding behind a dominant one.

use crate::corefind::{find_pattern, CoreFindConfig};
use dcs_graph::{Graph, GraphBuilder, UnionFind};

/// Splits a reported vertex set into sub-clusters: connected components
/// of the sub-graph the vertices induce in `graph`, sorted by descending
/// size. Singleton components (vertices with no internal edge — stragglers
/// pulled in by noise) are dropped.
pub fn split_clusters(graph: &Graph, vertices: &[u32]) -> Vec<Vec<u32>> {
    let index_of: std::collections::HashMap<u32, u32> = vertices
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i as u32))
        .collect();
    let mut uf = UnionFind::new(vertices.len());
    for &v in vertices {
        for &u in graph.neighbors(v) {
            if let Some((&iv, &iu)) = index_of.get(&v).zip(index_of.get(&u)) {
                uf.union(iv, iu);
            }
        }
    }
    let mut clusters: std::collections::HashMap<u32, Vec<u32>> = std::collections::HashMap::new();
    for (i, &v) in vertices.iter().enumerate() {
        clusters.entry(uf.find(i as u32)).or_default().push(v);
    }
    let mut out: Vec<Vec<u32>> = clusters.into_values().filter(|c| c.len() >= 2).collect();
    out.sort_by_key(|c| std::cmp::Reverse(c.len()));
    for c in &mut out {
        c.sort_unstable();
    }
    out
}

/// One separated pattern.
#[derive(Debug, Clone)]
pub struct SeparatedPattern {
    /// The cluster's vertices.
    pub vertices: Vec<u32>,
    /// Edges inside the cluster (coherence diagnostic).
    pub internal_edges: usize,
}

/// Iterated detection: find a pattern, split it into sub-clusters, remove
/// everything found, and repeat on the remainder until nothing coherent
/// remains or `max_patterns` have been reported.
///
/// A cluster is *coherent* when its internal edge count is at least
/// `min_density` × its vertex count (a planted pattern has internal mean
/// degree ≥ 2·min_density; background components peter out below it).
pub fn find_patterns_multi(
    graph: &Graph,
    cfg: CoreFindConfig,
    max_patterns: usize,
    min_density: f64,
) -> Vec<SeparatedPattern> {
    assert!(min_density >= 0.0, "density bound must be non-negative");
    let mut found: Vec<SeparatedPattern> = Vec::new();
    let mut removed = vec![false; graph.n()];

    for _ in 0..max_patterns {
        // Build the remainder graph (original ids preserved via mapping).
        let alive: Vec<u32> = (0..graph.n() as u32)
            .filter(|&v| !removed[v as usize])
            .collect();
        if alive.len() < 3 {
            break;
        }
        let index_of: std::collections::HashMap<u32, u32> = alive
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32))
            .collect();
        let mut b = GraphBuilder::new(alive.len());
        for &v in &alive {
            for &u in graph.neighbors(v) {
                if u > v && !removed[u as usize] {
                    b.add_edge(index_of[&v], index_of[&u]);
                }
            }
        }
        let sub = b.build();
        if sub.m() == 0 {
            break;
        }
        let result = find_pattern(&sub, cfg);
        let reported: Vec<u32> = result
            .vertices()
            .into_iter()
            .map(|i| alive[i as usize])
            .collect();
        if reported.is_empty() {
            break;
        }
        let clusters = split_clusters(graph, &reported);
        let mut any_coherent = false;
        for cluster in clusters {
            let internal = internal_edge_count(graph, &cluster);
            if (internal as f64) >= min_density * cluster.len() as f64 {
                any_coherent = true;
                for &v in &cluster {
                    removed[v as usize] = true;
                }
                found.push(SeparatedPattern {
                    vertices: cluster,
                    internal_edges: internal,
                });
                if found.len() == max_patterns {
                    return found;
                }
            }
        }
        if !any_coherent {
            break; // remainder is noise
        }
        // Also retire the incoherent stragglers of this round so they do
        // not resurface forever.
        for v in reported {
            removed[v as usize] = true;
        }
    }
    found.sort_by_key(|p| std::cmp::Reverse(p.vertices.len()));
    found
}

/// Edges of `graph` with both endpoints in `vertices`.
pub fn internal_edge_count(graph: &Graph, vertices: &[u32]) -> usize {
    let set: std::collections::HashSet<u32> = vertices.iter().copied().collect();
    vertices
        .iter()
        .map(|&v| {
            graph
                .neighbors(v)
                .iter()
                .filter(|&&u| u > v && set.contains(&u))
                .count()
        })
        .sum()
}

/// Fraction of `reported` inside `truth` (helper for tests/benches).
pub fn overlap_fraction(reported: &[u32], truth: &[u32]) -> f64 {
    if reported.is_empty() {
        return 0.0;
    }
    let t: std::collections::HashSet<u32> = truth.iter().copied().collect();
    reported.iter().filter(|v| t.contains(v)).count() as f64 / reported.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_graph::component_sizes;
    use dcs_graph::er::add_gnp_edges;
    use dcs_stats::sample::sample_geometric;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Background G(n, p1) with two planted dense clusters at given
    /// disjoint vertex ranges.
    fn two_cluster_graph(
        rng: &mut StdRng,
        n: usize,
        p1: f64,
        c1: std::ops::Range<u32>,
        c2: std::ops::Range<u32>,
        p2: f64,
    ) -> Graph {
        let mut b = GraphBuilder::new(n);
        add_gnp_edges(rng, &mut b, n, p1);
        for range in [c1, c2] {
            let members: Vec<u32> = range.collect();
            // Plant G(|members|, p2) via skip sampling.
            let total = (members.len() * (members.len() - 1) / 2) as u64;
            let mut t = sample_geometric(rng, p2);
            while t < total {
                // Unrank within the small clique index space.
                let mut acc = 0u64;
                let mut i = 0usize;
                loop {
                    let row = (members.len() - 1 - i) as u64;
                    if acc + row > t {
                        break;
                    }
                    acc += row;
                    i += 1;
                }
                let j = i + 1 + (t - acc) as usize;
                b.add_edge(members[i], members[j]);
                t += 1 + sample_geometric(rng, p2);
            }
        }
        b.build()
    }

    #[test]
    fn split_separates_disjoint_clusters() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = two_cluster_graph(&mut rng, 2_000, 0.2 / 2_000.0, 0..40, 500..540, 0.5);
        let mixed: Vec<u32> = (0..40).chain(500..540).collect();
        let clusters = split_clusters(&g, &mixed);
        assert_eq!(clusters.len(), 2, "expected two clusters, got {clusters:?}");
        for c in &clusters {
            let in_first = c.iter().filter(|&&v| v < 40).count();
            assert!(
                in_first == 0 || in_first == c.len(),
                "cluster mixes the two patterns: {c:?}"
            );
        }
    }

    #[test]
    fn split_drops_isolated_stragglers() {
        let mut b = GraphBuilder::new(10);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let g = b.build();
        let clusters = split_clusters(&g, &[0, 1, 2, 7, 9]);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0], vec![0, 1, 2]);
    }

    #[test]
    fn multi_detection_finds_both_patterns() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 10_000;
        let g = two_cluster_graph(&mut rng, n, 2.0 / n as f64, 0..80, 4_000..4_060, 0.4);
        let cfg = CoreFindConfig { beta: 40, d: 2 };
        let patterns = find_patterns_multi(&g, cfg, 4, 1.0);
        assert!(
            patterns.len() >= 2,
            "found {} coherent patterns, wanted 2",
            patterns.len()
        );
        let truth1: Vec<u32> = (0..80).collect();
        let truth2: Vec<u32> = (4_000..4_060).collect();
        let hits1 = patterns
            .iter()
            .map(|p| overlap_fraction(&p.vertices, &truth1))
            .fold(0.0f64, f64::max);
        let hits2 = patterns
            .iter()
            .map(|p| overlap_fraction(&p.vertices, &truth2))
            .fold(0.0f64, f64::max);
        assert!(hits1 > 0.8, "no pattern matches cluster 1 well ({hits1})");
        assert!(hits2 > 0.8, "no pattern matches cluster 2 well ({hits2})");
    }

    #[test]
    fn multi_detection_on_noise_reports_nothing() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10_000;
        let mut b = GraphBuilder::new(n);
        add_gnp_edges(&mut rng, &mut b, n, 0.8 / n as f64);
        let g = b.build();
        let patterns = find_patterns_multi(&g, CoreFindConfig { beta: 40, d: 2 }, 3, 1.5);
        assert!(
            patterns.is_empty(),
            "noise produced {} 'patterns'",
            patterns.len()
        );
    }

    #[test]
    fn internal_edges_counted_once() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 0);
        b.add_edge(2, 3);
        let g = b.build();
        assert_eq!(internal_edge_count(&g, &[0, 1, 2]), 3);
        assert_eq!(internal_edge_count(&g, &[0, 3]), 0);
        assert_eq!(internal_edge_count(&g, &[]), 0);
    }

    #[test]
    fn overlap_fraction_edges() {
        assert_eq!(overlap_fraction(&[], &[1]), 0.0);
        assert_eq!(overlap_fraction(&[1, 2], &[1, 2]), 1.0);
        assert_eq!(overlap_fraction(&[1, 2, 3, 4], &[1, 2]), 0.5);
    }

    #[test]
    fn sanity_two_cluster_generator() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = two_cluster_graph(&mut rng, 1_000, 0.0, 0..20, 100..120, 1.0);
        // p2 = 1.0: both ranges become cliques.
        assert_eq!(internal_edge_count(&g, &(0..20).collect::<Vec<_>>()), 190);
        let sizes = component_sizes(&g);
        assert_eq!(sizes[0], 20);
        assert_eq!(sizes[1], 20);
    }
}
