//! Cross-epoch delta maintenance of the unaligned group graph.
//!
//! The λ edge test is a pure function of the two rows it compares, so
//! when a group's rows did not change between epochs every edge decision
//! involving only such groups is already known — rebuilding the graph
//! from scratch each epoch repeats `n²/2` group tests to rediscover it.
//! [`IncrementalCorrelator`] instead:
//!
//! 1. diffs the incoming matrix against the previous epoch's rows
//!    (exact word comparison — signatures are never trusted for
//!    equality, a hash collision would silently break the identity
//!    guarantee) to find the **changed groups**;
//! 2. re-tests only `changed × all` group pairs (deduplicating
//!    changed–changed pairs) through the conservative prescreen,
//!    confirming surviving edges into an [`IncrementalGraph`] with the
//!    current epoch stamp;
//! 3. expires incident edges that were *not* re-confirmed
//!    ([`IncrementalGraph::expire_incident_before`]) — edges between
//!    untouched groups keep their old stamps and never re-pay the test.
//!
//! Steady-state work is `O(c · n)` group tests for churn fraction `c`
//! instead of `O(n²/2)` — the headline subquadratic win on persisting
//! traffic. Correctness does not rest on trust: every
//! [`IncrementalConfig::audit_every`]-th epoch the engine runs the full
//! prescreened build anyway and asserts the edge sets are identical
//! (audit work is kept out of the pair tallies so the metrics keep
//! describing the incremental path).

use crate::graphbuild::{
    balanced_outer_indices, build_group_graph_prescreened, groups_connected_screened,
    GraphBuildStats, GroupLayout,
};
use crate::lambda::LambdaTable;
use crate::prescreen::PreScreen;
use dcs_bitmap::RowMatrix;
use dcs_graph::{Graph, IncrementalGraph};
use dcs_parallel::{map_chunks, map_workers};

/// Knobs for the incremental engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct IncrementalConfig {
    /// Run the full-rebuild equality audit every this many epochs
    /// (`0` disables the audit; `1` audits every epoch).
    pub audit_every: u64,
}

impl Default for IncrementalConfig {
    fn default() -> Self {
        IncrementalConfig { audit_every: 16 }
    }
}

/// What one incremental epoch did — the source for the engine's
/// per-epoch metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpochStats {
    /// Row pairs discharged by the conservative prescreen.
    pub pairs_screened: u64,
    /// Row pairs that ran the exact AND-popcount test.
    pub pairs_exact: u64,
    /// Rows that differed from the previous epoch.
    pub rows_changed: usize,
    /// Groups owning at least one changed row.
    pub groups_changed: usize,
    /// Live edges after the epoch.
    pub edges_live: usize,
    /// Whether this epoch paid a full from-scratch build (cold start or
    /// deployment-shape change).
    pub full_rebuild: bool,
    /// Whether the full-rebuild equality audit ran this epoch.
    pub audited: bool,
}

/// The deployment shape an incremental state is valid for; any change
/// forces a full rebuild (λ tables and group identity are shape-bound).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Shape {
    nrows: usize,
    ncols: usize,
    rows_per_group: usize,
    n_bits: usize,
    p_star_bits: u64,
}

/// Epoch-incremental group-graph correlator. Owns the previous epoch's
/// rows and the live stamped graph; feed it one matrix per epoch and it
/// returns the same [`Graph`] the from-scratch prescreened build would
/// produce, for delta cost on persisting traffic.
#[derive(Debug)]
pub struct IncrementalCorrelator {
    cfg: IncrementalConfig,
    epochs_seen: u64,
    shape: Option<Shape>,
    prev_rows: RowMatrix,
    graph: IncrementalGraph,
    changed_groups: Vec<bool>,
}

impl IncrementalCorrelator {
    /// A cold correlator: the first epoch is a full build.
    pub fn new(cfg: IncrementalConfig) -> Self {
        IncrementalCorrelator {
            cfg,
            epochs_seen: 0,
            shape: None,
            prev_rows: RowMatrix::new(64),
            graph: IncrementalGraph::new(0),
            changed_groups: Vec::new(),
        }
    }

    /// Epochs processed since construction (or the last shape change —
    /// the counter keeps running across rebuilds).
    pub fn epochs_seen(&self) -> u64 {
        self.epochs_seen
    }

    /// Live edges in the maintained graph.
    pub fn edges_live(&self) -> usize {
        self.graph.live_edges()
    }

    /// Drops all state; the next epoch is a full rebuild.
    pub fn invalidate(&mut self) {
        self.shape = None;
    }

    /// Processes one epoch: returns the group graph for `rows` —
    /// bit-identical to `build_group_graph(rows, layout, table)` — and
    /// the epoch's work accounting. `screen` must already be
    /// [rebuilt](PreScreen::rebuild) against `rows` and `table` (the
    /// centre does this in its `prescreen` stage).
    ///
    /// # Panics
    /// Panics if `threads == 0`, if the screen does not match `rows`, or
    /// if the equality audit detects divergence (an engine bug by
    /// definition — the audit exists to turn silent wrongness loud).
    pub fn epoch(
        &mut self,
        rows: &RowMatrix,
        layout: GroupLayout,
        table: &LambdaTable,
        screen: &PreScreen,
        threads: usize,
    ) -> (Graph, EpochStats) {
        assert!(threads > 0, "need at least one thread");
        let n = layout.groups(rows);
        let shape = Shape {
            nrows: rows.nrows(),
            ncols: rows.ncols(),
            rows_per_group: layout.rows_per_group,
            n_bits: table.n_bits(),
            p_star_bits: table.p_star().to_bits(),
        };
        self.epochs_seen += 1;
        let stamp = self.epochs_seen;

        let mut stats = EpochStats::default();
        if self.shape != Some(shape) {
            // Cold start or shape change: one full prescreened build,
            // loaded into the incremental graph as the new baseline.
            self.shape = Some(shape);
            self.graph.reset(n);
            self.graph.begin_epoch(stamp);
            let (full, bs) = build_group_graph_prescreened(rows, layout, table, screen, threads);
            for (u, v) in full.edges() {
                self.graph.add_edge(u, v);
            }
            self.prev_rows.clone_from(rows);
            stats.pairs_screened = bs.pairs_screened;
            stats.pairs_exact = bs.pairs_exact;
            stats.rows_changed = rows.nrows();
            stats.groups_changed = n;
            stats.full_rebuild = true;
            stats.edges_live = self.graph.live_edges();
            return (full, stats);
        }

        // Delta epoch: exact word-diff against the stored previous rows.
        let k = layout.rows_per_group;
        let wpr = rows.words_per_row();
        let cur = rows.as_words();
        let prev = self.prev_rows.as_words();
        let changed_rows: Vec<usize> = map_chunks(rows.nrows(), threads, |range| {
            range
                .filter(|&r| cur[r * wpr..(r + 1) * wpr] != prev[r * wpr..(r + 1) * wpr])
                .collect::<Vec<usize>>()
        })
        .into_iter()
        .flatten()
        .collect();
        self.changed_groups.clear();
        self.changed_groups.resize(n, false);
        for &r in &changed_rows {
            self.changed_groups[r / k] = true;
        }
        // Ascending, so the dedup skip below forms a triangle over it.
        let changed_list: Vec<usize> = (0..n).filter(|&g| self.changed_groups[g]).collect();
        stats.rows_changed = changed_rows.len();
        stats.groups_changed = changed_list.len();

        self.graph.begin_epoch(stamp);
        if !changed_list.is_empty() {
            let changed = &self.changed_groups;
            let list = &changed_list;
            // changed × all, deduplicating changed–changed pairs: the
            // pair {gc, g} with both changed is tested only by the
            // larger side. Outer cost is triangular over the changed
            // list, so zigzag-stride it like the full build.
            let results: Vec<(Vec<(u32, u32)>, GraphBuildStats)> = map_workers(threads, |t| {
                let mut local = Vec::new();
                let mut bs = GraphBuildStats::default();
                for li in balanced_outer_indices(list.len(), threads, t) {
                    let gc = list[li];
                    for (g, &g_changed) in changed.iter().enumerate() {
                        if g == gc || (g_changed && g < gc) {
                            continue;
                        }
                        let (ga, gb) = (gc.min(g), gc.max(g));
                        if groups_connected_screened(rows, screen, layout, table, ga, gb, &mut bs) {
                            local.push((ga as u32, gb as u32));
                        }
                    }
                }
                (local, bs)
            });
            for (list, bs) in results {
                stats.pairs_screened += bs.pairs_screened;
                stats.pairs_exact += bs.pairs_exact;
                for (u, v) in list {
                    self.graph.add_edge(u, v);
                }
            }
            self.graph
                .expire_incident_before(&self.changed_groups, stamp);
            self.prev_rows.clone_from(rows);
        }
        stats.edges_live = self.graph.live_edges();

        if self.cfg.audit_every > 0 && self.epochs_seen.is_multiple_of(self.cfg.audit_every) {
            // Full-rebuild audit: recompute from scratch and demand edge
            // equality. Deliberately outside the pair tallies — metrics
            // describe the incremental path, not the safety net.
            let (full, _) = build_group_graph_prescreened(rows, layout, table, screen, threads);
            let mut want: Vec<(u32, u32)> = full.edges().collect();
            want.sort_unstable();
            let got = self.graph.sorted_edges();
            assert_eq!(
                got, want,
                "incremental graph diverged from full rebuild at epoch {stamp}"
            );
            stats.audited = true;
        }

        (self.graph.to_graph(), stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphbuild::build_group_graph;
    use crate::prescreen::ScreenConfig;
    use dcs_bitmap::Bitmap;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const NBITS: usize = 1024;
    const K: usize = 2;

    fn random_matrix(rng: &mut StdRng, groups: usize, weight: usize) -> RowMatrix {
        let mut m = RowMatrix::new(NBITS);
        for _ in 0..groups * K {
            let mut bm = Bitmap::new(NBITS);
            while (bm.weight() as usize) < weight {
                bm.set(rng.gen_range(0..NBITS));
            }
            m.push_bitmap(&bm);
        }
        m
    }

    /// Mutates `frac`-worth of groups in place (rewrites their rows).
    fn churn(rng: &mut StdRng, m: &RowMatrix, frac: f64, weight: usize) -> RowMatrix {
        let mut out = RowMatrix::new(NBITS);
        let groups = m.nrows() / K;
        for g in 0..groups {
            let mutate = rng.gen_bool(frac);
            for r in g * K..(g + 1) * K {
                if mutate {
                    let mut bm = Bitmap::new(NBITS);
                    while (bm.weight() as usize) < weight {
                        bm.set(rng.gen_range(0..NBITS));
                    }
                    out.push_bitmap(&bm);
                } else {
                    out.push_words(m.row(r));
                }
            }
        }
        out
    }

    fn assert_same_edges(a: &Graph, b: &Graph, what: &str) {
        let mut ea: Vec<_> = a.edges().collect();
        let mut eb: Vec<_> = b.edges().collect();
        ea.sort_unstable();
        eb.sort_unstable();
        assert_eq!(ea, eb, "{what}");
    }

    #[test]
    fn incremental_tracks_oracle_over_epochs() {
        let mut rng = StdRng::seed_from_u64(31);
        let layout = GroupLayout { rows_per_group: K };
        let table = LambdaTable::new(NBITS, 1e-4);
        let cfg = IncrementalConfig { audit_every: 3 };
        let mut corr = IncrementalCorrelator::new(cfg);
        let mut screen = PreScreen::new();
        let mut m = random_matrix(&mut rng, 14, 460);
        for epoch in 0..8u64 {
            screen.rebuild(&m, &table, ScreenConfig::default(), 2);
            let (g, stats) = corr.epoch(&m, layout, &table, &screen, 2);
            let oracle = build_group_graph(&m, layout, &table);
            assert_same_edges(&g, &oracle, &format!("epoch {epoch}"));
            assert_eq!(stats.full_rebuild, epoch == 0);
            assert_eq!(stats.edges_live, oracle.m());
            if epoch > 0 {
                assert!(
                    stats.pairs_exact + stats.pairs_screened
                        <= (stats.groups_changed * 14) as u64 * (K * K) as u64,
                    "delta epoch did more than changed × all work: {stats:?}"
                );
            }
            m = churn(&mut rng, &m, 0.3, 460);
        }
    }

    #[test]
    fn unchanged_epoch_is_free() {
        let mut rng = StdRng::seed_from_u64(33);
        let layout = GroupLayout { rows_per_group: K };
        let table = LambdaTable::new(NBITS, 1e-4);
        let mut corr = IncrementalCorrelator::new(IncrementalConfig { audit_every: 0 });
        let mut screen = PreScreen::new();
        let m = random_matrix(&mut rng, 10, 460);
        screen.rebuild(&m, &table, ScreenConfig::default(), 1);
        let (g0, s0) = corr.epoch(&m, layout, &table, &screen, 1);
        assert!(s0.full_rebuild);
        let (g1, s1) = corr.epoch(&m, layout, &table, &screen, 1);
        assert_eq!(s1.rows_changed, 0);
        assert_eq!(s1.pairs_exact + s1.pairs_screened, 0, "no work on no churn");
        assert_same_edges(&g0, &g1, "unchanged epoch altered the graph");
    }

    #[test]
    fn shape_change_forces_full_rebuild() {
        let mut rng = StdRng::seed_from_u64(34);
        let layout = GroupLayout { rows_per_group: K };
        let table = LambdaTable::new(NBITS, 1e-4);
        let mut corr = IncrementalCorrelator::new(IncrementalConfig::default());
        let mut screen = PreScreen::new();
        let m = random_matrix(&mut rng, 8, 460);
        screen.rebuild(&m, &table, ScreenConfig::default(), 1);
        corr.epoch(&m, layout, &table, &screen, 1);
        let bigger = random_matrix(&mut rng, 12, 460);
        screen.rebuild(&bigger, &table, ScreenConfig::default(), 1);
        let (g, s) = corr.epoch(&bigger, layout, &table, &screen, 1);
        assert!(s.full_rebuild, "group-count change must rebuild");
        assert_same_edges(&g, &build_group_graph(&bigger, layout, &table), "rebuild");
    }

    #[test]
    fn thread_count_invariance() {
        let mut rng = StdRng::seed_from_u64(35);
        let layout = GroupLayout { rows_per_group: K };
        let table = LambdaTable::new(NBITS, 1e-4);
        let m0 = random_matrix(&mut rng, 12, 460);
        let m1 = churn(&mut rng, &m0, 0.25, 460);
        let mut runs = Vec::new();
        for threads in [1usize, 2, 8] {
            let mut corr = IncrementalCorrelator::new(IncrementalConfig { audit_every: 1 });
            let mut screen = PreScreen::new();
            let mut out = Vec::new();
            for m in [&m0, &m1] {
                screen.rebuild(m, &table, ScreenConfig::default(), threads);
                let (g, s) = corr.epoch(m, layout, &table, &screen, threads);
                let mut es: Vec<_> = g.edges().collect();
                es.sort_unstable();
                out.push((es, s.pairs_screened, s.pairs_exact));
            }
            runs.push((threads, out));
        }
        for (threads, out) in &runs[1..] {
            assert_eq!(out, &runs[0].1, "divergence at {threads} threads");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Satellite pin: rows churn (add/expire/mutate) across epochs;
        /// the incremental components must equal the from-scratch build
        /// every epoch, including after heavy churn that exercises the
        /// expiry-watermark rebuild path.
        #[test]
        fn churned_epochs_match_from_scratch(
            seed in any::<u64>(),
            groups in 6usize..14,
            fracs in proptest::collection::vec(0.0f64..1.0, 1..5),
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let layout = GroupLayout { rows_per_group: K };
            // p* high enough that random matrices grow real edges, so
            // expiry has something to chew on.
            let table = LambdaTable::new(NBITS, 1e-2);
            let mut corr = IncrementalCorrelator::new(IncrementalConfig { audit_every: 2 });
            let mut screen = PreScreen::new();
            let mut m = random_matrix(&mut rng, groups, 470);
            for (i, &frac) in fracs.iter().enumerate() {
                screen.rebuild(&m, &table, ScreenConfig::default(), 2);
                let (g, _) = corr.epoch(&m, layout, &table, &screen, 2);
                let oracle = build_group_graph(&m, layout, &table);
                let mut ea: Vec<_> = g.edges().collect();
                let mut eb: Vec<_> = oracle.edges().collect();
                ea.sort_unstable();
                eb.sort_unstable();
                prop_assert_eq!(ea, eb, "epoch {} diverged", i);
                m = churn(&mut rng, &m, frac, 470);
            }
        }
    }
}
