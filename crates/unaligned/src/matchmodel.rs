//! The offset-sampling match model (paper Section IV-A) and the pattern
//! edge probability p₂ it induces.
//!
//! Two routers observing the same content with prefix lengths l₁, l₂ get
//! identical fragments in array pair (i, j) when
//! `(l₁ − l₂) ≡ (aᵢ − bⱼ) (mod 536)`; with k offsets per router the k²
//! differences give overall match probability ≈ `1 − e^(−k²/536)`. Given a
//! match, the matched rows share the content's ~g hashed indices *plus*
//! hypergeometric background overlap, which must clear λ for an edge to
//! appear.

use dcs_stats::hypergeom_sf;

/// Probability that at least one offset pair of two routers aligns with
/// the prefix difference — the paper's `1 − e^(−k²/M)` amplification.
///
/// # Panics
/// Panics if `modulus == 0`.
pub fn offset_match_prob(k: usize, modulus: usize) -> f64 {
    assert!(modulus > 0, "modulus must be positive");
    1.0 - (-((k * k) as f64) / modulus as f64).exp()
}

/// Parameters of the analytic edge-probability model for pattern pairs.
#[derive(Debug, Clone, Copy)]
pub struct MatchModel {
    /// Offsets per router (arrays per group), the paper's k = 10.
    pub k: usize,
    /// Offset modulus (targeted payload size), the paper's 536.
    pub modulus: usize,
    /// Row width in bits (1,024).
    pub n_bits: usize,
    /// Content length in packets (g).
    pub content_packets: usize,
    /// Typical row weight (ones per row) at analysis time, ≈ n_bits/2.
    pub row_weight: usize,
}

impl MatchModel {
    /// The paper's configuration for content of `g` packets.
    ///
    /// The row weight comes from the paper's own sizing: 75,000 monitored
    /// packets per link and epoch spread over 128 groups is ~586 packets
    /// per 1,024-bit row, a fill of `1 − e^(−586/1024) ≈ 0.436` — weight
    /// ≈ 446 (the epoch closes on *total* fill, and the weight a matched
    /// pair sees is this typical row weight, not the 50% ceiling).
    pub fn paper_default(content_packets: usize) -> Self {
        MatchModel {
            k: 10,
            modulus: 536,
            n_bits: 1024,
            content_packets,
            row_weight: 446,
        }
    }

    /// Expected number of *distinct* bitmap indices the content sets in a
    /// matched row: `N(1 − (1 − 1/N)^g)` (hash collisions among the g
    /// fragments).
    pub fn content_indices(&self) -> f64 {
        let n = self.n_bits as f64;
        n * (1.0 - (1.0 - 1.0 / n).powi(self.content_packets as i32))
    }

    /// Probability that a *matched* row pair clears the threshold λ:
    /// common ones = c + Hypergeometric(N−c, i−c, j−c) where c is the
    /// content contribution, so exceedance is the shifted hypergeometric
    /// tail.
    ///
    /// Rows lighter than the content contribution clear λ whenever λ < c.
    pub fn matched_exceed_prob(&self, lambda: u32) -> f64 {
        let c = self.content_indices().round() as u64;
        let n = self.n_bits as u64;
        let w = self.row_weight as u64;
        if w <= c {
            // The row is essentially all content.
            return if u64::from(lambda) < w { 1.0 } else { 0.0 };
        }
        let rem_n = n - c;
        let rem_w = w - c;
        let shift = i64::from(lambda) - c as i64;
        hypergeom_sf(shift, rem_n, rem_w, rem_w)
    }

    /// The pattern edge probability p₂: two groups that both saw the
    /// content get an edge if an aligned offset pair exists *and* the
    /// matched rows clear λ, or if background overlap clears λ anyway:
    ///
    /// `p₂ ≈ P[match]·q(λ) + (1 − P[match])·p₁ₙᵤₗₗ`
    ///
    /// where `q` is [`Self::matched_exceed_prob`] and the null term uses
    /// the per-pair level `p_star` over k² pairs.
    pub fn pattern_edge_prob(&self, lambda: u32, p_star: f64) -> f64 {
        let pm = offset_match_prob(self.k, self.modulus);
        let q = self.matched_exceed_prob(lambda);
        let null_edge = 1.0 - (1.0 - p_star).powi((self.k * self.k) as i32);
        pm * q + (1.0 - pm) * null_edge
    }
}

/// Convenience wrapper: p₂ for the paper's configuration with `g` content
/// packets, given the λ the analysis would apply at typical weights and
/// the per-pair null level p\*.
pub fn pattern_edge_prob(g: usize, lambda: u32, p_star: f64) -> f64 {
    MatchModel::paper_default(g).pattern_edge_prob(lambda, p_star)
}

/// Mean null overlap of two independent rows with weights `wa`, `wb` over
/// `n_bits` indices: `E[Hypergeometric(N, wa, wb)] = wa·wb/N`. This is
/// where the prescreen's pruning power lives or dies: at the paper's
/// dense fill (w ≈ 446, N = 1024) the mean ≈ 194 sits only ~4.7σ under
/// λ, so near-equal-weight pairs rarely prune and the engine leans on
/// delta maintenance instead; weight-skewed pairs push the mean (and the
/// class bound `min(wa, wb)`) under λ and prune outright.
///
/// # Panics
/// Panics if `n_bits == 0`.
pub fn expected_null_overlap(wa: u32, wb: u32, n_bits: usize) -> f64 {
    assert!(n_bits > 0, "rows must be non-empty");
    f64::from(wa) * f64::from(wb) / n_bits as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lambda::{p_star_for_edge_prob, LambdaTable};

    #[test]
    fn match_prob_paper_anchor() {
        // k = 10, modulus 536: 1 − e^(−100/536) ≈ 0.1703.
        let p = offset_match_prob(10, 536);
        assert!((p - 0.1703).abs() < 1e-3, "match prob {p}");
    }

    #[test]
    fn match_prob_scales_quadratically() {
        // Doubling k roughly quadruples the exponent.
        let p10 = offset_match_prob(10, 536);
        let p20 = offset_match_prob(20, 536);
        assert!(p20 > 3.0 * p10 && p20 < 4.0 * p10);
    }

    #[test]
    fn content_indices_account_for_collisions() {
        let m = MatchModel::paper_default(100);
        let c = m.content_indices();
        assert!((95.0..100.0).contains(&c), "c = {c}, expected ≈95.4");
    }

    #[test]
    fn matched_pairs_usually_clear_detection_lambda() {
        // At the detection-graph level (p1' = 0.8e-4 over 100 pairs) a
        // 100-packet match should clear λ with substantial probability —
        // this is the "signal" of Table I.
        let p_star = p_star_for_edge_prob(0.8e-4, 100);
        let table = LambdaTable::new(1024, p_star);
        let m = MatchModel::paper_default(100);
        let w = m.row_weight as u32;
        let lam = table.lambda(w, w);
        let q = m.matched_exceed_prob(lam);
        // At the typical weight 446 the matched mean (95 + 133 ≈ 228) sits
        // ~1σ below λ ≈ 235, so q ≈ 0.15; times the 17% offset-match
        // probability this gives p2 ≈ 0.027 — dense enough that the
        // paper's n1 ≈ 125 pattern carries an internal mean degree > 3,
        // which is what lets FindCore recover half of it (Table I).
        assert!(
            (0.05..0.35).contains(&q),
            "matched exceedance {q} out of band at λ = {lam}"
        );
    }

    #[test]
    fn stronger_content_raises_exceedance() {
        let p_star = p_star_for_edge_prob(0.65e-5, 100);
        let table = LambdaTable::new(1024, p_star);
        let lam = table.lambda(512, 512);
        let q100 = MatchModel::paper_default(100).matched_exceed_prob(lam);
        let q120 = MatchModel::paper_default(120).matched_exceed_prob(lam);
        let q150 = MatchModel::paper_default(150).matched_exceed_prob(lam);
        assert!(q100 < q120 && q120 < q150, "{q100} {q120} {q150}");
    }

    #[test]
    fn pattern_edge_prob_dominates_null() {
        let p1 = 0.65e-5;
        let p_star = p_star_for_edge_prob(p1, 100);
        let table = LambdaTable::new(1024, p_star);
        let w = MatchModel::paper_default(100).row_weight as u32;
        let lam = table.lambda(w, w);
        let p2 = pattern_edge_prob(100, lam, p_star);
        assert!(
            p2 > 100.0 * p1,
            "p2 = {p2} must dwarf the background p1 = {p1}"
        );
        assert!(p2 < offset_match_prob(10, 536) + 1e-6);
    }

    #[test]
    fn null_overlap_mean_anchor() {
        // Paper fill: two 446-weight rows over 1,024 bits overlap ~194 on
        // average — the figure the prescreen doc-comments lean on.
        let mu = expected_null_overlap(446, 446, 1024);
        assert!((mu - 194.25).abs() < 0.1, "mu = {mu}");
        assert_eq!(expected_null_overlap(0, 446, 1024), 0.0);
    }

    #[test]
    fn all_content_rows() {
        // Content bigger than the row weight: matched rows are identical
        // in their content part; exceedance is 1 below the weight.
        let m = MatchModel {
            k: 10,
            modulus: 536,
            n_bits: 1024,
            content_packets: 600,
            row_weight: 400,
        };
        assert_eq!(m.matched_exceed_prob(399), 1.0);
        assert_eq!(m.matched_exceed_prob(400), 0.0);
    }
}
