//! Matrix → group-graph conversion: the pairwise row-correlation kernel.
//!
//! "The vast majority of the computational complexity … comes from
//! computing, for any two rows in the matrix, the number of indices in
//! which both rows have value 1" (Section IV-D). The paper lists coping
//! strategies; this module implements three of them:
//!
//! * [`build_group_graph`] — the straight serial sweep;
//! * [`build_group_graph_parallel`] — possibility 3, "distribute the load
//!   to a large number of CPUs" (scoped worker threads via
//!   `dcs-parallel`, embarrassingly parallel over group pairs);
//! * [`build_group_graph_sampled`] — possibility 2, "sample 10 % of the
//!   vertices and find a core only in this subset";
//! * [`build_group_graph_prescreened`] — the conservative-screen build:
//!   identical graph, but pairs provably unable to pass the λ test
//!   ([`crate::prescreen`]) skip the AND-popcount, with per-pair
//!   accounting in [`GraphBuildStats`].
//!
//! Parallel variants stride the outer index with
//! [`balanced_outer_indices`] (zigzag pairing), which keeps per-worker
//! pair counts within `threads − 1` of each other for every `n` — the
//! triangular loop's heavy low indices and light high indices cancel.

use crate::lambda::LambdaTable;
use crate::prescreen::PreScreen;
use dcs_bitmap::RowMatrix;
use dcs_graph::{Graph, GraphBuilder};
use dcs_parallel::map_workers;

/// How rows map to group-vertices: rows are stored group-major, group `g`
/// owning rows `g*rows_per_group .. (g+1)*rows_per_group`.
#[derive(Debug, Clone, Copy)]
pub struct GroupLayout {
    /// Rows (offset arrays) per group.
    pub rows_per_group: usize,
}

impl GroupLayout {
    /// Number of groups for a given matrix.
    ///
    /// # Panics
    /// Panics if the row count is not a multiple of `rows_per_group`.
    pub fn groups(&self, rows: &RowMatrix) -> usize {
        assert!(self.rows_per_group > 0, "rows_per_group must be positive");
        assert_eq!(
            rows.nrows() % self.rows_per_group,
            0,
            "row count {} not a multiple of rows_per_group {}",
            rows.nrows(),
            self.rows_per_group
        );
        rows.nrows() / self.rows_per_group
    }
}

/// Pair-level accounting of a screened graph build: how many row pairs
/// the conservative prescreen discharged without an exact test, and how
/// many paid the AND-popcount. Both are pure functions of the row data
/// (never of the thread/shard partition), so they are deterministic
/// across compute budgets and feed the `pairs_screened_total` /
/// `pairs_exact_total` metrics directly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GraphBuildStats {
    /// Row pairs pruned by the conservative screen (no exact test run).
    pub pairs_screened: u64,
    /// Row pairs that ran the exact AND-popcount λ test.
    pub pairs_exact: u64,
}

impl GraphBuildStats {
    /// Folds another worker's tally into this one.
    pub fn merge(&mut self, other: GraphBuildStats) {
        self.pairs_screened += other.pairs_screened;
        self.pairs_exact += other.pairs_exact;
    }

    /// Total row pairs considered.
    pub fn total(&self) -> u64 {
        self.pairs_screened + self.pairs_exact
    }
}

/// Outer indices owned by worker `t` of `threads` under zigzag striding:
/// each block of `2 × threads` consecutive outer indices gives worker
/// `t` the pair `base + t` and `base + 2·threads − 1 − t`. In the
/// triangular pair loop outer index `i` costs `n − 1 − i` inner
/// iterations, so the two indices of a full block sum to the same pair
/// count for every worker; only the final partial block differs, by at
/// most `threads − 1` pairs total (proptested below). The plain
/// `t, t + threads, …` stride this replaces skewed by
/// `Θ(n · (threads − 1) / threads)` pairs whenever `n % threads != 0`.
///
/// # Panics
/// Panics if `threads == 0` or `t >= threads`.
pub fn balanced_outer_indices(n: usize, threads: usize, t: usize) -> Vec<usize> {
    assert!(threads > 0, "need at least one thread");
    assert!(t < threads, "worker {t} out of range for {threads} threads");
    let span = 2 * threads;
    let mut out = Vec::with_capacity(n / threads + 2);
    let mut base = 0;
    while base < n {
        let lo = base + t;
        if lo < n {
            out.push(lo);
        }
        let hi = base + span - 1 - t;
        if hi != lo && hi < n {
            out.push(hi);
        }
        base += span;
    }
    out
}

/// Whether groups `ga` and `gb` are connected: does any row pair exceed
/// its λ threshold?
fn groups_connected(
    rows: &RowMatrix,
    weights: &[u32],
    layout: GroupLayout,
    table: &LambdaTable,
    ga: usize,
    gb: usize,
) -> bool {
    let k = layout.rows_per_group;
    for ra in ga * k..(ga + 1) * k {
        let wa = weights[ra];
        if wa == 0 {
            continue;
        }
        for (rb, &wb) in weights.iter().enumerate().take((gb + 1) * k).skip(gb * k) {
            if wb == 0 {
                continue;
            }
            let lam = table.lambda(wa, wb);
            if rows.common_ones(ra, rb) > lam {
                return true;
            }
        }
    }
    false
}

/// Serial conversion of the fused row matrix into the group graph.
pub fn build_group_graph(rows: &RowMatrix, layout: GroupLayout, table: &LambdaTable) -> Graph {
    let n = layout.groups(rows);
    let weights = rows.row_weights();
    let mut b = GraphBuilder::new(n);
    for ga in 0..n {
        for gb in (ga + 1)..n {
            if groups_connected(rows, &weights, layout, table, ga, gb) {
                b.add_edge(ga as u32, gb as u32);
            }
        }
    }
    b.build()
}

/// Parallel conversion using `threads` scoped worker threads. Group
/// pairs are split by zigzag-striding the outer index
/// ([`balanced_outer_indices`]), which balances the triangular loop to
/// within `threads − 1` pairs per worker; each worker collects a private
/// edge list and the lists are concatenated in worker order, so the
/// resulting graph is identical for any thread count.
///
/// # Panics
/// Panics if `threads == 0`.
pub fn build_group_graph_parallel(
    rows: &RowMatrix,
    layout: GroupLayout,
    table: &LambdaTable,
    threads: usize,
) -> Graph {
    assert!(threads > 0, "need at least one thread");
    let n = layout.groups(rows);
    let weights = rows.row_weights();
    // Pre-warm the λ memo serially so worker threads mostly read.
    for &w in &weights {
        if w > 0 {
            table.lambda(w, w);
        }
    }
    let edge_lists: Vec<Vec<(u32, u32)>> = map_workers(threads, |t| {
        let mut local = Vec::new();
        for ga in balanced_outer_indices(n, threads, t) {
            for gb in (ga + 1)..n {
                if groups_connected(rows, &weights, layout, table, ga, gb) {
                    local.push((ga as u32, gb as u32));
                }
            }
        }
        local
    });
    let mut b = GraphBuilder::with_capacity(n, edge_lists.iter().map(Vec::len).sum());
    for list in edge_lists {
        for (u, v) in list {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Whether groups `ga` and `gb` are connected, consulting the
/// conservative prescreen before each exact test. Tallies every row pair
/// inspected into `stats`; pairs after an early edge hit are not counted
/// (the cut-off point is a pure function of the row data, so the tallies
/// stay partition-invariant).
pub(crate) fn groups_connected_screened(
    rows: &RowMatrix,
    screen: &PreScreen,
    layout: GroupLayout,
    table: &LambdaTable,
    ga: usize,
    gb: usize,
    stats: &mut GraphBuildStats,
) -> bool {
    let k = layout.rows_per_group;
    let weights = screen.weights();
    for ra in ga * k..(ga + 1) * k {
        for rb in gb * k..(gb + 1) * k {
            if !screen.needs_exact(ra, rb) {
                stats.pairs_screened += 1;
                continue;
            }
            stats.pairs_exact += 1;
            if rows.common_ones(ra, rb) > table.lambda(weights[ra], weights[rb]) {
                return true;
            }
        }
    }
    false
}

/// Prescreened parallel conversion: the same graph as
/// [`build_group_graph`] / [`build_group_graph_parallel`] — guaranteed,
/// because the screen only prunes pairs it can *prove* cannot pass the λ
/// test — plus the screened/exact pair tally. The screen must have been
/// [rebuilt](PreScreen::rebuild) against `rows` and `table`.
///
/// # Panics
/// Panics if `threads == 0` or the screen's row count does not match.
pub fn build_group_graph_prescreened(
    rows: &RowMatrix,
    layout: GroupLayout,
    table: &LambdaTable,
    screen: &PreScreen,
    threads: usize,
) -> (Graph, GraphBuildStats) {
    assert!(threads > 0, "need at least one thread");
    assert_eq!(
        screen.nrows(),
        rows.nrows(),
        "prescreen was built for a different matrix"
    );
    let n = layout.groups(rows);
    // Pre-warm the λ memo serially so worker threads mostly read.
    for &w in screen.weights() {
        if w > 0 {
            table.lambda(w, w);
        }
    }
    let results: Vec<(Vec<(u32, u32)>, GraphBuildStats)> = map_workers(threads, |t| {
        let mut local = Vec::new();
        let mut stats = GraphBuildStats::default();
        for ga in balanced_outer_indices(n, threads, t) {
            for gb in (ga + 1)..n {
                if groups_connected_screened(rows, screen, layout, table, ga, gb, &mut stats) {
                    local.push((ga as u32, gb as u32));
                }
            }
        }
        (local, stats)
    });
    let mut stats = GraphBuildStats::default();
    let mut b = GraphBuilder::with_capacity(n, results.iter().map(|(l, _)| l.len()).sum());
    for (list, s) in results {
        stats.merge(s);
        for (u, v) in list {
            b.add_edge(u, v);
        }
    }
    (b.build(), stats)
}

/// Vertex-sampled conversion (paper's possibility 2): keep every
/// `1/sample_div`-th group, build the graph only among the sample.
/// Returns the graph over sampled groups and the mapping from sampled
/// vertex id to original group id.
///
/// # Panics
/// Panics if `sample_div == 0`.
pub fn build_group_graph_sampled(
    rows: &RowMatrix,
    layout: GroupLayout,
    table: &LambdaTable,
    sample_div: usize,
) -> (Graph, Vec<u32>) {
    assert!(sample_div > 0, "sample divisor must be positive");
    let n = layout.groups(rows);
    let sampled: Vec<u32> = (0..n as u32).step_by(sample_div).collect();
    let weights = rows.row_weights();
    let mut b = GraphBuilder::new(sampled.len());
    for (ia, &ga) in sampled.iter().enumerate() {
        for (ib, &gb) in sampled.iter().enumerate().skip(ia + 1) {
            if groups_connected(rows, &weights, layout, table, ga as usize, gb as usize) {
                b.add_edge(ia as u32, ib as u32);
            }
        }
    }
    (b.build(), sampled)
}

/// Expands a core over *all* groups: for every group outside `core`,
/// count how many core groups it connects to (λ-exceeding row pair) and
/// keep those with at least `d` connections.
///
/// This is the paper's recipe for making vertex sampling viable: "this
/// core will be used to find other vertices in the pattern, which has
/// O(n) complexity since the core is relatively small" — the sweep costs
/// `O(n_groups · |core| · k²)` row comparisons instead of the full
/// quadratic correlation.
pub fn expand_core_over_groups(
    rows: &RowMatrix,
    layout: GroupLayout,
    table: &LambdaTable,
    core: &[u32],
    d: usize,
) -> Vec<u32> {
    let n = layout.groups(rows);
    let weights = rows.row_weights();
    let core_set: std::collections::HashSet<u32> = core.iter().copied().collect();
    let mut out = Vec::new();
    for g in 0..n as u32 {
        if core_set.contains(&g) {
            continue;
        }
        let mut links = 0usize;
        for &c in core {
            if groups_connected(rows, &weights, layout, table, g as usize, c as usize) {
                links += 1;
                if links >= d {
                    break;
                }
            }
        }
        if links >= d {
            out.push(g);
        }
    }
    out
}

/// End-to-end sampled detection (paper §IV-D possibility 2): build the
/// detection graph over every `sample_div`-th group only, run the 3-step
/// core finding there, then expand the found core across all groups.
/// Returns the sorted union of the (re-mapped) sampled cores and the
/// expansion survivors.
pub fn sampled_find_pattern(
    rows: &RowMatrix,
    layout: GroupLayout,
    table: &LambdaTable,
    sample_div: usize,
    cfg: crate::corefind::CoreFindConfig,
    expand_d: usize,
) -> Vec<u32> {
    let (graph, mapping) = build_group_graph_sampled(rows, layout, table, sample_div);
    let result = crate::corefind::find_pattern(&graph, cfg);
    let mut core: Vec<u32> = result
        .vertices()
        .into_iter()
        .map(|v| mapping[v as usize])
        .collect();
    let expanded = expand_core_over_groups(rows, layout, table, &core, expand_d);
    core.extend(expanded);
    core.sort_unstable();
    core
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_bitmap::Bitmap;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const NBITS: usize = 1024;
    const K: usize = 4; // rows per group in tests

    /// Builds a matrix of `groups` groups whose rows are random with
    /// ~`weight` ones; groups listed in `correlated` additionally share a
    /// common set of `signal` indices in their first row.
    fn test_matrix(
        rng: &mut StdRng,
        groups: usize,
        weight: usize,
        correlated: &[usize],
        signal: usize,
    ) -> RowMatrix {
        let common: Vec<usize> = (0..signal).map(|_| rng.gen_range(0..NBITS)).collect();
        let mut m = RowMatrix::new(NBITS);
        for g in 0..groups {
            for r in 0..K {
                let mut bm = Bitmap::new(NBITS);
                if r == 0 && correlated.contains(&g) {
                    for &c in &common {
                        bm.set(c);
                    }
                }
                while (bm.weight() as usize) < weight {
                    bm.set(rng.gen_range(0..NBITS));
                }
                m.push_bitmap(&bm);
            }
        }
        m
    }

    fn table() -> LambdaTable {
        // p* chosen so the 16-row-pair group comparison stays quiet under
        // the null but fires on a 200-index shared signal.
        LambdaTable::new(NBITS, 1e-6)
    }

    #[test]
    fn correlated_groups_get_edges_others_do_not() {
        let mut r = StdRng::seed_from_u64(2);
        let m = test_matrix(&mut r, 10, 512, &[2, 7], 200);
        let g = build_group_graph(&m, GroupLayout { rows_per_group: K }, &table());
        assert!(g.has_edge(2, 7), "correlated pair must connect");
        assert!(
            g.m() <= 2,
            "background produced {} edges (expected ~0 beyond the signal)",
            g.m()
        );
    }

    #[test]
    fn null_matrix_is_sparse() {
        let mut r = StdRng::seed_from_u64(2);
        let m = test_matrix(&mut r, 16, 512, &[], 0);
        let g = build_group_graph(&m, GroupLayout { rows_per_group: K }, &table());
        assert!(g.m() <= 1, "null graph has {} edges", g.m());
    }

    #[test]
    fn parallel_matches_serial() {
        let mut r = StdRng::seed_from_u64(3);
        let m = test_matrix(&mut r, 12, 512, &[1, 4, 9], 220);
        let layout = GroupLayout { rows_per_group: K };
        let t = table();
        let gs = build_group_graph(&m, layout, &t);
        for threads in [1usize, 2, 4] {
            let gp = build_group_graph_parallel(&m, layout, &t, threads);
            assert_eq!(gs.m(), gp.m(), "edge count differs at {threads} threads");
            let mut es: Vec<_> = gs.edges().collect();
            let mut ep: Vec<_> = gp.edges().collect();
            es.sort_unstable();
            ep.sort_unstable();
            assert_eq!(es, ep, "edge sets differ at {threads} threads");
        }
    }

    #[test]
    fn sampled_build_keeps_every_divth_group() {
        let mut r = StdRng::seed_from_u64(4);
        // Correlate groups 0 and 2 (both survive div-2 sampling).
        let m = test_matrix(&mut r, 10, 512, &[0, 2], 220);
        let layout = GroupLayout { rows_per_group: K };
        let t = table();
        let (g, mapping) = build_group_graph_sampled(&m, layout, &t, 2);
        assert_eq!(mapping, vec![0, 2, 4, 6, 8]);
        assert_eq!(g.n(), 5);
        assert!(g.has_edge(0, 1), "sampled graph keeps the 0–2 edge");
    }

    #[test]
    fn expansion_recovers_unsampled_pattern_groups() {
        let mut r = StdRng::seed_from_u64(5);
        // Groups 0..8 all share a strong signal; sample every 2nd group so
        // odd pattern groups are invisible to the sampled graph.
        let correlated: Vec<usize> = (0..8).collect();
        let m = test_matrix(&mut r, 24, 512, &correlated, 220);
        let layout = GroupLayout { rows_per_group: K };
        let t = table();
        let core: Vec<u32> = vec![0, 2, 4, 6]; // the sampled half
        let expanded = expand_core_over_groups(&m, layout, &t, &core, 2);
        for odd in [1u32, 3, 5, 7] {
            assert!(
                expanded.contains(&odd),
                "unsampled pattern group {odd} not recovered: {expanded:?}"
            );
        }
        // Background groups stay out.
        assert!(
            expanded.iter().all(|&g| g < 8),
            "background leaked into the expansion: {expanded:?}"
        );
    }

    #[test]
    fn sampled_find_pattern_end_to_end() {
        let mut r = StdRng::seed_from_u64(6);
        let correlated: Vec<usize> = (0..10).collect();
        let m = test_matrix(&mut r, 30, 512, &correlated, 220);
        let layout = GroupLayout { rows_per_group: K };
        let t = table();
        let found = sampled_find_pattern(
            &m,
            layout,
            &t,
            2,
            crate::corefind::CoreFindConfig { beta: 5, d: 1 },
            2,
        );
        let hits = found.iter().filter(|&&g| g < 10).count();
        assert!(
            hits >= 8,
            "recovered only {hits}/10 pattern groups: {found:?}"
        );
        let fps = found.len() - hits;
        assert!(fps <= 2, "{fps} background groups reported");
    }

    #[test]
    fn zero_weight_rows_never_connect() {
        let mut m = RowMatrix::new(NBITS);
        for _ in 0..(2 * K) {
            m.push_bitmap(&Bitmap::new(NBITS));
        }
        let g = build_group_graph(&m, GroupLayout { rows_per_group: K }, &table());
        assert_eq!(g.m(), 0);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn ragged_layout_rejected() {
        let mut m = RowMatrix::new(NBITS);
        m.push_bitmap(&Bitmap::new(NBITS));
        GroupLayout { rows_per_group: 4 }.groups(&m);
    }

    /// Matrix whose groups span wildly different weight regimes — the
    /// shape where the class/band prunes actually fire.
    fn skewed_matrix(rng: &mut StdRng, groups: usize) -> RowMatrix {
        let mut m = RowMatrix::new(NBITS);
        for g in 0..groups {
            for r in 0..K {
                let w = match g % 4 {
                    0 => 0,
                    1 => 5 + r,
                    2 => 120 + 17 * r,
                    _ => 480 + 16 * r,
                };
                let mut bm = Bitmap::new(NBITS);
                while (bm.weight() as usize) < w {
                    bm.set(rng.gen_range(0..NBITS));
                }
                m.push_bitmap(&bm);
            }
        }
        m
    }

    fn screen_for(m: &RowMatrix, t: &LambdaTable) -> crate::prescreen::PreScreen {
        let mut s = crate::prescreen::PreScreen::new();
        s.rebuild(m, t, crate::prescreen::ScreenConfig::default(), 2);
        s
    }

    #[test]
    fn prescreened_matches_serial_oracle() {
        let layout = GroupLayout { rows_per_group: K };
        let t = table();
        let mut r = StdRng::seed_from_u64(21);
        for m in [
            test_matrix(&mut r, 12, 512, &[1, 4, 9], 220),
            test_matrix(&mut r, 16, 512, &[], 0),
            skewed_matrix(&mut r, 12),
        ] {
            let oracle = build_group_graph(&m, layout, &t);
            let screen = screen_for(&m, &t);
            for threads in [1usize, 2, 4] {
                let (g, stats) = build_group_graph_prescreened(&m, layout, &t, &screen, threads);
                let mut es: Vec<_> = oracle.edges().collect();
                let mut ep: Vec<_> = g.edges().collect();
                es.sort_unstable();
                ep.sort_unstable();
                assert_eq!(es, ep, "screened graph differs at {threads} threads");
                assert!(stats.total() > 0);
            }
        }
    }

    #[test]
    fn prescreened_stats_are_thread_invariant_and_prune_skew() {
        let layout = GroupLayout { rows_per_group: K };
        let t = table();
        let mut r = StdRng::seed_from_u64(22);
        let m = skewed_matrix(&mut r, 16);
        let screen = screen_for(&m, &t);
        let (_, base) = build_group_graph_prescreened(&m, layout, &t, &screen, 1);
        for threads in [2usize, 4, 8] {
            let (_, s) = build_group_graph_prescreened(&m, layout, &t, &screen, threads);
            assert_eq!(s, base, "pair tallies drifted at {threads} threads");
        }
        assert!(
            base.pairs_screened > base.pairs_exact,
            "skewed matrix should be mostly screened: {base:?}"
        );
    }

    #[test]
    fn balanced_indices_cover_disjointly() {
        for n in [0usize, 1, 2, 5, 7, 8, 16, 31] {
            for threads in 1..=6usize {
                let mut seen = vec![false; n];
                for t in 0..threads {
                    for i in balanced_outer_indices(n, threads, t) {
                        assert!(!seen[i], "index {i} assigned twice (n={n}, T={threads})");
                        seen[i] = true;
                    }
                }
                assert!(seen.iter().all(|&s| s), "gap in cover (n={n}, T={threads})");
            }
        }
    }
}

#[cfg(test)]
mod striding_proptests {
    use super::balanced_outer_indices;
    use proptest::prelude::*;

    proptest! {
        /// Satellite balance pin: under zigzag striding the per-worker
        /// *pair* counts of the triangular loop (outer index `i` costs
        /// `n − 1 − i` inner iterations) differ by at most `threads − 1`
        /// — far under the one-outer-stride (`n − 1`) skew the old
        /// `t, t + threads, …` striding allowed to accumulate.
        #[test]
        fn zigzag_pair_counts_balanced(n in 0usize..200, threads in 1usize..9) {
            let counts: Vec<u64> = (0..threads)
                .map(|t| {
                    balanced_outer_indices(n, threads, t)
                        .into_iter()
                        .map(|i| (n - 1 - i) as u64)
                        .sum()
                })
                .collect();
            let max = counts.iter().copied().max().unwrap_or(0);
            let min = counts.iter().copied().min().unwrap_or(0);
            prop_assert!(
                max - min <= (threads - 1) as u64,
                "pair counts {counts:?} spread {} > threads − 1 (n={n})",
                max - min
            );
            let total: u64 = counts.iter().sum();
            let expect = if n == 0 { 0 } else { (n as u64) * (n as u64 - 1) / 2 };
            prop_assert_eq!(total, expect, "triangle pair total mismatch");
        }
    }
}
