//! The Λ threshold tables (paper Section IV-B).
//!
//! Two rows containing `i` and `j` ones share, under the null,
//! `X(i,j) ~ Hypergeometric(N, i, j)` common ones. To make the group graph
//! Erdős–Rényi with a *uniform* per-row-pair exceedance probability p\*,
//! the threshold must depend on the weights: `λᵢⱼ` is the smallest `t`
//! with `P[X(i,j) > t] ≤ p*`. The table is computed lazily and memoised —
//! real digests only exercise a narrow weight band around the target fill.

use dcs_stats::hypergeom_tail_quantile;
use parking_lot::RwLock;
use std::collections::HashMap;

/// Lazily-memoised λ table for a fixed row width and p\*.
#[derive(Debug)]
pub struct LambdaTable {
    n_bits: u64,
    p_star: f64,
    memo: RwLock<HashMap<(u32, u32), u32>>,
}

impl LambdaTable {
    /// Creates a table for rows of `n_bits` bits at exceedance level
    /// `p_star`.
    ///
    /// # Panics
    /// Panics unless `0 < p_star < 1` and `n_bits > 0`.
    pub fn new(n_bits: usize, p_star: f64) -> Self {
        assert!(n_bits > 0, "rows must be non-empty");
        assert!(p_star > 0.0 && p_star < 1.0, "p* must be in (0,1)");
        LambdaTable {
            n_bits: n_bits as u64,
            p_star,
            memo: RwLock::new(HashMap::new()),
        }
    }

    /// Row width in bits.
    pub fn n_bits(&self) -> usize {
        self.n_bits as usize
    }

    /// The per-row-pair exceedance probability p\*.
    pub fn p_star(&self) -> f64 {
        self.p_star
    }

    /// λ for a row pair with weights `i` and `j` (symmetric).
    ///
    /// # Panics
    /// Panics if a weight exceeds the row width.
    pub fn lambda(&self, i: u32, j: u32) -> u32 {
        let key = if i <= j { (i, j) } else { (j, i) };
        if let Some(&v) = self.memo.read().get(&key) {
            return v;
        }
        let v =
            hypergeom_tail_quantile(self.p_star, self.n_bits, u64::from(key.0), u64::from(key.1))
                as u32;
        self.memo.write().insert(key, v);
        v
    }

    /// Number of memoised entries (for tests / diagnostics).
    pub fn memo_len(&self) -> usize {
        self.memo.read().len()
    }
}

/// Derives the per-row-pair level p\* that yields a target group-edge
/// probability `p1` when each group pair compares `pairs` row pairs:
/// `p1 = 1 − (1 − p*)^pairs  ⇒  p* = 1 − (1 − p1)^(1/pairs)`.
///
/// # Panics
/// Panics unless `0 < p1 < 1` and `pairs > 0`.
pub fn p_star_for_edge_prob(p1: f64, pairs: usize) -> f64 {
    assert!(p1 > 0.0 && p1 < 1.0, "p1 must be in (0,1)");
    assert!(pairs > 0, "need at least one row pair");
    1.0 - (1.0 - p1).powf(1.0 / pairs as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_stats::hypergeom_sf;

    #[test]
    fn lambda_is_tight_quantile() {
        let t = LambdaTable::new(1024, 1e-5);
        let lam = t.lambda(512, 512);
        assert!(hypergeom_sf(i64::from(lam), 1024, 512, 512) <= 1e-5);
        assert!(hypergeom_sf(i64::from(lam) - 1, 1024, 512, 512) > 1e-5);
    }

    #[test]
    fn lambda_symmetric_and_memoised() {
        let t = LambdaTable::new(1024, 1e-4);
        let a = t.lambda(400, 600);
        let b = t.lambda(600, 400);
        assert_eq!(a, b);
        assert_eq!(t.memo_len(), 1, "symmetric pair shares one memo entry");
    }

    #[test]
    fn lambda_monotone_in_weights() {
        let t = LambdaTable::new(1024, 1e-5);
        // Heavier rows share more ones by chance, so λ must grow.
        let l1 = t.lambda(300, 300);
        let l2 = t.lambda(500, 500);
        let l3 = t.lambda(700, 700);
        assert!(l1 < l2 && l2 < l3);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]

        /// Soundness pin for the prescreen's weight-class prune: λ must
        /// be monotone non-decreasing in *each* weight separately
        /// (hypergeometric stochastic dominance), off the diagonal too —
        /// the class prune lower-bounds λ(wa, wb) by λ(lo_a, lo_b) and
        /// is conservative only if this holds everywhere.
        #[test]
        fn lambda_monotone_off_diagonal(i in 0u32..=256, j in 0u32..=256, di in 0u32..=16) {
            let t = LambdaTable::new(256, 1e-4);
            proptest::prop_assert!(
                t.lambda(i.min(256 - di) + di, j) >= t.lambda(i.min(256 - di), j),
                "λ decreased when raising one weight ({i},{j})+{di}"
            );
        }
    }

    #[test]
    fn uniformity_across_weight_pairs() {
        // The whole point of Λ: exceedance stays ≈ p* (never above; can be
        // below because the distribution is discrete).
        let p_star = 1e-4;
        let t = LambdaTable::new(1024, p_star);
        for &(i, j) in &[(300u32, 700u32), (450, 512), (512, 512), (600, 650)] {
            let lam = t.lambda(i, j);
            let sf = hypergeom_sf(i64::from(lam), 1024, u64::from(i), u64::from(j));
            assert!(sf <= p_star, "({i},{j}): sf {sf} above p*");
            assert!(
                sf >= p_star / 50.0,
                "({i},{j}): sf {sf} needlessly far below p* (too coarse?)"
            );
        }
    }

    #[test]
    fn degenerate_weights() {
        let t = LambdaTable::new(64, 0.01);
        assert_eq!(t.lambda(0, 30), 0);
        // Full row: shares exactly j ones; λ = j (sf beyond support = 0).
        let lam = t.lambda(64, 30);
        assert_eq!(lam, 30);
    }

    #[test]
    fn p_star_inversion() {
        let p1 = 0.65e-5;
        let p_star = p_star_for_edge_prob(p1, 100);
        let back = 1.0 - (1.0 - p_star).powi(100);
        assert!((back - p1).abs() < 1e-12);
        // For tiny p1, p* ≈ p1/100.
        assert!((p_star - p1 / 100.0).abs() < p1 * 1e-3);
    }

    #[test]
    #[should_panic(expected = "p* must be in")]
    fn invalid_p_star_rejected() {
        LambdaTable::new(10, 0.0);
    }
}
