//! Epoch-incremental group graph: edges with epoch stamps, expiry, and
//! lazily rebuilt connected components.
//!
//! The unaligned correlation engine keeps the λ-test graph alive across
//! measurement epochs instead of rebuilding it from scratch: edges whose
//! endpoint rows did not change between epochs keep their previous test
//! result (the exact λ test is a pure function of the two rows), while
//! edges touching changed rows are re-confirmed or expired. This type is
//! the graph-side half of that engine:
//!
//! * every live edge carries the **epoch stamp** of its last
//!   confirmation ([`IncrementalGraph::add_edge`] inserts or refreshes);
//! * [`IncrementalGraph::expire_incident_before`] removes stale edges
//!   around a changed vertex set, [`IncrementalGraph::expire_before`]
//!   applies a global TTL;
//! * a [`UnionFind`] over the live edges answers component queries.
//!   Unions are maintained incrementally while edges are only added;
//!   any removal raises the **rebuild watermark** (union-find cannot
//!   split sets), and the next component query pays one rebuild from
//!   the live edge set — cheap, because the λ-test graph is sparse by
//!   construction (p₁ ≈ 0.65/n).
//!
//! The materialised [`Graph`] view ([`IncrementalGraph::to_graph`]) is
//! built through [`GraphBuilder`], so downstream consumers (ER test,
//! peeling) see exactly the type the from-scratch path produces, and
//! equality audits compare like with like.

use crate::{Graph, GraphBuilder, UnionFind};
use std::collections::HashMap;

/// A mutable undirected simple graph maintained across epochs.
#[derive(Debug, Clone)]
pub struct IncrementalGraph {
    n: usize,
    /// Normalised `(u, v)` with `u < v` → epoch stamp of last confirmation.
    edges: HashMap<(u32, u32), u64>,
    uf: UnionFind,
    /// Rebuild watermark: set when any edge was removed since the last
    /// union-find rebuild, cleared by [`Self::ensure_components`].
    uf_stale: bool,
    epoch: u64,
}

impl IncrementalGraph {
    /// An empty graph over `n` vertices at epoch 0.
    pub fn new(n: usize) -> Self {
        IncrementalGraph {
            n,
            edges: HashMap::new(),
            uf: UnionFind::new(n),
            uf_stale: false,
            epoch: 0,
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of live edges.
    pub fn live_edges(&self) -> usize {
        self.edges.len()
    }

    /// The current epoch stamp.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether the next component query must rebuild the union-find.
    pub fn components_stale(&self) -> bool {
        self.uf_stale
    }

    /// Drops every edge and re-dimensions to `n` vertices (deployment
    /// shape change or a cold start).
    pub fn reset(&mut self, n: usize) {
        self.n = n;
        self.edges.clear();
        self.uf = UnionFind::new(n);
        self.uf_stale = false;
    }

    /// Starts an epoch: subsequent [`Self::add_edge`] confirmations carry
    /// `stamp`.
    pub fn begin_epoch(&mut self, stamp: u64) {
        self.epoch = stamp;
    }

    /// Inserts the edge `{u, v}` (or refreshes its stamp to the current
    /// epoch if already live). Returns `true` when the edge is new.
    ///
    /// # Panics
    /// Panics on a self-loop or out-of-range endpoint.
    pub fn add_edge(&mut self, u: u32, v: u32) -> bool {
        assert_ne!(u, v, "self-loops are not allowed");
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u},{v}) out of range for n={}",
            self.n
        );
        let key = if u < v { (u, v) } else { (v, u) };
        let fresh = self.edges.insert(key, self.epoch).is_none();
        if fresh && !self.uf_stale {
            // Union-find stays exact while the graph only grows.
            self.uf.union(u, v);
        }
        fresh
    }

    /// Epoch stamp of the edge `{u, v}`, if live.
    pub fn edge_stamp(&self, u: u32, v: u32) -> Option<u64> {
        let key = if u < v { (u, v) } else { (v, u) };
        self.edges.get(&key).copied()
    }

    /// Removes every edge with an endpoint in `vertices` whose stamp is
    /// older than `stamp`; returns the number removed. This is the delta
    /// step's expiry: after re-testing all pairs around the changed
    /// vertices at epoch `stamp`, any incident edge *not* re-confirmed
    /// this epoch is dead. Removal raises the rebuild watermark.
    pub fn expire_incident_before(&mut self, vertices: &[bool], stamp: u64) -> usize {
        let before = self.edges.len();
        self.edges.retain(|&(u, v), &mut s| {
            s >= stamp || (!vertices[u as usize] && !vertices[v as usize])
        });
        let removed = before - self.edges.len();
        if removed > 0 {
            self.uf_stale = true;
        }
        removed
    }

    /// Removes every edge with a stamp older than `stamp` (global TTL);
    /// returns the number removed. Removal raises the rebuild watermark.
    pub fn expire_before(&mut self, stamp: u64) -> usize {
        let before = self.edges.len();
        self.edges.retain(|_, &mut s| s >= stamp);
        let removed = before - self.edges.len();
        if removed > 0 {
            self.uf_stale = true;
        }
        removed
    }

    /// Rebuilds the union-find from the live edge set if the watermark is
    /// raised. Called by every component query; a no-op on a clean graph.
    fn ensure_components(&mut self) {
        if !self.uf_stale {
            return;
        }
        self.uf = UnionFind::new(self.n);
        for &(u, v) in self.edges.keys() {
            self.uf.union(u, v);
        }
        self.uf_stale = false;
    }

    /// Whether `a` and `b` are in the same component (rebuilds lazily).
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.ensure_components();
        self.uf.connected(a, b)
    }

    /// Size of the largest connected component (rebuilds lazily).
    pub fn largest_component_size(&mut self) -> usize {
        self.ensure_components();
        let mut best = 0;
        for v in 0..self.n as u32 {
            best = best.max(self.uf.set_size(v));
        }
        best as usize
    }

    /// The live edges, sorted ascending — the canonical order every
    /// equality audit compares in.
    pub fn sorted_edges(&self) -> Vec<(u32, u32)> {
        let mut es: Vec<(u32, u32)> = self.edges.keys().copied().collect();
        es.sort_unstable();
        es
    }

    /// Materialises the live graph as an immutable [`Graph`] — the exact
    /// type and normal form the from-scratch builder produces, so the
    /// downstream ER test and peeling run unchanged.
    pub fn to_graph(&self) -> Graph {
        let mut b = GraphBuilder::with_capacity(self.n, self.edges.len());
        for &(u, v) in self.edges.keys() {
            b.add_edge(u, v);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_refresh_and_stamps() {
        let mut g = IncrementalGraph::new(4);
        g.begin_epoch(1);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(1, 0), "normalised duplicate refreshes");
        assert_eq!(g.edge_stamp(0, 1), Some(1));
        g.begin_epoch(2);
        g.add_edge(1, 0);
        assert_eq!(g.edge_stamp(0, 1), Some(2), "refresh restamps");
        assert_eq!(g.live_edges(), 1);
    }

    #[test]
    fn incremental_unions_track_additions() {
        let mut g = IncrementalGraph::new(5);
        g.begin_epoch(1);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        assert!(g.connected(0, 1));
        assert!(!g.connected(0, 2));
        assert!(!g.components_stale(), "pure additions keep UF exact");
        g.add_edge(1, 2);
        assert!(g.connected(0, 3));
        assert_eq!(g.largest_component_size(), 4);
    }

    #[test]
    fn expiry_raises_watermark_and_rebuild_splits_components() {
        let mut g = IncrementalGraph::new(4);
        g.begin_epoch(1);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        assert_eq!(g.largest_component_size(), 3);
        // Epoch 2: vertex 1 changed; only 0–1 is re-confirmed.
        g.begin_epoch(2);
        g.add_edge(0, 1);
        let mut changed = vec![false; 4];
        changed[1] = true;
        let removed = g.expire_incident_before(&changed, 2);
        assert_eq!(removed, 1, "1–2 expired, 0–1 re-confirmed");
        assert!(g.components_stale(), "removal raises the watermark");
        assert!(!g.connected(0, 2), "rebuild splits the component");
        assert!(!g.components_stale(), "query cleared the watermark");
        assert_eq!(g.largest_component_size(), 2);
    }

    #[test]
    fn expire_incident_spares_untouched_edges() {
        let mut g = IncrementalGraph::new(6);
        g.begin_epoch(1);
        g.add_edge(0, 1);
        g.add_edge(4, 5);
        g.begin_epoch(7);
        let mut changed = vec![false; 6];
        changed[0] = true;
        assert_eq!(g.expire_incident_before(&changed, 7), 1);
        assert_eq!(
            g.sorted_edges(),
            vec![(4, 5)],
            "edge away from the changed set survives with its old stamp"
        );
        assert_eq!(g.edge_stamp(4, 5), Some(1));
    }

    #[test]
    fn global_ttl_expiry() {
        let mut g = IncrementalGraph::new(4);
        g.begin_epoch(1);
        g.add_edge(0, 1);
        g.begin_epoch(5);
        g.add_edge(2, 3);
        assert_eq!(g.expire_before(5), 1);
        assert_eq!(g.sorted_edges(), vec![(2, 3)]);
        assert_eq!(g.largest_component_size(), 2);
    }

    #[test]
    fn to_graph_matches_builder_normal_form() {
        let mut g = IncrementalGraph::new(5);
        g.begin_epoch(1);
        g.add_edge(3, 1);
        g.add_edge(0, 4);
        g.add_edge(1, 3);
        let mat = g.to_graph();
        let mut b = GraphBuilder::new(5);
        b.add_edge(1, 3);
        b.add_edge(0, 4);
        let expect = b.build();
        assert_eq!(mat.m(), expect.m());
        let (a, e): (Vec<_>, Vec<_>) = (mat.edges().collect(), expect.edges().collect());
        assert_eq!(a, e);
    }

    #[test]
    fn reset_redimensions() {
        let mut g = IncrementalGraph::new(3);
        g.begin_epoch(1);
        g.add_edge(0, 2);
        g.reset(8);
        assert_eq!(g.n(), 8);
        assert_eq!(g.live_edges(), 0);
        g.begin_epoch(2);
        g.add_edge(6, 7);
        assert!(g.connected(6, 7));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_rejected() {
        IncrementalGraph::new(2).add_edge(0, 2);
    }
}
