//! Min-degree peeling: the kernel of the paper's `FindCore` (Figure 10).
//!
//! "We keep deleting the nodes with the smallest degree and their
//! associated edges from the graph, until the number of vertices in this
//! graph becomes β. The remaining vertices are the core."
//!
//! [`peel_to_size`] implements this with a bucket queue and lazy entries —
//! O(V + E) amortised — and [`peel_to_size_naive`] is the O(V²) rescan
//! reference used to cross-check it (and as an ablation baseline).

use crate::Graph;

/// Peels minimum-degree vertices until `beta` remain; returns the
/// survivors sorted ascending.
///
/// Ties are broken deterministically (the vertex that most recently
/// reached the minimum degree is removed first; for the initial buckets
/// that is the highest-numbered vertex). Determinism matters for
/// reproducible experiments; *which* tie-break is used does not affect the
/// stochastic-optimality argument, which only constrains the degree chosen.
///
/// If `beta >= n`, all vertices survive.
pub fn peel_to_size(g: &Graph, beta: usize) -> Vec<u32> {
    let n = g.n();
    if beta >= n {
        return (0..n as u32).collect();
    }
    let mut degree: Vec<u32> = (0..n as u32).map(|v| g.degree(v) as u32).collect();
    let max_deg = degree.iter().copied().max().unwrap_or(0) as usize;
    // bucket[d] holds candidate vertices whose degree was d when pushed;
    // entries can be stale and are validated on pop.
    let mut bucket: Vec<Vec<u32>> = vec![Vec::new(); max_deg + 1];
    for (v, &d) in degree.iter().enumerate() {
        bucket[d as usize].push(v as u32);
    }
    let mut removed = vec![false; n];
    let mut remaining = n;
    let mut cur = 0usize;
    while remaining > beta {
        // Find the lowest non-empty bucket with a live, non-stale entry.
        let v = loop {
            while cur <= max_deg && bucket[cur].is_empty() {
                cur += 1;
            }
            assert!(cur <= max_deg, "ran out of vertices before reaching beta");
            let cand = bucket[cur].pop().expect("bucket non-empty");
            if !removed[cand as usize] && degree[cand as usize] as usize == cur {
                break cand;
            }
            // Stale entry: drop it and retry.
        };
        removed[v as usize] = true;
        remaining -= 1;
        for &u in g.neighbors(v) {
            if !removed[u as usize] {
                let d = &mut degree[u as usize];
                *d -= 1;
                let nd = *d as usize;
                bucket[nd].push(u);
                if nd < cur {
                    cur = nd;
                }
            }
        }
    }
    (0..n as u32).filter(|&v| !removed[v as usize]).collect()
}

/// Reference implementation: rescan for the minimum degree at every step.
/// O(V²); used to validate [`peel_to_size`] and as an ablation baseline.
pub fn peel_to_size_naive(g: &Graph, beta: usize) -> Vec<u32> {
    let n = g.n();
    if beta >= n {
        return (0..n as u32).collect();
    }
    let mut degree: Vec<u32> = (0..n as u32).map(|v| g.degree(v) as u32).collect();
    let mut removed = vec![false; n];
    let mut remaining = n;
    while remaining > beta {
        // Highest-numbered vertex among those with minimum degree, matching
        // the bucket implementation's initial tie-break.
        let mut best: Option<u32> = None;
        for v in 0..n as u32 {
            if removed[v as usize] {
                continue;
            }
            best = match best {
                None => Some(v),
                Some(b) => {
                    if degree[v as usize] <= degree[b as usize] {
                        Some(v)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        let v = best.expect("graph still has vertices");
        removed[v as usize] = true;
        remaining -= 1;
        for &u in g.neighbors(v) {
            if !removed[u as usize] {
                degree[u as usize] -= 1;
            }
        }
    }
    (0..n as u32).filter(|&v| !removed[v as usize]).collect()
}

/// Alternative deletion strategies for the stochastic-optimality
/// comparison (paper Appendix): the greedy min-degree rule is claimed
/// optimal among all strategies that only see the degree sequence; these
/// are the natural competitors to measure it against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeelStrategy {
    /// The paper's greedy rule: always delete a minimum-degree vertex.
    MinDegree,
    /// Delete a maximum-degree vertex (adversarially bad for dense cores).
    MaxDegree,
    /// Delete a uniformly random surviving vertex (seeded).
    Random(u64),
}

/// Peels with an arbitrary strategy until `beta` vertices remain —
/// O(V²)-ish reference machinery for experiments, not a production path.
pub fn peel_to_size_with(g: &Graph, beta: usize, strategy: PeelStrategy) -> Vec<u32> {
    let n = g.n();
    if beta >= n {
        return (0..n as u32).collect();
    }
    let mut degree: Vec<u32> = (0..n as u32).map(|v| g.degree(v) as u32).collect();
    let mut removed = vec![false; n];
    let mut remaining = n;
    // Simple xorshift for the Random strategy (deterministic, no rand dep).
    let mut state = match strategy {
        PeelStrategy::Random(seed) => seed | 1,
        _ => 1,
    };
    let mut next_rand = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    while remaining > beta {
        let victim = match strategy {
            PeelStrategy::MinDegree => (0..n as u32)
                .filter(|&v| !removed[v as usize])
                .min_by_key(|&v| degree[v as usize]),
            PeelStrategy::MaxDegree => (0..n as u32)
                .filter(|&v| !removed[v as usize])
                .max_by_key(|&v| degree[v as usize]),
            PeelStrategy::Random(_) => {
                let k = (next_rand() % remaining as u64) as usize;
                (0..n as u32).filter(|&v| !removed[v as usize]).nth(k)
            }
        }
        .expect("vertices remain");
        removed[victim as usize] = true;
        remaining -= 1;
        for &u in g.neighbors(victim) {
            if !removed[u as usize] {
                degree[u as usize] -= 1;
            }
        }
    }
    (0..n as u32).filter(|&v| !removed[v as usize]).collect()
}

/// The k-core of `g`: the unique maximal induced subgraph in which every
/// vertex has degree ≥ `k`. Unlike [`peel_to_size`], the k-core is
/// independent of tie-breaking, which makes it the ideal cross-check for
/// the bucket machinery (and a useful detector primitive in its own
/// right: a planted dense pattern survives in a high k-core).
pub fn k_core(g: &Graph, k: usize) -> Vec<u32> {
    let n = g.n();
    let mut degree: Vec<usize> = (0..n as u32).map(|v| g.degree(v)).collect();
    let mut removed = vec![false; n];
    let mut queue: Vec<u32> = (0..n as u32).filter(|&v| degree[v as usize] < k).collect();
    for v in &queue {
        removed[*v as usize] = true;
    }
    while let Some(v) = queue.pop() {
        for &u in g.neighbors(v) {
            if !removed[u as usize] {
                degree[u as usize] -= 1;
                if degree[u as usize] < k {
                    removed[u as usize] = true;
                    queue.push(u);
                }
            }
        }
    }
    (0..n as u32).filter(|&v| !removed[v as usize]).collect()
}

/// Degrees of `vertices` counted inside the sub-graph they induce in `g`.
pub fn induced_degrees(g: &Graph, vertices: &[u32]) -> Vec<usize> {
    let set: std::collections::HashSet<u32> = vertices.iter().copied().collect();
    vertices
        .iter()
        .map(|&v| g.neighbors(v).iter().filter(|u| set.contains(u)).count())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::er::{gnp_planted, PlantedConfig};
    use crate::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A 4-clique {0,1,2,3} with pendant paths hanging off it.
    fn clique_with_tails() -> Graph {
        let mut b = GraphBuilder::new(10);
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                b.add_edge(i, j);
            }
        }
        b.add_edge(3, 4);
        b.add_edge(4, 5);
        b.add_edge(0, 6);
        b.add_edge(6, 7);
        b.add_edge(7, 8);
        b.add_edge(8, 9);
        b.build()
    }

    #[test]
    fn peel_finds_the_clique() {
        let g = clique_with_tails();
        let core = peel_to_size(&g, 4);
        assert_eq!(core, vec![0, 1, 2, 3]);
    }

    #[test]
    fn beta_at_least_n_keeps_everything() {
        let g = clique_with_tails();
        assert_eq!(peel_to_size(&g, 10).len(), 10);
        assert_eq!(peel_to_size(&g, 99).len(), 10);
    }

    #[test]
    fn beta_zero_empties_graph() {
        let g = clique_with_tails();
        assert!(peel_to_size(&g, 0).is_empty());
    }

    #[test]
    fn bucket_and_naive_recover_the_pattern_equally() {
        // Survivor sets may differ under degree ties, so compare the two
        // implementations on the quantity that matters: how much of a
        // planted dense pattern each recovers.
        let mut r = StdRng::seed_from_u64(11);
        let (g, pattern) = gnp_planted(
            &mut r,
            PlantedConfig {
                n: 400,
                p1: 1.0 / 400.0,
                n1: 30,
                p2: 0.8,
            },
        );
        let hits = |core: &[u32]| {
            core.iter()
                .filter(|v| pattern.binary_search(v).is_ok())
                .count()
        };
        let a = peel_to_size(&g, 30);
        let b = peel_to_size_naive(&g, 30);
        assert_eq!(a.len(), 30);
        assert_eq!(b.len(), 30);
        assert!(hits(&a) >= 28, "bucket peel missed pattern: {}", hits(&a));
        assert!(hits(&b) >= 28, "naive peel missed pattern: {}", hits(&b));
    }

    #[test]
    fn k_core_is_order_independent_and_correct() {
        // Exact property-style check: every k-core vertex has induced
        // degree >= k, and no removed vertex could be added back.
        let mut r = StdRng::seed_from_u64(21);
        let (g, _) = gnp_planted(
            &mut r,
            PlantedConfig {
                n: 600,
                p1: 3.0 / 600.0,
                n1: 40,
                p2: 0.7,
            },
        );
        for k in 1..=6usize {
            let core = k_core(&g, k);
            let degs = induced_degrees(&g, &core);
            assert!(
                degs.iter().all(|&d| d >= k),
                "k-core violates degree bound at k={k}"
            );
            // Maximality: every vertex outside has < k neighbours in the core.
            let set: std::collections::HashSet<u32> = core.iter().copied().collect();
            for v in 0..g.n() as u32 {
                if !set.contains(&v) {
                    let d = g.neighbors(v).iter().filter(|u| set.contains(u)).count();
                    assert!(d < k, "vertex {v} should be in the {k}-core");
                }
            }
        }
    }

    #[test]
    fn k_core_on_clique() {
        let g = clique_with_tails();
        assert_eq!(k_core(&g, 3), vec![0, 1, 2, 3]);
        assert_eq!(k_core(&g, 4), Vec::<u32>::new());
        assert_eq!(k_core(&g, 1).len(), 10);
    }

    #[test]
    fn peel_recovers_planted_pattern() {
        let mut r = StdRng::seed_from_u64(7);
        let cfg = PlantedConfig {
            n: 5_000,
            p1: 0.5 / 5_000.0,
            n1: 60,
            p2: 0.5,
        };
        let (g, pattern) = gnp_planted(&mut r, cfg);
        let core = peel_to_size(&g, 40);
        let hits = core
            .iter()
            .filter(|v| pattern.binary_search(v).is_ok())
            .count();
        assert!(
            hits >= 35,
            "core should be dominated by pattern vertices, got {hits}/40"
        );
    }

    #[test]
    fn induced_degrees_counts_inside_only() {
        let g = clique_with_tails();
        let d = induced_degrees(&g, &[0, 1, 2, 3]);
        assert_eq!(d, vec![3, 3, 3, 3]);
        let d2 = induced_degrees(&g, &[4, 5, 9]);
        assert_eq!(d2, vec![1, 1, 0]);
    }

    #[test]
    fn empty_graph_peel() {
        let g = GraphBuilder::new(0).build();
        assert!(peel_to_size(&g, 0).is_empty());
    }

    #[test]
    fn min_degree_strategy_matches_bucket_quality() {
        // peel_to_size_with(MinDegree) and the bucket implementation may
        // break ties differently but must recover a planted pattern
        // equally well.
        let mut r = StdRng::seed_from_u64(31);
        let (g, pattern) = gnp_planted(
            &mut r,
            PlantedConfig {
                n: 1_000,
                p1: 1.0 / 1_000.0,
                n1: 40,
                p2: 0.5,
            },
        );
        let hits = |core: &[u32]| {
            core.iter()
                .filter(|v| pattern.binary_search(v).is_ok())
                .count()
        };
        let bucket = peel_to_size(&g, 40);
        let slow = peel_to_size_with(&g, 40, PeelStrategy::MinDegree);
        assert!(hits(&bucket) >= 36);
        assert!(hits(&slow) >= 36);
    }

    #[test]
    fn stochastic_optimality_empirical() {
        // The Appendix's Corollary 4: among degree-only strategies, the
        // greedy min-degree rule maximises the expected number of pattern
        // vertices surviving the peel. Compare against Random and
        // MaxDegree over several planted graphs.
        let mut totals = [0usize; 3]; // min, random, max
        for seed in 0..6u64 {
            let mut r = StdRng::seed_from_u64(100 + seed);
            let (g, pattern) = gnp_planted(
                &mut r,
                PlantedConfig {
                    n: 800,
                    p1: 2.0 / 800.0,
                    n1: 30,
                    p2: 0.4,
                },
            );
            let hits = |core: &[u32]| {
                core.iter()
                    .filter(|v| pattern.binary_search(v).is_ok())
                    .count()
            };
            totals[0] += hits(&peel_to_size_with(&g, 30, PeelStrategy::MinDegree));
            totals[1] += hits(&peel_to_size_with(&g, 30, PeelStrategy::Random(seed + 1)));
            totals[2] += hits(&peel_to_size_with(&g, 30, PeelStrategy::MaxDegree));
        }
        assert!(
            totals[0] > totals[1],
            "min-degree ({}) must beat random ({})",
            totals[0],
            totals[1]
        );
        assert!(
            totals[1] >= totals[2],
            "random ({}) should beat max-degree ({})",
            totals[1],
            totals[2]
        );
        // And the greedy rule should be close to perfect here.
        assert!(totals[0] >= 6 * 25, "greedy only kept {} of 180", totals[0]);
    }
}
