//! Erdős–Rényi G(n, p) sampling and planted-pattern models.
//!
//! The sampler uses geometric skipping over the C(n,2) linearised pair
//! index, so generating a 102,400-vertex null graph with p ≈ 0.65×10⁻⁵
//! (the paper's Figure-13 configuration, ~34k edges out of 5.2 billion
//! pairs) costs time proportional to the edge count, not the pair count.

use crate::{Graph, GraphBuilder};
use dcs_stats::sample::sample_geometric;
use rand::seq::SliceRandom;
use rand::Rng;

/// The ER phase-transition threshold `1/n` for a graph of `n` vertices.
///
/// # Panics
/// Panics if `n == 0`.
pub fn phase_transition_p(n: usize) -> f64 {
    assert!(n > 0, "phase transition undefined for empty graph");
    1.0 / n as f64
}

/// The asymptotic giant-component fraction of G(n, c/n) for mean degree
/// `c`: the largest root `s` of `s = 1 − e^(−c·s)`, found by fixed-point
/// iteration. Zero for `c ≤ 1` (subcritical — the phase-transition fact
/// the ER test rides on).
pub fn giant_component_fraction(c: f64) -> f64 {
    assert!(c >= 0.0, "mean degree must be non-negative");
    if c <= 1.0 {
        return 0.0;
    }
    // The map s ↦ 1 − e^(−cs) is a contraction toward the positive root
    // when started at s = 1.
    let mut s = 1.0f64;
    for _ in 0..200 {
        let next = 1.0 - (-c * s).exp();
        if (next - s).abs() < 1e-14 {
            return next;
        }
        s = next;
    }
    s
}

/// Predicted size of the merged component when a pattern of `n1` vertices
/// with internal edge probability `p2` is planted into a subcritical
/// G(n, p1) background:
/// giant-fraction(n1·p2)·n1 pattern vertices, each dragging in its
/// background tree of expected size `1/(1 − n·p1)`.
///
/// This is the analytic skeleton of Figure 13: the planted CDFs separate
/// from the null exactly when this prediction clears the component
/// threshold.
pub fn planted_component_prediction(n: usize, p1: f64, n1: usize, p2: f64) -> f64 {
    let c_bg = n as f64 * p1;
    assert!(c_bg < 1.0, "background must be subcritical for the ER test");
    let core = giant_component_fraction(n1 as f64 * p2) * n1 as f64;
    let tree = 1.0 / (1.0 - c_bg);
    core * tree
}

/// Maps a linear pair index `t ∈ [0, C(n,2))` to the pair `(i, j)`, `i < j`,
/// in lexicographic order.
fn unrank_pair(t: u64, n: u64) -> (u32, u32) {
    // Row i owns indices [S(i), S(i) + (n-1-i)) where S(i) = i·n − i(i+1)/2.
    // Solve for i with a float guess then fix up.
    let tn = t as f64;
    let nf = n as f64;
    // Invert S(i) ≈ i·n − i²/2: i ≈ n − 0.5 − sqrt((n−0.5)² − 2t).
    let disc = (nf - 0.5) * (nf - 0.5) - 2.0 * tn;
    let mut i = if disc <= 0.0 {
        n - 2
    } else {
        (nf - 0.5 - disc.sqrt()).floor().max(0.0) as u64
    };
    let row_start = |i: u64| i * n - i * (i + 1) / 2;
    // Fix up float error: walk to the correct row.
    while i + 1 < n && row_start(i + 1) <= t {
        i += 1;
    }
    while i > 0 && row_start(i) > t {
        i -= 1;
    }
    let j = i + 1 + (t - row_start(i));
    debug_assert!(j < n, "unrank produced out-of-range column");
    (i as u32, j as u32)
}

/// Appends G(n, p) edges to `builder` using geometric skips: expected cost
/// O(p·C(n,2)).
///
/// # Panics
/// Panics unless `0 ≤ p ≤ 1` and the builder has at least `n` vertices.
pub fn add_gnp_edges<R: Rng + ?Sized>(rng: &mut R, builder: &mut GraphBuilder, n: usize, p: f64) {
    assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
    if n < 2 || p == 0.0 {
        return;
    }
    let total = n as u64 * (n as u64 - 1) / 2;
    let mut t = sample_geometric(rng, p);
    while t < total {
        let (i, j) = unrank_pair(t, n as u64);
        builder.add_edge(i, j);
        t += 1 + sample_geometric(rng, p);
    }
}

/// Samples an Erdős–Rényi graph G(n, p).
pub fn gnp<R: Rng + ?Sized>(rng: &mut R, n: usize, p: f64) -> Graph {
    let expected = (p * n as f64 * (n as f64 - 1.0) / 2.0) as usize;
    let mut b = GraphBuilder::with_capacity(n, expected + expected / 4 + 16);
    add_gnp_edges(rng, &mut b, n, p);
    b.build()
}

/// A planted-pattern graph: the union of a G(n, p₁) background and extra
/// G(n₁, p₂) edges among a random subset of `n₁` *pattern* vertices — the
/// unaligned case's model of groups that all saw the common content.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlantedConfig {
    /// Total vertices (flow groups across all routers).
    pub n: usize,
    /// Background edge probability (below the 1/n phase transition for the
    /// ER test to work).
    pub p1: f64,
    /// Number of pattern vertices that saw the common content.
    pub n1: usize,
    /// Pairwise edge probability among pattern vertices (the amplified
    /// match probability, ≈ 1 − e^(−k²/536) in the paper's model).
    pub p2: f64,
}

/// Samples a planted-pattern graph; returns the graph and the sorted list
/// of pattern vertices.
///
/// # Panics
/// Panics if `n1 > n` or the probabilities are out of range.
pub fn gnp_planted<R: Rng + ?Sized>(rng: &mut R, cfg: PlantedConfig) -> (Graph, Vec<u32>) {
    assert!(cfg.n1 <= cfg.n, "pattern larger than graph");
    assert!((0.0..=1.0).contains(&cfg.p2), "p2 must be a probability");
    let mut b = GraphBuilder::new(cfg.n);
    add_gnp_edges(rng, &mut b, cfg.n, cfg.p1);

    // Choose the pattern vertices uniformly at random.
    let mut all: Vec<u32> = (0..cfg.n as u32).collect();
    all.shuffle(rng);
    let mut pattern: Vec<u32> = all.into_iter().take(cfg.n1).collect();
    pattern.sort_unstable();

    // Plant G(n1, p2) among them, mapped through the pattern vertex list.
    if cfg.n1 >= 2 && cfg.p2 > 0.0 {
        let total = cfg.n1 as u64 * (cfg.n1 as u64 - 1) / 2;
        let mut t = sample_geometric(rng, cfg.p2);
        while t < total {
            let (i, j) = unrank_pair(t, cfg.n1 as u64);
            b.add_edge(pattern[i as usize], pattern[j as usize]);
            t += 1 + sample_geometric(rng, cfg.p2);
        }
    }
    (b.build(), pattern)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{component_sizes, largest_component};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn unrank_pair_is_bijective_small() {
        let n = 13u64;
        let mut seen = std::collections::HashSet::new();
        let total = n * (n - 1) / 2;
        for t in 0..total {
            let (i, j) = unrank_pair(t, n);
            assert!(i < j && (j as u64) < n, "bad pair ({i},{j}) at t={t}");
            assert!(seen.insert((i, j)), "duplicate pair at t={t}");
        }
        assert_eq!(seen.len() as u64, total);
    }

    #[test]
    fn unrank_pair_extremes() {
        assert_eq!(unrank_pair(0, 100), (0, 1));
        assert_eq!(unrank_pair(98, 100), (0, 99));
        assert_eq!(unrank_pair(99, 100), (1, 2));
        assert_eq!(unrank_pair(100 * 99 / 2 - 1, 100), (98, 99));
    }

    #[test]
    fn unrank_pair_large_n_no_float_break() {
        // Exercise the float fix-up at the paper's 102,400-vertex scale.
        let n = 102_400u64;
        let total = n * (n - 1) / 2;
        for &t in &[0, 1, total / 3, total / 2, total - 2, total - 1] {
            let (i, j) = unrank_pair(t, n);
            assert!(i < j && (j as u64) < n);
            // Re-rank and compare.
            let rank = u64::from(i) * n - u64::from(i) * (u64::from(i) + 1) / 2
                + (u64::from(j) - u64::from(i) - 1);
            assert_eq!(rank, t, "rank mismatch at t={t}");
        }
    }

    #[test]
    fn gnp_edge_count_concentrates() {
        let mut r = rng(1);
        let (n, p) = (2000usize, 0.002);
        let g = gnp(&mut r, n, p);
        let expected = p * (n * (n - 1) / 2) as f64; // ≈ 3998
        let got = g.m() as f64;
        assert!(
            (got - expected).abs() < 6.0 * expected.sqrt(),
            "edge count {got} too far from {expected}"
        );
    }

    #[test]
    fn gnp_p_zero_and_one() {
        let mut r = rng(2);
        assert_eq!(gnp(&mut r, 50, 0.0).m(), 0);
        assert_eq!(gnp(&mut r, 20, 1.0).m(), 190);
    }

    #[test]
    fn phase_transition_subcritical_components_are_small() {
        let mut r = rng(3);
        let n = 20_000;
        let g = gnp(&mut r, n, 0.5 / n as f64);
        let largest = component_sizes(&g)[0];
        // Subcritical: O(log n); allow a wide margin.
        assert!(largest < 60, "subcritical largest component {largest}");
    }

    #[test]
    fn phase_transition_supercritical_giant_emerges() {
        let mut r = rng(4);
        let n = 20_000;
        let g = gnp(&mut r, n, 2.0 / n as f64);
        let largest = component_sizes(&g)[0];
        // Supercritical at c=2: giant ≈ 0.797·n.
        assert!(
            largest > n / 2,
            "supercritical largest component only {largest}"
        );
    }

    #[test]
    fn planted_pattern_connects() {
        let mut r = rng(5);
        let cfg = PlantedConfig {
            n: 10_000,
            p1: 0.3 / 10_000.0,
            n1: 100,
            p2: 0.2,
        };
        let (g, pattern) = gnp_planted(&mut r, cfg);
        assert_eq!(pattern.len(), 100);
        // Pattern vertices have expected internal degree ~ 20 >> background.
        let (size, members) = largest_component(&g);
        assert!(size >= 90, "giant from planted pattern missing: {size}");
        let in_pattern = members
            .iter()
            .filter(|v| pattern.binary_search(v).is_ok())
            .count();
        assert!(
            in_pattern * 2 > members.len(),
            "largest component not dominated by the pattern"
        );
    }

    #[test]
    fn planted_with_zero_pattern_is_plain_er() {
        let mut r = rng(6);
        let cfg = PlantedConfig {
            n: 500,
            p1: 0.001,
            n1: 0,
            p2: 0.9,
        };
        let (g, pattern) = gnp_planted(&mut r, cfg);
        assert!(pattern.is_empty());
        assert!(g.n() == 500);
    }

    #[test]
    fn phase_transition_p_value() {
        assert!((phase_transition_p(102_400) - 9.765625e-6).abs() < 1e-12);
    }

    #[test]
    fn giant_fraction_known_values() {
        assert_eq!(giant_component_fraction(0.5), 0.0);
        assert_eq!(giant_component_fraction(1.0), 0.0);
        // c = 2: s ≈ 0.7968.
        assert!((giant_component_fraction(2.0) - 0.7968).abs() < 1e-3);
        // Large c: fraction → 1.
        assert!(giant_component_fraction(10.0) > 0.9999);
        // Just supercritical: small positive.
        let s = giant_component_fraction(1.1);
        assert!(s > 0.0 && s < 0.25, "s(1.1) = {s}");
    }

    #[test]
    fn giant_fraction_matches_simulation() {
        let mut r = rng(9);
        let n = 30_000;
        for c in [1.5f64, 2.0, 3.0] {
            let g = gnp(&mut r, n, c / n as f64);
            let measured = component_sizes(&g)[0] as f64 / n as f64;
            let predicted = giant_component_fraction(c);
            assert!(
                (measured - predicted).abs() < 0.03,
                "c={c}: measured {measured} vs predicted {predicted}"
            );
        }
    }

    #[test]
    fn planted_prediction_tracks_simulation() {
        let mut r = rng(10);
        let n = 50_000;
        let p1 = 0.65 / n as f64;
        let (n1, p2) = (150usize, 0.1f64);
        let predicted = planted_component_prediction(n, p1, n1, p2);
        let mut measured = 0.0;
        let reps = 5;
        for _ in 0..reps {
            let (g, _) = gnp_planted(&mut r, PlantedConfig { n, p1, n1, p2 });
            measured += component_sizes(&g)[0] as f64;
        }
        measured /= reps as f64;
        // The prediction ignores pattern-vertex tree overlaps and finite-
        // size effects; it should land within ~35% of the simulation.
        assert!(
            (measured - predicted).abs() / predicted < 0.35,
            "measured {measured} vs predicted {predicted}"
        );
    }

    #[test]
    #[should_panic(expected = "subcritical")]
    fn planted_prediction_rejects_supercritical_background() {
        planted_component_prediction(100, 0.05, 10, 0.5);
    }
}
