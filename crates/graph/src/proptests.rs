//! Property-based tests for the graph substrate.

use crate::components::{component_sizes, largest_component, UnionFind};
use crate::peel::{induced_degrees, k_core, peel_to_size};
use crate::{Graph, GraphBuilder};
use proptest::prelude::*;

/// An arbitrary small simple graph from an edge list.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..40).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..80).prop_map(move |edges| {
            let mut b = GraphBuilder::new(n);
            for (u, v) in edges {
                if u != v {
                    b.add_edge(u, v);
                }
            }
            b.build()
        })
    })
}

/// Reference reachability via DFS from each vertex.
fn brute_components(g: &Graph) -> Vec<usize> {
    let mut seen = vec![false; g.n()];
    let mut sizes = Vec::new();
    for start in 0..g.n() as u32 {
        if seen[start as usize] {
            continue;
        }
        let mut stack = vec![start];
        seen[start as usize] = true;
        let mut size = 0usize;
        while let Some(v) = stack.pop() {
            size += 1;
            for &u in g.neighbors(v) {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    stack.push(u);
                }
            }
        }
        sizes.push(size);
    }
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    sizes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn graph_is_simple_and_symmetric(g in arb_graph()) {
        for v in 0..g.n() as u32 {
            let nbrs = g.neighbors(v);
            // Sorted, no duplicates, no self-loops.
            prop_assert!(nbrs.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(!nbrs.contains(&v));
            for &u in nbrs {
                prop_assert!(g.has_edge(u, v), "asymmetric edge {u}-{v}");
            }
        }
        // Handshake lemma.
        let degree_sum: usize = (0..g.n() as u32).map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.m());
    }

    #[test]
    fn components_match_brute_force(g in arb_graph()) {
        prop_assert_eq!(component_sizes(&g), brute_components(&g));
    }

    #[test]
    fn largest_component_is_connected_and_maximal(g in arb_graph()) {
        let (size, members) = largest_component(&g);
        prop_assert_eq!(size, members.len());
        prop_assert_eq!(size, component_sizes(&g)[0]);
        // Connectivity: union-find over induced edges joins all members.
        if !members.is_empty() {
            let index: std::collections::HashMap<u32, u32> = members
                .iter().enumerate().map(|(i, &v)| (v, i as u32)).collect();
            let mut uf = UnionFind::new(members.len());
            for &v in &members {
                for &u in g.neighbors(v) {
                    if let Some((&iv, &iu)) = index.get(&v).zip(index.get(&u)) {
                        uf.union(iv, iu);
                    }
                }
            }
            let root = uf.find(0);
            for i in 1..members.len() as u32 {
                prop_assert_eq!(uf.find(i), root, "largest component not connected");
            }
        }
    }

    #[test]
    fn peel_returns_exactly_beta(g in arb_graph(), beta in 0usize..50) {
        let core = peel_to_size(&g, beta);
        prop_assert_eq!(core.len(), beta.min(g.n()));
        // Sorted unique vertex ids in range.
        prop_assert!(core.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(core.iter().all(|&v| (v as usize) < g.n()));
    }

    #[test]
    fn k_core_properties(g in arb_graph(), k in 0usize..8) {
        let core = k_core(&g, k);
        let degs = induced_degrees(&g, &core);
        prop_assert!(degs.iter().all(|&d| d >= k), "degree bound violated");
        // Maximality: no excluded vertex has >= k neighbours in the core.
        let set: std::collections::HashSet<u32> = core.iter().copied().collect();
        for v in 0..g.n() as u32 {
            if !set.contains(&v) {
                let d = g.neighbors(v).iter().filter(|u| set.contains(u)).count();
                prop_assert!(d < k, "vertex {v} wrongly excluded from {k}-core");
            }
        }
    }

    #[test]
    fn k_core_nested(g in arb_graph()) {
        // (k+1)-core ⊆ k-core.
        let mut prev: Option<std::collections::HashSet<u32>> = None;
        for k in 0..6usize {
            let core: std::collections::HashSet<u32> = k_core(&g, k).into_iter().collect();
            if let Some(p) = &prev {
                prop_assert!(core.is_subset(p), "{k}-core not nested");
            }
            prev = Some(core);
        }
    }
}
