//! Compact undirected simple graph.

/// An immutable undirected simple graph in adjacency-list form.
///
/// Vertices are `0..n` as `u32` (the unaligned analysis never needs more
/// than a few hundred thousand group-vertices). Built through
/// [`GraphBuilder`], which normalises, sorts and deduplicates edges so the
/// graph is always simple — matching the paper's construction ("we put at
/// most one edge between any two vertices … the resulting graph is a
/// simple graph").
#[derive(Debug, Clone)]
pub struct Graph {
    adj: Vec<Vec<u32>>,
    n_edges: usize,
}

impl Graph {
    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.adj.len()
    }

    /// Number of (undirected) edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.n_edges
    }

    /// Degree of vertex `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        self.adj[v as usize].len()
    }

    /// Neighbours of `v`, sorted ascending.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.adj[v as usize]
    }

    /// Whether the edge `{u, v}` exists (binary search over the sorted
    /// neighbour list).
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.adj[u as usize].binary_search(&v).is_ok()
    }

    /// Iterator over all edges as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, nbrs)| {
            let u = u as u32;
            nbrs.iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }
}

/// Accumulates edges and produces a normalised [`Graph`].
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(u32, u32)>,
}

impl GraphBuilder {
    /// Starts a builder over `n` vertices.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "vertex count exceeds u32 range");
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Pre-allocates space for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        let mut b = GraphBuilder::new(n);
        b.edges.reserve(m);
        b
    }

    /// Adds an undirected edge. Duplicates are tolerated (removed at
    /// build); self-loops are rejected.
    ///
    /// # Panics
    /// Panics on a self-loop or out-of-range endpoint.
    #[inline]
    pub fn add_edge(&mut self, u: u32, v: u32) {
        assert_ne!(u, v, "self-loops are not allowed");
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u},{v}) out of range for n={}",
            self.n
        );
        self.edges.push(if u < v { (u, v) } else { (v, u) });
    }

    /// Number of edges added so far (before dedup).
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Builds the simple graph: sort, dedup, materialise adjacency lists.
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let mut deg = vec![0usize; self.n];
        for &(u, v) in &self.edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let mut adj: Vec<Vec<u32>> = deg.iter().map(|&d| Vec::with_capacity(d)).collect();
        for &(u, v) in &self.edges {
            adj[u as usize].push(v);
            adj[v as usize].push(u);
        }
        // Each list was filled in sorted order of (u,v) pairs, which keeps
        // the "forward" halves sorted but interleaves the "backward" halves;
        // sort to restore the invariant.
        for list in &mut adj {
            list.sort_unstable();
        }
        Graph {
            adj,
            n_edges: self.edges.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_isolated() -> Graph {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 0);
        b.add_edge(3, 4);
        b.build()
    }

    #[test]
    fn counts_and_degrees() {
        let g = triangle_plus_isolated();
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 4);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(3), 1);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn duplicate_edges_collapse() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        b.add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.m(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn has_edge_and_edges_iterator() {
        let g = triangle_plus_isolated();
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(0, 3));
        let mut es: Vec<_> = g.edges().collect();
        es.sort_unstable();
        assert_eq!(es, vec![(0, 1), (0, 2), (1, 2), (3, 4)]);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        GraphBuilder::new(2).add_edge(1, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        GraphBuilder::new(2).add_edge(0, 2);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        assert_eq!(g.edges().count(), 0);
    }
}
