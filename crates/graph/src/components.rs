//! Connected components: union-find and size statistics.
//!
//! The ER statistical test (paper Section IV-B) reduces to one number —
//! the size of the largest connected component — so these routines are the
//! measurement half of the detector.

use crate::Graph;

/// Union-find (disjoint-set forest) with path halving and union by size.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            // Path halving.
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `false` if already joined.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        true
    }

    /// Size of `x`'s set.
    pub fn set_size(&mut self, x: u32) -> u32 {
        let r = self.find(x);
        self.size[r as usize]
    }

    /// Whether `a` and `b` share a set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }
}

/// Sizes of all connected components, in descending order.
pub fn component_sizes(g: &Graph) -> Vec<usize> {
    let mut uf = UnionFind::new(g.n());
    for (u, v) in g.edges() {
        uf.union(u, v);
    }
    let mut counts = std::collections::HashMap::new();
    for v in 0..g.n() as u32 {
        *counts.entry(uf.find(v)).or_insert(0usize) += 1;
    }
    let mut sizes: Vec<usize> = counts.into_values().collect();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    sizes
}

/// Size and members of the largest connected component (ties broken by the
/// smallest representative).
pub fn largest_component(g: &Graph) -> (usize, Vec<u32>) {
    if g.n() == 0 {
        return (0, Vec::new());
    }
    let mut uf = UnionFind::new(g.n());
    for (u, v) in g.edges() {
        uf.union(u, v);
    }
    // Find the representative with the biggest set.
    let mut best_rep = 0u32;
    let mut best = 0u32;
    for v in 0..g.n() as u32 {
        let s = uf.set_size(v);
        if s > best {
            best = s;
            best_rep = uf.find(v);
        }
    }
    let members: Vec<u32> = (0..g.n() as u32)
        .filter(|&v| uf.find(v) == best_rep)
        .collect();
    (best as usize, members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn two_components() -> Graph {
        // {0,1,2,3} path and {4,5} edge, plus isolated 6.
        let mut b = GraphBuilder::new(7);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        b.add_edge(4, 5);
        b.build()
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(4);
        assert!(!uf.connected(0, 1));
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0), "repeat union reports already joined");
        assert!(uf.connected(0, 1));
        assert_eq!(uf.set_size(0), 2);
        uf.union(2, 3);
        uf.union(0, 3);
        assert_eq!(uf.set_size(1), 4);
    }

    #[test]
    fn sizes_descending() {
        let g = two_components();
        assert_eq!(component_sizes(&g), vec![4, 2, 1]);
    }

    #[test]
    fn largest_component_members() {
        let g = two_components();
        let (size, members) = largest_component(&g);
        assert_eq!(size, 4);
        assert_eq!(members, vec![0, 1, 2, 3]);
    }

    #[test]
    fn singleton_graph() {
        let g = GraphBuilder::new(3).build();
        assert_eq!(component_sizes(&g), vec![1, 1, 1]);
        let (size, members) = largest_component(&g);
        assert_eq!(size, 1);
        assert_eq!(members.len(), 1);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert!(component_sizes(&g).is_empty());
        assert_eq!(largest_component(&g).0, 0);
    }
}
