//! Random-graph substrate for the unaligned-case analysis.
//!
//! Section IV-B of the paper converts the fused digest matrix into a graph
//! over flow-split *groups* and then leans on two classical facts:
//!
//! * the Erdős–Rényi **phase transition** — below edge probability 1/n all
//!   components of G(n, p) are O(log n), above it a giant component
//!   emerges — which powers the yes/no statistical test;
//! * **min-degree peeling** — repeatedly deleting the minimum-degree vertex
//!   — which is the paper's stochastically optimal `FindCore` strategy.
//!
//! This crate supplies the machinery: a compact undirected [`Graph`], exact
//! connected components, an epoch-incremental mutable graph
//! ([`IncrementalGraph`]: stamped edges, expiry, components rebuilt lazily
//! behind a watermark), an O(E) expected-time G(n, p) sampler
//! ([`er::gnp`]) with planted dense subgraphs ([`er::gnp_planted`]), and a
//! bucket-queue peeling kernel ([`peel::peel_to_size`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod components;
pub mod er;
mod graph;
mod incremental;
pub mod peel;

#[cfg(test)]
mod proptests;

pub use components::{component_sizes, largest_component, UnionFind};
pub use graph::{Graph, GraphBuilder};
pub use incremental::IncrementalGraph;
