//! Compute-budget plumbing and thread fan-out for the analysis engine.
//!
//! The detection pipeline has a handful of embarrassingly parallel hot
//! loops (candidate expansion, column screening, all-pairs digest
//! correlation). Rather than pull in a work-stealing runtime, this crate
//! wraps [`std::thread::scope`] in a few deterministic helpers: callers
//! describe *how much* parallelism to use via [`ComputeBudget`] and get
//! back per-worker results in worker-index order, so reductions are
//! reproducible regardless of scheduling.
//!
//! Everything degrades gracefully to a plain inline loop when the budget
//! is one thread (the helpers never spawn in that case), which keeps
//! single-threaded runs free of thread overhead and easy to profile.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize};
use std::ops::Range;

/// How much compute an analysis call may use.
///
/// Threaded through [`SearchConfig`](../dcs_aligned) and the unaligned
/// pipeline so every layer splits work the same way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComputeBudget {
    /// Worker threads for parallel sections. `0` means "use all
    /// available CPUs" (resolved by [`ComputeBudget::effective_threads`]).
    pub threads: usize,
    /// Column-block width for blocked kernel sweeps. Bounds the working
    /// set of batched AND-popcount passes so a block of columns stays
    /// cache-resident; `0` falls back to [`DEFAULT_BLOCK_COLS`].
    pub block_cols: usize,
    /// Column shards the fused-matrix stages partition their work into
    /// (see [`shard_columns`]). Every stage result is bit-identical for
    /// every shard count — shards only decide how the column space is
    /// cut, never what is computed — so this is purely a throughput
    /// knob. `0` means "one shard per worker thread" (resolved by
    /// [`ComputeBudget::effective_shards`]).
    pub shards: usize,
}

/// Default column-block width for batched kernels.
///
/// 8 columns × up to 64 KiB per 4 Mbit column keeps a block inside L2 on
/// everything we run on, and matches the 8-wide unroll of the word
/// kernels.
pub const DEFAULT_BLOCK_COLS: usize = 8;

impl Default for ComputeBudget {
    fn default() -> Self {
        ComputeBudget {
            threads: 0,
            block_cols: DEFAULT_BLOCK_COLS,
            shards: 0,
        }
    }
}

impl ComputeBudget {
    /// Budget pinned to a single thread and a single shard (fully
    /// sequential).
    pub fn sequential() -> Self {
        ComputeBudget {
            threads: 1,
            block_cols: DEFAULT_BLOCK_COLS,
            shards: 1,
        }
    }

    /// Budget pinned to exactly `threads` workers (shards follow the
    /// thread count).
    pub fn with_threads(threads: usize) -> Self {
        ComputeBudget {
            threads,
            block_cols: DEFAULT_BLOCK_COLS,
            shards: 0,
        }
    }

    /// This budget with the column-shard count pinned to `shards`.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Resolves `threads == 0` to the machine's available parallelism.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    /// Resolves `block_cols == 0` to [`DEFAULT_BLOCK_COLS`].
    pub fn effective_block_cols(&self) -> usize {
        if self.block_cols > 0 {
            self.block_cols
        } else {
            DEFAULT_BLOCK_COLS
        }
    }

    /// Workers to actually spawn for `items` units of work: never more
    /// threads than items, never zero.
    pub fn workers_for(&self, items: usize) -> usize {
        self.effective_threads().min(items).max(1)
    }

    /// Resolves `shards == 0` to one shard per effective worker thread.
    pub fn effective_shards(&self) -> usize {
        if self.shards > 0 {
            self.shards
        } else {
            self.effective_threads()
        }
    }
}

/// Partitions the column range `0..ncols` into at most `shards`
/// contiguous ranges whose interior boundaries are multiples of `align`
/// (pass 1 for unconstrained cuts, 64 to keep 64-column word tiles whole
/// so a tile never straddles two shards).
///
/// The plan is a pure function of `(ncols, shards, align)` — it never
/// consults the machine — and the ranges cover `0..ncols` exactly, in
/// ascending order, with no empty range. Shard *contents* being
/// position-independent is what lets every sharded stage merge results
/// deterministically.
pub fn shard_columns(ncols: usize, shards: usize, align: usize) -> Vec<Range<usize>> {
    let align = align.max(1);
    if ncols == 0 {
        return Vec::new();
    }
    let units = ncols.div_ceil(align);
    split_range(units, shards.max(1))
        .into_iter()
        .map(|r| (r.start * align)..(r.end * align).min(ncols))
        .collect()
}

/// Runs `jobs` across at most `workers` scoped threads, assigning each
/// worker a contiguous block of jobs (the [`split_range`] split) and
/// consuming every job exactly once. Jobs carry their own inputs and
/// output slots (e.g. pre-split `&mut` shard slices), so which worker ran
/// a job can never influence the result — the parallel driver for
/// sharded stages that write disjoint outputs in place.
///
/// Worker 0 runs on the calling thread; `workers == 1` is an inline loop
/// with no spawn. Panics in a worker propagate to the caller.
pub fn run_jobs<J, F>(jobs: Vec<J>, workers: usize, f: F)
where
    J: Send,
    F: Fn(J) + Sync,
{
    let batches = {
        let ranges = split_range(jobs.len(), workers.max(1));
        let mut jobs = jobs.into_iter();
        ranges
            .into_iter()
            .map(|r| jobs.by_ref().take(r.len()).collect::<Vec<J>>())
            .collect::<Vec<_>>()
    };
    if batches.len() <= 1 {
        for job in batches.into_iter().flatten() {
            f(job);
        }
        return;
    }
    std::thread::scope(|scope| {
        let f = &f;
        let mut iter = batches.into_iter();
        let first = iter.next().expect("at least one batch");
        let handles: Vec<_> = iter
            .map(|batch| {
                scope.spawn(move || {
                    for job in batch {
                        f(job);
                    }
                })
            })
            .collect();
        for job in first {
            f(job);
        }
        for h in handles {
            h.join().expect("dcs-parallel worker panicked");
        }
    });
}

/// Runs `f(0..workers)` on `workers` scoped threads and returns the
/// results in worker-index order.
///
/// Worker 0 runs on the calling thread, so `workers == 1` is exactly an
/// inline call with no spawn. Results are collected positionally, which
/// makes any fold over them independent of completion order — the
/// foundation for the pipeline's thread-count-invariant output.
///
/// Panics in a worker propagate to the caller.
pub fn map_workers<T, F>(workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.max(1);
    if workers == 1 {
        return vec![f(0)];
    }
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = (1..workers).map(|w| scope.spawn(move || f(w))).collect();
        let mut out = Vec::with_capacity(workers);
        out.push(f(0));
        for h in handles {
            out.push(h.join().expect("dcs-parallel worker panicked"));
        }
        out
    })
}

/// [`map_workers`] with a persistent per-worker scratch buffer.
///
/// `scratch` is grown to `workers` entries with `mk` (existing entries
/// are kept — this is the epoch-scratch reuse path: buffers allocated in
/// epoch 1 are handed back to workers in every later epoch), and worker
/// `w` receives exclusive `&mut` access to `scratch[w]` for the duration
/// of the call. Worker 0 runs on the calling thread, as in
/// [`map_workers`].
///
/// Panics in a worker propagate to the caller.
pub fn map_workers_scratch<S, T, F, M>(workers: usize, scratch: &mut Vec<S>, mk: M, f: F) -> Vec<T>
where
    S: Send,
    T: Send,
    F: Fn(usize, &mut S) -> T + Sync,
    M: FnMut() -> S,
{
    let workers = workers.max(1);
    scratch.resize_with(workers.max(scratch.len()), mk);
    if workers == 1 {
        return vec![f(0, &mut scratch[0])];
    }
    std::thread::scope(|scope| {
        let f = &f;
        let mut slots = scratch.iter_mut();
        let first = slots.next().expect("scratch grown to worker count");
        let handles: Vec<_> = slots
            .take(workers - 1)
            .enumerate()
            .map(|(i, s)| scope.spawn(move || f(i + 1, s)))
            .collect();
        let mut out = Vec::with_capacity(workers);
        out.push(f(0, first));
        for h in handles {
            out.push(h.join().expect("dcs-parallel worker panicked"));
        }
        out
    })
}

/// Splits `0..len` into `parts` contiguous ranges whose lengths differ by
/// at most one (the first `len % parts` ranges get the extra element).
///
/// Returns fewer than `parts` ranges when `len < parts`; never returns an
/// empty range.
pub fn split_range(len: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.max(1).min(len.max(1));
    if len == 0 {
        return Vec::new();
    }
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let span = base + usize::from(p < extra);
        out.push(start..start + span);
        start += span;
    }
    out
}

/// Maps `f` over `0..len` split across at most `workers` contiguous
/// chunks, returning one `T` per chunk in chunk order.
///
/// Each worker sees its own `Range<usize>` of indices, so `f` can iterate
/// slices directly without per-item locking.
pub fn map_chunks<T, F>(len: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let ranges = split_range(len, workers);
    if ranges.len() <= 1 {
        return ranges.into_iter().map(&f).collect();
    }
    std::thread::scope(|scope| {
        let f = &f;
        let mut iter = ranges.into_iter();
        let first = iter.next().expect("at least one range");
        let handles: Vec<_> = iter.map(|r| scope.spawn(move || f(r))).collect();
        let mut out = vec![f(first)];
        for h in handles {
            out.push(h.join().expect("dcs-parallel worker panicked"));
        }
        out
    })
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        // The degenerate regimes tiered fusion leans on: `shards` far
        // beyond `ncols / align` must still yield an exact, ascending,
        // aligned cover of `0..ncols` with NO empty range — a zero-width
        // range would hand `split_at_mut` carving (ColMatrix /
        // RowMatrix sharded fills) an empty slice and a worker no work.
        #[test]
        fn shard_columns_plan_is_sound_at_extreme_shard_counts(
            ncols in 0usize..5000,
            shards in 1usize..2_000_000,
            align_pick in 0usize..4,
        ) {
            let align = [1usize, 3, 64, 1000][align_pick];
            let ranges = shard_columns(ncols, shards, align);
            if ncols == 0 {
                prop_assert!(ranges.is_empty());
                return Ok(());
            }
            let mut next = 0;
            for r in &ranges {
                prop_assert_eq!(r.start, next, "gap/overlap at {}", r.start);
                prop_assert!(!r.is_empty(), "empty range at {}", r.start);
                prop_assert_eq!(r.start % align, 0, "unaligned cut at {}", r.start);
                next = r.end;
            }
            prop_assert_eq!(next, ncols, "cover must end at ncols");
            prop_assert!(ranges.len() <= shards);
            prop_assert!(ranges.len() <= ncols.div_ceil(align));
        }

        #[test]
        fn split_range_never_returns_empty_ranges(
            len in 0usize..10_000,
            parts in 1usize..2_000_000,
        ) {
            let ranges = split_range(len, parts);
            let mut next = 0;
            for r in &ranges {
                prop_assert_eq!(r.start, next);
                prop_assert!(!r.is_empty());
                next = r.end;
            }
            prop_assert_eq!(next, len);
            prop_assert!(ranges.len() <= parts.min(len.max(1)));
        }

        // effective_shards / workers_for never resolve to zero, whatever
        // the budget says.
        #[test]
        fn budget_resolution_never_yields_zero(
            threads in 0usize..10_000,
            shards in 0usize..10_000,
            items in 0usize..10_000,
        ) {
            let b = ComputeBudget { threads, block_cols: 0, shards };
            prop_assert!(b.effective_threads() >= 1);
            prop_assert!(b.effective_shards() >= 1);
            prop_assert!(b.effective_block_cols() >= 1);
            let w = b.workers_for(items);
            prop_assert!(w >= 1);
            prop_assert!(w <= items.max(1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_resolves() {
        let b = ComputeBudget::default();
        assert!(b.effective_threads() >= 1);
        assert_eq!(b.effective_block_cols(), DEFAULT_BLOCK_COLS);
        assert_eq!(ComputeBudget::with_threads(3).effective_threads(), 3);
        assert_eq!(ComputeBudget::sequential().effective_threads(), 1);
    }

    #[test]
    fn workers_for_clamps_to_items() {
        let b = ComputeBudget::with_threads(8);
        assert_eq!(b.workers_for(3), 3);
        assert_eq!(b.workers_for(100), 8);
        assert_eq!(b.workers_for(0), 1);
    }

    #[test]
    fn split_range_covers_exactly() {
        for len in [0usize, 1, 7, 64, 100] {
            for parts in [1usize, 2, 3, 8, 200] {
                let ranges = split_range(len, parts);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    assert!(!r.is_empty());
                    next = r.end;
                }
                assert_eq!(next, len);
                if len > 0 {
                    assert!(ranges.len() <= parts);
                    let min = ranges.iter().map(|r| r.len()).min().unwrap();
                    let max = ranges.iter().map(|r| r.len()).max().unwrap();
                    assert!(max - min <= 1);
                }
            }
        }
    }

    #[test]
    fn map_workers_ordered_and_parallel_agree() {
        let seq = map_workers(1, |w| w * 10);
        assert_eq!(seq, vec![0]);
        let par = map_workers(4, |w| w * 10);
        assert_eq!(par, vec![0, 10, 20, 30]);
    }

    #[test]
    fn map_workers_scratch_reuses_buffers() {
        let mut scratch: Vec<Vec<u64>> = Vec::new();
        let out = map_workers_scratch(3, &mut scratch, Vec::new, |w, buf| {
            buf.resize(100, w as u64);
            buf.iter().sum::<u64>()
        });
        assert_eq!(out, vec![0, 100, 200]);
        assert_eq!(scratch.len(), 3);
        let caps: Vec<usize> = scratch.iter().map(Vec::capacity).collect();
        // Second call hands the same buffers back: no capacity changes,
        // and worker count can shrink without dropping scratch.
        let out = map_workers_scratch(2, &mut scratch, Vec::new, |w, buf| {
            assert_eq!(buf.len(), 100, "worker {w} got a fresh buffer");
            buf.iter().sum::<u64>()
        });
        assert_eq!(out, vec![0, 100]);
        assert_eq!(scratch.len(), 3);
        assert_eq!(scratch.iter().map(Vec::capacity).collect::<Vec<_>>(), caps);
    }

    #[test]
    fn map_chunks_sums_match() {
        let data: Vec<u64> = (0..1000).collect();
        let expect: u64 = data.iter().sum();
        for workers in [1usize, 2, 3, 8] {
            let partials = map_chunks(data.len(), workers, |r| data[r].iter().sum::<u64>());
            assert_eq!(partials.iter().sum::<u64>(), expect, "workers={workers}");
        }
    }

    #[test]
    fn budget_serde_round_trip() {
        let b = ComputeBudget {
            threads: 4,
            block_cols: 16,
            shards: 2,
        };
        let v = serde::Serialize::to_value(&b);
        let back: ComputeBudget = serde::Deserialize::from_value(&v).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn effective_shards_follows_threads_by_default() {
        assert_eq!(ComputeBudget::with_threads(3).effective_shards(), 3);
        assert_eq!(ComputeBudget::sequential().effective_shards(), 1);
        assert_eq!(
            ComputeBudget::with_threads(3)
                .with_shards(5)
                .effective_shards(),
            5
        );
        assert!(ComputeBudget::default().effective_shards() >= 1);
    }

    #[test]
    fn shard_columns_cover_exactly_and_respect_alignment() {
        for &(ncols, shards, align) in &[
            (0usize, 4usize, 64usize),
            (1, 4, 64),
            (64, 4, 64),
            (100, 3, 1),
            (1000, 4, 64),
            (4096, 8, 64),
            (4097, 8, 64),
            (130, 200, 64),
        ] {
            let ranges = shard_columns(ncols, shards, align);
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next, "{ncols}/{shards}/{align}");
                assert!(!r.is_empty(), "{ncols}/{shards}/{align}");
                assert_eq!(r.start % align, 0, "unaligned cut at {}", r.start);
                next = r.end;
            }
            assert_eq!(next, ncols, "{ncols}/{shards}/{align}");
            assert!(ranges.len() <= shards.max(1));
        }
    }

    #[test]
    fn run_jobs_consumes_every_job_once() {
        for workers in [1usize, 2, 3, 8] {
            let mut outputs = vec![0u64; 10];
            let jobs: Vec<(usize, &mut u64)> = outputs.iter_mut().enumerate().collect();
            run_jobs(jobs, workers, |(i, slot)| *slot = (i as u64 + 1) * 7);
            let expect: Vec<u64> = (0..10).map(|i| (i + 1) * 7).collect();
            assert_eq!(outputs, expect, "workers={workers}");
        }
    }
}
