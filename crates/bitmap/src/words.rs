//! Low-level kernels over packed `u64` word slices.
//!
//! These free functions are the hot path of the whole analysis module: the
//! aligned-case product iterations and the unaligned-case pairwise row
//! correlation both reduce to "AND two word slices and count the ones".
//! They are written so the optimiser can autovectorise them (straight-line
//! iterator chains, no bounds checks after the `zip`).

/// Number of bits in one storage word.
pub const WORD_BITS: usize = 64;

/// Number of `u64` words needed to store `bits` bits.
#[inline]
pub const fn words_for(bits: usize) -> usize {
    bits.div_ceil(WORD_BITS)
}

/// Mask keeping only the valid bits of the final word of a `bits`-bit vector.
///
/// Returns `u64::MAX` when `bits` is a multiple of 64 (every bit of the last
/// word is valid).
#[inline]
pub const fn tail_mask(bits: usize) -> u64 {
    let rem = bits % WORD_BITS;
    if rem == 0 {
        u64::MAX
    } else {
        (1u64 << rem) - 1
    }
}

/// Population count of a word slice.
#[inline]
pub fn weight(words: &[u64]) -> u32 {
    words.iter().map(|w| w.count_ones()).sum()
}

/// Population count of the bitwise AND of two equal-length slices, without
/// materialising the AND ("number of common 1's" in the paper's terms).
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn and_weight(a: &[u64], b: &[u64]) -> u32 {
    assert_eq!(a.len(), b.len(), "and_weight: length mismatch");
    a.iter().zip(b).map(|(x, y)| (x & y).count_ones()).sum()
}

/// Population count of the bitwise OR of two equal-length slices.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn or_weight(a: &[u64], b: &[u64]) -> u32 {
    assert_eq!(a.len(), b.len(), "or_weight: length mismatch");
    a.iter().zip(b).map(|(x, y)| (x | y).count_ones()).sum()
}

/// In-place bitwise AND: `dst &= src`.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn and_assign(dst: &mut [u64], src: &[u64]) {
    assert_eq!(dst.len(), src.len(), "and_assign: length mismatch");
    for (d, s) in dst.iter_mut().zip(src) {
        *d &= *s;
    }
}

/// In-place bitwise OR: `dst |= src`.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn or_assign(dst: &mut [u64], src: &[u64]) {
    assert_eq!(dst.len(), src.len(), "or_assign: length mismatch");
    for (d, s) in dst.iter_mut().zip(src) {
        *d |= *s;
    }
}

/// Write `a & b` into `dst` and return the weight of the result in one pass.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn and_into(dst: &mut [u64], a: &[u64], b: &[u64]) -> u32 {
    assert_eq!(a.len(), b.len(), "and_into: length mismatch");
    assert_eq!(dst.len(), a.len(), "and_into: dst length mismatch");
    let mut weight = 0;
    for ((d, x), y) in dst.iter_mut().zip(a).zip(b) {
        let v = x & y;
        weight += v.count_ones();
        *d = v;
    }
    weight
}

/// Iterator over the indices of set bits in a word slice.
pub fn iter_ones(words: &[u64]) -> impl Iterator<Item = usize> + '_ {
    words.iter().enumerate().flat_map(|(wi, &w)| {
        let base = wi * WORD_BITS;
        OnesInWord(w).map(move |b| base + b)
    })
}

/// Iterator over set-bit positions inside a single word.
struct OnesInWord(u64);

impl Iterator for OnesInWord {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let bit = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1;
        Some(bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_for_rounds_up() {
        assert_eq!(words_for(0), 0);
        assert_eq!(words_for(1), 1);
        assert_eq!(words_for(64), 1);
        assert_eq!(words_for(65), 2);
        assert_eq!(words_for(1024), 16);
    }

    #[test]
    fn tail_mask_edges() {
        assert_eq!(tail_mask(64), u64::MAX);
        assert_eq!(tail_mask(1), 1);
        assert_eq!(tail_mask(63), u64::MAX >> 1);
        assert_eq!(tail_mask(128), u64::MAX);
    }

    #[test]
    fn and_weight_counts_intersection() {
        let a = [0b1011u64, u64::MAX];
        let b = [0b0011u64, 0b1];
        assert_eq!(and_weight(&a, &b), 2 + 1);
    }

    #[test]
    fn or_weight_counts_union() {
        let a = [0b1010u64];
        let b = [0b0110u64];
        assert_eq!(or_weight(&a, &b), 3);
    }

    #[test]
    fn and_into_matches_and_assign() {
        let a = [0xDEAD_BEEF_u64, 0x1234];
        let b = [0xF0F0_F0F0_u64, 0xFFFF];
        let mut dst = [0u64; 2];
        let w = and_into(&mut dst, &a, &b);
        let mut manual = a;
        and_assign(&mut manual, &b);
        assert_eq!(dst, manual);
        assert_eq!(w, weight(&manual));
    }

    #[test]
    fn iter_ones_positions() {
        let words = [1u64 << 3 | 1 << 63, 1u64];
        let ones: Vec<usize> = iter_ones(&words).collect();
        assert_eq!(ones, vec![3, 63, 64]);
    }

    #[test]
    fn iter_ones_empty() {
        let words = [0u64, 0];
        assert_eq!(iter_ones(&words).count(), 0);
    }
}
