//! Low-level kernels over packed `u64` word slices.
//!
//! These free functions are the hot path of the whole analysis module: the
//! aligned-case product iterations and the unaligned-case pairwise row
//! correlation both reduce to "AND two word slices and count the ones".
//!
//! The popcount reductions ([`weight`], [`and_weight`], [`or_weight`])
//! dispatch at runtime to the best kernel the host supports (see
//! [`Kernel`]): an AVX2 nibble-lookup vector popcount on x86-64 CPUs
//! that have it, otherwise the portable *blocked* kernels
//! ([`weight_blocked`] and friends), which walk the slices in
//! [`LANES`]-word chunks and merge each chunk through a Harley–Seal
//! carry-save adder tree, so eight words cost two `count_ones` calls
//! (plus cheap bitwise ops) instead of eight. The carry registers
//! (`ones`, `twos`) are independent accumulators carried across chunks
//! and flushed once at the end. Slices shorter than [`CSA_MIN_WORDS`]
//! (blocked) or `AVX2_MIN_WORDS` (vector) take the straight-line path,
//! which the optimiser auto-vectorises well and which wins below each
//! kernel's fixed overhead. The straight-line reference versions are
//! kept as [`weight_scalar`] / [`and_weight_scalar`] /
//! [`or_weight_scalar`]; the property tests assert every dispatch
//! target is bit-identical to them.
//!
//! The dispatch decision is made once and cached in an atomic
//! ([`active_kernel`]). `DCS_FORCE_SCALAR=1` in the environment pins the
//! scalar reference path (CI uses this to keep the portable fallback
//! green on AVX2 hosts); [`force_kernel`] overrides the cache from
//! tests and benches.
//!
//! # Length invariant
//!
//! Binary kernels require equal-length slices. Lengths are checked with
//! `debug_assert_eq!` only: every caller in this workspace takes both
//! operands from the same [`ColMatrix`](crate::ColMatrix) /
//! [`RowMatrix`](crate::RowMatrix), whose constructors and `push_*`
//! methods validate word counts (including tail-bit hygiene via
//! [`tail_mask`]) once at the boundary, making per-call re-validation in
//! the innermost loop pure overhead. Release builds feed mismatched
//! lengths to `zip`, which silently truncates — so keep the invariant at
//! the boundary.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// Number of bits in one storage word.
pub const WORD_BITS: usize = 64;

/// A popcount kernel implementation the runtime dispatcher can select.
///
/// All three produce bit-identical results (asserted by the property
/// tests); they differ only in speed and portability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Kernel {
    /// Straight-line portable loop (`*_scalar`): the reference semantics.
    Scalar = 1,
    /// Harley–Seal carry-save blocked kernels: the portable default.
    Blocked = 2,
    /// AVX2 nibble-lookup vector popcount (x86-64 with AVX2 only).
    Avx2 = 3,
}

impl Kernel {
    /// Lowercase label for metric families (`kernel=scalar` etc.).
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Blocked => "blocked",
            Kernel::Avx2 => "avx2",
        }
    }

    #[inline]
    fn index(self) -> usize {
        self as usize - 1
    }
}

/// Cached dispatch decision: 0 = unresolved, else a `Kernel` discriminant.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

/// Per-kernel dispatched-call tallies, indexed by `Kernel::index()`.
/// Batched reductions ([`and_weight_many_into`]) count one call per
/// (block, column) kernel invocation, added in bulk per batch.
static DISPATCHED: [AtomicU64; 3] = [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)];

#[inline]
pub(crate) fn tally(kernel: Kernel, calls: u64) {
    DISPATCHED[kernel.index()].fetch_add(calls, Ordering::Relaxed);
}

/// Calls routed through the runtime dispatcher since process start (or
/// the last [`reset_dispatch_counts`]), per kernel. Explicit-kernel
/// entry points (`*_with`, `*_scalar`, …) are not counted — only calls
/// that went through [`weight`] / [`and_weight`] / [`or_weight`] /
/// [`and_weight_many`].
pub fn dispatch_counts() -> [(Kernel, u64); 3] {
    [Kernel::Scalar, Kernel::Blocked, Kernel::Avx2]
        .map(|k| (k, DISPATCHED[k.index()].load(Ordering::Relaxed)))
}

/// Zeroes the dispatched-call tallies (tests and per-run benches).
pub fn reset_dispatch_counts() {
    for c in &DISPATCHED {
        c.store(0, Ordering::Relaxed);
    }
}

/// The kernel the dispatcher currently routes [`weight`] /
/// [`and_weight`] / [`or_weight`] (and through them
/// [`and_weight_many`]) to. Resolved once via feature detection on
/// first use, then served from an atomic.
#[inline]
pub fn active_kernel() -> Kernel {
    match ACTIVE.load(Ordering::Relaxed) {
        1 => Kernel::Scalar,
        2 => Kernel::Blocked,
        3 => Kernel::Avx2,
        _ => resolve_and_cache(),
    }
}

#[cold]
fn resolve_and_cache() -> Kernel {
    let k = detect_kernel();
    ACTIVE.store(k as u8, Ordering::Relaxed);
    k
}

/// The best kernel this host supports, honouring the
/// `DCS_FORCE_SCALAR` environment override (any value other than `0`
/// pins [`Kernel::Scalar`]).
pub fn detect_kernel() -> Kernel {
    if std::env::var_os("DCS_FORCE_SCALAR").is_some_and(|v| v != "0") {
        return Kernel::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        return Kernel::Avx2;
    }
    Kernel::Blocked
}

/// Kernels usable on this host: always [`Kernel::Scalar`] and
/// [`Kernel::Blocked`]; [`Kernel::Avx2`] when the CPU has it. Tests
/// iterate this list to assert bit-identity across dispatch targets.
pub fn available_kernels() -> &'static [Kernel] {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        return &[Kernel::Scalar, Kernel::Blocked, Kernel::Avx2];
    }
    &[Kernel::Scalar, Kernel::Blocked]
}

/// Overrides the dispatch cache (tests and benches); `None` clears the
/// override so the next call re-detects. The effect is process-global.
///
/// # Panics
/// Panics if `Kernel::Avx2` is forced on a host without AVX2 — the
/// vector kernels would be unsound to execute there.
pub fn force_kernel(kernel: Option<Kernel>) {
    if kernel == Some(Kernel::Avx2) {
        assert!(
            available_kernels().contains(&Kernel::Avx2),
            "cannot force the AVX2 kernel: host lacks AVX2"
        );
    }
    ACTIVE.store(kernel.map_or(0, |k| k as u8), Ordering::Relaxed);
}

/// Number of `u64` words needed to store `bits` bits.
#[inline]
pub const fn words_for(bits: usize) -> usize {
    bits.div_ceil(WORD_BITS)
}

/// Mask keeping only the valid bits of the final word of a `bits`-bit vector.
///
/// Returns `u64::MAX` when `bits` is a multiple of 64 (every bit of the last
/// word is valid).
#[inline]
pub const fn tail_mask(bits: usize) -> u64 {
    let rem = bits % WORD_BITS;
    if rem == 0 {
        u64::MAX
    } else {
        (1u64 << rem) - 1
    }
}

/// Words per unrolled chunk of the blocked popcount kernels; one chunk is
/// merged through the carry-save tree in a single loop iteration.
pub const LANES: usize = 8;

/// Minimum slice length (in words) for the carry-save path; shorter
/// slices use the straight-line kernels, which win below the tree's
/// fixed setup/flush overhead (measured crossover ≈ 3 chunks).
pub const CSA_MIN_WORDS: usize = 4 * LANES;

/// Words per cache block of [`and_weight_many`]: 4 KiB of the base slice,
/// small enough to stay L1-resident while the batched columns stream by.
const BLOCK_WORDS: usize = 512;

/// Carry-save adder: adds three bit-columns, returning (sum, carry).
#[inline(always)]
fn csa(x: u64, y: u64, z: u64) -> (u64, u64) {
    let u = x ^ y;
    (u ^ z, (x & y) | (u & z))
}

/// Harley–Seal reduction: total population count of all words produced by
/// `chunks`, using two `count_ones` per [`LANES`]-word chunk.
///
/// Each chunk's eight words are compressed through a CSA tree: four CSAs
/// at the ones level, two at the twos level; the resulting "fours" carries
/// are popcounted immediately (weight 4) while `ones`/`twos` ride across
/// chunks and are flushed once at the end.
#[inline(always)]
fn csa_reduce(chunks: impl Iterator<Item = [u64; LANES]>) -> u64 {
    let mut total = 0u64;
    let mut ones = 0u64;
    let mut twos = 0u64;
    for w in chunks {
        let (o1, t1) = csa(ones, w[0], w[1]);
        let (o2, t2) = csa(o1, w[2], w[3]);
        let (o3, t3) = csa(o2, w[4], w[5]);
        let (o4, t4) = csa(o3, w[6], w[7]);
        ones = o4;
        let (tw1, f1) = csa(twos, t1, t2);
        let (tw2, f2) = csa(tw1, t3, t4);
        twos = tw2;
        // popcount(f1) + popcount(f2) via two disjoint popcounts.
        total += 4 * u64::from((f1 | f2).count_ones()) + 4 * u64::from((f1 & f2).count_ones());
    }
    total + 2 * u64::from(twos.count_ones()) + u64::from(ones.count_ones())
}

/// Population count of a word slice (runtime-dispatched kernel).
#[inline]
pub fn weight(words: &[u64]) -> u32 {
    let k = active_kernel();
    tally(k, 1);
    weight_with(k, words)
}

/// [`weight`] through an explicitly chosen kernel (tests and benches).
#[inline]
pub fn weight_with(kernel: Kernel, words: &[u64]) -> u32 {
    match kernel {
        Kernel::Scalar => weight_scalar(words),
        Kernel::Blocked => weight_blocked(words),
        Kernel::Avx2 => weight_avx2(words),
    }
}

#[cfg(target_arch = "x86_64")]
#[inline]
fn weight_avx2(words: &[u64]) -> u32 {
    if words.len() < crate::simd::AVX2_MIN_WORDS {
        weight_scalar(words)
    } else {
        crate::simd::weight(words)
    }
}

#[cfg(not(target_arch = "x86_64"))]
#[inline]
fn weight_avx2(words: &[u64]) -> u32 {
    weight_blocked(words)
}

/// Population count of a word slice (portable blocked kernel).
#[inline]
pub fn weight_blocked(words: &[u64]) -> u32 {
    if words.len() < CSA_MIN_WORDS {
        return weight_scalar(words);
    }
    let chunks = words.chunks_exact(LANES);
    let tail = chunks.remainder();
    let main = csa_reduce(chunks.map(|c| core::array::from_fn(|l| c[l])));
    main as u32 + weight_scalar(tail)
}

/// Straight-line reference implementation of [`weight`].
#[inline]
pub fn weight_scalar(words: &[u64]) -> u32 {
    words.iter().map(|w| w.count_ones()).sum()
}

/// Population count of the bitwise AND of two equal-length slices, without
/// materialising the AND ("number of common 1's" in the paper's terms).
/// Runtime-dispatched kernel; see the module docs for the length invariant.
#[inline]
pub fn and_weight(a: &[u64], b: &[u64]) -> u32 {
    let k = active_kernel();
    tally(k, 1);
    and_weight_with(k, a, b)
}

/// [`and_weight`] through an explicitly chosen kernel (tests and benches).
#[inline]
pub fn and_weight_with(kernel: Kernel, a: &[u64], b: &[u64]) -> u32 {
    match kernel {
        Kernel::Scalar => and_weight_scalar(a, b),
        Kernel::Blocked => and_weight_blocked(a, b),
        Kernel::Avx2 => and_weight_avx2(a, b),
    }
}

#[cfg(target_arch = "x86_64")]
#[inline]
fn and_weight_avx2(a: &[u64], b: &[u64]) -> u32 {
    debug_assert_eq!(a.len(), b.len(), "and_weight: length mismatch");
    if a.len() < crate::simd::AVX2_MIN_WORDS {
        and_weight_scalar(a, b)
    } else {
        crate::simd::and_weight(a, b)
    }
}

#[cfg(not(target_arch = "x86_64"))]
#[inline]
fn and_weight_avx2(a: &[u64], b: &[u64]) -> u32 {
    and_weight_blocked(a, b)
}

/// Portable blocked implementation of [`and_weight`].
#[inline]
pub fn and_weight_blocked(a: &[u64], b: &[u64]) -> u32 {
    debug_assert_eq!(a.len(), b.len(), "and_weight: length mismatch");
    if a.len() < CSA_MIN_WORDS {
        return and_weight_scalar(a, b);
    }
    let ca = a.chunks_exact(LANES);
    let cb = b.chunks_exact(LANES);
    let (ta, tb) = (ca.remainder(), cb.remainder());
    let main = csa_reduce(
        ca.zip(cb)
            .map(|(x, y)| core::array::from_fn(|l| x[l] & y[l])),
    );
    main as u32 + and_weight_scalar(ta, tb)
}

/// Straight-line reference implementation of [`and_weight`].
///
/// # Panics
/// Panics if the slices have different lengths (debug builds only).
#[inline]
pub fn and_weight_scalar(a: &[u64], b: &[u64]) -> u32 {
    debug_assert_eq!(a.len(), b.len(), "and_weight_scalar: length mismatch");
    a.iter().zip(b).map(|(x, y)| (x & y).count_ones()).sum()
}

/// Population count of the bitwise OR of two equal-length slices.
/// Runtime-dispatched kernel; see the module docs for the length invariant.
#[inline]
pub fn or_weight(a: &[u64], b: &[u64]) -> u32 {
    let k = active_kernel();
    tally(k, 1);
    or_weight_with(k, a, b)
}

/// [`or_weight`] through an explicitly chosen kernel (tests and benches).
#[inline]
pub fn or_weight_with(kernel: Kernel, a: &[u64], b: &[u64]) -> u32 {
    match kernel {
        Kernel::Scalar => or_weight_scalar(a, b),
        Kernel::Blocked => or_weight_blocked(a, b),
        Kernel::Avx2 => or_weight_avx2(a, b),
    }
}

#[cfg(target_arch = "x86_64")]
#[inline]
fn or_weight_avx2(a: &[u64], b: &[u64]) -> u32 {
    debug_assert_eq!(a.len(), b.len(), "or_weight: length mismatch");
    if a.len() < crate::simd::AVX2_MIN_WORDS {
        or_weight_scalar(a, b)
    } else {
        crate::simd::or_weight(a, b)
    }
}

#[cfg(not(target_arch = "x86_64"))]
#[inline]
fn or_weight_avx2(a: &[u64], b: &[u64]) -> u32 {
    or_weight_blocked(a, b)
}

/// Portable blocked implementation of [`or_weight`].
#[inline]
pub fn or_weight_blocked(a: &[u64], b: &[u64]) -> u32 {
    debug_assert_eq!(a.len(), b.len(), "or_weight: length mismatch");
    if a.len() < CSA_MIN_WORDS {
        return or_weight_scalar(a, b);
    }
    let ca = a.chunks_exact(LANES);
    let cb = b.chunks_exact(LANES);
    let (ta, tb) = (ca.remainder(), cb.remainder());
    let main = csa_reduce(
        ca.zip(cb)
            .map(|(x, y)| core::array::from_fn(|l| x[l] | y[l])),
    );
    main as u32 + or_weight_scalar(ta, tb)
}

/// Straight-line reference implementation of [`or_weight`].
#[inline]
pub fn or_weight_scalar(a: &[u64], b: &[u64]) -> u32 {
    debug_assert_eq!(a.len(), b.len(), "or_weight_scalar: length mismatch");
    a.iter().zip(b).map(|(x, y)| (x | y).count_ones()).sum()
}

/// AND-weight of one base slice against a batch of columns:
/// `out[i] = and_weight(base, cols[i])`.
///
/// The base is walked in `BLOCK_WORDS`-word cache blocks and each block
/// is reused across the whole batch before moving on, so for wide batches
/// the base costs one cache fill per block instead of one per column.
/// This is the kernel under the aligned search's candidate fan-out, where
/// one core product is intersected with every remaining column.
pub fn and_weight_many(base: &[u64], cols: &[&[u64]]) -> Vec<u32> {
    let mut out = vec![0u32; cols.len()];
    and_weight_many_into(base, cols, &mut out);
    out
}

/// [`and_weight_many`] accumulating into a caller-provided buffer
/// (`out[i] += …`), letting sweep loops reuse one allocation.
///
/// # Panics
/// Panics if `out` is shorter than `cols` (debug builds only: mismatched
/// column lengths).
pub fn and_weight_many_into(base: &[u64], cols: &[&[u64]], out: &mut [u32]) {
    assert!(
        out.len() >= cols.len(),
        "and_weight_many_into: out too short"
    );
    let kernel = active_kernel();
    let mut calls = 0u64;
    let mut start = 0;
    while start < base.len() {
        let end = (start + BLOCK_WORDS).min(base.len());
        let base_block = &base[start..end];
        for (o, col) in out.iter_mut().zip(cols) {
            debug_assert_eq!(col.len(), base.len(), "and_weight_many: length mismatch");
            *o += and_weight_with(kernel, base_block, &col[start..end]);
        }
        calls += cols.len() as u64;
        start = end;
    }
    // One batched tally keeps the per-(block, column) hot loop free of
    // atomic traffic.
    tally(kernel, calls);
}

/// In-place bitwise AND: `dst &= src`.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn and_assign(dst: &mut [u64], src: &[u64]) {
    assert_eq!(dst.len(), src.len(), "and_assign: length mismatch");
    for (d, s) in dst.iter_mut().zip(src) {
        *d &= *s;
    }
}

/// In-place bitwise OR: `dst |= src`.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn or_assign(dst: &mut [u64], src: &[u64]) {
    assert_eq!(dst.len(), src.len(), "or_assign: length mismatch");
    for (d, s) in dst.iter_mut().zip(src) {
        *d |= *s;
    }
}

/// Write `a & b` into `dst` and return the weight of the result in one pass.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn and_into(dst: &mut [u64], a: &[u64], b: &[u64]) -> u32 {
    assert_eq!(a.len(), b.len(), "and_into: length mismatch");
    assert_eq!(dst.len(), a.len(), "and_into: dst length mismatch");
    let mut weight = 0;
    for ((d, x), y) in dst.iter_mut().zip(a).zip(b) {
        let v = x & y;
        weight += v.count_ones();
        *d = v;
    }
    weight
}

/// Iterator over the indices of set bits in a word slice.
pub fn iter_ones(words: &[u64]) -> impl Iterator<Item = usize> + '_ {
    words.iter().enumerate().flat_map(|(wi, &w)| {
        let base = wi * WORD_BITS;
        OnesInWord(w).map(move |b| base + b)
    })
}

/// Iterator over set-bit positions inside a single word.
struct OnesInWord(u64);

impl Iterator for OnesInWord {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let bit = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1;
        Some(bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_for_rounds_up() {
        assert_eq!(words_for(0), 0);
        assert_eq!(words_for(1), 1);
        assert_eq!(words_for(64), 1);
        assert_eq!(words_for(65), 2);
        assert_eq!(words_for(1024), 16);
    }

    #[test]
    fn tail_mask_edges() {
        assert_eq!(tail_mask(64), u64::MAX);
        assert_eq!(tail_mask(1), 1);
        assert_eq!(tail_mask(63), u64::MAX >> 1);
        assert_eq!(tail_mask(128), u64::MAX);
    }

    #[test]
    fn and_weight_counts_intersection() {
        let a = [0b1011u64, u64::MAX];
        let b = [0b0011u64, 0b1];
        assert_eq!(and_weight(&a, &b), 2 + 1);
    }

    #[test]
    fn or_weight_counts_union() {
        let a = [0b1010u64];
        let b = [0b0110u64];
        assert_eq!(or_weight(&a, &b), 3);
    }

    #[test]
    fn and_into_matches_and_assign() {
        let a = [0xDEAD_BEEF_u64, 0x1234];
        let b = [0xF0F0_F0F0_u64, 0xFFFF];
        let mut dst = [0u64; 2];
        let w = and_into(&mut dst, &a, &b);
        let mut manual = a;
        and_assign(&mut manual, &b);
        assert_eq!(dst, manual);
        assert_eq!(w, weight(&manual));
    }

    #[test]
    fn iter_ones_positions() {
        let words = [1u64 << 3 | 1 << 63, 1u64];
        let ones: Vec<usize> = iter_ones(&words).collect();
        assert_eq!(ones, vec![3, 63, 64]);
    }

    #[test]
    fn iter_ones_empty() {
        let words = [0u64, 0];
        assert_eq!(iter_ones(&words).count(), 0);
    }

    /// Deterministic pseudo-random fill so these tests need no RNG dep.
    fn splitmix_fill(len: usize, mut seed: u64) -> Vec<u64> {
        (0..len)
            .map(|_| {
                seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = seed;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            })
            .collect()
    }

    #[test]
    fn every_kernel_matches_scalar_across_lane_remainders() {
        // Lengths from 0 to well past CSA_MIN_WORDS exercise each
        // kernel's short-slice fallback, its dispatch threshold, its
        // main body, and all possible remainder sizes.
        for &k in available_kernels() {
            for len in 0..=CSA_MIN_WORDS + 3 * LANES {
                let a = splitmix_fill(len, 1);
                let b = splitmix_fill(len, 2);
                assert_eq!(
                    weight_with(k, &a),
                    weight_scalar(&a),
                    "{k:?} weight len={len}"
                );
                assert_eq!(
                    and_weight_with(k, &a, &b),
                    and_weight_scalar(&a, &b),
                    "{k:?} and_weight len={len}"
                );
                assert_eq!(
                    or_weight_with(k, &a, &b),
                    or_weight_scalar(&a, &b),
                    "{k:?} or_weight len={len}"
                );
            }
        }
    }

    #[test]
    fn forced_kernel_redirects_dispatch() {
        let a = splitmix_fill(100, 9);
        let expect = weight_scalar(&a);
        for &k in available_kernels() {
            force_kernel(Some(k));
            assert_eq!(active_kernel(), k);
            assert_eq!(weight(&a), expect, "{k:?}");
        }
        force_kernel(None);
        assert_eq!(active_kernel(), detect_kernel());
    }

    #[test]
    fn dispatch_counts_track_routed_calls() {
        // Counters are process-global and other tests dispatch too, so
        // assert growth rather than absolute values.
        let k = active_kernel();
        let before = dispatch_counts()[k.index()].1;
        let a = splitmix_fill(64, 40);
        let b = splitmix_fill(64, 41);
        weight(&a);
        and_weight(&a, &b);
        or_weight(&a, &b);
        let cols = [a.as_slice()];
        and_weight_many(&b, &cols); // 64 words = 1 block x 1 col = 1 call
        let after = dispatch_counts()[k.index()].1;
        assert!(after >= before + 4, "dispatched {before} -> {after}");
    }

    #[test]
    fn and_weight_many_crosses_block_boundary() {
        // 1200 words spans two full cache blocks plus a partial third, so
        // the per-block accumulation in `and_weight_many_into` is covered.
        let len = 2 * BLOCK_WORDS + 176;
        let base = splitmix_fill(len, 3);
        let cols: Vec<Vec<u64>> = (0..5).map(|c| splitmix_fill(len, 10 + c)).collect();
        let refs: Vec<&[u64]> = cols.iter().map(Vec::as_slice).collect();
        let many = and_weight_many(&base, &refs);
        for (k, col) in cols.iter().enumerate() {
            assert_eq!(many[k], and_weight_scalar(&base, col), "column {k}");
        }
    }

    #[test]
    fn and_weight_many_into_leaves_prefix_only() {
        let base = splitmix_fill(100, 7);
        let cols: Vec<Vec<u64>> = (0..3).map(|c| splitmix_fill(100, 20 + c)).collect();
        let refs: Vec<&[u64]> = cols.iter().map(Vec::as_slice).collect();
        let mut out = [0, 0, 0, u32::MAX, u32::MAX];
        and_weight_many_into(&base, &refs, &mut out);
        for (k, col) in cols.iter().enumerate() {
            assert_eq!(out[k], and_weight_scalar(&base, col));
        }
        // Slots past `cols.len()` are untouched.
        assert_eq!(&out[3..], &[u32::MAX, u32::MAX]);
    }
}
