//! Column-major 0-1 matrix: the fused digest store of the aligned case.
//!
//! In the aligned case (Section III) the analysis centre stacks one n-bit
//! bitmap per router into an m×n matrix and then operates on *columns*:
//! the detection algorithms repeatedly AND column vectors (k-products) and
//! rank them by weight. Storing the matrix column-major makes a column a
//! contiguous `&[u64]` of `ceil(m/64)` words, so a product step over
//! thousands of columns is a linear scan.

use crate::words::{self, words_for, WORD_BITS};
use crate::{Bitmap, WordSource};
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// In-place transpose of a 64×64 bit block.
///
/// On entry `a[r]` holds row `r` with column `c` at bit position `c`
/// (LSB-first, the crate's bit order); on exit `a[c]` holds column `c`
/// with row `r` at bit position `r`. Classic recursive block-swap
/// butterfly (Hacker's Delight §7-3, adapted to LSB-first): at block
/// size `j`, bits of the low rows' high-column halves swap with the
/// high rows' low-column halves.
fn transpose64(a: &mut [u64; 64]) {
    let mut j = 32;
    // Mask with bit p set iff p & j == 0 (the low-column half of each
    // 2j-wide block); recomputed as j halves.
    let mut m: u64 = 0x0000_0000_FFFF_FFFF;
    while j != 0 {
        let mut k = 0;
        while k < 64 {
            let t = ((a[k] >> j) ^ a[k + j]) & m;
            a[k] ^= t << j;
            a[k + j] ^= t;
            // Skip k values with the j bit set: those are high rows,
            // already handled as partners.
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

/// A column-major bit matrix with `nrows` (routers) and `ncols` (hash
/// indices) — the aligned-case fused digest.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColMatrix {
    nrows: usize,
    ncols: usize,
    words_per_col: usize,
    data: Vec<u64>,
}

impl ColMatrix {
    /// Creates an all-zero matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        let words_per_col = words_for(nrows);
        ColMatrix {
            nrows,
            ncols,
            words_per_col,
            data: vec![0; words_per_col * ncols],
        }
    }

    /// Fuses one n-bit digest per router into an m×n column-major matrix.
    ///
    /// Row r of the result is router r's bitmap; the transpose runs at
    /// word level through [`ColMatrix::fuse_rows_into`].
    ///
    /// # Panics
    /// Panics if the bitmaps do not all share the same length.
    pub fn from_router_bitmaps(bitmaps: &[Bitmap]) -> Self {
        let mut m = ColMatrix::new(0, 0);
        let mut weights = Vec::new();
        m.fuse_rows_into(bitmaps, &mut weights);
        m
    }

    /// Reference implementation of [`ColMatrix::from_router_bitmaps`]:
    /// the original per-bit `iter_ones`/`set` transpose, kept only as
    /// the oracle the word-level path is tested against.
    #[cfg(test)]
    pub(crate) fn from_router_bitmaps_per_bit(bitmaps: &[Bitmap]) -> Self {
        let nrows = bitmaps.len();
        let ncols = bitmaps.first().map_or(0, Bitmap::len);
        let mut m = ColMatrix::new(nrows, ncols);
        for (r, bm) in bitmaps.iter().enumerate() {
            assert_eq!(bm.len(), ncols, "router digests must have equal width");
            for j in bm.iter_ones() {
                m.set(r, j);
            }
        }
        m
    }

    /// Reshapes to an all-zero `nrows × ncols` matrix, reusing the
    /// backing allocation when its capacity allows.
    fn reset(&mut self, nrows: usize, ncols: usize) {
        self.nrows = nrows;
        self.ncols = ncols;
        self.words_per_col = words_for(nrows);
        self.data.clear();
        self.data.resize(self.words_per_col * ncols, 0);
    }

    /// Fuses `rows` (one n-bit digest per router, owned bitmaps or
    /// borrowed wire views — anything [`WordSource`]) into this matrix,
    /// replacing its previous contents and reusing its allocation.
    ///
    /// The transpose runs on 64-row × 64-column word tiles: gather one
    /// word from each of 64 rows, `transpose64` the block in
    /// registers, scatter the 64 resulting row-words into their
    /// columns. Column weights are accumulated into `weights` during
    /// the scatter (`weights[c]` = number of 1s in column `c`), so
    /// callers get the screening pass's input for free — no separate
    /// whole-matrix popcount sweep.
    ///
    /// # Panics
    /// Panics if the rows do not all share the same bit length.
    pub fn fuse_rows_into<S: WordSource>(&mut self, rows: &[S], weights: &mut Vec<u32>) {
        let ncols = self.prepare_fuse(rows, weights);
        fuse_column_range(
            rows,
            ncols,
            self.words_per_col,
            0..ncols,
            &mut self.data,
            weights,
        );
    }

    /// [`ColMatrix::fuse_rows_into`] over independent column-range
    /// shards driven by up to `workers` threads.
    ///
    /// The column space is cut into `shards` contiguous ranges aligned
    /// to 64-column word tiles ([`dcs_parallel::shard_columns`]), so a
    /// transpose tile never straddles two shards and each shard writes
    /// a disjoint contiguous slice of the column-major store — the
    /// result is bit-identical to the single-shard fuse for any shard
    /// count.
    ///
    /// # Panics
    /// Panics if the rows do not all share the same bit length.
    pub fn fuse_rows_into_sharded<S: WordSource + Sync>(
        &mut self,
        rows: &[S],
        weights: &mut Vec<u32>,
        shards: usize,
        workers: usize,
    ) {
        let ncols = self.prepare_fuse(rows, weights);
        let ranges = dcs_parallel::shard_columns(ncols, shards, WORD_BITS);
        if ranges.len() <= 1 || workers <= 1 {
            fuse_column_range(
                rows,
                ncols,
                self.words_per_col,
                0..ncols,
                &mut self.data,
                weights,
            );
            return;
        }
        let wpc = self.words_per_col;
        // Carve the backing store and the weight vector into per-shard
        // disjoint slices: column j's words are contiguous at
        // `j * wpc`, so shard [lo, hi) owns `data[lo*wpc..hi*wpc]`.
        let mut jobs = Vec::with_capacity(ranges.len());
        let mut data_rest: &mut [u64] = &mut self.data;
        let mut weights_rest: &mut [u32] = weights;
        for range in ranges {
            let cols = range.end - range.start;
            let (shard_data, rest) = data_rest.split_at_mut(cols * wpc);
            data_rest = rest;
            let (shard_weights, rest) = weights_rest.split_at_mut(cols);
            weights_rest = rest;
            jobs.push((range, shard_data, shard_weights));
        }
        dcs_parallel::run_jobs(jobs, workers, |(range, shard_data, shard_weights)| {
            fuse_column_range(rows, ncols, wpc, range, shard_data, shard_weights);
        });
    }

    /// Shared validation/reset prologue of the fuse entry points:
    /// checks row widths, reshapes the matrix, and zeroes `weights` to
    /// `ncols` entries. Returns `ncols`.
    fn prepare_fuse<S: WordSource>(&mut self, rows: &[S], weights: &mut Vec<u32>) -> usize {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, WordSource::bit_len);
        for r in rows {
            assert_eq!(r.bit_len(), ncols, "router digests must have equal width");
        }
        self.reset(nrows, ncols);
        weights.clear();
        weights.resize(ncols, 0);
        ncols
    }

    /// Number of rows (routers).
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns (hash indices).
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Words per column in the backing store.
    #[inline]
    pub fn words_per_col(&self) -> usize {
        self.words_per_col
    }

    /// Sets the bit at (`row`, `col`).
    ///
    /// # Panics
    /// Panics if out of range.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize) {
        assert!(row < self.nrows, "row {row} out of range {}", self.nrows);
        assert!(col < self.ncols, "col {col} out of range {}", self.ncols);
        self.data[col * self.words_per_col + row / WORD_BITS] |= 1u64 << (row % WORD_BITS);
    }

    /// Reads the bit at (`row`, `col`).
    ///
    /// # Panics
    /// Panics if out of range.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> bool {
        assert!(row < self.nrows, "row {row} out of range {}", self.nrows);
        self.column(col)[row / WORD_BITS] >> (row % WORD_BITS) & 1 == 1
    }

    /// Word slice of column `j` (an m-bit vector).
    ///
    /// # Panics
    /// Panics if `j >= ncols`.
    #[inline]
    pub fn column(&self, j: usize) -> &[u64] {
        assert!(j < self.ncols, "col {j} out of range {}", self.ncols);
        &self.data[j * self.words_per_col..(j + 1) * self.words_per_col]
    }

    /// Weight (number of 1's) of column `j` — how many routers saw a packet
    /// hashing to index `j`.
    #[inline]
    pub fn col_weight(&self, j: usize) -> u32 {
        words::weight(self.column(j))
    }

    /// Weights of all columns in one pass.
    pub fn col_weights(&self) -> Vec<u32> {
        (0..self.ncols).map(|j| self.col_weight(j)).collect()
    }

    /// Extracts the listed columns into a new matrix (used by the refined
    /// algorithm to materialise the n′ heaviest columns).
    ///
    /// Column `k` of the result is column `cols[k]` of `self`.
    ///
    /// # Panics
    /// Panics if any index is out of range.
    pub fn select_columns(&self, cols: &[usize]) -> ColMatrix {
        let mut out = ColMatrix::new(0, 0);
        self.select_columns_into(cols, &mut out);
        out
    }

    /// [`ColMatrix::select_columns`] into a caller-provided matrix,
    /// reusing its allocation (the epoch scratch path).
    ///
    /// # Panics
    /// Panics if any index is out of range.
    pub fn select_columns_into(&self, cols: &[usize], out: &mut ColMatrix) {
        out.nrows = self.nrows;
        out.ncols = cols.len();
        out.words_per_col = self.words_per_col;
        out.data.clear();
        out.data.reserve(self.words_per_col * cols.len());
        for &j in cols {
            out.data.extend_from_slice(self.column(j));
        }
    }

    /// Number of rows where columns `i` and `j` are both 1 (weight of the
    /// 2-product).
    #[inline]
    pub fn col_and_weight(&self, i: usize, j: usize) -> u32 {
        words::and_weight(self.column(i), self.column(j))
    }

    /// Approximate heap footprint in bytes.
    pub fn byte_size(&self) -> usize {
        self.data.len() * 8
    }

    /// Capacity of the backing word store — diagnostic hook for
    /// steady-state reuse tests (a reused matrix must not regrow).
    pub fn word_capacity(&self) -> usize {
        self.data.capacity()
    }
}

/// The word-tile transpose body of the fuse, restricted to columns
/// `col_range` of the full matrix.
///
/// `data` and `weights` are the *shard-local* slices: `data` holds
/// `(col_range.len()) * wpc` words starting at global column
/// `col_range.start`, `weights` one entry per shard column. The
/// transpose runs on 64-row × 64-column tiles: gather one word from
/// each of 64 rows, [`transpose64`] the block in registers, scatter the
/// 64 resulting column-words. Column weights accumulate during the
/// scatter, so callers get the screening pass's input for free.
///
/// `col_range.start` must be a multiple of 64 (shard boundaries align
/// to word tiles) so no tile straddles the shard edge.
fn fuse_column_range<S: WordSource>(
    rows: &[S],
    ncols: usize,
    wpc: usize,
    col_range: Range<usize>,
    data: &mut [u64],
    weights: &mut [u32],
) {
    debug_assert_eq!(col_range.start % WORD_BITS, 0);
    debug_assert!(col_range.end <= ncols);
    let nrows = rows.len();
    let cw_lo = col_range.start / WORD_BITS;
    let cw_hi = col_range.end.div_ceil(WORD_BITS);
    for rb in 0..wpc {
        let row0 = rb * WORD_BITS;
        let band = &rows[row0..(row0 + WORD_BITS).min(nrows)];
        for cw in cw_lo..cw_hi {
            let mut block = [0u64; WORD_BITS];
            let mut any = 0u64;
            for (i, r) in band.iter().enumerate() {
                let w = r.word(cw);
                block[i] = w;
                any |= w;
            }
            if any == 0 {
                // The matrix was reset to zero: nothing to scatter,
                // and the weights gain nothing.
                continue;
            }
            transpose64(&mut block);
            let c0 = cw * WORD_BITS;
            let cols_here = (col_range.end - c0).min(WORD_BITS);
            for (c, &w) in block[..cols_here].iter().enumerate() {
                let local = c0 + c - col_range.start;
                data[local * wpc + rb] = w;
                weights[local] += w.count_ones();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut m = ColMatrix::new(70, 5);
        m.set(69, 4);
        m.set(0, 0);
        assert!(m.get(69, 4));
        assert!(m.get(0, 0));
        assert!(!m.get(1, 0));
        assert_eq!(m.col_weight(4), 1);
        assert_eq!(m.col_weight(1), 0);
    }

    #[test]
    fn from_router_bitmaps_transposes() {
        let r0 = Bitmap::from_indices(10, [0, 3]);
        let r1 = Bitmap::from_indices(10, [3, 9]);
        let m = ColMatrix::from_router_bitmaps(&[r0, r1]);
        assert_eq!(m.nrows(), 2);
        assert_eq!(m.ncols(), 10);
        assert!(m.get(0, 0));
        assert!(!m.get(1, 0));
        assert!(m.get(0, 3) && m.get(1, 3));
        assert_eq!(m.col_weight(3), 2);
        assert_eq!(m.col_weights(), vec![1, 0, 0, 2, 0, 0, 0, 0, 0, 1]);
    }

    #[test]
    fn select_columns_preserves_content() {
        let r0 = Bitmap::from_indices(6, [0, 2, 4]);
        let r1 = Bitmap::from_indices(6, [2, 5]);
        let m = ColMatrix::from_router_bitmaps(&[r0, r1]);
        let s = m.select_columns(&[2, 5]);
        assert_eq!(s.ncols(), 2);
        assert_eq!(s.col_weight(0), 2);
        assert_eq!(s.col_weight(1), 1);
        assert!(s.get(0, 0) && s.get(1, 0));
        assert!(!s.get(0, 1) && s.get(1, 1));
    }

    #[test]
    fn col_and_weight_counts_shared_rows() {
        let r0 = Bitmap::from_indices(4, [0, 1]);
        let r1 = Bitmap::from_indices(4, [0, 1]);
        let r2 = Bitmap::from_indices(4, [1, 2]);
        let m = ColMatrix::from_router_bitmaps(&[r0, r1, r2]);
        // column 0: rows {0,1}; column 1: rows {0,1,2}; column 2: rows {2}
        assert_eq!(m.col_and_weight(0, 1), 2);
        assert_eq!(m.col_and_weight(0, 2), 0);
        assert_eq!(m.col_and_weight(1, 2), 1);
        assert_eq!(m.col_and_weight(0, 3), 0);
    }

    #[test]
    #[should_panic(expected = "equal width")]
    fn mismatched_digests_panic() {
        let r0 = Bitmap::new(8);
        let r1 = Bitmap::new(9);
        ColMatrix::from_router_bitmaps(&[r0, r1]);
    }

    /// Deterministic pseudo-random bitmaps (no RNG dependency here).
    fn splitmix_bitmaps(nrows: usize, bits: usize, mut seed: u64) -> Vec<Bitmap> {
        (0..nrows)
            .map(|_| {
                let words = (0..words_for(bits))
                    .map(|_| {
                        seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
                        let mut z = seed;
                        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                        z ^ (z >> 31)
                    })
                    .enumerate()
                    .map(|(i, w)| {
                        if i + 1 == words_for(bits) {
                            w & words::tail_mask(bits)
                        } else {
                            w
                        }
                    })
                    .collect();
                Bitmap::from_words(bits, words)
            })
            .collect()
    }

    #[test]
    fn transpose64_matches_per_bit_definition() {
        let mut block = [0u64; 64];
        let mut seed = 42u64;
        for w in &mut block {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            *w = seed;
        }
        let original = block;
        transpose64(&mut block);
        for (r, &orig_row) in original.iter().enumerate() {
            for (c, &new_row) in block.iter().enumerate() {
                assert_eq!(
                    new_row >> r & 1,
                    orig_row >> c & 1,
                    "transpose mismatch at ({r}, {c})"
                );
            }
        }
        // The transpose is an involution.
        transpose64(&mut block);
        assert_eq!(block, original);
    }

    #[test]
    fn word_level_fusion_matches_per_bit_oracle() {
        // Shapes straddling every boundary: row counts around the 64-row
        // band edge, widths around the 64-column word edge.
        for &(nrows, bits) in &[
            (1usize, 1usize),
            (3, 64),
            (63, 65),
            (64, 64),
            (65, 127),
            (70, 200),
            (130, 300),
        ] {
            let bitmaps = splitmix_bitmaps(nrows, bits, (nrows * bits) as u64);
            let fused = ColMatrix::from_router_bitmaps(&bitmaps);
            let oracle = ColMatrix::from_router_bitmaps_per_bit(&bitmaps);
            assert_eq!(fused, oracle, "shape {nrows}x{bits}");
        }
    }

    #[test]
    fn fuse_rows_into_weights_match_col_weights() {
        let bitmaps = splitmix_bitmaps(70, 500, 7);
        let mut m = ColMatrix::new(0, 0);
        let mut weights = Vec::new();
        m.fuse_rows_into(&bitmaps, &mut weights);
        assert_eq!(weights, m.col_weights());
    }

    #[test]
    fn sharded_fusion_is_bit_identical_for_any_shard_count() {
        // Widths around word-tile boundaries so shard edges land both
        // on and off the final partial tile.
        for &(nrows, bits) in &[(3usize, 64usize), (65, 127), (70, 200), (130, 513)] {
            let bitmaps = splitmix_bitmaps(nrows, bits, (nrows * bits + 1) as u64);
            let single = ColMatrix::from_router_bitmaps(&bitmaps);
            let expect_w = single.col_weights();
            // Shard counts far beyond ncols/64 exercise the degenerate
            // plans: shard_columns must collapse to at most one range per
            // word tile (never an empty range — the split_at_mut carving
            // below would still be sound, but every shard must own
            // columns for the plan to cover the matrix).
            for shards in [1usize, 2, 3, 8, 10_000, 1 << 20] {
                let mut m = ColMatrix::new(0, 0);
                let mut weights = Vec::new();
                m.fuse_rows_into_sharded(&bitmaps, &mut weights, shards, 4);
                assert_eq!(m, single, "shape {nrows}x{bits} shards {shards}");
                assert_eq!(weights, expect_w, "shape {nrows}x{bits} shards {shards}");
            }
        }
    }

    #[test]
    fn fuse_rows_into_reuses_capacity_across_epochs() {
        let mut m = ColMatrix::new(0, 0);
        let mut weights = Vec::new();
        m.fuse_rows_into(&splitmix_bitmaps(70, 500, 1), &mut weights);
        let data_cap = m.data.capacity();
        let w_cap = weights.capacity();
        // A same-shape refuse must not grow either allocation.
        m.fuse_rows_into(&splitmix_bitmaps(70, 500, 2), &mut weights);
        assert_eq!(m.data.capacity(), data_cap);
        assert_eq!(weights.capacity(), w_cap);
        assert_eq!(
            ColMatrix::from_router_bitmaps_per_bit(&splitmix_bitmaps(70, 500, 2)),
            m
        );
    }

    #[test]
    fn select_columns_into_reuses_allocation() {
        let m = ColMatrix::from_router_bitmaps(&splitmix_bitmaps(10, 100, 3));
        let mut out = ColMatrix::new(0, 0);
        m.select_columns_into(&[1, 5, 99], &mut out);
        let cap = out.data.capacity();
        m.select_columns_into(&[0, 2, 98], &mut out);
        assert_eq!(out.data.capacity(), cap);
        assert_eq!(out.column(0), m.column(0));
        assert_eq!(out.column(1), m.column(2));
        assert_eq!(out.column(2), m.column(98));
    }
}
