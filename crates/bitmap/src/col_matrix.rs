//! Column-major 0-1 matrix: the fused digest store of the aligned case.
//!
//! In the aligned case (Section III) the analysis centre stacks one n-bit
//! bitmap per router into an m×n matrix and then operates on *columns*:
//! the detection algorithms repeatedly AND column vectors (k-products) and
//! rank them by weight. Storing the matrix column-major makes a column a
//! contiguous `&[u64]` of `ceil(m/64)` words, so a product step over
//! thousands of columns is a linear scan.

use crate::words::{self, words_for, WORD_BITS};
use crate::Bitmap;
use serde::{Deserialize, Serialize};

/// A column-major bit matrix with `nrows` (routers) and `ncols` (hash
/// indices) — the aligned-case fused digest.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColMatrix {
    nrows: usize,
    ncols: usize,
    words_per_col: usize,
    data: Vec<u64>,
}

impl ColMatrix {
    /// Creates an all-zero matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        let words_per_col = words_for(nrows);
        ColMatrix {
            nrows,
            ncols,
            words_per_col,
            data: vec![0; words_per_col * ncols],
        }
    }

    /// Fuses one n-bit digest per router into an m×n column-major matrix.
    ///
    /// Row r of the result is router r's bitmap; the transpose is performed
    /// by walking each bitmap's set bits (cheap because digests are at most
    /// half full).
    ///
    /// # Panics
    /// Panics if the bitmaps do not all share the same length.
    pub fn from_router_bitmaps(bitmaps: &[Bitmap]) -> Self {
        let nrows = bitmaps.len();
        let ncols = bitmaps.first().map_or(0, Bitmap::len);
        let mut m = ColMatrix::new(nrows, ncols);
        for (r, bm) in bitmaps.iter().enumerate() {
            assert_eq!(bm.len(), ncols, "router digests must have equal width");
            for j in bm.iter_ones() {
                m.set(r, j);
            }
        }
        m
    }

    /// Number of rows (routers).
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns (hash indices).
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Words per column in the backing store.
    #[inline]
    pub fn words_per_col(&self) -> usize {
        self.words_per_col
    }

    /// Sets the bit at (`row`, `col`).
    ///
    /// # Panics
    /// Panics if out of range.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize) {
        assert!(row < self.nrows, "row {row} out of range {}", self.nrows);
        assert!(col < self.ncols, "col {col} out of range {}", self.ncols);
        self.data[col * self.words_per_col + row / WORD_BITS] |= 1u64 << (row % WORD_BITS);
    }

    /// Reads the bit at (`row`, `col`).
    ///
    /// # Panics
    /// Panics if out of range.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> bool {
        assert!(row < self.nrows, "row {row} out of range {}", self.nrows);
        self.column(col)[row / WORD_BITS] >> (row % WORD_BITS) & 1 == 1
    }

    /// Word slice of column `j` (an m-bit vector).
    ///
    /// # Panics
    /// Panics if `j >= ncols`.
    #[inline]
    pub fn column(&self, j: usize) -> &[u64] {
        assert!(j < self.ncols, "col {j} out of range {}", self.ncols);
        &self.data[j * self.words_per_col..(j + 1) * self.words_per_col]
    }

    /// Weight (number of 1's) of column `j` — how many routers saw a packet
    /// hashing to index `j`.
    #[inline]
    pub fn col_weight(&self, j: usize) -> u32 {
        words::weight(self.column(j))
    }

    /// Weights of all columns in one pass.
    pub fn col_weights(&self) -> Vec<u32> {
        (0..self.ncols).map(|j| self.col_weight(j)).collect()
    }

    /// Extracts the listed columns into a new matrix (used by the refined
    /// algorithm to materialise the n′ heaviest columns).
    ///
    /// Column `k` of the result is column `cols[k]` of `self`.
    ///
    /// # Panics
    /// Panics if any index is out of range.
    pub fn select_columns(&self, cols: &[usize]) -> ColMatrix {
        let mut out = ColMatrix {
            nrows: self.nrows,
            ncols: cols.len(),
            words_per_col: self.words_per_col,
            data: Vec::with_capacity(self.words_per_col * cols.len()),
        };
        for &j in cols {
            out.data.extend_from_slice(self.column(j));
        }
        out
    }

    /// Number of rows where columns `i` and `j` are both 1 (weight of the
    /// 2-product).
    #[inline]
    pub fn col_and_weight(&self, i: usize, j: usize) -> u32 {
        words::and_weight(self.column(i), self.column(j))
    }

    /// Approximate heap footprint in bytes.
    pub fn byte_size(&self) -> usize {
        self.data.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut m = ColMatrix::new(70, 5);
        m.set(69, 4);
        m.set(0, 0);
        assert!(m.get(69, 4));
        assert!(m.get(0, 0));
        assert!(!m.get(1, 0));
        assert_eq!(m.col_weight(4), 1);
        assert_eq!(m.col_weight(1), 0);
    }

    #[test]
    fn from_router_bitmaps_transposes() {
        let r0 = Bitmap::from_indices(10, [0, 3]);
        let r1 = Bitmap::from_indices(10, [3, 9]);
        let m = ColMatrix::from_router_bitmaps(&[r0, r1]);
        assert_eq!(m.nrows(), 2);
        assert_eq!(m.ncols(), 10);
        assert!(m.get(0, 0));
        assert!(!m.get(1, 0));
        assert!(m.get(0, 3) && m.get(1, 3));
        assert_eq!(m.col_weight(3), 2);
        assert_eq!(m.col_weights(), vec![1, 0, 0, 2, 0, 0, 0, 0, 0, 1]);
    }

    #[test]
    fn select_columns_preserves_content() {
        let r0 = Bitmap::from_indices(6, [0, 2, 4]);
        let r1 = Bitmap::from_indices(6, [2, 5]);
        let m = ColMatrix::from_router_bitmaps(&[r0, r1]);
        let s = m.select_columns(&[2, 5]);
        assert_eq!(s.ncols(), 2);
        assert_eq!(s.col_weight(0), 2);
        assert_eq!(s.col_weight(1), 1);
        assert!(s.get(0, 0) && s.get(1, 0));
        assert!(!s.get(0, 1) && s.get(1, 1));
    }

    #[test]
    fn col_and_weight_counts_shared_rows() {
        let r0 = Bitmap::from_indices(4, [0, 1]);
        let r1 = Bitmap::from_indices(4, [0, 1]);
        let r2 = Bitmap::from_indices(4, [1, 2]);
        let m = ColMatrix::from_router_bitmaps(&[r0, r1, r2]);
        // column 0: rows {0,1}; column 1: rows {0,1,2}; column 2: rows {2}
        assert_eq!(m.col_and_weight(0, 1), 2);
        assert_eq!(m.col_and_weight(0, 2), 0);
        assert_eq!(m.col_and_weight(1, 2), 1);
        assert_eq!(m.col_and_weight(0, 3), 0);
    }

    #[test]
    #[should_panic(expected = "equal width")]
    fn mismatched_digests_panic() {
        let r0 = Bitmap::new(8);
        let r1 = Bitmap::new(9);
        ColMatrix::from_router_bitmaps(&[r0, r1]);
    }
}
