//! Read-only word-level access to bit-vector rows.
//!
//! The fusion transpose ([`ColMatrix::fuse_rows_into`]) consumes rows
//! word by word and does not care whether they are owned [`Bitmap`]s or
//! borrowed wire views ([`BitmapView`]); this trait is the one seam
//! between the two, so the zero-copy ingest path and the owned path
//! share a single transpose implementation.
//!
//! [`ColMatrix::fuse_rows_into`]: crate::ColMatrix::fuse_rows_into
//! [`BitmapView`]: crate::BitmapView

use crate::words::words_for;
use crate::Bitmap;

/// A packed bit vector readable as little-endian 64-bit words.
///
/// Implementations must uphold the crate-wide invariant: bits at
/// positions `>= bit_len()` in the final word are zero. Both
/// implementations in this crate validate that at their boundary
/// ([`Bitmap::from_words`] and `BitmapView::parse`).
pub trait WordSource {
    /// Logical length in bits.
    fn bit_len(&self) -> usize;

    /// The `i`-th word: bit `b` of word `i` is vector position
    /// `64 * i + b`.
    ///
    /// # Panics
    /// Panics if `i >= word_len()`.
    fn word(&self, i: usize) -> u64;

    /// Number of words (`ceil(bit_len / 64)`).
    #[inline]
    fn word_len(&self) -> usize {
        words_for(self.bit_len())
    }
}

impl WordSource for Bitmap {
    #[inline]
    fn bit_len(&self) -> usize {
        self.len()
    }

    #[inline]
    fn word(&self, i: usize) -> u64 {
        self.words()[i]
    }
}

impl<S: WordSource + ?Sized> WordSource for &S {
    #[inline]
    fn bit_len(&self) -> usize {
        (**self).bit_len()
    }

    #[inline]
    fn word(&self, i: usize) -> u64 {
        (**self).word(i)
    }
}
