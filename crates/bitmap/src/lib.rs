//! Bit-vector and bit-matrix substrate for the DCS system.
//!
//! The data structures in this crate back both sides of the Distributed
//! Collaborative Streaming architecture:
//!
//! * the **data-collection modules** fill a [`Bitmap`] per measurement epoch
//!   (one hashed bit per packet payload, Section III-A of the paper) or a
//!   bank of small bitmaps (offset sampling + flow splitting, Section IV-A);
//! * the **analysis module** fuses shipped digests into a [`RowMatrix`]
//!   (unaligned case: thousands of 1,024-bit rows) or a [`ColMatrix`]
//!   (aligned case: millions of m-bit columns) and runs word-level
//!   AND/popcount kernels over them.
//!
//! Everything is stored as packed `u64` words. The crate-wide invariant is
//! that **bits past the logical length are always zero**, so `count_ones`
//! and the AND/popcount kernels never need trailing masks.

// `unsafe` is denied everywhere except the SIMD module, which needs it
// for the AVX2 intrinsics and carries the crate's only `allow`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod bitmap;
mod col_matrix;
mod digest;
mod row_matrix;
pub mod sig;
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod simd;
mod source;
pub mod words;

#[cfg(test)]
mod proptests;

pub use bitmap::Bitmap;
pub use col_matrix::ColMatrix;
pub use digest::{BitmapView, DecodeError, DIGEST_MAGIC};
pub use row_matrix::RowMatrix;
pub use sig::{band_bounds, band_signatures_into, band_signatures_with};
pub use source::WordSource;
pub use words::{active_kernel, dispatch_counts, reset_dispatch_counts, Kernel};
