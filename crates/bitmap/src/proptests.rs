//! Property-based tests for the matrix types, wire format, and the
//! blocked popcount kernels (which must be bit-identical to their
//! `*_scalar` references for every slice length — unrolled body, lane
//! remainder, and masked tails alike).

use crate::words::{
    and_weight_many, and_weight_scalar, and_weight_with, available_kernels, or_weight_scalar,
    or_weight_with, tail_mask, weight_scalar, weight_with, words_for,
};
use crate::{Bitmap, BitmapView, ColMatrix, RowMatrix, WordSource};
use proptest::prelude::*;

fn arb_bitmaps(max_rows: usize, width: usize) -> impl Strategy<Value = Vec<Bitmap>> {
    proptest::collection::vec(
        proptest::collection::vec(0usize..width, 0..width.min(64)),
        1..max_rows,
    )
    .prop_map(move |rows| {
        rows.into_iter()
            .map(|idxs| Bitmap::from_indices(width, idxs))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn col_matrix_transpose_agrees_with_bitmaps(bitmaps in arb_bitmaps(12, 80)) {
        let m = ColMatrix::from_router_bitmaps(&bitmaps);
        prop_assert_eq!(m.nrows(), bitmaps.len());
        prop_assert_eq!(m.ncols(), 80);
        for (r, bm) in bitmaps.iter().enumerate() {
            for c in 0..80 {
                prop_assert_eq!(m.get(r, c), bm.get(c), "mismatch at ({}, {})", r, c);
            }
        }
        // Column weights equal per-index counts across bitmaps.
        for c in 0..80 {
            let count = bitmaps.iter().filter(|b| b.get(c)).count();
            prop_assert_eq!(m.col_weight(c) as usize, count);
        }
    }

    #[test]
    fn select_columns_is_projection(bitmaps in arb_bitmaps(8, 60), picks in proptest::collection::vec(0usize..60, 0..30)) {
        let m = ColMatrix::from_router_bitmaps(&bitmaps);
        let s = m.select_columns(&picks);
        prop_assert_eq!(s.ncols(), picks.len());
        for (k, &j) in picks.iter().enumerate() {
            prop_assert_eq!(s.column(k), m.column(j), "column {} != source {}", k, j);
        }
    }

    #[test]
    fn row_matrix_vstack_preserves_rows(
        a in arb_bitmaps(6, 64),
        b in arb_bitmaps(6, 64),
    ) {
        let ma = RowMatrix::from_bitmaps(64, a.iter());
        let mb = RowMatrix::from_bitmaps(64, b.iter());
        let mut stacked = ma.clone();
        stacked.vstack(&mb);
        prop_assert_eq!(stacked.nrows(), a.len() + b.len());
        for (i, bm) in a.iter().chain(b.iter()).enumerate() {
            prop_assert_eq!(stacked.row(i), bm.words(), "row {} corrupted", i);
        }
    }

    #[test]
    fn common_ones_symmetric_and_bounded(
        a in proptest::collection::vec(0usize..128, 0..64),
        b in proptest::collection::vec(0usize..128, 0..64),
    ) {
        let ba = Bitmap::from_indices(128, a);
        let bb = Bitmap::from_indices(128, b);
        let m = RowMatrix::from_bitmaps(128, [&ba, &bb]);
        let c = m.common_ones(0, 1);
        prop_assert_eq!(c, m.common_ones(1, 0));
        prop_assert!(c <= m.row_weight(0).min(m.row_weight(1)));
        prop_assert_eq!(c, ba.common_ones(&bb));
    }

    #[test]
    fn encode_len_matches_actual(len in 0usize..4_000, idxs in proptest::collection::vec(any::<usize>(), 0..32)) {
        prop_assume!(len > 0);
        let bm = Bitmap::from_indices(len, idxs.into_iter().map(|i| i % len));
        prop_assert_eq!(bm.encode().len(), bm.encoded_len());
    }

    #[test]
    fn decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Arbitrary input must produce Ok or Err, never a panic — the
        // decoder faces the network.
        let _ = Bitmap::decode(&bytes);
    }

    #[test]
    fn decode_never_panics_on_corrupted_frames(
        idxs in proptest::collection::vec(0usize..512, 0..16),
        pos in 0usize..64,
        val in any::<u8>(),
    ) {
        let bm = Bitmap::from_indices(512, idxs);
        let mut bytes = bm.encode().to_vec();
        if pos < bytes.len() {
            bytes[pos] ^= val;
        }
        let _ = Bitmap::decode(&bytes);
    }

    #[test]
    fn every_kernel_weight_matches_scalar(words in proptest::collection::vec(any::<u64>(), 0..80)) {
        for &k in available_kernels() {
            prop_assert_eq!(weight_with(k, &words), weight_scalar(&words), "{:?}", k);
        }
    }

    #[test]
    fn every_kernel_band_signatures_match_scalar(
        nrows in 0usize..12,
        wpr in 1usize..24,
        bands in 1usize..10,
        seed in any::<u64>(),
    ) {
        let data: Vec<u64> = (0..nrows * wpr)
            .map(|i| seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i as u64))
            .collect();
        let mut expect = vec![0u64; nrows * bands];
        crate::sig::band_signatures_scalar(&data, wpr, nrows, bands, &mut expect);
        for &k in available_kernels() {
            let mut got = vec![!0u64; nrows * bands];
            crate::sig::band_signatures_with(k, &data, wpr, nrows, bands, &mut got);
            prop_assert_eq!(&got, &expect, "{:?} nrows={} wpr={} bands={}", k, nrows, wpr, bands);
        }
    }

    #[test]
    fn every_kernel_and_or_match_scalar(
        pairs in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..80),
    ) {
        // Lengths 0..80 cover each kernel's short-slice fallback, the
        // carry-save body, the lane/vector remainder, and the empty slice.
        let (a, b): (Vec<u64>, Vec<u64>) = pairs.into_iter().unzip();
        for &k in available_kernels() {
            prop_assert_eq!(and_weight_with(k, &a, &b), and_weight_scalar(&a, &b), "{:?}", k);
            prop_assert_eq!(or_weight_with(k, &a, &b), or_weight_scalar(&a, &b), "{:?}", k);
        }
    }

    #[test]
    fn masked_tail_kernels_match_scalar(
        bits in 1usize..3800,
        raw_a in proptest::collection::vec(any::<u64>(), 60..61),
        raw_b in proptest::collection::vec(any::<u64>(), 60..61),
    ) {
        // Slices shaped exactly like `bits`-bit vectors: `words_for(bits)`
        // words with the final word masked by `tail_mask(bits)` — the
        // invariant the matrix types maintain at their boundary. Every
        // dispatch target must agree on them.
        let nw = words_for(bits);
        let mut a = raw_a[..nw].to_vec();
        let mut b = raw_b[..nw].to_vec();
        a[nw - 1] &= tail_mask(bits);
        b[nw - 1] &= tail_mask(bits);
        for &k in available_kernels() {
            prop_assert_eq!(weight_with(k, &a), weight_scalar(&a), "{:?}", k);
            prop_assert_eq!(and_weight_with(k, &a, &b), and_weight_scalar(&a, &b), "{:?}", k);
            prop_assert_eq!(or_weight_with(k, &a, &b), or_weight_scalar(&a, &b), "{:?}", k);
        }
    }

    #[test]
    fn word_level_fusion_matches_per_bit_oracle(bitmaps in arb_bitmaps(130, 300)) {
        let fused = ColMatrix::from_router_bitmaps(&bitmaps);
        let oracle = ColMatrix::from_router_bitmaps_per_bit(&bitmaps);
        prop_assert_eq!(&fused, &oracle);
        let mut reused = ColMatrix::new(0, 0);
        let mut weights = Vec::new();
        reused.fuse_rows_into(&bitmaps, &mut weights);
        prop_assert_eq!(&reused, &oracle);
        prop_assert_eq!(weights, oracle.col_weights());
    }

    #[test]
    fn bitmap_view_agrees_with_owned_decode(
        len in 0usize..4_000,
        idxs in proptest::collection::vec(any::<usize>(), 0..64),
    ) {
        let bm = Bitmap::from_indices(len.max(1), idxs.into_iter().map(|i| i % len.max(1)));
        let bytes = bm.encode();
        let owned = Bitmap::decode(&bytes).unwrap();
        let view = BitmapView::parse(&bytes).unwrap();
        prop_assert_eq!(view.len(), owned.len());
        prop_assert_eq!(view.encoded_len(), owned.encoded_len());
        prop_assert_eq!(&view.to_bitmap(), &owned);
        for (i, &w) in owned.words().iter().enumerate() {
            prop_assert_eq!(view.word(i), w, "word {}", i);
        }
    }

    #[test]
    fn bitmap_view_errors_match_owned_decode_on_mutations(
        idxs in proptest::collection::vec(0usize..512, 0..16),
        pos in 0usize..64,
        val in any::<u8>(),
        cut_ppm in 0u32..=1_000_000,
    ) {
        // View parsing and owned decoding face the same wire: on any
        // mutated frame they must agree exactly — both Ok with equal
        // content, or the same typed error. Neither may panic.
        let bm = Bitmap::from_indices(512, idxs);
        let mut bytes = bm.encode().to_vec();
        if pos < bytes.len() {
            bytes[pos] ^= val;
        }
        let cut = (bytes.len() as u64 * u64::from(cut_ppm) / 1_000_000) as usize;
        let mangled = &bytes[..cut];
        match (Bitmap::decode(mangled), BitmapView::parse(mangled)) {
            (Ok(owned), Ok(view)) => prop_assert_eq!(view.to_bitmap(), owned),
            (Err(e_owned), Err(e_view)) => prop_assert_eq!(e_owned, e_view),
            (owned, view) => prop_assert!(false, "decode {:?} but view {:?}", owned.is_ok(), view.is_ok()),
        }
    }

    #[test]
    fn and_weight_many_matches_pairwise_scalar(
        base in proptest::collection::vec(any::<u64>(), 0..40),
        ncols in 0usize..12,
        fill in proptest::collection::vec(any::<u64>(), 0..480),
    ) {
        let cols: Vec<Vec<u64>> = (0..ncols)
            .map(|c| {
                (0..base.len())
                    .map(|w| fill.get(c * base.len() + w).copied().unwrap_or(!0))
                    .collect()
            })
            .collect();
        let refs: Vec<&[u64]> = cols.iter().map(Vec::as_slice).collect();
        let many = and_weight_many(&base, &refs);
        prop_assert_eq!(many.len(), ncols);
        for (k, col) in cols.iter().enumerate() {
            prop_assert_eq!(many[k], and_weight_scalar(&base, col), "column {}", k);
        }
    }
}
