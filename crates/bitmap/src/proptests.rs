//! Property-based tests for the matrix types and wire format.

use crate::{Bitmap, ColMatrix, RowMatrix};
use proptest::prelude::*;

fn arb_bitmaps(max_rows: usize, width: usize) -> impl Strategy<Value = Vec<Bitmap>> {
    proptest::collection::vec(
        proptest::collection::vec(0usize..width, 0..width.min(64)),
        1..max_rows,
    )
    .prop_map(move |rows| {
        rows.into_iter()
            .map(|idxs| Bitmap::from_indices(width, idxs))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn col_matrix_transpose_agrees_with_bitmaps(bitmaps in arb_bitmaps(12, 80)) {
        let m = ColMatrix::from_router_bitmaps(&bitmaps);
        prop_assert_eq!(m.nrows(), bitmaps.len());
        prop_assert_eq!(m.ncols(), 80);
        for (r, bm) in bitmaps.iter().enumerate() {
            for c in 0..80 {
                prop_assert_eq!(m.get(r, c), bm.get(c), "mismatch at ({}, {})", r, c);
            }
        }
        // Column weights equal per-index counts across bitmaps.
        for c in 0..80 {
            let count = bitmaps.iter().filter(|b| b.get(c)).count();
            prop_assert_eq!(m.col_weight(c) as usize, count);
        }
    }

    #[test]
    fn select_columns_is_projection(bitmaps in arb_bitmaps(8, 60), picks in proptest::collection::vec(0usize..60, 0..30)) {
        let m = ColMatrix::from_router_bitmaps(&bitmaps);
        let s = m.select_columns(&picks);
        prop_assert_eq!(s.ncols(), picks.len());
        for (k, &j) in picks.iter().enumerate() {
            prop_assert_eq!(s.column(k), m.column(j), "column {} != source {}", k, j);
        }
    }

    #[test]
    fn row_matrix_vstack_preserves_rows(
        a in arb_bitmaps(6, 64),
        b in arb_bitmaps(6, 64),
    ) {
        let ma = RowMatrix::from_bitmaps(64, a.iter());
        let mb = RowMatrix::from_bitmaps(64, b.iter());
        let mut stacked = ma.clone();
        stacked.vstack(&mb);
        prop_assert_eq!(stacked.nrows(), a.len() + b.len());
        for (i, bm) in a.iter().chain(b.iter()).enumerate() {
            prop_assert_eq!(stacked.row(i), bm.words(), "row {} corrupted", i);
        }
    }

    #[test]
    fn common_ones_symmetric_and_bounded(
        a in proptest::collection::vec(0usize..128, 0..64),
        b in proptest::collection::vec(0usize..128, 0..64),
    ) {
        let ba = Bitmap::from_indices(128, a);
        let bb = Bitmap::from_indices(128, b);
        let m = RowMatrix::from_bitmaps(128, [&ba, &bb]);
        let c = m.common_ones(0, 1);
        prop_assert_eq!(c, m.common_ones(1, 0));
        prop_assert!(c <= m.row_weight(0).min(m.row_weight(1)));
        prop_assert_eq!(c, ba.common_ones(&bb));
    }

    #[test]
    fn encode_len_matches_actual(len in 0usize..4_000, idxs in proptest::collection::vec(any::<usize>(), 0..32)) {
        prop_assume!(len > 0);
        let bm = Bitmap::from_indices(len, idxs.into_iter().map(|i| i % len));
        prop_assert_eq!(bm.encode().len(), bm.encoded_len());
    }

    #[test]
    fn decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Arbitrary input must produce Ok or Err, never a panic — the
        // decoder faces the network.
        let _ = Bitmap::decode(&bytes);
    }

    #[test]
    fn decode_never_panics_on_corrupted_frames(
        idxs in proptest::collection::vec(0usize..512, 0..16),
        pos in 0usize..64,
        val in any::<u8>(),
    ) {
        let bm = Bitmap::from_indices(512, idxs);
        let mut bytes = bm.encode().to_vec();
        if pos < bytes.len() {
            bytes[pos] ^= val;
        }
        let _ = Bitmap::decode(&bytes);
    }
}
