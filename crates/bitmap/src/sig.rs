//! Band-signature extraction kernels for the unaligned prescreen.
//!
//! The prescreen of `dcs-unaligned::graphbuild` needs, for every stacked
//! row, a small vector of *band signatures*: the row's words are split
//! into `bands` contiguous word ranges and each range is folded into one
//! 64-bit hash. Two properties make the signatures usable as a
//! **conservative** screen (never pruning a pair the exact λ test would
//! connect):
//!
//! * the hash is a pure deterministic function of the band's words, so
//!   `sig_a[b] != sig_b[b]` **proves** the two rows differ in at least
//!   one bit inside band `b` — differing signatures in `d` bands give a
//!   Hamming-distance lower bound of `d`;
//! * per-word hashes are combined with XOR, which is commutative and
//!   associative, so every kernel (and any evaluation order) produces
//!   bit-identical signatures — the same guarantee the popcount kernels
//!   give, asserted by the same scalar-reference test pattern.
//!
//! Like the popcount kernels in [`crate::words`], extraction dispatches at
//! runtime ([`Kernel`]): a straight-line scalar reference, a blocked
//! 4-row-interleaved portable kernel, and an AVX2 kernel that hashes the
//! same word position of four consecutive rows per vector (64-bit
//! multiplies emulated with `_mm256_mul_epu32`, gathered row loads).

use crate::words::{self, Kernel};

/// Per-word hash: a splitmix64-style finalizer over the word XOR a
/// position-dependent stream constant. Word position is the *absolute*
/// word index within the row, so band boundaries never change a word's
/// hash contribution.
#[inline(always)]
pub(crate) fn mix_word(word: u64, pos: u64) -> u64 {
    let mut z = word ^ pos.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Word range `[start, end)` of band `b` when `words_per_row` words are
/// split into `bands` near-equal contiguous bands (the first
/// `words_per_row % bands` bands get the extra word). Empty when there
/// are more bands than words and `b` is past the last word.
#[inline]
pub fn band_bounds(words_per_row: usize, bands: usize, b: usize) -> (usize, usize) {
    debug_assert!(bands > 0 && b < bands);
    let base = words_per_row / bands;
    let extra = words_per_row % bands;
    let start = b * base + b.min(extra);
    let end = start + base + usize::from(b < extra);
    (start, end)
}

/// Fills `out[r * bands + b]` with the band-`b` signature of row `r` of a
/// row-major word matrix, dispatching to the active kernel.
///
/// # Panics
/// Panics unless `bands > 0`, `data.len() == nrows * words_per_row` and
/// `out.len() == nrows * bands`.
pub fn band_signatures_into(
    data: &[u64],
    words_per_row: usize,
    nrows: usize,
    bands: usize,
    out: &mut [u64],
) {
    let k = words::active_kernel();
    words::tally(k, nrows as u64);
    band_signatures_with(k, data, words_per_row, nrows, bands, out);
}

/// [`band_signatures_into`] through an explicitly chosen kernel.
pub fn band_signatures_with(
    kernel: Kernel,
    data: &[u64],
    words_per_row: usize,
    nrows: usize,
    bands: usize,
    out: &mut [u64],
) {
    assert!(bands > 0, "band_signatures: need at least one band");
    assert_eq!(
        data.len(),
        nrows * words_per_row,
        "band_signatures: data length mismatch"
    );
    assert_eq!(
        out.len(),
        nrows * bands,
        "band_signatures: out length mismatch"
    );
    match kernel {
        Kernel::Scalar => band_signatures_scalar(data, words_per_row, nrows, bands, out),
        Kernel::Blocked => band_signatures_blocked(data, words_per_row, nrows, bands, out),
        Kernel::Avx2 => band_signatures_avx2(data, words_per_row, nrows, bands, out),
    }
}

/// Straight-line reference: one row at a time, one band at a time.
pub fn band_signatures_scalar(
    data: &[u64],
    words_per_row: usize,
    nrows: usize,
    bands: usize,
    out: &mut [u64],
) {
    for r in 0..nrows {
        let row = &data[r * words_per_row..(r + 1) * words_per_row];
        for b in 0..bands {
            let (s, e) = band_bounds(words_per_row, bands, b);
            let mut acc = 0u64;
            for (j, &w) in row[s..e].iter().enumerate() {
                acc ^= mix_word(w, (s + j) as u64);
            }
            out[r * bands + b] = acc;
        }
    }
}

/// Portable blocked kernel: four rows interleaved per word position, so
/// the four hash chains pipeline through the multiplier. XOR combination
/// makes the result bit-identical to the scalar reference.
pub fn band_signatures_blocked(
    data: &[u64],
    words_per_row: usize,
    nrows: usize,
    bands: usize,
    out: &mut [u64],
) {
    let mut r = 0;
    while r + 4 <= nrows {
        let base = r * words_per_row;
        for b in 0..bands {
            let (s, e) = band_bounds(words_per_row, bands, b);
            let mut acc = [0u64; 4];
            for j in s..e {
                let pos = j as u64;
                acc[0] ^= mix_word(data[base + j], pos);
                acc[1] ^= mix_word(data[base + words_per_row + j], pos);
                acc[2] ^= mix_word(data[base + 2 * words_per_row + j], pos);
                acc[3] ^= mix_word(data[base + 3 * words_per_row + j], pos);
            }
            for (lane, &a) in acc.iter().enumerate() {
                out[(r + lane) * bands + b] = a;
            }
        }
        r += 4;
    }
    if r < nrows {
        band_signatures_scalar(
            &data[r * words_per_row..],
            words_per_row,
            nrows - r,
            bands,
            &mut out[r * bands..],
        );
    }
}

#[cfg(target_arch = "x86_64")]
fn band_signatures_avx2(
    data: &[u64],
    words_per_row: usize,
    nrows: usize,
    bands: usize,
    out: &mut [u64],
) {
    crate::simd::band_signatures(data, words_per_row, nrows, bands, out);
}

#[cfg(not(target_arch = "x86_64"))]
fn band_signatures_avx2(
    data: &[u64],
    words_per_row: usize,
    nrows: usize,
    bands: usize,
    out: &mut [u64],
) {
    band_signatures_blocked(data, words_per_row, nrows, bands, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::words::available_kernels;

    fn fill(len: usize, mut seed: u64) -> Vec<u64> {
        (0..len)
            .map(|_| {
                seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
                mix_word(seed, 7)
            })
            .collect()
    }

    #[test]
    fn band_bounds_partition_words() {
        for wpr in 0..40 {
            for bands in 1..12 {
                let mut covered = 0;
                let mut prev_end = 0;
                for b in 0..bands {
                    let (s, e) = band_bounds(wpr, bands, b);
                    assert_eq!(s, prev_end, "bands must be contiguous");
                    assert!(e >= s);
                    covered += e - s;
                    prev_end = e;
                }
                assert_eq!(covered, wpr, "wpr={wpr} bands={bands}");
            }
        }
    }

    #[test]
    fn every_kernel_matches_scalar_across_shapes() {
        for &k in available_kernels() {
            for &(nrows, wpr, bands) in &[
                (0usize, 16usize, 8usize),
                (1, 16, 8),
                (3, 16, 4),
                (4, 16, 8),
                (5, 16, 8),
                (7, 5, 3),
                (9, 1, 4),
                (13, 16, 16),
                (32, 16, 8),
                (33, 7, 2),
            ] {
                let data = fill(nrows * wpr, 11 + nrows as u64);
                let mut expect = vec![0u64; nrows * bands];
                band_signatures_scalar(&data, wpr, nrows, bands, &mut expect);
                let mut got = vec![!0u64; nrows * bands];
                band_signatures_with(k, &data, wpr, nrows, bands, &mut got);
                assert_eq!(got, expect, "{k:?} nrows={nrows} wpr={wpr} bands={bands}");
            }
        }
    }

    #[test]
    fn differing_band_implies_differing_signature_is_never_violated_in_reverse() {
        // Equal words always produce equal signatures (determinism): the
        // direction the conservative screen relies on.
        let a = fill(32, 3);
        let b = a.clone();
        let mut sa = vec![0u64; 2 * 4];
        band_signatures_scalar(&[a.clone(), b].concat(), 32, 2, 4, &mut sa);
        assert_eq!(&sa[..4], &sa[4..]);
    }

    #[test]
    fn single_bit_flip_changes_exactly_one_band() {
        let a = fill(16, 9);
        let mut b = a.clone();
        b[5] ^= 1 << 17; // word 5 lives in band 2 of 8 (2 words per band)
        let mut sigs = vec![0u64; 2 * 8];
        band_signatures_scalar(&[a, b].concat(), 16, 2, 8, &mut sigs);
        let differing: Vec<usize> = (0..8).filter(|&i| sigs[i] != sigs[8 + i]).collect();
        assert_eq!(differing, vec![2]);
    }

    #[test]
    fn more_bands_than_words_yields_empty_tail_bands() {
        let data = fill(2, 21);
        let mut sigs = vec![!0u64; 5];
        band_signatures_scalar(&data, 2, 1, 5, &mut sigs);
        // Bands 2..5 are empty word ranges: signature 0 by definition.
        assert_eq!(&sigs[2..], &[0, 0, 0]);
        assert_ne!(sigs[0], 0);
    }

    #[test]
    #[should_panic(expected = "out length mismatch")]
    fn wrong_out_length_rejected() {
        band_signatures_with(Kernel::Scalar, &[0u64; 16], 16, 1, 8, &mut [0u64; 7]);
    }
}
