//! Fixed-width bit vector used as the per-epoch digest of one monitoring
//! point (Section III-A of the paper).

use crate::words::{self, tail_mask, words_for, WORD_BITS};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A fixed-length bit vector packed into `u64` words.
///
/// This is the paper's "hashed bitmap": the data-collection module hashes
/// each packet payload into an index and sets the corresponding bit. A
/// 4-Mbit instance holds roughly one second of OC-48 traffic at 50 % fill.
///
/// Invariant: bits at positions `>= len` are always zero.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Bitmap {
    len: usize,
    words: Vec<u64>,
}

impl Bitmap {
    /// Creates an all-zero bitmap of `len` bits.
    pub fn new(len: usize) -> Self {
        Bitmap {
            len,
            words: vec![0; words_for(len)],
        }
    }

    /// Creates a bitmap of `len` bits with the given bit positions set.
    ///
    /// # Panics
    /// Panics if any index is out of range.
    pub fn from_indices(len: usize, indices: impl IntoIterator<Item = usize>) -> Self {
        let mut bm = Bitmap::new(len);
        for i in indices {
            bm.set(i);
        }
        bm
    }

    /// Reconstructs a bitmap from raw words.
    ///
    /// # Panics
    /// Panics if `words` is not exactly `words_for(len)` long or if any bit
    /// beyond `len` is set (which would break the crate invariant).
    pub fn from_words(len: usize, words: Vec<u64>) -> Self {
        assert_eq!(words.len(), words_for(len), "from_words: wrong word count");
        if let Some(last) = words.last() {
            assert_eq!(
                last & !tail_mask(len),
                0,
                "from_words: bits set past logical length"
            );
        }
        Bitmap { len, words }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the bitmap has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Backing word slice.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Sets bit `i` to 1. Returns `true` if the bit was previously 0.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let w = &mut self.words[i / WORD_BITS];
        let mask = 1u64 << (i % WORD_BITS);
        let fresh = *w & mask == 0;
        *w |= mask;
        fresh
    }

    /// Clears bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / WORD_BITS] &= !(1u64 << (i % WORD_BITS));
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / WORD_BITS] >> (i % WORD_BITS) & 1 == 1
    }

    /// Resets every bit to 0 (start of a new measurement epoch).
    pub fn reset(&mut self) {
        self.words.fill(0);
    }

    /// Number of set bits — the paper's `weight`.
    #[inline]
    pub fn weight(&self) -> u32 {
        words::weight(&self.words)
    }

    /// Fraction of bits set, in `[0, 1]`. The collection module closes an
    /// epoch when this reaches ~0.5 (the Bloom-filter sweet spot).
    pub fn fill_ratio(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            f64::from(self.weight()) / self.len as f64
        }
    }

    /// Number of positions where both bitmaps have a 1.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    #[inline]
    pub fn common_ones(&self, other: &Bitmap) -> u32 {
        assert_eq!(self.len, other.len, "common_ones: length mismatch");
        words::and_weight(&self.words, &other.words)
    }

    /// In-place intersection.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn and_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "and_assign: length mismatch");
        words::and_assign(&mut self.words, &other.words);
    }

    /// In-place union.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn or_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "or_assign: length mismatch");
        words::or_assign(&mut self.words, &other.words);
    }

    /// Iterator over the indices of set bits, in increasing order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        words::iter_ones(&self.words)
    }
}

impl fmt::Debug for Bitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Bitmap {{ len: {}, weight: {} ({:.1}%) }}",
            self.len,
            self.weight(),
            self.fill_ratio() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn new_is_all_zero() {
        let bm = Bitmap::new(130);
        assert_eq!(bm.len(), 130);
        assert_eq!(bm.weight(), 0);
        assert!(!bm.get(0));
        assert!(!bm.get(129));
    }

    #[test]
    fn set_get_clear_roundtrip() {
        let mut bm = Bitmap::new(100);
        assert!(bm.set(63));
        assert!(bm.set(64));
        assert!(!bm.set(64), "second set reports bit already present");
        assert!(bm.get(63));
        assert!(bm.get(64));
        assert!(!bm.get(65));
        bm.clear(64);
        assert!(!bm.get(64));
        assert_eq!(bm.weight(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        Bitmap::new(10).set(10);
    }

    #[test]
    fn from_indices_builds_expected() {
        let bm = Bitmap::from_indices(70, [0, 1, 69]);
        assert_eq!(bm.weight(), 3);
        assert_eq!(bm.iter_ones().collect::<Vec<_>>(), vec![0, 1, 69]);
    }

    #[test]
    #[should_panic(expected = "past logical length")]
    fn from_words_rejects_dirty_tail() {
        Bitmap::from_words(4, vec![0b10000]);
    }

    #[test]
    fn fill_ratio_half() {
        let bm = Bitmap::from_indices(8, [0, 2, 4, 6]);
        assert!((bm.fill_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn common_ones_and_boolean_ops() {
        let a = Bitmap::from_indices(128, [1, 2, 3, 100]);
        let b = Bitmap::from_indices(128, [2, 3, 4, 127]);
        assert_eq!(a.common_ones(&b), 2);
        let mut u = a.clone();
        u.or_assign(&b);
        assert_eq!(u.weight(), 6);
        let mut i = a.clone();
        i.and_assign(&b);
        assert_eq!(i.iter_ones().collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn reset_zeroes() {
        let mut bm = Bitmap::from_indices(65, [0, 64]);
        bm.reset();
        assert_eq!(bm.weight(), 0);
    }

    #[test]
    fn serde_roundtrip() {
        let bm = Bitmap::from_indices(200, [0, 77, 199]);
        let json = serde_json::to_string(&bm).unwrap();
        let back: Bitmap = serde_json::from_str(&json).unwrap();
        assert_eq!(bm, back);
    }

    proptest! {
        #[test]
        fn prop_set_then_get(len in 1usize..512, idxs in proptest::collection::vec(0usize..512, 0..32)) {
            let idxs: Vec<usize> = idxs.into_iter().map(|i| i % len).collect();
            let bm = Bitmap::from_indices(len, idxs.iter().copied());
            for &i in &idxs {
                prop_assert!(bm.get(i));
            }
            let mut sorted: Vec<usize> = idxs.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(bm.weight() as usize, sorted.len());
            prop_assert_eq!(bm.iter_ones().collect::<Vec<_>>(), sorted);
        }

        #[test]
        fn prop_common_ones_is_intersection_size(
            len in 1usize..300,
            a in proptest::collection::vec(0usize..300, 0..64),
            b in proptest::collection::vec(0usize..300, 0..64),
        ) {
            use std::collections::BTreeSet;
            let a: BTreeSet<usize> = a.into_iter().map(|i| i % len).collect();
            let b: BTreeSet<usize> = b.into_iter().map(|i| i % len).collect();
            let ba = Bitmap::from_indices(len, a.iter().copied());
            let bb = Bitmap::from_indices(len, b.iter().copied());
            prop_assert_eq!(ba.common_ones(&bb) as usize, a.intersection(&b).count());
        }

        #[test]
        fn prop_or_weight_inclusion_exclusion(
            len in 1usize..300,
            a in proptest::collection::vec(0usize..300, 0..64),
            b in proptest::collection::vec(0usize..300, 0..64),
        ) {
            let a: Vec<usize> = a.into_iter().map(|i| i % len).collect();
            let b: Vec<usize> = b.into_iter().map(|i| i % len).collect();
            let ba = Bitmap::from_indices(len, a);
            let bb = Bitmap::from_indices(len, b);
            let mut or = ba.clone();
            or.or_assign(&bb);
            prop_assert_eq!(
                or.weight(),
                ba.weight() + bb.weight() - ba.common_ones(&bb)
            );
        }
    }
}
