//! Compact wire encoding for shipped digests.
//!
//! The whole point of the DCS architecture is that only digests — not raw
//! traffic — cross the network to the analysis centre. This module gives
//! [`Bitmap`] a dense little-endian binary framing (magic, version, length,
//! words) so the compression ratio the paper advertises (three orders of
//! magnitude versus raw traffic) can be measured on actual bytes.

use crate::words::{tail_mask, words_for};
use crate::Bitmap;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// Magic bytes prefixed to every encoded digest (`b"DCSB"`).
pub const DIGEST_MAGIC: [u8; 4] = *b"DCSB";

const VERSION: u8 = 1;

/// Errors produced when decoding a digest frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer is shorter than the fixed header or declared body.
    Truncated {
        /// Bytes required.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// The frame does not start with [`DIGEST_MAGIC`].
    BadMagic([u8; 4]),
    /// Unknown format version.
    BadVersion(u8),
    /// Bits were set past the declared bitmap length.
    DirtyTail,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { needed, got } => {
                write!(f, "digest truncated: need {needed} bytes, got {got}")
            }
            DecodeError::BadMagic(m) => write!(f, "bad digest magic {m:02x?}"),
            DecodeError::BadVersion(v) => write!(f, "unsupported digest version {v}"),
            DecodeError::DirtyTail => write!(f, "bits set past declared bitmap length"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl Bitmap {
    /// Encodes the bitmap into a self-describing binary frame.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(13 + self.words().len() * 8);
        buf.put_slice(&DIGEST_MAGIC);
        buf.put_u8(VERSION);
        buf.put_u64_le(self.len() as u64);
        for &w in self.words() {
            buf.put_u64_le(w);
        }
        buf.freeze()
    }

    /// Size in bytes of the encoded frame (header + body).
    pub fn encoded_len(&self) -> usize {
        13 + self.words().len() * 8
    }

    /// Decodes a frame produced by [`Bitmap::encode`].
    pub fn decode(mut buf: &[u8]) -> Result<Bitmap, DecodeError> {
        if buf.len() < 13 {
            return Err(DecodeError::Truncated {
                needed: 13,
                got: buf.len(),
            });
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if magic != DIGEST_MAGIC {
            return Err(DecodeError::BadMagic(magic));
        }
        let version = buf.get_u8();
        if version != VERSION {
            return Err(DecodeError::BadVersion(version));
        }
        let len = buf.get_u64_le() as usize;
        let nwords = words_for(len);
        if buf.len() < nwords * 8 {
            return Err(DecodeError::Truncated {
                needed: 13 + nwords * 8,
                got: 13 + buf.len(),
            });
        }
        let mut words = Vec::with_capacity(nwords);
        for _ in 0..nwords {
            words.push(buf.get_u64_le());
        }
        if let Some(&last) = words.last() {
            if last & !tail_mask(len) != 0 {
                return Err(DecodeError::DirtyTail);
            }
        }
        Ok(Bitmap::from_words(len, words))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let bm = Bitmap::from_indices(1000, [0, 512, 999]);
        let bytes = bm.encode();
        assert_eq!(bytes.len(), bm.encoded_len());
        let back = Bitmap::decode(&bytes).unwrap();
        assert_eq!(bm, back);
    }

    #[test]
    fn roundtrip_empty() {
        let bm = Bitmap::new(0);
        let back = Bitmap::decode(&bm.encode()).unwrap();
        assert_eq!(bm, back);
    }

    #[test]
    fn rejects_bad_magic() {
        let bm = Bitmap::new(64);
        let mut bytes = bm.encode().to_vec();
        bytes[0] = b'X';
        assert!(matches!(
            Bitmap::decode(&bytes),
            Err(DecodeError::BadMagic(_))
        ));
    }

    #[test]
    fn rejects_bad_version() {
        let bm = Bitmap::new(64);
        let mut bytes = bm.encode().to_vec();
        bytes[4] = 99;
        assert_eq!(Bitmap::decode(&bytes), Err(DecodeError::BadVersion(99)));
    }

    #[test]
    fn rejects_truncation() {
        let bm = Bitmap::from_indices(128, [5]);
        let bytes = bm.encode();
        assert!(matches!(
            Bitmap::decode(&bytes[..bytes.len() - 1]),
            Err(DecodeError::Truncated { .. })
        ));
        assert!(matches!(
            Bitmap::decode(&bytes[..4]),
            Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn rejects_dirty_tail() {
        // len = 4 bits but a word with bit 10 set.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&DIGEST_MAGIC);
        bytes.push(1);
        bytes.extend_from_slice(&4u64.to_le_bytes());
        bytes.extend_from_slice(&(1u64 << 10).to_le_bytes());
        assert_eq!(Bitmap::decode(&bytes), Err(DecodeError::DirtyTail));
    }

    #[test]
    fn header_overhead_is_small() {
        // A 4-Mbit digest must stay ~1000x smaller than 1 second of OC-48
        // traffic (2.4 Gbit): 4 Mbit / 8 + 13 bytes is ~0.52 MB vs 300 MB.
        let bm = Bitmap::new(4 * 1024 * 1024);
        let raw_epoch_bytes = 2_400_000_000u64 / 8;
        let ratio = raw_epoch_bytes as f64 / bm.encoded_len() as f64;
        assert!(ratio > 500.0, "compression ratio {ratio} too small");
    }
}
